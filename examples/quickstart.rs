//! Quickstart: bring up the paper's two-node Myrinet testbed, measure raw
//! GM and MX from user space and from the kernel, and print the headline
//! numbers of §5.1.
//!
//! Run with: `cargo run --release --example quickstart`

use knet::harness::{kbuf, transport_pingpong_us, ubuf};
use knet::prelude::*;
use knet_gm::gm_register;
use knet_gm::GmPortId;

fn main() {
    println!("knet quickstart — two Xeon nodes, PCI-XD Myrinet (250 MB/s)\n");

    // --- MX: same latency from user space and from the kernel -----------
    let (mut w, n0, n1) = two_nodes();
    let ka = kbuf(&mut w, n0, 1 << 20);
    let kb = kbuf(&mut w, n1, 1 << 20);
    let cq = w.new_cq();
    let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let b = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
    let mx_lat = transport_pingpong_us(&mut w, a, b, ka.iov(1), kb.iov(1), 10);
    let mx_bw_us = transport_pingpong_us(&mut w, a, b, ka.iov(1 << 20), kb.iov(1 << 20), 3);
    println!(
        "MX kernel   : 1-byte latency {:5.2} us   1 MB bandwidth {:6.1} MB/s",
        mx_lat,
        (1 << 20) as f64 / mx_bw_us
    );

    // --- GM: registered user buffers, then the kernel port --------------
    let (mut w, n0, n1) = two_nodes();
    let ba = ubuf(&mut w, n0, 1 << 20);
    let bb = ubuf(&mut w, n1, 1 << 20);
    let cq = w.new_cq();
    let ga = w.open_gm_cq(n0, GmPortConfig::user(ba.asid), cq).unwrap();
    let gb = w.open_gm_cq(n1, GmPortConfig::user(bb.asid), cq).unwrap();
    gm_register(&mut w, GmPortId(ga.idx), ba.asid, ba.addr, 1 << 20).unwrap();
    gm_register(&mut w, GmPortId(gb.idx), bb.asid, bb.addr, 1 << 20).unwrap();
    let gm_lat = transport_pingpong_us(&mut w, ga, gb, ba.iov(1), bb.iov(1), 10);
    let gm_bw_us = transport_pingpong_us(&mut w, ga, gb, ba.iov(1 << 20), bb.iov(1 << 20), 3);
    println!(
        "GM user     : 1-byte latency {:5.2} us   1 MB bandwidth {:6.1} MB/s",
        gm_lat,
        (1 << 20) as f64 / gm_bw_us
    );

    let (mut w, n0, n1) = two_nodes();
    let ka = kbuf(&mut w, n0, 4096);
    let kb = kbuf(&mut w, n1, 4096);
    let cq = w.new_cq();
    let ga = w.open_gm_cq(n0, GmPortConfig::kernel(), cq).unwrap();
    let gb = w.open_gm_cq(n1, GmPortConfig::kernel(), cq).unwrap();
    gm_register(&mut w, GmPortId(ga.idx), Asid::KERNEL, ka.addr, 4096).unwrap();
    gm_register(&mut w, GmPortId(gb.idx), Asid::KERNEL, kb.addr, 4096).unwrap();
    let gmk_lat = transport_pingpong_us(&mut w, ga, gb, ka.iov(1), kb.iov(1), 10);
    println!(
        "GM kernel   : 1-byte latency {:5.2} us   (the +2 us the paper measures)",
        gmk_lat
    );

    println!();
    println!("paper anchors: MX 4.2 us (user = kernel), GM 6.7 us user / ~8.7 us kernel");
    assert!((3.7..5.0).contains(&mx_lat));
    assert!((6.0..7.5).contains(&gm_lat));
    assert!(gmk_lat - gm_lat > 1.5 && gmk_lat - gm_lat < 2.5);
    println!("all anchors hold — the simulated testbed is calibrated.");
}

//! The paper's future-work application, running: a Network Block Device
//! client mounting a remote disk over the kernel network API, exercising
//! the same page-cache + physical-address machinery as ORFS buffered access
//! (§6), compared across GM and MX.
//!
//! Run with: `cargo run --release --example network_block_device`

use knet::harness::ubuf;
use knet::prelude::*;
use knet_nbd::{
    nbd_client_create, nbd_read, nbd_read_raw, nbd_server_create, nbd_wait, nbd_write, SECTOR_SIZE,
};
use knet_simcore::{run_until, RunOutcome};

fn wait(w: &mut ClusterWorld, cid: knet_nbd::NbdClientId, op: knet_nbd::NbdOp) -> u64 {
    let outcome = run_until(w, |w| {
        w.nbd.clients[cid.0 as usize]
            .completed
            .iter()
            .any(|(o, _)| *o == op)
    });
    assert_eq!(outcome, RunOutcome::Satisfied);
    nbd_wait(&mut w.nbd.clients[cid.0 as usize], op)
        .unwrap()
        .unwrap()
}

fn session(kind: TransportKind) {
    let (mut w, n0, n1) = two_nodes();
    let user = ubuf(&mut w, n0, 4 << 20);
    let (cep, sep) = match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096)
                .with_blocking_notify();
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    };
    let _server = nbd_server_create(&mut w, sep, 16 * 1024).unwrap(); // 64 MB disk
    let client = nbd_client_create(&mut w, cep, sep, 1000).unwrap();

    // Format: write a recognizable pattern across 1 MB of the device.
    let mb = 1u64 << 20;
    let pattern: Vec<u8> = (0..mb).map(|i| ((i / SECTOR_SIZE) % 251) as u8).collect();
    w.os.node_mut(n0)
        .write_virt(user.asid, user.addr, &pattern)
        .unwrap();
    let op = nbd_write(&mut w, client, user.memref(mb), 0);
    wait(&mut w, client, op);

    // Drop the (write-through) cached sectors so the first read is cold.
    let device = w.nbd.clients[client.0 as usize].device_id;
    let os = w.os.node_mut(n0);
    let mut cache = std::mem::take(&mut os.page_cache);
    cache.evict_file(&mut os.mem, device, u32::MAX).unwrap();
    w.os.node_mut(n0).page_cache = cache;

    // Cold buffered read of the whole megabyte (per-sector requests).
    let t0 = knet_simcore::now(&w);
    let op = nbd_read(&mut w, client, user.memref(mb), 0);
    let n = wait(&mut w, client, op);
    let cold = knet_simcore::now(&w) - t0;
    assert_eq!(n, mb);

    // Warm read: pure page-cache hits.
    let t0 = knet_simcore::now(&w);
    let op = nbd_read(&mut w, client, user.memref(mb), 0);
    wait(&mut w, client, op);
    let warm = knet_simcore::now(&w) - t0;

    // Raw (direct) read of the same range: one request, zero-copy.
    let t0 = knet_simcore::now(&w);
    let op = nbd_read_raw(&mut w, client, user.memref(mb), 0);
    wait(&mut w, client, op);
    let raw = knet_simcore::now(&w) - t0;

    // Verify contents end to end.
    let mut back = vec![0u8; mb as usize];
    w.os.node(n0)
        .read_virt(user.asid, user.addr, &mut back)
        .unwrap();
    assert_eq!(back, pattern, "device bytes survive the round trip");

    let stats = w.nbd.clients[client.0 as usize].stats;
    println!(
        "  {kind:?}: cold buffered {:>7.1} MB/s | warm (cache) {:>7.1} MB/s | raw {:>7.1} MB/s | sector hits/misses {}/{}",
        mb as f64 / cold.micros(),
        mb as f64 / warm.micros(),
        mb as f64 / raw.micros(),
        stats.sector_hits,
        stats.sector_misses,
    );
}

fn main() {
    println!("Network Block Device: remote 64 MB disk, 4 kB sectors\n");
    session(TransportKind::Gm);
    session(TransportKind::Mx);
    println!("\nas the paper predicts (§6), the NBD client behaves like ORFS");
    println!("buffered access: page-sized physical-address transfers, and the");
    println!("MX kernel interface carries them faster than GM.");
}

//! GMKRC and VMA SPY in action: watch the registration cache absorb the
//! 3 µs/page + 200 µs costs of §2.2.2, stay coherent across `munmap` and
//! `fork`, and prevent the stale-translation hazard.
//!
//! Run with: `cargo run --release --example registration_cache`

use knet::harness::{await_recv, ubuf};
use knet::prelude::*;
use knet_gm::GmPortId;
use knet_simos::munmap;

fn main() {
    println!("GM kernel registration cache (GMKRC) + VMA SPY demo\n");
    let (mut w, n0, n1) = two_nodes();

    // A shared kernel port with a 256-page GMKRC, and a receiver. The pair
    // talks over channels — the application-facing send path.
    let cq = w.new_cq();
    let tx = w
        .open_gm_cq(n0, GmPortConfig::kernel().with_regcache(256), cq)
        .unwrap();
    let rx_buf = ubuf(&mut w, n1, 1 << 20);
    let rx = w
        .open_gm_cq(n1, GmPortConfig::user(rx_buf.asid), cq)
        .unwrap();
    knet_gm::gm_register(&mut w, GmPortId(rx.idx), rx_buf.asid, rx_buf.addr, 1 << 20).unwrap();
    let ch_tx = channel_connect(&mut w, tx, rx, cq);
    let ch_rx = channel_connect(&mut w, rx, tx, cq);

    // A user process on node 0 with a 64 kB buffer.
    // Let the setup work (receiver registration: 256 pages) retire before
    // measuring.
    knet_simcore::call_at(&mut w, 0, SimTime::from_millis(5), |_| {});
    knet_simcore::run_to_quiescence(&mut w);

    let buf = ubuf(&mut w, n0, 64 * 1024);
    w.os.node_mut(n0)
        .write_virt(buf.asid, buf.addr, b"first payload")
        .unwrap();

    let send = |w: &mut ClusterWorld, b: &knet::harness::UBuf, label: &str| {
        channel_post_recv(w, ch_rx, 7, rx_buf.iov(64 * 1024)).unwrap();
        let before = knet_simcore::now(w);
        channel_send(w, ch_tx, 7, b.iov(64 * 1024)).unwrap();
        await_recv(w, rx);
        let stats = w.gm.port(GmPortId(tx.idx)).unwrap().stats;
        let cache =
            w.gm.port(GmPortId(tx.idx))
                .unwrap()
                .regcache
                .as_ref()
                .unwrap();
        println!(
            "  {label}: {:>8} transfer | registered so far {:>3} pages | hits {:>3} | invalidations {:>2}",
            format!("{}", knet_simcore::now(w) - before),
            stats.pages_registered,
            cache.stats.page_hits,
            cache.stats.invalidations,
        );
    };

    println!("1. first send registers all 16 pages on the fly (16 × 3 µs):");
    send(&mut w, &buf, "cold  ");

    println!("2. repeated sends hit the cache — no registration work at all:");
    send(&mut w, &buf, "warm  ");
    send(&mut w, &buf, "warm  ");

    println!("3. munmap fires VMA SPY: the cache drops the 16 stale entries");
    println!("   (and the kernel pays the real ~200 µs deregistration):");
    munmap(&mut w, n0, buf.asid, buf.addr, 64 * 1024).unwrap();
    let cache =
        w.gm.port(GmPortId(tx.idx))
            .unwrap()
            .regcache
            .as_ref()
            .unwrap();
    println!(
        "   invalidations now {}, cache now holds {} pages",
        cache.stats.invalidations,
        cache.len()
    );

    println!("4. a new mapping at a fresh address re-registers and delivers");
    println!("   the *new* bytes (no stale-translation hazard):");
    let buf2 = ubuf2(&mut w, n0, buf.asid);
    w.os.node_mut(n0)
        .write_virt(buf2.asid, buf2.addr, b"second payload")
        .unwrap();
    send(&mut w, &buf2, "remap ");

    let mut got = vec![0u8; 14];
    w.os.node(n1)
        .read_virt(rx_buf.asid, rx_buf.addr, &mut got)
        .unwrap();
    assert_eq!(&got, b"second payload");
    println!("   receiver sees: {:?}", String::from_utf8_lossy(&got));

    println!("\n5. fork: the child's identical virtual addresses resolve to");
    println!("   different physical pages — the ASID-tagged table keeps them apart:");
    let child = knet_simos::fork(&mut w, n0, buf2.asid).unwrap();
    w.os.node_mut(n0)
        .write_virt(child, buf2.addr, b"child  payload")
        .unwrap();
    let child_buf = knet::harness::UBuf {
        node: n0,
        asid: child,
        addr: buf2.addr,
        len: buf2.len,
    };
    send(&mut w, &child_buf, "child ");
    w.os.node(n1)
        .read_virt(rx_buf.asid, rx_buf.addr, &mut got)
        .unwrap();
    assert_eq!(&got, b"child  payload");
    println!("   receiver sees: {:?}", String::from_utf8_lossy(&got));
    println!("\nGMKRC kept every transfer correct while amortizing registration.");
}

/// Map a second buffer in an existing process.
fn ubuf2(w: &mut ClusterWorld, node: NodeId, asid: Asid) -> knet::harness::UBuf {
    let addr =
        w.os.node_mut(node)
            .map_anon(asid, 64 * 1024, knet_simos::Prot::RW)
            .unwrap();
    knet::harness::UBuf {
        node,
        asid,
        addr,
        len: 64 * 1024,
    }
}

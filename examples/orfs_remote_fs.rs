//! A distributed-file-system session over ORFS: mount, build a directory
//! tree, write and read files through both the page-cache (buffered) and
//! `O_DIRECT` paths, on both GM and MX — then print the per-transport
//! throughput and cache statistics the paper's §5.2 discusses.
//!
//! Run with: `cargo run --release --example orfs_remote_fs`

use knet::figures::{fs_fixture, FsOpts};
use knet::harness::fsops;
use knet::prelude::*;

fn session(kind: TransportKind) {
    println!("== ORFS over {kind:?} ==");
    let mut fx = fs_fixture(FsOpts {
        kind,
        file_len: 8 << 20,
        ..FsOpts::default()
    });
    let (w, cid) = (&mut fx.w, fx.cid);

    // Build a small project tree.
    fsops::mkdir(w, cid, "/project", 0o755).unwrap();
    fsops::mkdir(w, cid, "/project/src", 0o755).unwrap();
    fsops::create(w, cid, "/project/src/main.rs", 0o644).unwrap();
    fsops::create(w, cid, "/project/README.md", 0o644).unwrap();

    // Write a file through the page-cache and sync it.
    let fd = fsops::open(w, cid, "/project/src/main.rs", false).unwrap();
    let text = b"fn main() { println!(\"hello cluster\"); }\n".repeat(100);
    w.os.node_mut(fx.user.node)
        .write_virt(fx.user.asid, fx.user.addr, &text)
        .unwrap();
    fsops::write(w, cid, fd, fx.user.memref(text.len() as u64), 0).unwrap();
    fsops::fsync(w, cid, fd).unwrap();
    fsops::close(w, cid, fd).unwrap();

    // List the tree.
    let entries = fsops::readdir(w, cid, "/project").unwrap();
    println!(
        "  /project: {:?}",
        entries.iter().map(|e| e.name.as_str()).collect::<Vec<_>>()
    );
    let attr = fsops::stat(w, cid, "/project/src/main.rs").unwrap();
    println!("  main.rs: {} bytes", attr.size);

    // Sequential read throughput of the 8 MB data file, both access modes.
    for (label, direct, record) in [
        ("buffered, 4 kB records ", false, 4096u64),
        ("buffered, 64 kB records", false, 65536),
        ("O_DIRECT, 64 kB records", true, 65536),
        ("O_DIRECT, 1 MB records ", true, 1 << 20),
    ] {
        let fd = fsops::open(w, cid, "/data", direct).unwrap();
        let user = fx.user;
        let mb = knet::harness::seq_read_mb(w, cid, fd, record, 4 << 20, move |_w, _i| {
            user.memref(record)
        });
        fsops::close(w, cid, fd).unwrap();
        println!("  read {label}: {mb:7.1} MB/s");
        // Between runs, drop the page-cache so each run starts cold.
        let mount = w.orfs.client(cid).mount_id;
        let node = fx.user.node;
        let ino = {
            let server = &mut w.orfs.servers[0];
            server.fs.lookup_path("/data").unwrap().0
        };
        let os = w.os.node_mut(node);
        let mut cache = std::mem::take(&mut os.page_cache);
        cache.evict_file(&mut os.mem, mount, ino).unwrap();
        w.os.node_mut(node).page_cache = cache;
    }

    let stats = w.orfs.client(cid).stats;
    println!(
        "  client: {} syscalls, {} requests, dentry hits/misses {}/{}, page hits/misses {}/{}\n",
        stats.syscalls,
        stats.requests,
        stats.dentry_hits,
        stats.dentry_misses,
        stats.page_hits,
        stats.page_misses
    );
}

fn main() {
    println!("ORFS — optimized remote file system, client on node 0, server on node 1\n");
    session(TransportKind::Gm);
    session(TransportKind::Mx);
    println!("note the buffered-path gap between GM and MX: the paper's §5.2 result.");
}

//! NetPIPE over three socket stacks: SOCKETS-MX, SOCKETS-GM, and the
//! TCP/IP-over-GigE baseline — the §5.3 comparison, as a runnable demo.
//!
//! Run with: `cargo run --release --example zerocopy_sockets`

use knet::harness::{sock_pingpong_us, tcp_pingpong_us, ubuf};
use knet::prelude::*;
use knet_zsock::{sock_create, tcp_pair};

fn myrinet_sockets(kind: TransportKind) -> Vec<(u64, f64)> {
    let sizes = [1u64, 64, 1024, 4096, 65536, 1 << 20];
    let mut out = Vec::new();
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes_xe();
        let ba = ubuf(&mut w, n0, 2 << 20);
        let bb = ubuf(&mut w, n1, 2 << 20);
        let (ea, eb) = match kind {
            TransportKind::Mx => (
                w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
                w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
            ),
            TransportKind::Gm => {
                let cfg = GmPortConfig::kernel()
                    .with_physical_api()
                    .with_regcache(4096);
                (
                    w.open_gm(n0, cfg.clone()).unwrap(),
                    w.open_gm(n1, cfg).unwrap(),
                )
            }
        };
        let sa = sock_create(&mut w, ea, eb).unwrap();
        let sb = sock_create(&mut w, eb, ea).unwrap();
        let us = sock_pingpong_us(&mut w, sa, sb, ba.memref(n), bb.memref(n), 5);
        out.push((n, us));
    }
    out
}

fn tcp_gige() -> Vec<(u64, f64)> {
    let sizes = [1u64, 64, 1024, 4096, 65536, 1 << 20];
    let mut out = Vec::new();
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let ba = ubuf(&mut w, n0, 2 << 20);
        let bb = ubuf(&mut w, n1, 2 << 20);
        let (ta, tb) = tcp_pair(&mut w, n0, n1);
        let us = tcp_pingpong_us(&mut w, ta, tb, ba.memref(n), bb.memref(n), 3);
        out.push((n, us));
    }
    out
}

fn main() {
    println!("NetPIPE ping-pong, PCI-XE Myrinet (500 MB/s) vs Gigabit Ethernet\n");
    let mx = myrinet_sockets(TransportKind::Mx);
    let gm = myrinet_sockets(TransportKind::Gm);
    let tcp = tcp_gige();

    println!(
        "{:>10}  {:>22}  {:>22}  {:>22}",
        "size", "Sockets-MX", "Sockets-GM", "TCP/IP GigE"
    );
    println!(
        "{:>10}  {:>11}{:>11}  {:>11}{:>11}  {:>11}{:>11}",
        "(bytes)", "us", "MB/s", "us", "MB/s", "us", "MB/s"
    );
    for i in 0..mx.len() {
        let (n, a) = mx[i];
        let (_, b) = gm[i];
        let (_, c) = tcp[i];
        println!(
            "{:>10}  {:>11.2}{:>11.2}  {:>11.2}{:>11.2}  {:>11.2}{:>11.2}",
            n,
            a,
            n as f64 / a,
            b,
            n as f64 / b,
            c,
            n as f64 / c
        );
    }
    println!();
    println!("paper anchors: Sockets-MX ~5 us & near link rate; Sockets-GM ~15 us");
    println!("and <70 % of the link; \"a common GIGA-ETHERNET network might get");
    println!("much more [latency]\" — visible in the right-hand column.");
}

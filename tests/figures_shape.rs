//! Shape assertions on the reproduced evaluation: for every figure and for
//! Table 1, check the paper's *qualitative* claims — who wins, by roughly
//! what factor, and where the crossovers fall. (Absolute equality with a
//! 2005 testbed is out of scope; EXPERIMENTS.md records paper-vs-measured.)

use knet::figures::{self, fs_fixture, FsOpts};
use knet::harness::{fsops, seq_read_mb, sock_pingpong_us, ubuf};
use knet::prelude::*;
use knet_gm::GmParams;
use knet_simos::PAGE_SIZE as P;
use knet_zsock::sock_create;

// ---------------------------------------------------------------- Figure 1b

#[test]
fn fig1b_registration_vs_copy_shapes() {
    let fig = figures::fig1b();
    let copy_p3 = &fig.series[0];
    let copy_p4 = &fig.series[1];
    let reg = &fig.series[2];
    let dereg = &fig.series[3];
    // Copy cost grows linearly; P3 is at least twice the P4 cost at 256 kB.
    let big = 256 * 1024;
    assert!(copy_p3.exact(big).unwrap() > 2.0 * copy_p4.exact(big).unwrap());
    // Deregistration is dominated by its ~200 µs base: nearly flat.
    let d_small = dereg.exact(4096).unwrap();
    let d_big = dereg.exact(big).unwrap();
    assert!(
        d_small >= 195.0 && d_big <= 1.2 * d_small,
        "dereg base dominates"
    );
    // Registration (3 µs/page) is cheaper than a P3 copy at 256 kB but far
    // more expensive than any copy for one page — the paper's motivation
    // for copying small buffers instead of registering them (§2.2.2).
    assert!(reg.exact(big).unwrap() < copy_p3.exact(big).unwrap());
    assert!(reg.exact(4096).unwrap() > copy_p4.exact(4096).unwrap());
}

// ---------------------------------------------------------------- Figure 4a

#[test]
fn fig4a_physical_addressing_saves_a_microsecond() {
    let fig = figures::fig4a();
    let registered = &fig.series[0];
    let physical = &fig.series[1];
    for p in &registered.points {
        let phys = physical.exact(p.x).unwrap();
        let gain = p.y - phys;
        assert!(
            (0.7..=1.4).contains(&gain),
            "at {} B the physical API saves {gain:.2} µs (paper: ≈1.0)",
            p.x
        );
    }
}

// ------------------------------------------------------- Figure 4b (shape)

/// One fixture, one record size: (direct, buffered) throughput.
fn gm_direct_buffered_at(record: u64) -> (f64, f64) {
    let opts = FsOpts {
        kind: TransportKind::Gm,
        ..FsOpts::default()
    };
    let mut out = (0.0, 0.0);
    for (i, direct) in [(0, true), (1, false)] {
        let total = (record * 32).clamp(64 * 1024, 2 << 20);
        let mut fx = fs_fixture(FsOpts {
            file_len: total + record,
            ..opts
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", direct).unwrap();
        let user = fx.user;
        let mb = seq_read_mb(&mut fx.w, fx.cid, fd, record, total, move |_w, _i| {
            user.memref(record)
        });
        if i == 0 {
            out.0 = mb;
        } else {
            out.1 = mb;
        }
    }
    out
}

#[test]
fn fig4b_buffered_wins_small_direct_wins_large() {
    // §3.3: "4 kB accesses are faster through the page-cache compared to
    // direct accesses, even if an additional copy ... is required"; large
    // requests are "much better in the direct case".
    let (direct_small, buffered_small) = gm_direct_buffered_at(1024);
    assert!(
        buffered_small > direct_small,
        "1 kB records: buffered {buffered_small:.1} must beat direct {direct_small:.1}"
    );
    let (direct_large, buffered_large) = gm_direct_buffered_at(256 * 1024);
    assert!(
        direct_large > 1.5 * buffered_large,
        "256 kB records: direct {direct_large:.1} must far exceed buffered {buffered_large:.1}"
    );
    // The buffered plateau sits at the per-page request rate.
    assert!((40.0..=120.0).contains(&buffered_large));
}

// ---------------------------------------------------------------- Figure 3b

#[test]
fn fig3b_cache_miss_penalty_is_about_twenty_percent() {
    // §3.2: "Without any cache hit, the performance is 20 % lower."
    let record = 64 * 1024u64;
    let total = 2 << 20;
    let run = |cache: usize, rotate: bool| {
        let mut fx = fs_fixture(FsOpts {
            kind: TransportKind::Gm,
            regcache_pages: Some(cache),
            file_len: total + record,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        let user = fx.user;
        let pool = user.len;
        seq_read_mb(&mut fx.w, fx.cid, fd, record, total, move |_w, i| {
            if rotate {
                let off = (i * record) % (pool - record).max(1);
                user.memref_at(off & !(P - 1), record)
            } else {
                user.memref(record)
            }
        })
    };
    let with_cache = run(4096, false);
    let without = run(128, true);
    let loss = 1.0 - without / with_cache;
    assert!(
        (0.12..=0.30).contains(&loss),
        "no-hit penalty = {:.0} % (paper: 20 %)",
        loss * 100.0
    );
}

#[test]
fn fig3b_orfa_beats_orfs_which_both_trail_raw_gm() {
    // §3.2: "ORFS performance is still lower than ORFA because of the
    // overhead of system calls and of the traversal of the VFS layers."
    let record = 16 * 1024u64;
    let total = 1 << 20;
    let run = |client: ClientKind| {
        let mut fx = fs_fixture(FsOpts {
            kind: TransportKind::Gm,
            client,
            file_len: total + record,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        let user = fx.user;
        seq_read_mb(&mut fx.w, fx.cid, fd, record, total, move |_w, _i| {
            user.memref(record)
        })
    };
    let orfa = run(ClientKind::UserLib);
    let orfs = run(ClientKind::KernelVfs);
    assert!(
        orfa > orfs,
        "ORFA ({orfa:.1}) must beat ORFS ({orfs:.1}) at 16 kB records"
    );
    assert!(orfa < 210.0, "both trail raw GM (~200 MB/s at 16 kB)");
}

// ---------------------------------------------------------------- Figure 7

#[test]
fn fig7b_mx_buffered_improvement() {
    // §5.2: "Buffered file access in ORFS on MX shows a 40 % improvement
    // over GM."
    let record = 64 * 1024u64;
    let total = 2 << 20;
    let run = |kind: TransportKind| {
        let mut fx = fs_fixture(FsOpts {
            kind,
            file_len: total + record,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", false).unwrap();
        let user = fx.user;
        seq_read_mb(&mut fx.w, fx.cid, fd, record, total, move |_w, _i| {
            user.memref(record)
        })
    };
    let gm = run(TransportKind::Gm);
    let mx = run(TransportKind::Mx);
    let gain = mx / gm - 1.0;
    assert!(
        (0.20..=0.55).contains(&gain),
        "ORFS/MX buffered gain = {:.0} % over GM (paper: 40 %)",
        gain * 100.0
    );
}

#[test]
fn fig7a_mx_direct_at_least_as_good_at_large_records() {
    // Table 1: direct access on MX is "at least as good".
    let record = 512 * 1024u64;
    let total = 2 << 20;
    let run = |kind: TransportKind| {
        let mut fx = fs_fixture(FsOpts {
            kind,
            file_len: total + record,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        let user = fx.user;
        seq_read_mb(&mut fx.w, fx.cid, fd, record, total, move |_w, _i| {
            user.memref(record)
        })
    };
    let gm = run(TransportKind::Gm);
    let mx = run(TransportKind::Mx);
    assert!(
        mx > 0.97 * gm,
        "ORFS/MX direct ({mx:.1}) within noise of or above GM ({gm:.1})"
    );
}

// ---------------------------------------------------------------- Figure 8

fn sock_lat_and_peak(kind: TransportKind) -> (f64, f64) {
    let lat = {
        let (mut w, sa, sb, ba, bb) = sock_pair(kind);
        sock_pingpong_us(&mut w, sa, sb, ba.memref(1), bb.memref(1), 5)
    };
    let peak = {
        let (mut w, sa, sb, ba, bb) = sock_pair(kind);
        let n = 1u64 << 20;
        let us = sock_pingpong_us(&mut w, sa, sb, ba.memref(n), bb.memref(n), 3);
        n as f64 / us
    };
    (lat, peak)
}

fn sock_pair(
    kind: TransportKind,
) -> (
    ClusterWorld,
    knet_zsock::SockId,
    knet_zsock::SockId,
    knet::harness::UBuf,
    knet::harness::UBuf,
) {
    let (mut w, n0, n1) = two_nodes_xe();
    let ba = ubuf(&mut w, n0, 2 << 20);
    let bb = ubuf(&mut w, n1, 2 << 20);
    let (ea, eb) = match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096);
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    };
    let sa = sock_create(&mut w, ea, eb).unwrap();
    let sb = sock_create(&mut w, eb, ea).unwrap();
    (w, sa, sb, ba, bb)
}

#[test]
fn fig8_socket_latency_and_capacity_claims() {
    let (mx_lat, mx_peak) = sock_lat_and_peak(TransportKind::Mx);
    let (gm_lat, gm_peak) = sock_lat_and_peak(TransportKind::Gm);
    // §5.3: "5 µs one-way latency ... with SOCKETS-MX"; "SOCKETS-GM gets
    // 15 µs".
    assert!(
        (4.0..=6.5).contains(&mx_lat),
        "Sockets-MX 1B = {mx_lat:.1} µs"
    );
    assert!(
        (12.0..=18.0).contains(&gm_lat),
        "Sockets-GM 1B = {gm_lat:.1} µs"
    );
    assert!(gm_lat / mx_lat > 2.5, "the 3× latency gap holds");
    // Table 1: Sockets-GM under 70 % of the 500 MB/s link; MX near it.
    assert!(
        gm_peak < 0.70 * 500.0,
        "Sockets-GM peak = {gm_peak:.0} MB/s"
    );
    assert!(
        mx_peak > 0.85 * 500.0,
        "Sockets-MX peak = {mx_peak:.0} MB/s"
    );
    assert!(
        mx_peak / gm_peak - 1.0 > 0.35,
        "large-message improvement (paper: up to 50 %)"
    );
}

// ---------------------------------------------------------------- Figure 6
// (the copy-removal gains themselves are asserted in knet-mx's unit tests;
// here: the medium/large boundary is visible as a regime change)

#[test]
fn fig6_regime_change_at_the_medium_boundary() {
    let run = |n: u64| {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
        let b = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
        let ka = knet::harness::kbuf(&mut w, n0, n);
        let kb = knet::harness::kbuf(&mut w, n1, n);
        let us = knet::harness::transport_pingpong_us(&mut w, a, b, ka.iov(n), kb.iov(n), 3);
        n as f64 / us
    };
    let medium_end = run(32 * 1024); // copies on both sides
    let large_start = run(64 * 1024); // rendezvous, zero-copy
    assert!(
        large_start > medium_end * 1.15,
        "crossing into the rendezvous regime jumps: {medium_end:.0} → {large_start:.0} MB/s"
    );
}

// ---------------------------------------------------------------- Table 1

#[test]
fn table1_registration_costs_match_the_quoted_numbers() {
    // §2.2.2: "a 3 µs overhead per page registration, with the addition of
    // a 200 µs base for deregistration".
    let p = GmParams::default();
    assert_eq!(p.reg_per_page.micros(), 3.0);
    assert_eq!(p.dereg_base.micros(), 200.0);
}

//! Chaos: the full zsock + ORFS + NBD stacks under a seeded faulty fabric.
//!
//! A `FaultPlan` makes the wire drop, duplicate and delay-reorder packets;
//! the driver-level reliability windows (`knet_simnic::rel`) must absorb
//! every injected fault so the layers above see exactly the contract they
//! see on a perfect fabric: byte-exact streams, no stalled readers, no
//! leaked context-pool slots. Separately, an *unsurvivable* fault (the peer
//! node killed) must fail every in-flight operation with a typed error —
//! nothing may stall forever.
//!
//! Everything is seeded and deterministic: a failing case reproduces
//! exactly from its printed inputs.

use knet::figures::{fs_fixture_faulty, FsOpts};
use knet::harness::{fsops, pattern_byte, sock_wait};
use knet::prelude::*;
use knet_nbd::{nbd_client_create, nbd_read, nbd_read_raw, nbd_server_create, nbd_write, NbdOp};
use knet_simnic::FaultPlan;
use knet_zsock::{sock_create, sock_recv, sock_send};
use proptest::prelude::*;

/// A lossy-link plan: `loss_pct`% drop, optional duplication and
/// delay-reordering, all drawn from `seed`.
fn plan(seed: u64, loss_pct: u64, dup: bool, reorder: bool) -> FaultPlan {
    let mut p = FaultPlan::new(seed).with_drop(loss_pct as f64 / 100.0);
    if dup {
        p = p.with_dup(0.04);
    }
    if reorder {
        // Delays stay mostly below the adaptive rto floor so recovery, not
        // spurious retransmission rounds, is what reorders exercise.
        p = p.with_delay(0.08, SimTime::from_micros(2), SimTime::from_micros(80));
    }
    p
}

fn endpoints(
    w: &mut ClusterWorld,
    kind: TransportKind,
    n0: NodeId,
    n1: NodeId,
) -> (Endpoint, Endpoint) {
    match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096);
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    }
}

/// Hard gate on every scenario: an engine error (event on a freed slot,
/// pool double-release, handler panic absorbed by the engine) is a
/// simulator bug that fault injection must never be allowed to mask.
fn assert_no_engine_errors(w: &ClusterWorld) {
    let st = w.stats_snapshot();
    assert_eq!(
        st.engine_errors, 0,
        "engine errors under chaos are a hard fail"
    );
}

fn fill_user(w: &mut ClusterWorld, buf: &UBuf, data: &[u8]) {
    w.os.node_mut(buf.node)
        .write_virt(buf.asid, buf.addr, data)
        .unwrap();
}

fn read_user(w: &ClusterWorld, buf: &UBuf, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    w.os.node(buf.node)
        .read_virt(buf.asid, buf.addr, &mut out)
        .unwrap();
    out
}

/// Socket pair moving a mixed-size stream; every byte must arrive intact
/// and in order, every op must complete.
fn zsock_scenario(kind: TransportKind, fault: FaultPlan) -> u64 {
    let mut w = ClusterBuilder::new()
        .nic(NicModel::pci_xe())
        .fault_plan(fault)
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let ba = ubuf(&mut w, n0, 1 << 20);
    let bb = ubuf(&mut w, n1, 1 << 20);
    let (ea, eb) = endpoints(&mut w, kind, n0, n1);
    let sa = sock_create(&mut w, ea, eb).unwrap();
    let sb = sock_create(&mut w, eb, ea).unwrap();
    for (i, size) in [1u64, 100, 4_000, 30_000, 150_000].into_iter().enumerate() {
        let data: Vec<u8> = (0..size)
            .map(|j| pattern_byte(i as u64 * 1_000_003 + j))
            .collect();
        fill_user(&mut w, &ba, &data);
        let r = sock_recv(&mut w, sb, bb.memref(size));
        sock_send(&mut w, sa, ba.memref(size));
        let got = sock_wait(&mut w, sb, r);
        assert_eq!(got, size, "{kind:?}: op completed fully at {size}");
        assert_eq!(
            read_user(&w, &bb, size as usize),
            data,
            "{kind:?}: byte-exact stream at {size}"
        );
        // And a small reverse echo, so both directions recover.
        let r2 = sock_recv(&mut w, sa, ba.memref(64));
        sock_send(&mut w, sb, bb.memref(64));
        assert_eq!(sock_wait(&mut w, sa, r2), 64, "{kind:?}: reverse leg");
    }
    run_to_quiescence(&mut w);
    assert_eq!(w.zsock.sock(sa).error(), None, "{kind:?}: never poisoned");
    assert_eq!(w.zsock.sock(sb).error(), None);
    // Context-pool slots stay bounded (released on completion — no leak)
    // while recycling keeps happening.
    let st = w.registry.stats;
    assert!(
        st.ctx_pool_slots <= 192,
        "{kind:?}: ctx slots leaked: {}",
        st.ctx_pool_slots
    );
    assert!(st.ctx_pool_reuses > 0, "{kind:?}: pool recycles");
    assert_no_engine_errors(&w);
    w.sched.executed()
}

/// The ORFS end-to-end flows (direct + buffered reads, buffered write +
/// fsync, direct write) under faults: same bytes as a perfect fabric.
fn orfs_scenario(kind: TransportKind, fault: FaultPlan) {
    let mut fx = fs_fixture_faulty(
        FsOpts {
            kind,
            file_len: 256 * 1024,
            ..FsOpts::default()
        },
        fault,
    );
    // Direct (O_DIRECT) reads, several shapes.
    let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
    for (off, len) in [(0u64, 500usize), (4096, 4096), (100_000, 120_000)] {
        let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(len as u64), off).unwrap();
        assert_eq!(n, len as u64, "{kind:?} direct read at {off}");
        let got = read_user(&fx.w, &fx.user, len);
        for (i, &b) in got.iter().enumerate() {
            assert_eq!(
                b,
                pattern_byte(off + i as u64),
                "{kind:?} byte {i} at {off}"
            );
        }
    }
    // Direct write (announced, payload rides separately), then read back.
    let msg: Vec<u8> = (0..60_000u64).map(|i| (i % 249) as u8).collect();
    fill_user(&mut fx.w, &fx.user, &msg);
    let n = fsops::write(&mut fx.w, fx.cid, fd, fx.user.memref(60_000), 8_192).unwrap();
    assert_eq!(n, 60_000, "{kind:?} direct write");
    fsops::close(&mut fx.w, fx.cid, fd).unwrap();
    // Buffered read + write through the page-cache, flushed by fsync.
    let fd = fsops::open(&mut fx.w, fx.cid, "/data", false).unwrap();
    let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(10_000), 8_192).unwrap();
    assert_eq!(n, 10_000);
    assert_eq!(read_user(&fx.w, &fx.user, 10_000), msg[..10_000]);
    fill_user(&mut fx.w, &fx.user, b"chaos-proof");
    fsops::write(&mut fx.w, fx.cid, fd, fx.user.memref(11), 70_000).unwrap();
    fsops::fsync(&mut fx.w, fx.cid, fd).unwrap();
    fsops::close(&mut fx.w, fx.cid, fd).unwrap();
    let server = &mut fx.w.orfs.servers[0];
    let ino = server.fs.lookup_path("/data").unwrap();
    let mut back = vec![0u8; 11];
    server
        .fs
        .read(ino, 70_000, &mut back, SimTime::ZERO)
        .unwrap();
    assert_eq!(
        &back, b"chaos-proof",
        "{kind:?} write-back reached the server"
    );
    run_to_quiescence(&mut fx.w);
    assert_no_engine_errors(&fx.w);
}

fn nbd_wait(w: &mut ClusterWorld, cid: knet_nbd::NbdClientId, op: NbdOp) -> knet_nbd::NbdResult {
    let outcome = run_until(w, |w| {
        w.nbd.clients[cid.0 as usize]
            .completed
            .iter()
            .any(|(o, _)| *o == op)
    });
    assert_eq!(
        outcome,
        RunOutcome::Satisfied,
        "nbd op {op} never completed"
    );
    let c = &mut w.nbd.clients[cid.0 as usize];
    let pos = c.completed.iter().position(|(o, _)| *o == op).unwrap();
    c.completed.remove(pos).unwrap().1
}

/// NBD block traffic (windowed chunked writes, buffered + raw reads) under
/// faults.
fn nbd_scenario(fault: FaultPlan) {
    let mut w = ClusterBuilder::new().fault_plan(fault).build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let (ce, se) = (
        w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
        w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
    );
    nbd_server_create(&mut w, se, 4096).unwrap();
    let cid = nbd_client_create(&mut w, ce, se, 7).unwrap();
    let ub = ubuf(&mut w, n0, 1 << 20);
    let data: Vec<u8> = (0..64 * 1024u64).map(|i| pattern_byte(i * 3)).collect();
    fill_user(&mut w, &ub, &data);
    let op = nbd_write(&mut w, cid, ub.memref(64 * 1024), 0);
    assert_eq!(nbd_wait(&mut w, cid, op), Ok(64 * 1024));
    // Buffered read through the page-cache (fetches from the server).
    let op = nbd_read(&mut w, cid, ub.memref_at(512 * 1024, 40_000), 1_000);
    assert_eq!(nbd_wait(&mut w, cid, op), Ok(40_000));
    let mut got = vec![0u8; 40_000];
    w.os.node(n0)
        .read_virt(ub.asid, ub.addr.add(512 * 1024), &mut got)
        .unwrap();
    assert_eq!(got, data[1_000..41_000], "buffered read bytes");
    // Raw (zero-copy) read of a sector range (sectors are 4 kB).
    use knet_nbd::SECTOR_SIZE;
    let raw_len = 2 * SECTOR_SIZE;
    let op = nbd_read_raw(&mut w, cid, ub.memref_at(512 * 1024, raw_len), 8);
    assert_eq!(nbd_wait(&mut w, cid, op), Ok(raw_len));
    let mut got = vec![0u8; raw_len as usize];
    w.os.node(n0)
        .read_virt(ub.asid, ub.addr.add(512 * 1024), &mut got)
        .unwrap();
    assert_eq!(
        got,
        data[(8 * SECTOR_SIZE) as usize..(10 * SECTOR_SIZE) as usize],
        "raw read bytes"
    );
    run_to_quiescence(&mut w);
    assert_no_engine_errors(&w);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline chaos property: 1–10 % loss, optional duplication and
    /// reorder — every end-to-end flow on every transport stays byte-exact
    /// with nothing stalled.
    #[test]
    fn full_stack_survives_lossy_links(
        seed in any::<u64>(),
        loss in 1u64..11,
        dup in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        for kind in [TransportKind::Mx, TransportKind::Gm] {
            zsock_scenario(kind, plan(seed, loss, dup, reorder));
            orfs_scenario(kind, plan(seed.wrapping_add(1), loss, dup, reorder));
        }
        nbd_scenario(plan(seed.wrapping_add(2), loss, dup, reorder));
    }
}

/// Fixed-seed smoke entry for CI: loss rate from `CHAOS_LOSS_PCT` (default
/// 5), everything else fixed — one deterministic pass over all scenarios.
#[test]
fn chaos_smoke_fixed_seed() {
    let loss: u64 = std::env::var("CHAOS_LOSS_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        zsock_scenario(kind, plan(0xC0FFEE, loss, true, true));
        orfs_scenario(kind, plan(0xC0FFEE ^ 1, loss, true, true));
    }
    nbd_scenario(plan(0xC0FFEE ^ 2, loss, true, true));
}

/// Same seed ⇒ same simulation, event for event.
#[test]
fn chaos_is_deterministic_per_seed() {
    let a = zsock_scenario(TransportKind::Mx, plan(42, 7, true, true));
    let b = zsock_scenario(TransportKind::Mx, plan(42, 7, true, true));
    assert_eq!(a, b, "executed-event fingerprints match across runs");
}

/// An asymmetric per-link plan keyed to one node pair must not consume
/// fault dice for any other link: with a zero base plan, a run whose plan
/// carries a (heavily lossy) override for an *uninvolved* pair is
/// event-for-event identical to a run with no dice at all — the
/// "no plan = zero randomness, bit-identical fabric" contract, extended
/// link by link.
#[test]
fn asymmetric_plans_leave_planless_links_bit_identical() {
    let clean = zsock_scenario(TransportKind::Mx, FaultPlan::new(42));
    let with_unrelated_link = zsock_scenario(
        TransportKind::Mx,
        FaultPlan::new(42).for_link(
            NodeId(6),
            NodeId(7),
            FaultPlan::new(99).with_drop(0.5).with_dup(0.3).with_delay(
                0.4,
                SimTime::from_micros(1),
                SimTime::from_micros(90),
            ),
        ),
    );
    assert_eq!(
        clean, with_unrelated_link,
        "a per-link plan on an uninvolved pair must not perturb the fabric"
    );
}

/// Fixed-seed asymmetric smoke entry for CI: one direction of the fabric
/// is lossy (drop + dup + delay-reorder), the reverse direction is clean —
/// the shape where go-back-N and selective repeat differ most (data loss
/// with a lossless ack path). Every scenario must stay byte-exact.
#[test]
fn chaos_smoke_asymmetric() {
    let loss: u64 = std::env::var("CHAOS_LOSS_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let asym = |seed: u64| {
        FaultPlan::new(seed).for_link(NodeId(0), NodeId(1), plan(seed ^ 0xA5, loss, true, true))
    };
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        zsock_scenario(kind, asym(0xA11C));
        orfs_scenario(kind, asym(0xA11D));
    }
    nbd_scenario(asym(0xA11E));
    // And the reverse asymmetry (lossy replies, clean requests).
    let asym_rev = |seed: u64| {
        FaultPlan::new(seed).for_link(NodeId(1), NodeId(0), plan(seed ^ 0x5A, loss, true, true))
    };
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        zsock_scenario(kind, asym_rev(0xB22C));
        orfs_scenario(kind, asym_rev(0xB22D));
    }
    nbd_scenario(asym_rev(0xB22E));
}

/// Killing the server node mid-workload: every in-flight and subsequent
/// operation completes with a typed error; nothing stalls forever.
#[test]
fn killing_the_server_fails_all_ops_typed() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let mut fx = knet::figures::fs_fixture(FsOpts {
            kind,
            file_len: 128 * 1024,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        // A healthy op first.
        let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(4096), 0).unwrap();
        assert_eq!(n, 4096);
        // The server drops off the fabric *now*.
        fx.w.set_fault_plan(FaultPlan::new(1).with_kill(NodeId(1), SimTime::ZERO));
        // In-flight ops fail with a typed error once the retry budget
        // exhausts — they must not hang.
        // (Both ops must reach the wire: O_DIRECT reads always do; a stat
        // would be served from the client's attribute cache.)
        let sid1 = knet_orfs::op_read(&mut fx.w, fx.cid, fd, fx.user.memref(8192), 0);
        let sid2 = knet_orfs::op_read(&mut fx.w, fx.cid, fd, fx.user.memref(4096), 65_536);
        let outcome = run_until(&mut fx.w, |w| {
            let c = w.orfs.client(fx.cid);
            [sid1, sid2]
                .iter()
                .all(|s| c.completed.iter().any(|(o, _)| o == s))
        });
        assert_eq!(
            outcome,
            RunOutcome::Satisfied,
            "{kind:?}: ops must not stall"
        );
        for sid in [sid1, sid2] {
            let r = knet::harness::orfs_wait(&mut fx.w, fx.cid, sid);
            assert_eq!(r, Err(knet_orfs::OrfsError::Net), "{kind:?}: typed failure");
        }
        // Later ops fail fast too (the link is dead).
        let sid3 = knet_orfs::op_read(&mut fx.w, fx.cid, fd, fx.user.memref(4096), 0);
        let r = knet::harness::orfs_wait(&mut fx.w, fx.cid, sid3);
        assert_eq!(
            r,
            Err(knet_orfs::OrfsError::Net),
            "{kind:?}: fail-fast after death"
        );
        run_to_quiescence(&mut fx.w);
        assert_no_engine_errors(&fx.w);
    }
}

/// Killing the peer of a socket pair poisons the socket with
/// `PeerUnreachable`: parked readers fail, later ops fail fast.
#[test]
fn killing_the_peer_poisons_sockets() {
    let mut w = ClusterBuilder::new().build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let ba = ubuf(&mut w, n0, 1 << 20);
    let bb = ubuf(&mut w, n1, 1 << 20);
    let (ea, eb) = endpoints(&mut w, TransportKind::Mx, n0, n1);
    let sa = sock_create(&mut w, ea, eb).unwrap();
    let sb = sock_create(&mut w, eb, ea).unwrap();
    // Healthy echo first.
    let r = sock_recv(&mut w, sb, bb.memref(64));
    sock_send(&mut w, sa, ba.memref(64));
    assert_eq!(sock_wait(&mut w, sb, r), 64);
    // Node 1 dies; a parked reader and an in-flight send must both fail.
    w.set_fault_plan(FaultPlan::new(9).with_kill(NodeId(1), SimTime::ZERO));
    let r = sock_recv(&mut w, sa, ba.memref(64)); // parked reader
    sock_send(&mut w, sa, ba.memref(100_000)); // its bytes can never be acked... but completes locally
    let outcome = run_until(&mut w, |w| {
        w.zsock.sock(sa).completed.iter().any(|(o, _)| *o == r)
    });
    assert_eq!(
        outcome,
        RunOutcome::Satisfied,
        "parked reader must not stall"
    );
    let (_, res) = {
        let s = w.zsock.sock_mut(sa);
        let pos = s.completed.iter().position(|(o, _)| *o == r).unwrap();
        s.completed.remove(pos).unwrap()
    };
    assert_eq!(res, Err(NetError::PeerUnreachable), "typed reader failure");
    assert_eq!(w.zsock.sock(sa).error(), Some(NetError::PeerUnreachable));
    // Subsequent ops fail fast.
    let op = sock_recv(&mut w, sa, ba.memref(16));
    let s = w.zsock.sock_mut(sa);
    let pos = s.completed.iter().position(|(o, _)| *o == op).unwrap();
    assert_eq!(
        s.completed.remove(pos).unwrap().1,
        Err(NetError::PeerUnreachable)
    );
    run_to_quiescence(&mut w);
    assert_no_engine_errors(&w);
    let _ = sb;
}

// ------------------------------------------------------- surviving-node failover

/// ORFS failover: two servers on different nodes, one dies mid-workload.
/// Every in-flight op toward the dead server fails typed, the surviving
/// client's traffic to the other node completes byte-exact with no stall,
/// and the dead peer's state is fully reclaimed — context pools bounded,
/// server staging empty, reliability window rings drained.
#[test]
fn orfs_server_kill_spares_surviving_traffic() {
    let mut w = ClusterBuilder::new()
        .nodes(3, CpuModel::xeon_2600())
        .mem_frames(131_072)
        .build();
    let (n0, n1, n2) = (NodeId(0), NodeId(1), NodeId(2));
    let user = ubuf(&mut w, n0, 4 << 20);
    let vfs = VfsConfig {
        combine_pages: false,
        max_combine: 16,
    };
    let deploy = |w: &mut ClusterWorld, server_node: NodeId, path: &str| {
        let c = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
        let s = w.open_mx(server_node, MxEndpointConfig::kernel()).unwrap();
        let sid = knet_orfs::server_create(w, s, knet_simfs::SimFs::with_defaults()).unwrap();
        let cid = knet_orfs::client_create(w, c, s, ClientKind::KernelVfs, user.asid, vfs).unwrap();
        knet::harness::make_server_file(w, sid, path, 128 * 1024);
        (sid, cid)
    };
    let (_sid_a, cid_a) = deploy(&mut w, n1, "/a");
    let (sid_b, cid_b) = deploy(&mut w, n2, "/b");

    // Healthy ops on both deployments first.
    let fd_a = fsops::open(&mut w, cid_a, "/a", true).unwrap();
    let fd_b = fsops::open(&mut w, cid_b, "/b", true).unwrap();
    assert_eq!(
        fsops::read(&mut w, cid_a, fd_a, user.memref(4096), 0).unwrap(),
        4096
    );
    assert_eq!(
        fsops::read(&mut w, cid_b, fd_b, user.memref(4096), 0).unwrap(),
        4096
    );

    // Mid-workload: reads in flight toward both servers when node 1 dies.
    let dead1 = knet_orfs::op_read(&mut w, cid_a, fd_a, user.memref(8192), 0);
    let dead2 = knet_orfs::op_read(&mut w, cid_a, fd_a, user.memref(4096), 65_536);
    let live1 = knet_orfs::op_read(&mut w, cid_b, fd_b, user.memref_at(64 * 1024, 8192), 0);
    let live2 = knet_orfs::op_read(
        &mut w,
        cid_b,
        fd_b,
        user.memref_at(128 * 1024, 4096),
        65_536,
    );
    w.set_fault_plan(FaultPlan::new(3).with_kill(n1, SimTime::ZERO));

    let outcome = run_until(&mut w, |w| {
        let done = |cid: knet_orfs::OrfsClientId, sid| {
            w.orfs.client(cid).completed.iter().any(|(o, _)| *o == sid)
        };
        done(cid_a, dead1) && done(cid_a, dead2) && done(cid_b, live1) && done(cid_b, live2)
    });
    assert_eq!(outcome, RunOutcome::Satisfied, "nothing may stall");
    for sid in [dead1, dead2] {
        assert_eq!(
            knet::harness::orfs_wait(&mut w, cid_a, sid),
            Err(knet_orfs::OrfsError::Net),
            "in-flight ops toward the dead server fail typed"
        );
    }
    for (sid, off) in [(live1, 0u64), (live2, 65_536)] {
        assert!(matches!(
            knet::harness::orfs_wait(&mut w, cid_b, sid),
            Ok(knet_orfs::SysRet::Bytes(_))
        ));
        let _ = (sid, off);
    }
    // Surviving deployment keeps full service: byte-exact reads and a
    // write + readback round-trip, at full size.
    for (off, len) in [(0u64, 500usize), (4096, 4096), (60_000, 50_000)] {
        let n = fsops::read(&mut w, cid_b, fd_b, user.memref(len as u64), off).unwrap();
        assert_eq!(n, len as u64);
        let got = read_user(&w, &user, len);
        for (i, &b) in got.iter().enumerate() {
            assert_eq!(b, pattern_byte(off + i as u64), "byte {i} at {off}");
        }
    }
    let msg: Vec<u8> = (0..40_000u64).map(|i| (i % 241) as u8).collect();
    fill_user(&mut w, &user, &msg);
    assert_eq!(
        fsops::write(&mut w, cid_b, fd_b, user.memref(40_000), 4096).unwrap(),
        40_000
    );
    fsops::close(&mut w, cid_b, fd_b).unwrap();
    run_to_quiescence(&mut w);

    // Dead-peer state fully reclaimed.
    assert_eq!(
        w.nics.rel.buffered_total(),
        0,
        "window rings drained everywhere (dead link torn down)"
    );
    assert_eq!(
        w.orfs.servers[sid_b.0 as usize].staging_len(),
        0,
        "surviving server holds no stale staging"
    );
    let st = w.stats_snapshot();
    assert!(
        st.ctx_pool_slots <= 256,
        "ctx slots bounded after failover: {}",
        st.ctx_pool_slots
    );
    assert!(st.rel_rtt_samples > 0, "surviving links kept sampling RTT");
    assert_no_engine_errors(&w);
}

/// NBD failover: the same shape over the block layer — kill one of two
/// block servers mid-workload; the surviving client's traffic stays
/// byte-exact, the dead client ops fail typed, nothing leaks.
#[test]
fn nbd_server_kill_spares_surviving_traffic() {
    let mut w = ClusterBuilder::new()
        .nodes(3, CpuModel::xeon_2600())
        .mem_frames(131_072)
        .build();
    let (n0, n1, n2) = (NodeId(0), NodeId(1), NodeId(2));
    let deploy = |w: &mut ClusterWorld, server_node: NodeId, disk_id: u32| {
        let c = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
        let s = w.open_mx(server_node, MxEndpointConfig::kernel()).unwrap();
        nbd_server_create(w, s, 4096).unwrap();
        nbd_client_create(w, c, s, disk_id).unwrap()
    };
    let cid_a = deploy(&mut w, n1, 7);
    let cid_b = deploy(&mut w, n2, 8);
    let ub = ubuf(&mut w, n0, 1 << 20);
    let data: Vec<u8> = (0..64 * 1024u64).map(|i| pattern_byte(i * 5)).collect();
    fill_user(&mut w, &ub, &data);

    // Healthy writes land on both disks.
    let op = nbd_write(&mut w, cid_a, ub.memref(64 * 1024), 0);
    assert_eq!(nbd_wait(&mut w, cid_a, op), Ok(64 * 1024));
    let op = nbd_write(&mut w, cid_b, ub.memref(64 * 1024), 0);
    assert_eq!(nbd_wait(&mut w, cid_b, op), Ok(64 * 1024));

    // Reads in flight toward both servers when node 1 dies. The dead
    // server's read targets sectors beyond the written (client-cached)
    // range, so it must fetch over the wire.
    let dead_op = nbd_read(&mut w, cid_a, ub.memref_at(512 * 1024, 20_000), 1_000_000);
    let live_op = nbd_read(&mut w, cid_b, ub.memref_at(640 * 1024, 20_000), 100);
    w.set_fault_plan(FaultPlan::new(5).with_kill(n1, SimTime::ZERO));

    assert_eq!(
        nbd_wait(&mut w, cid_a, dead_op),
        Err(NetError::PeerUnreachable),
        "in-flight op toward the dead server fails typed"
    );
    assert_eq!(nbd_wait(&mut w, cid_b, live_op), Ok(20_000));
    let mut got = vec![0u8; 20_000];
    w.os.node(n0)
        .read_virt(ub.asid, ub.addr.add(640 * 1024), &mut got)
        .unwrap();
    assert_eq!(got, data[100..20_100], "surviving read byte-exact");

    // Later ops toward the dead server fail fast; the survivor keeps
    // serving raw zero-copy reads.
    let op = nbd_read(&mut w, cid_a, ub.memref_at(512 * 1024, 4096), 2_000_000);
    assert_eq!(nbd_wait(&mut w, cid_a, op), Err(NetError::PeerUnreachable));
    use knet_nbd::SECTOR_SIZE;
    let raw_len = 2 * SECTOR_SIZE;
    let op = nbd_read_raw(&mut w, cid_b, ub.memref_at(512 * 1024, raw_len), 4);
    assert_eq!(nbd_wait(&mut w, cid_b, op), Ok(raw_len));
    run_to_quiescence(&mut w);

    assert_eq!(w.nics.rel.buffered_total(), 0, "window rings drained");
    let st = w.stats_snapshot();
    assert!(
        st.ctx_pool_slots <= 256,
        "ctx slots bounded after failover: {}",
        st.ctx_pool_slots
    );
    assert_no_engine_errors(&w);
}

// ------------------------------------------------------------- collectives

use knet::figures::{coll_fixture, CollFixture};
use knet_simnic::Proto;

/// Several mixed rounds (broadcast + barrier + sum-reduce) over an n-node
/// group on a faulty fabric. Every byte must arrive exactly, every member
/// must complete every round, and the world must go quiescent with no
/// stranded host contexts or NIC tree slots. Returns the determinism
/// fingerprint: (executed events, tree-topology hash).
fn coll_scenario(kind: TransportKind, fault: FaultPlan, n: usize, fanout: usize) -> (u64, u64) {
    let CollFixture {
        mut w,
        group,
        eps,
        bufs,
    } = coll_fixture(kind, n, fanout);
    w.set_fault_plan(fault);
    for round in 0..3u64 {
        // Broadcast a round-salted multi-chunk payload.
        let len = 6_000 + 512 * round;
        let payload: Vec<u8> = (0..len)
            .map(|i| pattern_byte(round * 7_777_777 + i))
            .collect();
        w.os.node_mut(NodeId(0))
            .write_virt(Asid::KERNEL, bufs[0].addr, &payload)
            .unwrap();
        let bctx = channel_bcast(&mut w, group, round, &bufs[0].iov(len)).unwrap();
        run_to_quiescence(&mut w);
        let mut root_done = false;
        while let Some(ev) = w.take_event(eps[0]) {
            match ev {
                TransportEvent::CollectiveDone { ctx, .. } if ctx == bctx => root_done = true,
                other => panic!("{kind:?} round {round}: root saw {other:?}"),
            }
        }
        assert!(root_done, "{kind:?} round {round}: bcast completed");
        for (m, &ep) in eps.iter().enumerate().skip(1) {
            let mut got = None;
            while let Some(ev) = w.take_event(ep) {
                match ev {
                    TransportEvent::CollectiveRecv { tag, data, .. } if tag == round => {
                        got = Some(data.to_vec())
                    }
                    other => panic!("{kind:?} round {round}: member {m} saw {other:?}"),
                }
            }
            assert_eq!(
                got.as_deref(),
                Some(&payload[..]),
                "{kind:?} round {round}: byte-exact at member {m}"
            );
        }

        // Barrier: everyone enters, everyone releases.
        for &ep in &eps {
            channel_barrier(&mut w, group, ep).unwrap();
        }
        run_to_quiescence(&mut w);
        for (m, &ep) in eps.iter().enumerate() {
            let ev = w.take_event(ep);
            assert!(
                matches!(ev, Some(TransportEvent::CollectiveDone { .. })),
                "{kind:?} round {round}: member {m} released, saw {ev:?}"
            );
            assert!(w.take_event(ep).is_none());
        }

        // Sum-reduce: the root's lanes must equal the host-side sums.
        for (m, &ep) in eps.iter().enumerate() {
            let v = (m as u64 + 1) * (round + 1);
            channel_reduce(&mut w, group, ep, ReduceOp::Sum, &[v, v * 3]).unwrap();
        }
        run_to_quiescence(&mut w);
        let expect: u64 = (1..=n as u64).map(|v| v * (round + 1)).sum();
        let mut combined = None;
        while let Some(ev) = w.take_event(eps[0]) {
            match ev {
                TransportEvent::CollectiveDone { data, .. } => combined = Some(data.to_vec()),
                other => panic!("{kind:?} round {round}: reduce root saw {other:?}"),
            }
        }
        let lanes: Vec<u64> = combined
            .expect("root reduce completion")
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(
            lanes,
            vec![expect, expect * 3],
            "{kind:?} round {round}: in-NIC combination matches host arithmetic"
        );
        for &ep in &eps[1..] {
            assert!(matches!(
                w.take_event(ep),
                Some(TransportEvent::CollectiveDone { .. })
            ));
        }
    }
    // Stall-free teardown: nothing pending at either layer.
    assert_eq!(w.coll.pending_count(), 0, "{kind:?}: host contexts drained");
    assert_eq!(
        w.nics.coll.pending_count(),
        0,
        "{kind:?}: NIC slots drained"
    );
    let proto = match kind {
        TransportKind::Gm => Proto::Gm,
        TransportKind::Mx => Proto::Mx,
    };
    assert_no_engine_errors(&w);
    (
        w.sched.executed(),
        w.nics.coll.tree_fingerprint(proto, group.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Collectives under 1–10 % loss with optional duplication and
    /// reorder: the NIC trees ride the same per-link selective-repeat
    /// windows as point-to-point traffic, so every fan-out/fan-in frame
    /// recovers and the rounds above stay byte-exact and stall-free.
    #[test]
    fn collectives_survive_lossy_links(
        seed in any::<u64>(),
        loss in 1u64..11,
        dup in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        coll_scenario(TransportKind::Gm, plan(seed, loss, dup, reorder), 8, 2);
        coll_scenario(TransportKind::Mx, plan(seed.wrapping_add(3), loss, dup, reorder), 9, 3);
    }
}

/// Fixed-seed CI entry: same env knob as the point-to-point smoke.
#[test]
fn chaos_smoke_collectives() {
    let loss: u64 = std::env::var("CHAOS_LOSS_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    coll_scenario(
        TransportKind::Gm,
        plan(0xC0FFEE ^ 3, loss, true, true),
        8,
        2,
    );
    coll_scenario(
        TransportKind::Mx,
        plan(0xC0FFEE ^ 4, loss, true, true),
        9,
        3,
    );
}

/// Same seed ⇒ same collective simulation, event for event — including
/// the installed tree topology.
#[test]
fn collective_chaos_is_deterministic_per_seed() {
    let a = coll_scenario(TransportKind::Mx, plan(77, 6, true, true), 9, 3);
    let b = coll_scenario(TransportKind::Mx, plan(77, 6, true, true), 9, 3);
    assert_eq!(a, b, "fingerprints (events, tree hash) match across runs");
    assert_ne!(a.1, 0, "tree fingerprint actually folded topology");
}

//! Chaos: the full zsock + ORFS + NBD stacks under a seeded faulty fabric.
//!
//! A `FaultPlan` makes the wire drop, duplicate and delay-reorder packets;
//! the driver-level reliability windows (`knet_simnic::rel`) must absorb
//! every injected fault so the layers above see exactly the contract they
//! see on a perfect fabric: byte-exact streams, no stalled readers, no
//! leaked context-pool slots. Separately, an *unsurvivable* fault (the peer
//! node killed) must fail every in-flight operation with a typed error —
//! nothing may stall forever.
//!
//! Everything is seeded and deterministic: a failing case reproduces
//! exactly from its printed inputs.

use knet::figures::{fs_fixture_faulty, FsOpts};
use knet::harness::{fsops, pattern_byte, sock_wait};
use knet::prelude::*;
use knet_nbd::{nbd_client_create, nbd_read, nbd_read_raw, nbd_server_create, nbd_write, NbdOp};
use knet_simnic::FaultPlan;
use knet_zsock::{sock_create, sock_recv, sock_send};
use proptest::prelude::*;

/// A lossy-link plan: `loss_pct`% drop, optional duplication and
/// delay-reordering, all drawn from `seed`.
fn plan(seed: u64, loss_pct: u64, dup: bool, reorder: bool) -> FaultPlan {
    let mut p = FaultPlan::new(seed).with_drop(loss_pct as f64 / 100.0);
    if dup {
        p = p.with_dup(0.04);
    }
    if reorder {
        // Delays stay below the reliability rto so recovery, not spurious
        // go-back-N, is what reorders exercise.
        p = p.with_delay(0.08, SimTime::from_micros(2), SimTime::from_micros(80));
    }
    p
}

fn endpoints(
    w: &mut ClusterWorld,
    kind: TransportKind,
    n0: NodeId,
    n1: NodeId,
) -> (Endpoint, Endpoint) {
    match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096);
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    }
}

fn fill_user(w: &mut ClusterWorld, buf: &UBuf, data: &[u8]) {
    w.os.node_mut(buf.node)
        .write_virt(buf.asid, buf.addr, data)
        .unwrap();
}

fn read_user(w: &ClusterWorld, buf: &UBuf, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    w.os.node(buf.node)
        .read_virt(buf.asid, buf.addr, &mut out)
        .unwrap();
    out
}

/// Socket pair moving a mixed-size stream; every byte must arrive intact
/// and in order, every op must complete.
fn zsock_scenario(kind: TransportKind, fault: FaultPlan) -> u64 {
    let mut w = ClusterBuilder::new()
        .nic(NicModel::pci_xe())
        .fault_plan(fault)
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let ba = ubuf(&mut w, n0, 1 << 20);
    let bb = ubuf(&mut w, n1, 1 << 20);
    let (ea, eb) = endpoints(&mut w, kind, n0, n1);
    let sa = sock_create(&mut w, ea, eb).unwrap();
    let sb = sock_create(&mut w, eb, ea).unwrap();
    for (i, size) in [1u64, 100, 4_000, 30_000, 150_000].into_iter().enumerate() {
        let data: Vec<u8> = (0..size)
            .map(|j| pattern_byte(i as u64 * 1_000_003 + j))
            .collect();
        fill_user(&mut w, &ba, &data);
        let r = sock_recv(&mut w, sb, bb.memref(size));
        sock_send(&mut w, sa, ba.memref(size));
        let got = sock_wait(&mut w, sb, r);
        assert_eq!(got, size, "{kind:?}: op completed fully at {size}");
        assert_eq!(
            read_user(&w, &bb, size as usize),
            data,
            "{kind:?}: byte-exact stream at {size}"
        );
        // And a small reverse echo, so both directions recover.
        let r2 = sock_recv(&mut w, sa, ba.memref(64));
        sock_send(&mut w, sb, bb.memref(64));
        assert_eq!(sock_wait(&mut w, sa, r2), 64, "{kind:?}: reverse leg");
    }
    run_to_quiescence(&mut w);
    assert_eq!(w.zsock.sock(sa).error(), None, "{kind:?}: never poisoned");
    assert_eq!(w.zsock.sock(sb).error(), None);
    // Context-pool slots stay bounded (released on completion — no leak)
    // while recycling keeps happening.
    let st = w.registry.stats;
    assert!(
        st.ctx_pool_slots <= 192,
        "{kind:?}: ctx slots leaked: {}",
        st.ctx_pool_slots
    );
    assert!(st.ctx_pool_reuses > 0, "{kind:?}: pool recycles");
    w.sched.executed()
}

/// The ORFS end-to-end flows (direct + buffered reads, buffered write +
/// fsync, direct write) under faults: same bytes as a perfect fabric.
fn orfs_scenario(kind: TransportKind, fault: FaultPlan) {
    let mut fx = fs_fixture_faulty(
        FsOpts {
            kind,
            file_len: 256 * 1024,
            ..FsOpts::default()
        },
        fault,
    );
    // Direct (O_DIRECT) reads, several shapes.
    let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
    for (off, len) in [(0u64, 500usize), (4096, 4096), (100_000, 120_000)] {
        let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(len as u64), off).unwrap();
        assert_eq!(n, len as u64, "{kind:?} direct read at {off}");
        let got = read_user(&fx.w, &fx.user, len);
        for (i, &b) in got.iter().enumerate() {
            assert_eq!(
                b,
                pattern_byte(off + i as u64),
                "{kind:?} byte {i} at {off}"
            );
        }
    }
    // Direct write (announced, payload rides separately), then read back.
    let msg: Vec<u8> = (0..60_000u64).map(|i| (i % 249) as u8).collect();
    fill_user(&mut fx.w, &fx.user, &msg);
    let n = fsops::write(&mut fx.w, fx.cid, fd, fx.user.memref(60_000), 8_192).unwrap();
    assert_eq!(n, 60_000, "{kind:?} direct write");
    fsops::close(&mut fx.w, fx.cid, fd).unwrap();
    // Buffered read + write through the page-cache, flushed by fsync.
    let fd = fsops::open(&mut fx.w, fx.cid, "/data", false).unwrap();
    let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(10_000), 8_192).unwrap();
    assert_eq!(n, 10_000);
    assert_eq!(read_user(&fx.w, &fx.user, 10_000), msg[..10_000]);
    fill_user(&mut fx.w, &fx.user, b"chaos-proof");
    fsops::write(&mut fx.w, fx.cid, fd, fx.user.memref(11), 70_000).unwrap();
    fsops::fsync(&mut fx.w, fx.cid, fd).unwrap();
    fsops::close(&mut fx.w, fx.cid, fd).unwrap();
    let server = &mut fx.w.orfs.servers[0];
    let ino = server.fs.lookup_path("/data").unwrap();
    let mut back = vec![0u8; 11];
    server
        .fs
        .read(ino, 70_000, &mut back, SimTime::ZERO)
        .unwrap();
    assert_eq!(
        &back, b"chaos-proof",
        "{kind:?} write-back reached the server"
    );
    run_to_quiescence(&mut fx.w);
}

fn nbd_wait(w: &mut ClusterWorld, cid: knet_nbd::NbdClientId, op: NbdOp) -> knet_nbd::NbdResult {
    let outcome = run_until(w, |w| {
        w.nbd.clients[cid.0 as usize]
            .completed
            .iter()
            .any(|(o, _)| *o == op)
    });
    assert_eq!(
        outcome,
        RunOutcome::Satisfied,
        "nbd op {op} never completed"
    );
    let c = &mut w.nbd.clients[cid.0 as usize];
    let pos = c.completed.iter().position(|(o, _)| *o == op).unwrap();
    c.completed.remove(pos).unwrap().1
}

/// NBD block traffic (windowed chunked writes, buffered + raw reads) under
/// faults.
fn nbd_scenario(fault: FaultPlan) {
    let mut w = ClusterBuilder::new().fault_plan(fault).build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let (ce, se) = (
        w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
        w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
    );
    nbd_server_create(&mut w, se, 4096).unwrap();
    let cid = nbd_client_create(&mut w, ce, se, 7).unwrap();
    let ub = ubuf(&mut w, n0, 1 << 20);
    let data: Vec<u8> = (0..64 * 1024u64).map(|i| pattern_byte(i * 3)).collect();
    fill_user(&mut w, &ub, &data);
    let op = nbd_write(&mut w, cid, ub.memref(64 * 1024), 0);
    assert_eq!(nbd_wait(&mut w, cid, op), Ok(64 * 1024));
    // Buffered read through the page-cache (fetches from the server).
    let op = nbd_read(&mut w, cid, ub.memref_at(512 * 1024, 40_000), 1_000);
    assert_eq!(nbd_wait(&mut w, cid, op), Ok(40_000));
    let mut got = vec![0u8; 40_000];
    w.os.node(n0)
        .read_virt(ub.asid, ub.addr.add(512 * 1024), &mut got)
        .unwrap();
    assert_eq!(got, data[1_000..41_000], "buffered read bytes");
    // Raw (zero-copy) read of a sector range (sectors are 4 kB).
    use knet_nbd::SECTOR_SIZE;
    let raw_len = 2 * SECTOR_SIZE;
    let op = nbd_read_raw(&mut w, cid, ub.memref_at(512 * 1024, raw_len), 8);
    assert_eq!(nbd_wait(&mut w, cid, op), Ok(raw_len));
    let mut got = vec![0u8; raw_len as usize];
    w.os.node(n0)
        .read_virt(ub.asid, ub.addr.add(512 * 1024), &mut got)
        .unwrap();
    assert_eq!(
        got,
        data[(8 * SECTOR_SIZE) as usize..(10 * SECTOR_SIZE) as usize],
        "raw read bytes"
    );
    run_to_quiescence(&mut w);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline chaos property: 1–10 % loss, optional duplication and
    /// reorder — every end-to-end flow on every transport stays byte-exact
    /// with nothing stalled.
    #[test]
    fn full_stack_survives_lossy_links(
        seed in any::<u64>(),
        loss in 1u64..11,
        dup in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        for kind in [TransportKind::Mx, TransportKind::Gm] {
            zsock_scenario(kind, plan(seed, loss, dup, reorder));
            orfs_scenario(kind, plan(seed.wrapping_add(1), loss, dup, reorder));
        }
        nbd_scenario(plan(seed.wrapping_add(2), loss, dup, reorder));
    }
}

/// Fixed-seed smoke entry for CI: loss rate from `CHAOS_LOSS_PCT` (default
/// 5), everything else fixed — one deterministic pass over all scenarios.
#[test]
fn chaos_smoke_fixed_seed() {
    let loss: u64 = std::env::var("CHAOS_LOSS_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        zsock_scenario(kind, plan(0xC0FFEE, loss, true, true));
        orfs_scenario(kind, plan(0xC0FFEE ^ 1, loss, true, true));
    }
    nbd_scenario(plan(0xC0FFEE ^ 2, loss, true, true));
}

/// Same seed ⇒ same simulation, event for event.
#[test]
fn chaos_is_deterministic_per_seed() {
    let a = zsock_scenario(TransportKind::Mx, plan(42, 7, true, true));
    let b = zsock_scenario(TransportKind::Mx, plan(42, 7, true, true));
    assert_eq!(a, b, "executed-event fingerprints match across runs");
}

/// Killing the server node mid-workload: every in-flight and subsequent
/// operation completes with a typed error; nothing stalls forever.
#[test]
fn killing_the_server_fails_all_ops_typed() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let mut fx = knet::figures::fs_fixture(FsOpts {
            kind,
            file_len: 128 * 1024,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        // A healthy op first.
        let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(4096), 0).unwrap();
        assert_eq!(n, 4096);
        // The server drops off the fabric *now*.
        fx.w.set_fault_plan(FaultPlan::new(1).with_kill(NodeId(1), SimTime::ZERO));
        // In-flight ops fail with a typed error once the retry budget
        // exhausts — they must not hang.
        // (Both ops must reach the wire: O_DIRECT reads always do; a stat
        // would be served from the client's attribute cache.)
        let sid1 = knet_orfs::op_read(&mut fx.w, fx.cid, fd, fx.user.memref(8192), 0);
        let sid2 = knet_orfs::op_read(&mut fx.w, fx.cid, fd, fx.user.memref(4096), 65_536);
        let outcome = run_until(&mut fx.w, |w| {
            let c = w.orfs.client(fx.cid);
            [sid1, sid2]
                .iter()
                .all(|s| c.completed.iter().any(|(o, _)| o == s))
        });
        assert_eq!(
            outcome,
            RunOutcome::Satisfied,
            "{kind:?}: ops must not stall"
        );
        for sid in [sid1, sid2] {
            let r = knet::harness::orfs_wait(&mut fx.w, fx.cid, sid);
            assert_eq!(r, Err(knet_orfs::OrfsError::Net), "{kind:?}: typed failure");
        }
        // Later ops fail fast too (the link is dead).
        let sid3 = knet_orfs::op_read(&mut fx.w, fx.cid, fd, fx.user.memref(4096), 0);
        let r = knet::harness::orfs_wait(&mut fx.w, fx.cid, sid3);
        assert_eq!(
            r,
            Err(knet_orfs::OrfsError::Net),
            "{kind:?}: fail-fast after death"
        );
        run_to_quiescence(&mut fx.w);
    }
}

/// Killing the peer of a socket pair poisons the socket with
/// `PeerUnreachable`: parked readers fail, later ops fail fast.
#[test]
fn killing_the_peer_poisons_sockets() {
    let mut w = ClusterBuilder::new().build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let ba = ubuf(&mut w, n0, 1 << 20);
    let bb = ubuf(&mut w, n1, 1 << 20);
    let (ea, eb) = endpoints(&mut w, TransportKind::Mx, n0, n1);
    let sa = sock_create(&mut w, ea, eb).unwrap();
    let sb = sock_create(&mut w, eb, ea).unwrap();
    // Healthy echo first.
    let r = sock_recv(&mut w, sb, bb.memref(64));
    sock_send(&mut w, sa, ba.memref(64));
    assert_eq!(sock_wait(&mut w, sb, r), 64);
    // Node 1 dies; a parked reader and an in-flight send must both fail.
    w.set_fault_plan(FaultPlan::new(9).with_kill(NodeId(1), SimTime::ZERO));
    let r = sock_recv(&mut w, sa, ba.memref(64)); // parked reader
    sock_send(&mut w, sa, ba.memref(100_000)); // its bytes can never be acked... but completes locally
    let outcome = run_until(&mut w, |w| {
        w.zsock.sock(sa).completed.iter().any(|(o, _)| *o == r)
    });
    assert_eq!(
        outcome,
        RunOutcome::Satisfied,
        "parked reader must not stall"
    );
    let (_, res) = {
        let s = w.zsock.sock_mut(sa);
        let pos = s.completed.iter().position(|(o, _)| *o == r).unwrap();
        s.completed.remove(pos).unwrap()
    };
    assert_eq!(res, Err(NetError::PeerUnreachable), "typed reader failure");
    assert_eq!(w.zsock.sock(sa).error(), Some(NetError::PeerUnreachable));
    // Subsequent ops fail fast.
    let op = sock_recv(&mut w, sa, ba.memref(16));
    let s = w.zsock.sock_mut(sa);
    let pos = s.completed.iter().position(|(o, _)| *o == op).unwrap();
    assert_eq!(
        s.completed.remove(pos).unwrap().1,
        Err(NetError::PeerUnreachable)
    );
    run_to_quiescence(&mut w);
    let _ = sb;
}

//! Incast: N senders converge on one receiver NIC.
//!
//! The receive FIFO model makes over-driven fan-in drop arrivals
//! *deterministically* (no fault dice), so incast loss is self-inflicted
//! by the fabric — exactly what the per-link AIMD windows plus SACK fast
//! retransmit exist to repair. The regression here is congestion
//! collapse: without a control loop every drop triggers a full paced
//! retransmission round, goodput falls as senders are added, and the
//! retransmit ratio grows without bound.
//!
//! Asserted invariants:
//! * every byte arrives (the reliability window hides the drops),
//! * goodput is monotone-ish in the sender count (no collapse),
//! * `retransmits / data_packets` stays bounded,
//! * the 16-sender point actually exercises the rx-FIFO model
//!   (`nic_rx_congestion_drops > 0`),
//! * the whole scenario is bit-identical per seed at shard counts 1/2/4.

use knet::harness::kbuf;
use knet::prelude::*;
use knet::ShardedCluster;
use knet_core::api::{channel_connect, channel_send};
use knet_simnic::{FaultPlan, NicModel};
use knet_simos::Asid;

const MSG: u64 = 32 * 1024;
const ROUNDS: u64 = 6;

fn builder(n_senders: usize) -> ClusterBuilder {
    ClusterBuilder::new()
        .nodes(n_senders + 1, CpuModel::xeon_2600())
        .nic(NicModel::pci_xe())
}

/// Fan-in fixture: sender endpoints on nodes `1..=n`, one receiver
/// endpoint on node 0, one channel per sender pointing at it.
struct Incast {
    recv_ep: Endpoint,
    senders: Vec<(knet_core::api::ChannelId, knet::harness::KBuf)>,
}

fn incast_setup(w: &mut ClusterWorld, n_senders: usize) -> Incast {
    let rcq = w.new_cq();
    let recv_ep = w
        .open_mx_cq(NodeId(0), MxEndpointConfig::kernel(), rcq)
        .unwrap();
    let mut senders = Vec::new();
    for i in 1..=n_senders {
        let node = NodeId(i as u32);
        let cq = w.new_cq();
        let ep = w.open_mx_cq(node, MxEndpointConfig::kernel(), cq).unwrap();
        let ch = channel_connect(w, ep, recv_ep, cq);
        let buf = kbuf(w, node, MSG);
        senders.push((ch, buf));
    }
    Incast { recv_ep, senders }
}

fn post_round(
    w: &mut ClusterWorld,
    s: &(knet_core::api::ChannelId, knet::harness::KBuf),
    round: u64,
    sender: u64,
) {
    let (ch, buf) = *s;
    let data: Vec<u8> = (0..MSG)
        .map(|j| (sender * 37 + round * 131 + j) as u8)
        .collect();
    w.os.node_mut(buf.node)
        .write_virt(Asid::KERNEL, buf.addr, &data)
        .unwrap();
    channel_send(w, ch, round * 100 + sender, buf.iov(MSG)).unwrap();
}

/// Run barrier-synchronized incast rounds sequentially (the classic
/// incast shape: every sender answers the round's request at once, the
/// next round starts when the fan-in drains); return (goodput bytes/sec
/// in virtual time, snapshot of the composed stats).
fn incast_goodput(
    n_senders: usize,
    rel: knet_simnic::RelParams,
) -> (f64, knet_core::RegistryStats) {
    let mut w = builder(n_senders).rel_params(rel).build();
    let inc = incast_setup(&mut w, n_senders);
    for round in 0..ROUNDS {
        for (i, s) in inc.senders.iter().enumerate() {
            post_round(&mut w, s, round, i as u64 + 1);
        }
        run_to_quiescence(&mut w);
    }
    run_to_quiescence(&mut w);
    assert_eq!(w.sched.engine_error(), None);

    // Every byte must arrive despite the self-inflicted drops.
    let mut got_msgs = 0u64;
    let mut got_bytes = 0u64;
    while let Some(ev) = w.take_event(inc.recv_ep) {
        if let TransportEvent::Unexpected { data, .. } = ev {
            got_msgs += 1;
            got_bytes += data.len() as u64;
        }
    }
    assert_eq!(
        got_msgs,
        n_senders as u64 * ROUNDS,
        "{n_senders} senders: every message delivered"
    );
    assert_eq!(got_bytes, n_senders as u64 * ROUNDS * MSG);

    let elapsed = knet_simcore::now(&w).nanos().max(1);
    let goodput = got_bytes as f64 / (elapsed as f64 / 1e9);
    (goodput, w.stats_snapshot())
}

/// The headline regression: adding senders must not collapse goodput,
/// and the control loop keeps the retransmit ratio bounded even while
/// the rx FIFO is genuinely overflowing.
#[test]
fn incast_goodput_is_monotone_ish_and_retransmits_stay_bounded() {
    let mut prev = 0.0f64;
    for n in [2usize, 4, 8, 16] {
        let (goodput, st) = incast_goodput(n, knet_simnic::RelParams::default());
        assert!(
            goodput >= prev * 0.75,
            "congestion collapse at {n} senders: {:.1} MB/s after {:.1} MB/s",
            goodput / 1e6,
            prev / 1e6
        );
        prev = prev.max(goodput);
        assert!(st.rel_data_packets > 0);
        let ratio = st.rel_retransmits as f64 / st.rel_data_packets as f64;
        assert!(
            ratio < 0.5,
            "{n} senders: retransmit ratio {ratio:.3} unbounded \
             ({} resends / {} data packets)",
            st.rel_retransmits,
            st.rel_data_packets
        );
        if n == 16 {
            assert!(
                st.nic_rx_congestion_drops > 0,
                "16-way incast never overflowed the rx FIFO — the \
                 scenario stopped exercising the contention model"
            );
            // The control loop (NACK-driven repair + AIMD + fast
            // retransmit) must beat the pre-control-loop sender, whose
            // only repair for fan-in tail drops is the RTO.
            let (fixed, _) = incast_goodput(n, knet_simnic::RelParams::fixed_window());
            assert!(
                goodput >= fixed * 1.5,
                "control loop buys only {:.2}x over the fixed-window \
                 sender ({:.1} vs {:.1} MB/s)",
                goodput / fixed,
                goodput / 1e6,
                fixed / 1e6
            );
        }
    }
}

// ------------------------------------------------------- shard identity

/// Sequential baseline or sharded cluster behind one workload surface
/// (same shape as `sched_equivalence.rs`).
enum Driver {
    Seq(Box<ClusterWorld>),
    Sharded(ShardedCluster),
}

impl Driver {
    fn setup<T>(&mut self, f: impl Fn(&mut ClusterWorld) -> T) -> T {
        match self {
            Driver::Seq(w) => f(w),
            Driver::Sharded(s) => s.setup(f),
        }
    }

    fn on<R>(&mut self, node: u32, f: impl FnOnce(&mut ClusterWorld) -> R) -> R {
        match self {
            Driver::Seq(w) => f(w),
            Driver::Sharded(s) => s.on(node, f),
        }
    }

    fn run(&mut self) {
        match self {
            Driver::Seq(w) => {
                run_to_quiescence(&mut **w);
            }
            Driver::Sharded(s) => {
                s.run_to_quiescence();
            }
        }
    }

    fn executed(&self) -> u64 {
        match self {
            Driver::Seq(w) => w.sched.executed(),
            Driver::Sharded(s) => s.executed(),
        }
    }
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

/// The incast workload under a seeded lossy fabric, returning an
/// order-sensitive fingerprint of everything the receiver observed.
fn incast_fingerprint(d: &mut Driver, n_senders: usize, seed: u64) -> (u64, u64) {
    let inc = d.setup(|w| {
        w.set_fault_plan(FaultPlan::new(seed).with_drop(0.03).with_delay(
            0.05,
            SimTime::from_micros(2),
            SimTime::from_micros(40),
        ));
        incast_setup(w, n_senders)
    });
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for round in 0..3u64 {
        for (i, s) in inc.senders.iter().enumerate() {
            d.on(i as u32 + 1, |w| post_round(w, s, round, i as u64 + 1));
        }
        d.run();
        fp = d.on(0, |w| {
            let mut h = fp;
            while let Some(ev) = w.take_event(inc.recv_ep) {
                if let TransportEvent::Unexpected { tag, data, from } = ev {
                    let sum: u64 = data.iter().map(|&b| b as u64).sum();
                    h = mix(
                        mix(mix(mix(h, tag), data.len() as u64), sum),
                        from.idx as u64,
                    );
                }
            }
            h
        });
    }
    (d.executed(), fp)
}

/// Same seed ⇒ same incast, event for event, at shard counts 1, 2 and 4
/// (8 senders + 1 receiver: node count not divisible by either).
#[test]
fn incast_fingerprints_match_across_shard_counts() {
    let n = 8;
    let baseline = incast_fingerprint(&mut Driver::Seq(Box::new(builder(n).build())), n, 0x1_CA57);
    assert_ne!(baseline.1, 0xcbf2_9ce4_8422_2325, "receiver saw traffic");
    for k in [1usize, 2, 4] {
        let got = incast_fingerprint(
            &mut Driver::Sharded(builder(n).build_sharded(k)),
            n,
            0x1_CA57,
        );
        assert_eq!(got, baseline, "shard count {k} diverged");
    }
}

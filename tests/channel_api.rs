//! Tests of the typed Channel + completion-queue API (`knet_core::api`):
//! connect/accept, tagged send/recv with contexts, vectored I/O with
//! API-layer coalescing on GM, and the `t_cancel_recv` contract.

use knet::harness::{kbuf, ubuf, KBuf};
use knet::prelude::*;
use knet_core::api::{self, channel_send};
use knet_core::{TransportEvent, TransportWorld};
use knet_simos::VirtAddr;

fn write_kernel(w: &mut ClusterWorld, node: NodeId, addr: VirtAddr, data: &[u8]) {
    w.os.node_mut(node)
        .write_virt(Asid::KERNEL, addr, data)
        .unwrap();
}

fn read_kernel(w: &ClusterWorld, node: NodeId, addr: VirtAddr, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    w.os.node(node)
        .read_virt(Asid::KERNEL, addr, &mut out)
        .unwrap();
    out
}

/// Run until the CQ has an entry for `ep`, then pop it.
fn await_cq(w: &mut ClusterWorld, cq: CqId, ep: Endpoint) -> TransportEvent {
    let outcome = run_until(w, |w| {
        w.registry.cq_len(cq) > 0 && {
            // Peek: take_event only pops entries for `ep`.
            w.registry.has_event(ep)
        }
    });
    assert_eq!(outcome, RunOutcome::Satisfied, "no CQ entry for {ep:?}");
    w.take_event(ep).expect("entry present")
}

/// A connected GM or MX endpoint pair with per-side CQs and channels.
fn channel_pair(
    w: &mut ClusterWorld,
    kind: TransportKind,
    n0: NodeId,
    n1: NodeId,
) -> (ChannelId, ChannelId, CqId, CqId, Endpoint, Endpoint) {
    let cq_a = w.new_cq();
    let cq_b = w.new_cq();
    let (ea, eb) = match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096);
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    };
    let ch_a = channel_connect(w, ea, eb, cq_a);
    let ch_b = api::channel_accept(w, eb, cq_b);
    (ch_a, ch_b, cq_a, cq_b, ea, eb)
}

#[test]
fn connect_accept_learns_the_peer_and_talks_both_ways() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let (ch_a, ch_b, cq_a, cq_b, ea, eb) = channel_pair(&mut w, kind, n0, n1);
        assert_eq!(channel_peer(&w, ch_a), Some(eb));
        assert_eq!(
            channel_peer(&w, ch_b),
            None,
            "accept side not yet connected"
        );
        // Sends on the half-open accept side fail cleanly.
        let ka = kbuf(&mut w, n0, 4096);
        let kb = kbuf(&mut w, n1, 4096);
        assert_eq!(
            channel_send(&mut w, ch_b, 1, kb.iov(4)).unwrap_err(),
            NetError::BadDestination,
            "{kind:?}"
        );
        // First message teaches the accept side its peer.
        write_kernel(&mut w, n0, ka.addr, b"hello");
        let ctx = channel_send(&mut w, ch_a, 7, ka.iov(5)).unwrap();
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::Unexpected { tag, data, from } => {
                assert_eq!((tag, &data[..], from), (7, &b"hello"[..], ea), "{kind:?}");
            }
            other => panic!("{kind:?}: {other:?}"),
        }
        assert_eq!(channel_peer(&w, ch_b), Some(ea), "{kind:?}: peer learned");
        // The sender's completion carries the context channel_send returned.
        match await_cq(&mut w, cq_a, ea) {
            TransportEvent::SendDone { ctx: c } => assert_eq!(c, ctx, "{kind:?}"),
            other => panic!("{kind:?}: {other:?}"),
        }
        // Now the accept side can answer.
        write_kernel(&mut w, n1, kb.addr, b"hi back!");
        channel_send(&mut w, ch_b, 8, kb.iov(8)).unwrap();
        match await_cq(&mut w, cq_a, ea) {
            TransportEvent::Unexpected { tag, data, .. } => {
                assert_eq!((tag, &data[..]), (8, &b"hi back!"[..]), "{kind:?}");
            }
            other => panic!("{kind:?}: {other:?}"),
        }
    }
}

#[test]
fn posted_receives_complete_with_channel_contexts() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let (ch_a, ch_b, _cq_a, cq_b, _ea, eb) = channel_pair(&mut w, kind, n0, n1);
        let ka = kbuf(&mut w, n0, 4096);
        let kb = kbuf(&mut w, n1, 4096);
        let rctx = api::channel_post_recv(&mut w, ch_b, 3, kb.iov(4096)).unwrap();
        write_kernel(&mut w, n0, ka.addr, b"landed in the posted buffer");
        channel_send(&mut w, ch_a, 3, ka.iov(27)).unwrap();
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::RecvDone { ctx, tag, len, .. } => {
                assert_eq!((ctx, tag, len), (rctx, 3, 27), "{kind:?}");
            }
            other => panic!("{kind:?}: {other:?}"),
        }
        assert_eq!(
            read_kernel(&w, n1, kb.addr, 27),
            b"landed in the posted buffer",
            "{kind:?}"
        );
        // The accept side saw only a RecvDone (no Unexpected), which still
        // teaches it the peer: it can answer now.
        assert_eq!(channel_peer(&w, ch_b), Some(_ea), "{kind:?}");
        write_kernel(&mut w, n1, kb.addr, b"ack");
        channel_send(&mut w, ch_b, 4, kb.iov(3)).unwrap();
        loop {
            match await_cq(&mut w, _cq_a, _ea) {
                TransportEvent::Unexpected { tag, data, .. } => {
                    assert_eq!((tag, &data[..]), (4, &b"ack"[..]), "{kind:?}");
                    break;
                }
                TransportEvent::SendDone { .. } => continue,
                other => panic!("{kind:?}: {other:?}"),
            }
        }
    }
}

/// Build a three-segment kernel io-vector with a recognizable pattern.
fn scattered_iov(
    w: &mut ClusterWorld,
    node: NodeId,
    lens: [u64; 3],
) -> (IoVec, Vec<u8>, Vec<KBuf>) {
    let mut iov = IoVec::new();
    let mut expect = Vec::new();
    let mut bufs = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        let kb = kbuf(w, node, len.max(1));
        let chunk: Vec<u8> = (0..len)
            .map(|j| ((i as u64 * 101 + j * 13 + 7) % 251) as u8)
            .collect();
        write_kernel(w, node, kb.addr, &chunk);
        iov.push(kb.memref(len));
        expect.extend(chunk);
        bufs.push(kb);
    }
    (iov, expect, bufs)
}

#[test]
fn multi_segment_sends_are_coalesced_on_gm_and_delivered_byte_exact() {
    // The acceptance test for API-layer coalescing: a 3-segment io-vector
    // sent over GM — where the raw driver takes single segments only —
    // arrives byte-exact, with no caller-visible `Unsupported`.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, ch_b, cq_a, cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let (iov, expect, _bufs) = scattered_iov(&mut w, n0, [1000, 3000, 500]);
    let total = expect.len() as u64;

    // The raw transport refuses the vector (GM's documented limitation)…
    assert_eq!(
        w.t_send(ea, eb, 9, iov.clone(), 0).unwrap_err(),
        NetError::Unsupported,
        "raw GM stays single-segment"
    );
    // …the channel layer coalesces it.
    let kb = kbuf(&mut w, n1, 8192);
    let rctx = api::channel_post_recv(&mut w, ch_b, 9, kb.iov(8192)).unwrap();
    let ctx = channel_send(&mut w, ch_a, 9, iov).unwrap();
    match await_cq(&mut w, cq_b, eb) {
        TransportEvent::RecvDone { ctx, tag, len, .. } => {
            assert_eq!((ctx, tag, len), (rctx, 9, total));
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(
        read_kernel(&w, n1, kb.addr, expect.len()),
        expect,
        "byte-exact"
    );
    match await_cq(&mut w, cq_a, ea) {
        TransportEvent::SendDone { ctx: c } => assert_eq!(c, ctx),
        other => panic!("{other:?}"),
    }
    // The gather copy went through the staging buffer and was accounted.
    let ch = w.registry.channel(ch_a).unwrap();
    assert_eq!(ch.coalesced_bytes, total);
}

#[test]
fn coalescing_works_on_stock_gm_through_the_registration_cache() {
    // Without the physical-address patch the kernel staging buffer must be
    // registered like any other memory; GMKRC absorbs it.
    let (mut w, n0, n1) = two_nodes();
    let cq_a = w.new_cq();
    let cq_b = w.new_cq();
    let cfg = GmPortConfig::kernel().with_regcache(4096); // stock + GMKRC
    let ea = w.open_gm(n0, cfg.clone()).unwrap();
    let eb = w.open_gm(n1, cfg).unwrap();
    let ch_a = channel_connect(&mut w, ea, eb, cq_a);
    let _ch_b = api::channel_accept(&mut w, eb, cq_b);
    let (iov, expect, _bufs) = scattered_iov(&mut w, n0, [2000, 100, 900]);
    channel_send(&mut w, ch_a, 4, iov).unwrap();
    let data = loop {
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::Unexpected { data, .. } => break data,
            _ => continue,
        }
    };
    assert_eq!(&data[..], &expect[..], "stock GM, cache-registered staging");

    // Regrow the staging buffer with a larger vector: the old buffer's
    // cached registrations are invalidated (VMA-SPY style) before the
    // kernel memory is freed, and the bigger payload still lands intact.
    let tt_after_first = {
        let nic = w.nics.nic_of_node(n0).unwrap();
        w.nics.get(nic).ttable.len()
    };
    let (iov2, expect2, _bufs2) = scattered_iov(&mut w, n0, [5000, 2500, 1000]);
    channel_send(&mut w, ch_a, 6, iov2).unwrap();
    let data2 = loop {
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::Unexpected { data, .. } => break data,
            _ => continue,
        }
    };
    assert_eq!(&data2[..], &expect2[..], "regrown staging delivers intact");
    let nic = w.nics.nic_of_node(n0).unwrap();
    let cache =
        w.gm.port(knet_gm::GmPortId(ea.idx))
            .unwrap()
            .regcache
            .as_ref()
            .unwrap();
    assert!(
        cache.stats.invalidations > 0,
        "freed staging pages were invalidated from GMKRC"
    );
    // The table holds entries for the new staging only, not the freed one.
    assert!(
        w.nics.get(nic).ttable.len() <= tt_after_first + 3,
        "no stale translations accumulate across regrows"
    );
}

#[test]
fn multi_segment_sends_pass_through_untouched_on_mx() {
    // MX is vectorial: the channel layer must not copy.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, _cq_a, cq_b, _ea, eb) = channel_pair(&mut w, TransportKind::Mx, n0, n1);
    let (iov, expect, _bufs) = scattered_iov(&mut w, n0, [1000, 3000, 500]);
    channel_send(&mut w, ch_a, 5, iov).unwrap();
    let data = loop {
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::Unexpected { data, .. } => break data,
            _ => continue,
        }
    };
    assert_eq!(&data[..], &expect[..]);
    assert_eq!(
        w.registry.channel(ch_a).unwrap().coalesced_bytes,
        0,
        "no staging copy on a vectorial transport"
    );
}

#[test]
fn closed_channels_stop_routing_and_release_state() {
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, ch_b, _cq_a, _cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Mx, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    api::channel_close(&mut w, ch_b);
    assert!(w.registry.channel(ch_b).is_none());
    // Traffic for the closed side parks (no consumer) instead of crashing.
    channel_send(&mut w, ch_a, 1, ka.iov(8)).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(w.registry.parked_len(eb) > 0);
    // Closing the connect side too: sends now fail on a dead handle.
    api::channel_close(&mut w, ch_a);
    assert_eq!(
        channel_send(&mut w, ch_a, 2, ka.iov(8)).unwrap_err(),
        NetError::BadEndpoint
    );
    let _ = ea;
}

// --------------------------------------------------------------- cancel

#[test]
fn cancel_recv_contract_is_identical_on_gm_and_mx() {
    // The documented `t_cancel_recv` contract, exercised case by case on
    // both drivers with identical expectations.
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let (ea, eb) = match kind {
            TransportKind::Mx => (
                w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap(),
                w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap(),
            ),
            TransportKind::Gm => {
                let cfg = GmPortConfig::kernel()
                    .with_physical_api()
                    .with_regcache(4096);
                (
                    w.open_gm_cq(n0, cfg.clone(), cq).unwrap(),
                    w.open_gm_cq(n1, cfg, cq).unwrap(),
                )
            }
        };
        let ka = kbuf(&mut w, n0, 65536);
        let kb = kbuf(&mut w, n1, 65536);

        // 1. Nothing posted: cancel is false.
        assert!(!w.t_cancel_recv(eb, 77), "{kind:?}: nothing posted");

        // 2. Posted, unmatched: cancel withdraws (true), second cancel false.
        w.t_post_recv(eb, 77, kb.iov(4096), 1).unwrap();
        assert!(w.t_cancel_recv(eb, 77), "{kind:?}: posted → withdrawn");
        assert!(!w.t_cancel_recv(eb, 77), "{kind:?}: idempotent");

        // 3. A cancelled receive never completes: the message surfaces as
        //    Unexpected instead of landing in the withdrawn buffer.
        write_kernel(&mut w, n0, ka.addr, b"orphan");
        w.t_send(ea, eb, 77, ka.iov(6), 0).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let mut saw_unexpected = false;
        while let Some(ev) = w.take_event(eb) {
            match ev {
                TransportEvent::Unexpected { tag, data, .. } => {
                    assert_eq!((tag, &data[..]), (77, &b"orphan"[..]), "{kind:?}");
                    saw_unexpected = true;
                }
                TransportEvent::RecvDone { .. } => {
                    panic!("{kind:?}: withdrawn receive must not complete")
                }
                TransportEvent::SendDone { .. } => {}
            }
        }
        assert!(saw_unexpected, "{kind:?}");
        while w.take_event(ea).is_some() {}

        // 4. Completed receive: cancel returns false afterwards.
        w.t_post_recv(eb, 88, kb.iov(4096), 2).unwrap();
        w.t_send(ea, eb, 88, ka.iov(100), 0).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let mut recv_done = false;
        while let Some(ev) = w.take_event(eb) {
            if matches!(ev, TransportEvent::RecvDone { tag: 88, .. }) {
                recv_done = true;
            }
        }
        assert!(recv_done, "{kind:?}");
        assert!(!w.t_cancel_recv(eb, 88), "{kind:?}: already completed");
        while w.take_event(ea).is_some() {}

        // 5. Payload overtakes descriptor (the zsock case): the message
        //    arrives first (Unexpected), the receive is posted afterwards
        //    and stays armed — cancel withdraws it (true), exactly once.
        write_kernel(&mut w, n0, ka.addr, b"early bird");
        w.t_send(ea, eb, 99, ka.iov(10), 0).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let mut early = false;
        while let Some(ev) = w.take_event(eb) {
            if let TransportEvent::Unexpected { tag, data, .. } = ev {
                assert_eq!((tag, &data[..]), (99, &b"early bird"[..]), "{kind:?}");
                early = true;
            }
        }
        assert!(early, "{kind:?}: payload delivered unexpectedly");
        w.t_post_recv(eb, 99, kb.iov(4096), 3).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        assert!(!w.has_event(eb), "{kind:?}: no retroactive match");
        assert!(
            w.t_cancel_recv(eb, 99),
            "{kind:?}: overtaken descriptor is withdrawable"
        );
        assert!(!w.t_cancel_recv(eb, 99), "{kind:?}: …exactly once");
    }
}

#[test]
fn cancelled_mx_receive_releases_its_pins() {
    // MX pins user pages when arming a receive; withdrawal must unpin.
    let (mut w, n0, _n1) = two_nodes();
    let cq = w.new_cq();
    let buf = ubuf(&mut w, n0, 256 * 1024);
    let ep = w
        .open_mx_cq(n0, MxEndpointConfig::user(buf.asid), cq)
        .unwrap();
    w.t_post_recv(ep, 5, buf.iov(256 * 1024), 1).unwrap();
    let frame =
        w.os.node(n0)
            .space(buf.asid)
            .unwrap()
            .frame_of(buf.addr)
            .unwrap();
    assert_eq!(w.os.node(n0).mem.pin_count(frame), 1, "armed receive pins");
    assert!(w.t_cancel_recv(ep, 5));
    assert_eq!(w.os.node(n0).mem.pin_count(frame), 0, "withdrawal unpins");
}

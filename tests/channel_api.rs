//! Tests of the typed Channel + completion-queue API (`knet_core::api`):
//! connect/accept, tagged send/recv with contexts, vectored I/O with
//! API-layer coalescing on GM, and the `t_cancel_recv` contract.

use knet::harness::{kbuf, ubuf, KBuf};
use knet::prelude::*;
use knet_core::api::{self, channel_send};
use knet_core::{TransportEvent, TransportWorld};
use knet_simos::VirtAddr;

fn write_kernel(w: &mut ClusterWorld, node: NodeId, addr: VirtAddr, data: &[u8]) {
    w.os.node_mut(node)
        .write_virt(Asid::KERNEL, addr, data)
        .unwrap();
}

fn read_kernel(w: &ClusterWorld, node: NodeId, addr: VirtAddr, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    w.os.node(node)
        .read_virt(Asid::KERNEL, addr, &mut out)
        .unwrap();
    out
}

/// Run until the CQ has an entry for `ep`, then pop it.
fn await_cq(w: &mut ClusterWorld, cq: CqId, ep: Endpoint) -> TransportEvent {
    let outcome = run_until(w, |w| {
        w.registry.cq_len(cq) > 0 && {
            // Peek: take_event only pops entries for `ep`.
            w.registry.has_event(ep)
        }
    });
    assert_eq!(outcome, RunOutcome::Satisfied, "no CQ entry for {ep:?}");
    w.take_event(ep).expect("entry present")
}

/// A connected GM or MX endpoint pair with per-side CQs and channels.
fn channel_pair(
    w: &mut ClusterWorld,
    kind: TransportKind,
    n0: NodeId,
    n1: NodeId,
) -> (ChannelId, ChannelId, CqId, CqId, Endpoint, Endpoint) {
    let cq_a = w.new_cq();
    let cq_b = w.new_cq();
    let (ea, eb) = match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096);
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    };
    let ch_a = channel_connect(w, ea, eb, cq_a);
    let ch_b = api::channel_accept(w, eb, cq_b);
    (ch_a, ch_b, cq_a, cq_b, ea, eb)
}

#[test]
fn connect_accept_learns_the_peer_and_talks_both_ways() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let (ch_a, ch_b, cq_a, cq_b, ea, eb) = channel_pair(&mut w, kind, n0, n1);
        assert_eq!(channel_peer(&w, ch_a), Some(eb));
        assert_eq!(
            channel_peer(&w, ch_b),
            None,
            "accept side not yet connected"
        );
        // Sends on the half-open accept side fail cleanly.
        let ka = kbuf(&mut w, n0, 4096);
        let kb = kbuf(&mut w, n1, 4096);
        assert_eq!(
            channel_send(&mut w, ch_b, 1, kb.iov(4)).unwrap_err(),
            NetError::BadDestination,
            "{kind:?}"
        );
        // First message teaches the accept side its peer.
        write_kernel(&mut w, n0, ka.addr, b"hello");
        let ctx = channel_send(&mut w, ch_a, 7, ka.iov(5)).unwrap();
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::Unexpected { tag, data, from } => {
                assert_eq!((tag, &data[..], from), (7, &b"hello"[..], ea), "{kind:?}");
            }
            other => panic!("{kind:?}: {other:?}"),
        }
        assert_eq!(channel_peer(&w, ch_b), Some(ea), "{kind:?}: peer learned");
        // The sender's completion carries the context channel_send returned.
        match await_cq(&mut w, cq_a, ea) {
            TransportEvent::SendDone { ctx: c } => assert_eq!(c, ctx, "{kind:?}"),
            other => panic!("{kind:?}: {other:?}"),
        }
        // Now the accept side can answer.
        write_kernel(&mut w, n1, kb.addr, b"hi back!");
        channel_send(&mut w, ch_b, 8, kb.iov(8)).unwrap();
        match await_cq(&mut w, cq_a, ea) {
            TransportEvent::Unexpected { tag, data, .. } => {
                assert_eq!((tag, &data[..]), (8, &b"hi back!"[..]), "{kind:?}");
            }
            other => panic!("{kind:?}: {other:?}"),
        }
    }
}

#[test]
fn posted_receives_complete_with_channel_contexts() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let (ch_a, ch_b, _cq_a, cq_b, _ea, eb) = channel_pair(&mut w, kind, n0, n1);
        let ka = kbuf(&mut w, n0, 4096);
        let kb = kbuf(&mut w, n1, 4096);
        let rctx = api::channel_post_recv(&mut w, ch_b, 3, kb.iov(4096)).unwrap();
        write_kernel(&mut w, n0, ka.addr, b"landed in the posted buffer");
        channel_send(&mut w, ch_a, 3, ka.iov(27)).unwrap();
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::RecvDone { ctx, tag, len, .. } => {
                assert_eq!((ctx, tag, len), (rctx, 3, 27), "{kind:?}");
            }
            other => panic!("{kind:?}: {other:?}"),
        }
        assert_eq!(
            read_kernel(&w, n1, kb.addr, 27),
            b"landed in the posted buffer",
            "{kind:?}"
        );
        // The accept side saw only a RecvDone (no Unexpected), which still
        // teaches it the peer: it can answer now.
        assert_eq!(channel_peer(&w, ch_b), Some(_ea), "{kind:?}");
        write_kernel(&mut w, n1, kb.addr, b"ack");
        channel_send(&mut w, ch_b, 4, kb.iov(3)).unwrap();
        loop {
            match await_cq(&mut w, _cq_a, _ea) {
                TransportEvent::Unexpected { tag, data, .. } => {
                    assert_eq!((tag, &data[..]), (4, &b"ack"[..]), "{kind:?}");
                    break;
                }
                TransportEvent::SendDone { .. } => continue,
                other => panic!("{kind:?}: {other:?}"),
            }
        }
    }
}

/// Build a three-segment kernel io-vector with a recognizable pattern.
fn scattered_iov(
    w: &mut ClusterWorld,
    node: NodeId,
    lens: [u64; 3],
) -> (IoVec, Vec<u8>, Vec<KBuf>) {
    let mut iov = IoVec::new();
    let mut expect = Vec::new();
    let mut bufs = Vec::new();
    for (i, &len) in lens.iter().enumerate() {
        let kb = kbuf(w, node, len.max(1));
        let chunk: Vec<u8> = (0..len)
            .map(|j| ((i as u64 * 101 + j * 13 + 7) % 251) as u8)
            .collect();
        write_kernel(w, node, kb.addr, &chunk);
        iov.push(kb.memref(len));
        expect.extend(chunk);
        bufs.push(kb);
    }
    (iov, expect, bufs)
}

#[test]
fn multi_segment_sends_are_coalesced_on_gm_and_delivered_byte_exact() {
    // The acceptance test for API-layer coalescing: a 3-segment io-vector
    // sent over GM — where the raw driver takes single segments only —
    // arrives byte-exact, with no caller-visible `Unsupported`.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, ch_b, cq_a, cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let (iov, expect, _bufs) = scattered_iov(&mut w, n0, [1000, 3000, 500]);
    let total = expect.len() as u64;

    // The raw transport refuses the vector (GM's documented limitation)…
    assert_eq!(
        w.t_send(ea, eb, 9, iov.clone(), 0).unwrap_err(),
        NetError::Unsupported,
        "raw GM stays single-segment"
    );
    // …the channel layer coalesces it.
    let kb = kbuf(&mut w, n1, 8192);
    let rctx = api::channel_post_recv(&mut w, ch_b, 9, kb.iov(8192)).unwrap();
    let ctx = channel_send(&mut w, ch_a, 9, iov).unwrap();
    match await_cq(&mut w, cq_b, eb) {
        TransportEvent::RecvDone { ctx, tag, len, .. } => {
            assert_eq!((ctx, tag, len), (rctx, 9, total));
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(
        read_kernel(&w, n1, kb.addr, expect.len()),
        expect,
        "byte-exact"
    );
    match await_cq(&mut w, cq_a, ea) {
        TransportEvent::SendDone { ctx: c } => assert_eq!(c, ctx),
        other => panic!("{other:?}"),
    }
    // The gather copy went through the staging buffer and was accounted.
    let ch = w.registry.channel(ch_a).unwrap();
    assert_eq!(ch.coalesced_bytes, total);
}

#[test]
fn coalescing_works_on_stock_gm_through_the_registration_cache() {
    // Without the physical-address patch the kernel staging buffer must be
    // registered like any other memory; GMKRC absorbs it.
    let (mut w, n0, n1) = two_nodes();
    let cq_a = w.new_cq();
    let cq_b = w.new_cq();
    let cfg = GmPortConfig::kernel().with_regcache(4096); // stock + GMKRC
    let ea = w.open_gm(n0, cfg.clone()).unwrap();
    let eb = w.open_gm(n1, cfg).unwrap();
    let ch_a = channel_connect(&mut w, ea, eb, cq_a);
    let _ch_b = api::channel_accept(&mut w, eb, cq_b);
    let (iov, expect, _bufs) = scattered_iov(&mut w, n0, [2000, 100, 900]);
    channel_send(&mut w, ch_a, 4, iov).unwrap();
    let data = loop {
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::Unexpected { data, .. } => break data,
            _ => continue,
        }
    };
    assert_eq!(&data[..], &expect[..], "stock GM, cache-registered staging");

    // Regrow the staging buffer with a larger vector: the old buffer's
    // cached registrations are invalidated (VMA-SPY style) before the
    // kernel memory is freed, and the bigger payload still lands intact.
    let tt_after_first = {
        let nic = w.nics.nic_of_node(n0).unwrap();
        w.nics.get(nic).ttable.len()
    };
    let (iov2, expect2, _bufs2) = scattered_iov(&mut w, n0, [5000, 2500, 1000]);
    channel_send(&mut w, ch_a, 6, iov2).unwrap();
    let data2 = loop {
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::Unexpected { data, .. } => break data,
            _ => continue,
        }
    };
    assert_eq!(&data2[..], &expect2[..], "regrown staging delivers intact");
    let nic = w.nics.nic_of_node(n0).unwrap();
    let cache =
        w.gm.port(knet_gm::GmPortId(ea.idx))
            .unwrap()
            .regcache
            .as_ref()
            .unwrap();
    assert!(
        cache.stats.invalidations > 0,
        "freed staging pages were invalidated from GMKRC"
    );
    // The table holds entries for the new staging only, not the freed one.
    assert!(
        w.nics.get(nic).ttable.len() <= tt_after_first + 3,
        "no stale translations accumulate across regrows"
    );
}

#[test]
fn multi_segment_sends_pass_through_untouched_on_mx() {
    // MX is vectorial: the channel layer must not copy.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, _cq_a, cq_b, _ea, eb) = channel_pair(&mut w, TransportKind::Mx, n0, n1);
    let (iov, expect, _bufs) = scattered_iov(&mut w, n0, [1000, 3000, 500]);
    channel_send(&mut w, ch_a, 5, iov).unwrap();
    let data = loop {
        match await_cq(&mut w, cq_b, eb) {
            TransportEvent::Unexpected { data, .. } => break data,
            _ => continue,
        }
    };
    assert_eq!(&data[..], &expect[..]);
    assert_eq!(
        w.registry.channel(ch_a).unwrap().coalesced_bytes,
        0,
        "no staging copy on a vectorial transport"
    );
}

#[test]
fn closed_channels_stop_routing_and_release_state() {
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, ch_b, _cq_a, _cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Mx, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    api::channel_close(&mut w, ch_b);
    assert!(w.registry.channel(ch_b).is_none());
    // Traffic for the closed side parks (no consumer) instead of crashing.
    channel_send(&mut w, ch_a, 1, ka.iov(8)).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(w.registry.parked_len(eb) > 0);
    // Closing the connect side too: sends now fail on a dead handle.
    api::channel_close(&mut w, ch_a);
    assert_eq!(
        channel_send(&mut w, ch_a, 2, ka.iov(8)).unwrap_err(),
        NetError::BadEndpoint
    );
    let _ = ea;
}

// ----------------------------------------------------- rebind coherence

#[test]
fn rebinding_a_channel_endpoint_invalidates_the_channel() {
    // `bind()` over an endpoint owned by a channel must take the channel's
    // whole identity with it: state, `channel_routes` entry and consumer.
    // Pre-fix, the consumer was garbage-collected but the channel kept
    // learning peers from a dead route and `channel_close` deregistered an
    // id that now belonged to nobody (or, worse, to the new consumer).
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, ch_b, _cq_a, _cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Mx, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    let kb = kbuf(&mut w, n1, 4096);

    // Rebind the connect side to a fresh driver CQ.
    let cq2 = w.new_cq();
    w.attach_cq(ea, cq2);
    assert!(
        w.registry.channel(ch_a).is_none(),
        "rebinding closed the channel coherently"
    );
    assert!(
        w.registry.channel_of(ea).is_none(),
        "no dangling channel_routes entry"
    );
    assert_eq!(
        channel_send(&mut w, ch_a, 1, ka.iov(4)).unwrap_err(),
        NetError::BadEndpoint,
        "sends on the invalidated handle fail cleanly"
    );

    // Closing the dead id is a no-op that must not disturb the new binding.
    let new_consumer = w.registry.consumer_of(ea).expect("rebound");
    api::channel_close(&mut w, ch_a);
    assert_eq!(
        w.registry.consumer_of(ea),
        Some(new_consumer),
        "channel_close of a dead id leaves the new consumer alone"
    );

    // Traffic for the rebound endpoint flows into the new CQ (not into the
    // dead channel's peer learning). Raw driver send: this is a
    // driver-level test of the rebinding seam.
    write_kernel(&mut w, n1, kb.addr, b"post");
    w.t_send(eb, ea, 2, kb.iov(4), 0).unwrap();
    match await_cq(&mut w, cq2, ea) {
        TransportEvent::Unexpected { tag, data, .. } => {
            assert_eq!((tag, &data[..]), (2, &b"post"[..]));
        }
        other => panic!("{other:?}"),
    }
    let _ = ch_b;
}

#[test]
fn reconnecting_a_channel_endpoint_replaces_the_old_channel() {
    // `channel_connect` over an endpoint that already owns a channel (how
    // the benchmark harness reuses endpoint pairs) replaces it rather than
    // leaking state.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, cq_a, _cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Mx, n0, n1);
    let ch_a2 = channel_connect(&mut w, ea, eb, cq_a);
    assert!(w.registry.channel(ch_a).is_none(), "old channel replaced");
    assert_eq!(w.registry.channel_of(ea), Some(ch_a2));
}

// --------------------------------------------------------- backpressure

#[test]
fn channel_sends_queue_on_token_exhaustion_and_retry_in_order() {
    // GM bounds pending requests with send tokens (16 by default); a burst
    // beyond that used to surface NoSendTokens to every caller. The
    // channel now queues the overflow and retries on SendDone, in
    // submission order.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, cq_a, cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    let burst = 40u64;
    assert!(
        burst as usize > knet_gm::GmParams::default().send_tokens,
        "the burst must overrun the token pool"
    );
    // Raw transport refuses the burst...
    for i in 0..knet_gm::GmParams::default().send_tokens {
        w.t_send(ea, eb, 100 + i as u64, ka.iov(8), 0).unwrap();
    }
    assert_eq!(
        w.t_send(ea, eb, 999, ka.iov(8), 0).unwrap_err(),
        NetError::NoSendTokens,
        "raw GM contract unchanged"
    );
    knet_simcore::run_to_quiescence(&mut w);
    while w.registry.cq_pop(cq_a).is_some() {}
    while w.registry.cq_pop(cq_b).is_some() {}

    // ...the channel absorbs it.
    let mut ctxs = Vec::new();
    for i in 0..burst {
        ctxs.push(channel_send(&mut w, ch_a, i, ka.iov(16)).expect("queued, not refused"));
    }
    assert!(
        w.registry.stats.queued_sends > 0,
        "the burst exercised the backpressure queue"
    );
    knet_simcore::run_to_quiescence(&mut w);
    assert_eq!(
        w.registry.stats.retried_sends, w.registry.stats.queued_sends,
        "every queued send was retried successfully"
    );
    assert_eq!(w.registry.stats.failed_retries, 0);
    assert_eq!(
        w.registry.channel(ch_a).unwrap().queued_len(),
        0,
        "queue drained"
    );
    // Every send completed (each ctx got its SendDone)...
    let mut done = Vec::new();
    while let Some(e) = w.registry.cq_pop(cq_a) {
        if let TransportEvent::SendDone { ctx } = e.event {
            done.push(ctx);
        }
    }
    assert_eq!(done, ctxs, "completions in submission order");
    // ...and the receiver saw the messages in submission order.
    let mut tags = Vec::new();
    while let Some(e) = w.registry.cq_pop(cq_b) {
        if let TransportEvent::Unexpected { tag, .. } = e.event {
            tags.push(tag);
        }
    }
    assert_eq!(tags, (0..burst).collect::<Vec<_>>(), "wire order preserved");
}

#[test]
fn send_queue_overflow_surfaces_a_neterror() {
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, _cq_a, _cq_b, _ea, _eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    api::channel_set_send_queue_cap(&mut w, ch_a, 4);
    let tokens = knet_gm::GmParams::default().send_tokens;
    let mut overflowed = None;
    for i in 0..(tokens + 10) as u64 {
        if let Err(e) = channel_send(&mut w, ch_a, i, ka.iov(8)) {
            overflowed = Some((i, e));
            break;
        }
    }
    let (at, err) = overflowed.expect("bounded queue must overflow");
    assert_eq!(err, NetError::SendQueueFull);
    assert_eq!(
        at,
        (tokens + 4) as u64,
        "tokens, then the full queue, then overflow"
    );
    // The world still drains and the accepted sends complete.
    knet_simcore::run_to_quiescence(&mut w);
    assert_eq!(w.registry.channel(ch_a).unwrap().queued_len(), 0);
}

#[test]
fn failed_retries_deliver_send_failed_completions() {
    // A send queued under backpressure whose retry fails non-transiently
    // (the peer port closed meanwhile) must not vanish: the channel's
    // consumer gets a `SendFailed { ctx }` so resources tied to the
    // context are released.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, cq_a, _cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    let tokens = knet_gm::GmParams::default().send_tokens;
    let mut ctxs = Vec::new();
    for i in 0..(tokens + 3) as u64 {
        ctxs.push(channel_send(&mut w, ch_a, i, ka.iov(8)).unwrap());
    }
    assert_eq!(w.registry.channel(ch_a).unwrap().queued_len(), 3);
    // The peer dies before the queued sends can retry.
    knet_gm::gm_close_port(&mut w, knet_gm::GmPortId(eb.idx)).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert_eq!(w.registry.stats.failed_retries, 3);
    let mut done = Vec::new();
    let mut failed = Vec::new();
    while let Some(e) = w.registry.cq_pop(cq_a) {
        match e.event {
            TransportEvent::SendDone { ctx } => done.push(ctx),
            TransportEvent::SendFailed { ctx, error } => {
                assert_eq!(error, NetError::BadEndpoint);
                failed.push(ctx);
            }
            _ => {}
        }
    }
    assert_eq!(done, ctxs[..tokens], "accepted sends completed");
    assert_eq!(failed, ctxs[tokens..], "queued sends failed loudly");
    let _ = ea;
}

#[test]
fn closing_a_channel_fails_its_queued_sends() {
    // channel_close with sends still parked in the backpressure queue:
    // every accepted context must still complete — as SendFailed — so the
    // caller can release what it tied to them.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, cq_a, _cq_b, ea, _eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    let tokens = knet_gm::GmParams::default().send_tokens;
    let mut ctxs = Vec::new();
    for i in 0..(tokens + 2) as u64 {
        ctxs.push(channel_send(&mut w, ch_a, i, ka.iov(8)).unwrap());
    }
    api::channel_close(&mut w, ch_a);
    let mut failed = Vec::new();
    while let Some(e) = w.registry.cq_pop_for(cq_a, ea) {
        if let TransportEvent::SendFailed { ctx, .. } = e.event {
            failed.push(ctx);
        }
    }
    assert_eq!(
        failed,
        ctxs[tokens..],
        "queued contexts completed as failed"
    );
}

#[test]
fn a_send_failure_poisons_the_socket_instead_of_stalling() {
    // A stream socket cannot renumber a lost frame; once a send fails
    // after its sequence was committed, every subsequent op must fail
    // fast (locally loud) rather than letting readers block forever.
    let (mut w, n0, n1) = two_nodes();
    let ba = ubuf(&mut w, n0, 1 << 20);
    let cfg = GmPortConfig::kernel()
        .with_physical_api()
        .with_regcache(4096);
    let ea = w.open_gm(n0, cfg.clone()).unwrap();
    let eb = w.open_gm(n1, cfg).unwrap();
    let sa = knet_zsock::sock_create(&mut w, ea, eb).unwrap();
    let _sb = knet_zsock::sock_create(&mut w, eb, ea).unwrap();
    // Disable the socket channel's backpressure queue so token exhaustion
    // surfaces synchronously, as any hard send failure would.
    let ch = w.registry.channel_of(ea).unwrap();
    api::channel_set_send_queue_cap(&mut w, ch, 0);
    let tokens = knet_gm::GmParams::default().send_tokens as u64;
    // A reader parked before the failure must be failed too, not stalled.
    let parked = knet_zsock::sock_recv(&mut w, sa, ba.memref(64));
    let mut ops = Vec::new();
    for _ in 0..tokens + 2 {
        ops.push(knet_zsock::sock_send(&mut w, sa, ba.memref(64)));
    }
    let failed: Vec<_> = w
        .zsock
        .sock(sa)
        .completed
        .iter()
        .filter(|(_, r)| r.is_err())
        .map(|(o, _)| *o)
        .collect();
    assert!(!failed.is_empty(), "the overrun send failed synchronously");
    assert_eq!(
        w.zsock.sock(sa).error(),
        Some(NetError::NoSendTokens),
        "socket is poisoned"
    );
    assert!(
        w.zsock
            .sock(sa)
            .completed
            .iter()
            .any(|(o, r)| *o == parked && r.is_err()),
        "the parked reader was failed, not left to stall"
    );
    // Later ops fail fast instead of hanging a reader forever.
    let op = knet_zsock::sock_send(&mut w, sa, ba.memref(64));
    let err = w
        .zsock
        .sock(sa)
        .completed
        .iter()
        .find(|(o, _)| *o == op)
        .expect("completed immediately")
        .1;
    assert_eq!(err, Err(NetError::NoSendTokens));
}

#[test]
fn a_zero_queue_cap_restores_the_raw_token_contract() {
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, _cq_a, _cq_b, _ea, _eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    api::channel_set_send_queue_cap(&mut w, ch_a, 0);
    let tokens = knet_gm::GmParams::default().send_tokens;
    for i in 0..tokens as u64 {
        channel_send(&mut w, ch_a, i, ka.iov(8)).unwrap();
    }
    assert_eq!(
        channel_send(&mut w, ch_a, 99, ka.iov(8)).unwrap_err(),
        NetError::NoSendTokens,
        "queueing disabled: the transport error surfaces"
    );
}

// ------------------------------------------------------------ CQ index

#[test]
fn per_endpoint_cq_pops_are_served_by_the_index() {
    // Two endpoints share one queue; per-endpoint pops preserve each
    // endpoint's FIFO order and are accounted as indexed (no linear scan).
    let (mut w, n0, n1) = two_nodes();
    let cq = w.new_cq();
    let ea = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let eb = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    let kb = kbuf(&mut w, n1, 4096);
    let before = w.registry.stats.indexed_pops;
    // Interleave traffic in both directions.
    for i in 0..4u64 {
        w.t_send(ea, eb, 10 + i, ka.iov(8), i).unwrap();
        w.t_send(eb, ea, 20 + i, kb.iov(8), i).unwrap();
    }
    knet_simcore::run_to_quiescence(&mut w);
    assert_eq!(
        w.registry.cq_len_for(cq, ea),
        8,
        "4 SendDone + 4 Unexpected"
    );
    assert_eq!(w.registry.cq_len_for(cq, eb), 8);
    // Per-endpoint pops see only their endpoint's entries, in FIFO order.
    let mut tags_b = Vec::new();
    while let Some(e) = w.registry.cq_pop_for(cq, eb) {
        assert_eq!(e.ep, eb);
        if let TransportEvent::Unexpected { tag, .. } = e.event {
            tags_b.push(tag);
        }
    }
    assert_eq!(tags_b, vec![10, 11, 12, 13]);
    assert!(
        w.registry.stats.indexed_pops >= before + 8,
        "pops went through the per-endpoint index"
    );
    // The other endpoint's entries are untouched and still ordered.
    let mut tags_a = Vec::new();
    while let Some(e) = w.registry.take_event(ea) {
        if let TransportEvent::Unexpected { tag, .. } = e {
            tags_a.push(tag);
        }
    }
    assert_eq!(tags_a, vec![20, 21, 22, 23]);
}

// --------------------------------------------------------------- cancel

#[test]
fn cancel_recv_contract_is_identical_on_gm_and_mx() {
    // The documented `t_cancel_recv` contract, exercised case by case on
    // both drivers with identical expectations.
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let (ea, eb) = match kind {
            TransportKind::Mx => (
                w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap(),
                w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap(),
            ),
            TransportKind::Gm => {
                let cfg = GmPortConfig::kernel()
                    .with_physical_api()
                    .with_regcache(4096);
                (
                    w.open_gm_cq(n0, cfg.clone(), cq).unwrap(),
                    w.open_gm_cq(n1, cfg, cq).unwrap(),
                )
            }
        };
        let ka = kbuf(&mut w, n0, 65536);
        let kb = kbuf(&mut w, n1, 65536);

        // 1. Nothing posted: cancel is false.
        assert!(!w.t_cancel_recv(eb, 77), "{kind:?}: nothing posted");

        // 2. Posted, unmatched: cancel withdraws (true), second cancel false.
        w.t_post_recv(eb, 77, kb.iov(4096), 1).unwrap();
        assert!(w.t_cancel_recv(eb, 77), "{kind:?}: posted → withdrawn");
        assert!(!w.t_cancel_recv(eb, 77), "{kind:?}: idempotent");

        // 3. A cancelled receive never completes: the message surfaces as
        //    Unexpected instead of landing in the withdrawn buffer.
        write_kernel(&mut w, n0, ka.addr, b"orphan");
        w.t_send(ea, eb, 77, ka.iov(6), 0).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let mut saw_unexpected = false;
        while let Some(ev) = w.take_event(eb) {
            match ev {
                TransportEvent::Unexpected { tag, data, .. } => {
                    assert_eq!((tag, &data[..]), (77, &b"orphan"[..]), "{kind:?}");
                    saw_unexpected = true;
                }
                TransportEvent::RecvDone { .. } => {
                    panic!("{kind:?}: withdrawn receive must not complete")
                }
                _ => {}
            }
        }
        assert!(saw_unexpected, "{kind:?}");
        while w.take_event(ea).is_some() {}

        // 4. Completed receive: cancel returns false afterwards.
        w.t_post_recv(eb, 88, kb.iov(4096), 2).unwrap();
        w.t_send(ea, eb, 88, ka.iov(100), 0).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let mut recv_done = false;
        while let Some(ev) = w.take_event(eb) {
            if matches!(ev, TransportEvent::RecvDone { tag: 88, .. }) {
                recv_done = true;
            }
        }
        assert!(recv_done, "{kind:?}");
        assert!(!w.t_cancel_recv(eb, 88), "{kind:?}: already completed");
        while w.take_event(ea).is_some() {}

        // 5. Payload overtakes descriptor (the zsock case): the message
        //    arrives first (Unexpected), the receive is posted afterwards
        //    and stays armed — cancel withdraws it (true), exactly once.
        write_kernel(&mut w, n0, ka.addr, b"early bird");
        w.t_send(ea, eb, 99, ka.iov(10), 0).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let mut early = false;
        while let Some(ev) = w.take_event(eb) {
            if let TransportEvent::Unexpected { tag, data, .. } = ev {
                assert_eq!((tag, &data[..]), (99, &b"early bird"[..]), "{kind:?}");
                early = true;
            }
        }
        assert!(early, "{kind:?}: payload delivered unexpectedly");
        w.t_post_recv(eb, 99, kb.iov(4096), 3).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        assert!(!w.has_event(eb), "{kind:?}: no retroactive match");
        assert!(
            w.t_cancel_recv(eb, 99),
            "{kind:?}: overtaken descriptor is withdrawable"
        );
        assert!(!w.t_cancel_recv(eb, 99), "{kind:?}: …exactly once");
    }
}

#[test]
fn channel_cancel_wins_exactly_the_unobserved_races() {
    // The API-seam rule `channel_cancel_recv` documents: cancel wins every
    // race the consumer has not yet *observed* — including a completion
    // already delivered to the channel's CQ but not yet popped — and loses
    // deterministically otherwise. RPC cancellation sits directly on this:
    // `true` frees the call slot immediately, `false` parks it to drain.
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let (ch_a, ch_b, _cq_a, _cq_b, _ea, eb) = channel_pair(&mut w, kind, n0, n1);
        let ka = kbuf(&mut w, n0, 4096);
        let kb = kbuf(&mut w, n1, 4096);

        // 1. Nothing posted under the tag: cancel lost.
        assert!(
            !api::channel_cancel_recv(&mut w, ch_b, 5),
            "{kind:?}: no such receive"
        );

        // 2. Still pending in the driver: cancel wins; the message then
        //    surfaces `Unexpected` — the consumer never sees a RecvDone.
        api::channel_post_recv(&mut w, ch_b, 5, kb.iov(4096)).unwrap();
        assert!(
            api::channel_cancel_recv(&mut w, ch_b, 5),
            "{kind:?}: pending receive withdrawn"
        );
        write_kernel(&mut w, n0, ka.addr, b"orphan");
        channel_send(&mut w, ch_a, 5, ka.iov(6)).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let mut unexpected = false;
        while let Some(ev) = w.take_event(eb) {
            match ev {
                TransportEvent::RecvDone { tag: 5, .. } => {
                    panic!("{kind:?}: cancelled receive completed")
                }
                TransportEvent::Unexpected { tag: 5, .. } => unexpected = true,
                _ => {}
            }
        }
        assert!(unexpected, "{kind:?}: message surfaces unexpectedly");

        // 3. THE RACE THE RULE EXISTS FOR: the completion is already
        //    *queued* on the channel's CQ when cancel lands, but nothing
        //    popped it yet. Cancel must win — the queued entry is dropped
        //    (counted), and no RecvDone is ever observed for the tag.
        api::channel_post_recv(&mut w, ch_b, 6, kb.iov(4096)).unwrap();
        write_kernel(&mut w, n0, ka.addr, b"already landed");
        channel_send(&mut w, ch_a, 6, ka.iov(14)).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let before = w.registry.stats.cancelled_completions;
        assert!(
            api::channel_cancel_recv(&mut w, ch_b, 6),
            "{kind:?}: cancel wins the delivered-but-unobserved race"
        );
        assert_eq!(
            w.registry.stats.cancelled_completions,
            before + 1,
            "{kind:?}: dropped entry is accounted"
        );
        while let Some(ev) = w.take_event(eb) {
            assert!(
                !matches!(ev, TransportEvent::RecvDone { tag: 6, .. }),
                "{kind:?}: dropped completion resurfaced"
            );
        }
        // …and cancelling again finds nothing.
        assert!(!api::channel_cancel_recv(&mut w, ch_b, 6), "{kind:?}");

        // 4. Already observed: cancel lost, deterministically.
        api::channel_post_recv(&mut w, ch_b, 7, kb.iov(4096)).unwrap();
        write_kernel(&mut w, n0, ka.addr, b"popped");
        channel_send(&mut w, ch_a, 7, ka.iov(6)).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        let mut observed = false;
        while let Some(ev) = w.take_event(eb) {
            if matches!(ev, TransportEvent::RecvDone { tag: 7, .. }) {
                observed = true;
            }
        }
        assert!(observed, "{kind:?}");
        assert!(
            !api::channel_cancel_recv(&mut w, ch_b, 7),
            "{kind:?}: observed completion is not cancellable"
        );
    }
}

#[test]
fn channel_cancel_loses_to_a_matched_in_flight_rendezvous() {
    // Third arm of the rule: once the driver matched the receive (MX
    // rendezvous accepted, DMA in progress) its RecvDone is irrevocably on
    // its way — cancel must return `false` and the completion must still
    // arrive, exactly once.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, ch_b, _cq_a, _cq_b, _ea, eb) = channel_pair(&mut w, TransportKind::Mx, n0, n1);
    const LEN: u64 = 256 * 1024; // > 32 kB ⇒ rendezvous protocol
    let ka = kbuf(&mut w, n0, LEN);
    let kb = kbuf(&mut w, n1, LEN);
    api::channel_post_recv(&mut w, ch_b, 9, kb.iov(LEN)).unwrap();
    channel_send(&mut w, ch_a, 9, ka.iov(LEN)).unwrap();
    // Run exactly until the rendezvous matches (the posted descriptor
    // leaves the queue) — the transfer is now in flight, not complete.
    let mx_id = knet_mx::MxEndpointId(eb.idx);
    let outcome = run_until(&mut w, |w| {
        w.mx.ep(mx_id)
            .map(|e| e.posted_recvs() == 0)
            .unwrap_or(false)
    });
    assert_eq!(outcome, RunOutcome::Satisfied, "rendezvous must match");
    assert!(
        !w.registry.has_event(eb),
        "completion must not have been delivered yet — the race window"
    );
    assert!(
        !api::channel_cancel_recv(&mut w, ch_b, 9),
        "matched in-flight: cancel loses"
    );
    knet_simcore::run_to_quiescence(&mut w);
    let mut recv_dones = 0;
    while let Some(ev) = w.take_event(eb) {
        if let TransportEvent::RecvDone { tag: 9, len, .. } = ev {
            recv_dones += 1;
            assert_eq!(len, LEN);
        }
    }
    assert_eq!(
        recv_dones, 1,
        "the in-flight completion arrives exactly once"
    );
}

#[test]
fn cancelled_mx_receive_releases_its_pins() {
    // MX pins user pages when arming a receive; withdrawal must unpin.
    let (mut w, n0, _n1) = two_nodes();
    let cq = w.new_cq();
    let buf = ubuf(&mut w, n0, 256 * 1024);
    let ep = w
        .open_mx_cq(n0, MxEndpointConfig::user(buf.asid), cq)
        .unwrap();
    w.t_post_recv(ep, 5, buf.iov(256 * 1024), 1).unwrap();
    let frame =
        w.os.node(n0)
            .space(buf.asid)
            .unwrap()
            .frame_of(buf.addr)
            .unwrap();
    assert_eq!(w.os.node(n0).mem.pin_count(frame), 1, "armed receive pins");
    assert!(w.t_cancel_recv(ep, 5));
    assert_eq!(w.os.node(n0).mem.pin_count(frame), 0, "withdrawal unpins");
}

// ------------------------------------------------- lifecycle regressions
// (flushed out by the fault-injection work: stale per-endpoint CQ state
// after teardown, and parked sends stranded by a cap shrink)

#[test]
fn recycled_endpoint_never_pops_a_previous_channels_ghosts() {
    // Send contexts are pooled per channel (slot 0 restarts every
    // incarnation), so undrained completions of a closed channel must not
    // be popped by a later channel on the same endpoint + queue — their
    // ctx values genuinely alias. Before the fix, the new consumer
    // observed the dead incarnation's entries through
    // has_event/cq_pop_for.
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let (ch_a, _ch_b, cq_a, _cq_b, ea, eb) = channel_pair(&mut w, kind, n0, n1);
        let ka = kbuf(&mut w, n0, 4096);
        let ctx = channel_send(&mut w, ch_a, 1, ka.iov(64)).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
        assert!(w.has_event(ea), "{kind:?}: completion waiting");
        // Close without draining; the entries become ghosts the moment the
        // endpoint is reused with the same queue.
        api::channel_close(&mut w, ch_a);
        let ch_a2 = channel_connect(&mut w, ea, eb, cq_a);
        assert!(
            !w.has_event(ea),
            "{kind:?}: new channel must not observe the dead incarnation"
        );
        assert!(w.take_event(ea).is_none(), "{kind:?}: nothing to pop");
        // The new channel's first context re-issues the very same pooled
        // value — completions must now be its own.
        let ctx2 = channel_send(&mut w, ch_a2, 2, ka.iov(64)).unwrap();
        assert_eq!(
            ctx, ctx2,
            "{kind:?}: pooled slot 0 aliases across incarnations"
        );
        knet_simcore::run_to_quiescence(&mut w);
        match await_cq(&mut w, cq_a, ea) {
            TransportEvent::SendDone { ctx: c } => assert_eq!(c, ctx2, "{kind:?}"),
            other => panic!("{kind:?}: {other:?}"),
        }
    }
}

#[test]
fn destroy_cq_detaches_its_consumers() {
    // Before the fix, destroying a queue left routes pointing at the dead
    // CqId: cq_of/has_event observed a queue that no longer existed and
    // traffic was silently dropped forever. Now the consumers deregister
    // and events park for the next binding.
    let (mut w, n0, n1) = two_nodes();
    let cq = w.new_cq();
    let ea = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let eb = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    assert_eq!(w.registry.cq_of(ea), Some(cq));
    w.registry.destroy_cq(cq);
    assert_eq!(
        w.registry.cq_of(ea),
        None,
        "no route may observe the dead queue"
    );
    assert!(!w.has_event(ea));
    // Traffic for the endpoint now parks instead of vanishing.
    let cq_b = w.new_cq();
    let ch_b = channel_connect(&mut w, eb, ea, cq_b);
    let kb = kbuf(&mut w, n1, 4096);
    channel_send(&mut w, ch_b, 3, kb.iov(32)).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(
        w.registry.parked_len(ea) > 0,
        "events park for the next consumer instead of dropping"
    );
    // A fresh queue picks the parked traffic up.
    let cq2 = w.new_cq();
    w.attach_cq(ea, cq2);
    assert!(w.has_event(ea), "parked events replay into the new queue");
}

#[test]
fn shrinking_the_send_queue_cap_fails_excess_parked_sends() {
    // Shrinking the backpressure cap below queued_len used to strand the
    // excess silently: they stayed parked but uncounted against the new
    // cap. Now they complete deterministically as SendFailed
    // (SendQueueFull), newest first.
    let (mut w, n0, n1) = (
        ClusterBuilder::new()
            .gm_params(GmParams {
                send_tokens: 1,
                ..GmParams::default()
            })
            .build(),
        NodeId(0),
        NodeId(1),
    );
    let (ch_a, _ch_b, cq_a, _cq_b, ea, _eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    let mut ctxs = Vec::new();
    for i in 0..5u64 {
        ctxs.push(channel_send(&mut w, ch_a, i, ka.iov(16)).unwrap());
    }
    assert_eq!(w.registry.channel(ch_a).unwrap().queued_len(), 4);
    channel_set_send_queue_cap(&mut w, ch_a, 2);
    assert_eq!(
        w.registry.channel(ch_a).unwrap().queued_len(),
        2,
        "the queue respects the new cap"
    );
    let mut failed = Vec::new();
    while let Some(e) = w.registry.cq_pop_for(cq_a, ea) {
        if let TransportEvent::SendFailed { ctx, error } = e.event {
            assert_eq!(error, NetError::SendQueueFull);
            failed.push(ctx);
        }
    }
    assert_eq!(
        failed,
        vec![ctxs[4], ctxs[3]],
        "excess sends fail newest-first with SendQueueFull"
    );
    // The survivors still go out in order.
    knet_simcore::run_to_quiescence(&mut w);
    let mut done = Vec::new();
    while let Some(e) = w.registry.cq_pop_for(cq_a, ea) {
        if let TransportEvent::SendDone { ctx } = e.event {
            done.push(ctx);
        }
    }
    assert_eq!(done, ctxs[..3], "in-cap sends complete normally");
}

#[test]
fn cap_shrink_evicts_within_each_tenant_never_across() {
    // The send-queue cap is per tenant lane. Shrinking it must evict
    // newest-first *within* each over-cap lane and never let one tenant's
    // backlog push out another tenant's parked sends.
    let (mut w, n0, n1) = (
        ClusterBuilder::new()
            .gm_params(GmParams {
                send_tokens: 1,
                ..GmParams::default()
            })
            .build(),
        NodeId(0),
        NodeId(1),
    );
    let (ch_a, _ch_b, cq_a, _cq_b, ea, _eb) = channel_pair(&mut w, TransportKind::Gm, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);

    // Four sends under the default tenant: one takes the only token, three
    // park in the default lane.
    let mut a_ctxs = Vec::new();
    for i in 0..4u64 {
        a_ctxs.push(channel_send(&mut w, ch_a, i, ka.iov(16)).unwrap());
    }
    // Re-tag the endpoint and park four more in tenant b's lane. Parked
    // sends keep the lane they joined under.
    let tb = w.registry.tenant_create("b", 2);
    w.assign_tenant(ea, tb);
    let mut b_ctxs = Vec::new();
    for i in 10..14u64 {
        b_ctxs.push(channel_send(&mut w, ch_a, i, ka.iov(16)).unwrap());
    }
    let ch = w.registry.channel(ch_a).unwrap();
    assert_eq!(ch.queued_len_for(TenantId::DEFAULT), 3);
    assert_eq!(ch.queued_len_for(tb), 4);

    api::channel_set_send_queue_cap(&mut w, ch_a, 2);

    let ch = w.registry.channel(ch_a).unwrap();
    assert_eq!(
        ch.queued_len_for(TenantId::DEFAULT),
        2,
        "default lane trimmed to the cap, not drained for tenant b"
    );
    assert_eq!(
        ch.queued_len_for(tb),
        2,
        "tenant b's lane trimmed to the cap independently"
    );
    let mut failed = Vec::new();
    while let Some(e) = w.registry.cq_pop_for(cq_a, ea) {
        if let TransportEvent::SendFailed { ctx, error } = e.event {
            assert_eq!(error, NetError::SendQueueFull);
            failed.push(ctx);
        }
    }
    assert_eq!(
        failed,
        vec![a_ctxs[3], b_ctxs[3], b_ctxs[2]],
        "each lane evicts its own newest; survivors belong to both tenants"
    );
    // Every surviving send still completes.
    knet_simcore::run_to_quiescence(&mut w);
    let mut done = Vec::new();
    while let Some(e) = w.registry.cq_pop_for(cq_a, ea) {
        if let TransportEvent::SendDone { ctx } = e.event {
            done.push(ctx);
        }
    }
    let mut expected = vec![a_ctxs[0], a_ctxs[1], a_ctxs[2], b_ctxs[0], b_ctxs[1]];
    expected.sort_unstable();
    done.sort_unstable();
    assert_eq!(done, expected, "both lanes drain after the shrink");
}

#[test]
fn ghost_purge_covers_reuse_with_a_different_queue() {
    // The aliasing hazard doesn't care which queue the *new* channel
    // feeds: ghosts live wherever the old incarnation accumulated. Reuse
    // the endpoint with a different CQ (and then with a handler-backed
    // channel) and assert the old queue's entries for it are gone.
    let (mut w, n0, n1) = two_nodes();
    let (ch_a, _ch_b, cq_a, _cq_b, ea, eb) = channel_pair(&mut w, TransportKind::Mx, n0, n1);
    let ka = kbuf(&mut w, n0, 4096);
    channel_send(&mut w, ch_a, 1, ka.iov(64)).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert_eq!(w.registry.cq_len_for(cq_a, ea), 1, "ghost staged in cq_a");
    api::channel_close(&mut w, ch_a);
    // Reuse with a *different* queue: the ghost in cq_a must still die.
    let cq_new = w.new_cq();
    let ch_a2 = channel_connect(&mut w, ea, eb, cq_new);
    assert_eq!(
        w.registry.cq_len_for(cq_a, ea),
        0,
        "old queue holds no ghosts for the recycled endpoint"
    );
    // And again via a handler-backed incarnation (no queue at all).
    channel_send(&mut w, ch_a2, 2, ka.iov(64)).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert_eq!(w.registry.cq_len_for(cq_new, ea), 1);
    api::channel_close(&mut w, ch_a2);
    channel_connect_handler(&mut w, ea, eb, "probe", |_w, _ep, _ev| {});
    assert_eq!(
        w.registry.cq_len_for(cq_new, ea),
        0,
        "handler-backed reuse also purges the previous queue"
    );
}

//! The multi-tenant isolation proof: a noisy-neighbor tenant blasting at
//! **10× its token rate** cannot move a latency-sensitive tenant's p99 by
//! more than the documented bound (5×), and the whole experiment is
//! deterministic per seed and bit-identical at every shard count.
//!
//! Why 5× and not 1×: WDRR and the token bucket schedule *message
//! admission*, not wire occupancy — once a blast packet is on the link, a
//! victim packet behind it waits one MTU serialization. The bound absorbs
//! a couple of those (each ≈ the victim's whole baseline RTT) plus the
//! WDRR quantum; what it provably excludes is queue-length-proportional
//! inflation, which is what an unscheduled FIFO would produce at 10×
//! overload (the blast backlog is ~10× the victim's, so a shared FIFO
//! would inflate p99 by orders of magnitude, not single digits).
//!
//! Token-bucket edge cases ride along: a zero-rate tenant is a typed
//! always-shed (`NetError::Overload`), burst credit is consumed exactly at
//! the epoch boundary (unit-tested in `knet_simnic::qos`), and refill is
//! virtual-time only — the shard matrix here is the proof that wall-clock
//! thread interleaving never leaks into bucket state.

use knet::build::ClusterBuilder;
use knet::workload::{run_sharded, run_solo, ClassSpec, WorkloadSpec};
use knet::world::ClusterWorld;
use knet_core::api::{channel_connect, channel_send};
use knet_core::NetError;
use knet_mx::MxEndpointConfig;
use knet_simcore::SimTime;
use knet_simnic::QosPolicy;
use knet_simos::{CpuModel, NodeId};

const NODES: usize = 3;
const DOCUMENTED_P99_BOUND: f64 = 5.0;

fn builder() -> ClusterBuilder {
    ClusterBuilder::new()
        .nodes(NODES, CpuModel::xeon_2600())
        .mem_frames(65_536)
}

fn victim() -> ClassSpec {
    ClassSpec {
        name: "victim".into(),
        weight: 8,
        rate_bytes_per_sec: 0,
        burst_bytes: 0,
        msg_bytes: 512,
        clients: 64,
        mean_gap: SimTime::from_millis(10),
        alpha_milli: 1400,
    }
}

/// Token rate 4 MB/s, offered ~40 MB/s — ten times the admitted rate.
fn blast() -> ClassSpec {
    ClassSpec {
        name: "blast".into(),
        weight: 1,
        rate_bytes_per_sec: 4_000_000,
        burst_bytes: 65_536,
        msg_bytes: 4096,
        clients: 128,
        mean_gap: SimTime::from_millis(9),
        alpha_milli: 1500,
    }
}

fn spec(seed: u64, classes: Vec<ClassSpec>) -> WorkloadSpec {
    WorkloadSpec {
        seed,
        horizon: SimTime::from_millis(100),
        server_node: NodeId(0),
        client_nodes: vec![NodeId(1), NodeId(2)],
        classes,
    }
}

/// Fold every node's tenant-scheduler slice (channel WDRR lanes, driver
/// pacing lanes, NIC token buckets) from its authoritative world.
fn fold_fingerprint<'a>(world_of: impl Fn(u32) -> &'a ClusterWorld) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for node in 0..NODES as u32 {
        world_of(node).tenant_fingerprint_node(NodeId(node), |v| {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        });
    }
    h
}

#[test]
fn noisy_neighbor_cannot_blow_victim_p99() {
    let seed = 0xC0FFEE;

    let mut w_base = builder().build();
    let baseline = run_solo(&mut w_base, &spec(seed, vec![victim()]));
    let base_v = &baseline[0];
    assert!(
        base_v.completed > 300,
        "baseline victim must complete a real sample set, got {}",
        base_v.completed
    );
    assert_eq!(base_v.shed, 0, "unthrottled victim must never shed");
    assert!(base_v.p99_us > 0.0);

    let mut w_cont = builder().build();
    let contended = run_solo(&mut w_cont, &spec(seed, vec![victim(), blast()]));
    let (cont_v, cont_b) = (&contended[0], &contended[1]);

    // The blast tenant really is overloaded: a big slice of its offered
    // load must be refused by admission control (pacing queue at cap).
    assert!(
        cont_b.shed * 2 > cont_b.sent,
        "blast at 10x token rate must shed most of its load, shed {} of {}",
        cont_b.shed,
        cont_b.sent
    );
    assert_eq!(cont_v.shed, 0, "victim must never be shed by blast traffic");
    assert_eq!(
        cont_v.sent, base_v.sent,
        "open loop: victim offers the same load with or without the blast"
    );

    let inflation = cont_v.p99_us / base_v.p99_us;
    assert!(
        inflation <= DOCUMENTED_P99_BOUND,
        "victim p99 inflated {inflation:.2}x (baseline {:.1}us, contended {:.1}us), bound {DOCUMENTED_P99_BOUND}x",
        base_v.p99_us,
        cont_v.p99_us
    );
}

/// Same seed ⇒ bit-identical reports (counts and exact percentiles).
#[test]
fn isolation_experiment_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut w = builder().build();
        format!(
            "{:?}",
            run_solo(&mut w, &spec(seed, vec![victim(), blast()]))
        )
    };
    assert_eq!(run(7), run(7));
    assert_ne!(
        run(7),
        run(8),
        "different seeds must actually change the sampled arrivals"
    );
}

/// The contended experiment is bit-identical at shard counts 1, 2 and 4:
/// same per-tenant reports (exact percentiles), same folded WDRR + token
/// bucket state. Token-bucket refill is virtual-time arithmetic, so thread
/// interleaving across shards cannot move a single bucket level.
#[test]
fn isolation_experiment_is_shard_invariant() {
    let seed = 0xBEEF;
    let mut solo = builder().build();
    let base_reports = format!(
        "{:?}",
        run_solo(&mut solo, &spec(seed, vec![victim(), blast()]))
    );
    let base_fp = fold_fingerprint(|_| &solo);

    for shards in [1usize, 2, 4] {
        let mut sc = builder().build_sharded(shards);
        let reports = format!(
            "{:?}",
            run_sharded(&mut sc, &spec(seed, vec![victim(), blast()]))
        );
        assert_eq!(reports, base_reports, "reports diverged at {shards} shards");
        let fp = fold_fingerprint(|node| sc.world(node));
        assert_eq!(fp, base_fp, "tenant state diverged at {shards} shards");
    }
}

/// A zero-rate policy is a typed kill switch: every send from the tenant
/// sheds synchronously with [`NetError::Overload`], while other tenants
/// (including the default) are untouched.
#[test]
fn zero_rate_tenant_always_sheds_typed_overload() {
    let mut w = builder().build();
    let dead = w.register_tenant(
        "dead",
        1,
        Some(QosPolicy {
            rate_bytes_per_sec: 0,
            burst_bytes: 65_536,
            ..QosPolicy::default()
        }),
    );

    let cq = w.new_cq();
    let a = w.open_mx(NodeId(0), MxEndpointConfig::kernel()).unwrap();
    let b = w.open_mx(NodeId(1), MxEndpointConfig::kernel()).unwrap();
    let ch_dead = channel_connect(&mut w, a, b, cq);
    w.assign_tenant(a, dead);

    let c = w.open_mx(NodeId(0), MxEndpointConfig::kernel()).unwrap();
    let d = w.open_mx(NodeId(1), MxEndpointConfig::kernel()).unwrap();
    let ch_free = channel_connect(&mut w, c, d, cq);

    let buf = knet::harness::kbuf(&mut w, NodeId(0), 4096);
    for _ in 0..5 {
        assert_eq!(
            channel_send(&mut w, ch_dead, 1, buf.iov(1024)),
            Err(NetError::Overload),
            "zero-rate tenant must shed synchronously"
        );
    }
    channel_send(&mut w, ch_free, 2, buf.iov(1024)).expect("default tenant rides free");
    knet_simcore::run_to_quiescence(&mut w);

    let st = w.stats_snapshot();
    assert_eq!(st.qos_shed, 5, "every zero-rate send counted as shed");
    let rows = w.tenant_stats();
    let dead_row = rows.iter().find(|r| r.name == "dead").unwrap();
    assert_eq!(dead_row.qos.shed, 5);
    assert_eq!(dead_row.qos.admitted, 0);
}

/// The per-tenant stats rows surface both halves of the story: channel
/// queueing counters and NIC admission counters, one row per tenant.
#[test]
fn tenant_stats_rows_cover_admission_and_queueing() {
    let mut w = builder().build();
    let reports = run_solo(&mut w, &spec(3, vec![victim(), blast()]));
    let rows = w.tenant_stats();
    let blast_row = rows.iter().find(|r| r.name == "blast").unwrap();
    let victim_row = rows.iter().find(|r| r.name == "victim").unwrap();
    assert!(blast_row.qos.deferred > 0, "blast must have been paced");
    assert!(blast_row.qos.shed > 0, "blast must have been shed");
    assert!(victim_row.qos.admitted == 0 && victim_row.qos.shed == 0);
    assert!(victim_row.channel.direct_sends > 0);
    let st = w.stats_snapshot();
    assert_eq!(
        st.qos_shed,
        rows.iter().map(|r| r.qos.shed).sum::<u64>(),
        "snapshot mirrors the per-tenant totals"
    );
    let _ = reports;
}

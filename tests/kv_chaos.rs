//! KV chaos: the replicated store under packet loss and node kills.
//!
//! The tentpole proof: a sharded primary/backup KV built *only* on the
//! typed RPC layer (deadlines, retries, idempotency keys, typed errors)
//! survives a mid-workload primary kill —
//!
//! * every acked write is readable from the promoted primary,
//! * no unacked write resurrects over a later acked one (epoch fencing),
//! * every in-flight operation resolves with a value or a typed error —
//!   nothing hangs,
//! * and the whole run is deterministic per seed (event counts and a
//!   full-state fingerprint reproduce exactly).
//!
//! Layout: node 0 hosts replica A, node 1 replica B, node 2 the client.
//! All shards start primaried on A with B as synchronous backup.

use knet::prelude::*;
use knet::ClusterEv;
use knet_simnic::FaultPlan;

struct Fx {
    w: ClusterWorld,
    client: KvClientId,
    r0: KvReplicaId,
    r1: KvReplicaId,
}

fn build_kv(plan: FaultPlan) -> Fx {
    let mut w = ClusterBuilder::new()
        .nodes(3, CpuModel::xeon_2600())
        .fault_plan(plan)
        .build();
    let (n0, n1, n2) = (NodeId(0), NodeId(1), NodeId(2));
    let ep = |w: &mut ClusterWorld, n| w.open_mx(n, MxEndpointConfig::kernel()).unwrap();

    let a_srv = ep(&mut w, n0);
    let b_srv = ep(&mut w, n1);
    let r0 = kv_replica_create(&mut w, a_srv, RpcServerConfig::default());
    let r1 = kv_replica_create(&mut w, b_srv, RpcServerConfig::default());

    let rpc_cfg = RpcClientConfig {
        policy: RetryPolicy {
            max_attempts: 4,
            attempt_timeout: SimTime::from_millis(2),
            ..Default::default()
        },
        ..Default::default()
    };
    let a_repl = ep(&mut w, n0);
    let b_repl = ep(&mut w, n1);
    kv_pair(&mut w, r0, a_repl, r1, b_repl, rpc_cfg);
    kv_add_shards(&mut w, 4, r0, Some(r1));

    let c0 = ep(&mut w, n2);
    let c1 = ep(&mut w, n2);
    let client = kv_client_create(&mut w, &[c0, c1], rpc_cfg);
    Fx { w, client, r0, r1 }
}

/// Drive a paced workload: `puts` writes (cycling over `keys` keys, every
/// value globally unique) interleaved 2:1 with reads, one op each 50 µs of
/// virtual time.
fn drive_workload(fx: &mut Fx, puts: usize, keys: usize) {
    let client = fx.client;
    for i in 0..puts {
        let t = SimTime::from_micros(50 * (i as u64 + 1));
        let key = format!("key-{}", i % keys).into_bytes();
        let val = format!("val-{:04}", i).into_bytes();
        knet_simcore::emit_at(
            &mut fx.w,
            2,
            t,
            ClusterEv::Call(Box::new(move |w: &mut ClusterWorld| {
                kv_put(w, client, &key, &val, None);
                if key[4] % 2 == 0 {
                    kv_get(w, client, &key, None);
                }
            })),
        );
    }
    run_to_quiescence(&mut fx.w);
}

fn assert_invariants(fx: &Fx, label: &str) {
    let kv = &fx.w.kv;
    assert_eq!(
        kv.outstanding_ops(),
        0,
        "{label}: every operation must resolve — nothing hangs"
    );
    assert_eq!(
        kv.outcomes.len() as u64,
        kv.stats.puts + kv.stats.gets,
        "{label}: one outcome per issued op, exactly"
    );
    let violations = kv_check(&fx.w);
    assert!(
        violations.is_empty(),
        "{label}: linearizability-lite violations:\n{}",
        violations.join("\n")
    );
    let st = fx.w.stats_snapshot();
    assert_eq!(
        st.engine_errors, 0,
        "{label}: engine errors are a hard fail"
    );
}

/// Loss-only matrix: with both replicas alive, the retry/idempotency
/// machinery must make *every* operation succeed — typed failures are for
/// dead peers and expired deadlines, not for survivable loss.
#[test]
fn kv_loss_matrix_every_op_succeeds() {
    for loss_pct in [1u64, 5, 10] {
        for seed in [11u64, 12] {
            let plan = FaultPlan::new(seed ^ (loss_pct << 8))
                .with_drop(loss_pct as f64 / 100.0)
                .with_dup(0.03);
            let mut fx = build_kv(plan);
            drive_workload(&mut fx, 40, 8);
            assert_invariants(&fx, &format!("loss={loss_pct}% seed={seed}"));
            assert_eq!(
                fx.w.kv.stats.failures, 0,
                "loss={loss_pct}% seed={seed}: survivable loss must not fail ops"
            );
            assert_eq!(fx.w.kv.stats.acks, 40);
            // Synchronous replication: both stores converge to identical
            // contents while both replicas live.
            assert_eq!(
                fx.w.kv.store_dump(fx.r0),
                fx.w.kv.store_dump(fx.r1),
                "loss={loss_pct}% seed={seed}: replicas diverged"
            );
        }
    }
}

/// Reads are served by both replicas, not just the primary.
#[test]
fn kv_reads_spread_over_both_replicas() {
    let mut fx = build_kv(FaultPlan::new(7));
    drive_workload(&mut fx, 40, 4);
    assert_invariants(&fx, "read-spread");
    let a = rpc_server_stats(&fx.w, fx.w.kv.replica_server(fx.r0));
    let b = rpc_server_stats(&fx.w, fx.w.kv.replica_server(fx.r1));
    assert!(a.requests > 0, "primary served requests");
    // The backup sees every REPL plus its share of the GETs.
    assert!(
        b.requests > fx.w.kv.stats.acks,
        "backup must serve reads on top of replication traffic (saw {})",
        b.requests
    );
}

/// The headline scenario: a lossy fabric AND the primary's node killed
/// mid-workload. The backup must promote (epoch bump), clients must
/// re-resolve and reissue, and every acked write must be readable from
/// the promoted primary.
fn primary_kill_scenario(seed: u64, loss_pct: u64) -> (u64, u64) {
    let plan = FaultPlan::new(seed)
        .with_drop(loss_pct as f64 / 100.0)
        .with_kill(NodeId(0), SimTime::from_millis(1));
    let mut fx = build_kv(plan);
    drive_workload(&mut fx, 60, 6);

    let label = format!("kill seed={seed} loss={loss_pct}%");
    assert_invariants(&fx, &label);

    let kv = &fx.w.kv;
    assert!(
        kv.stats.promotions >= 1,
        "{label}: the backup must promote after the kill"
    );
    assert!(!kv.replica_alive(fx.r0), "{label}: replica A reported dead");
    for (i, sh) in kv.shards.iter().enumerate() {
        assert_eq!(
            sh.primary, fx.r1.0,
            "{label}: shard {i} must be primaried on the promoted backup"
        );
        assert!(
            sh.epoch >= 2,
            "{label}: failover must advance shard {i}'s epoch"
        );
        assert_eq!(
            sh.backup, None,
            "{label}: shard {i} runs solo after the kill"
        );
    }
    // The workload outlives the blackout: writes acked after the kill
    // instant exist, and they were acked by the new primary.
    assert!(
        kv.stats.acks > 0,
        "{label}: acked writes must exist across the failover"
    );
    // Typed resolution only: any failed op died of deadline, budget or
    // the dead peer — all represented in the outcome record.
    for o in &kv.outcomes {
        if let Err(e) = &o.result {
            assert!(
                matches!(
                    e,
                    RpcError::PeerUnreachable | RpcError::Deadline | RpcError::Overload
                ),
                "{label}: unexpected typed error {e:?} for op {}",
                o.op
            );
        }
    }
    (kv_fingerprint(&fx.w), fx.w.engine_stats().executed)
}

#[test]
fn kv_survives_primary_kill_mid_workload() {
    for (seed, loss) in [(0xDEAD_0001u64, 2u64), (0xDEAD_0002, 5), (0xDEAD_0003, 8)] {
        primary_kill_scenario(seed, loss);
    }
}

/// Same seed ⇒ same simulation: the full-state fingerprint (stores, shard
/// map, outcome record) and the executed-event count reproduce exactly.
#[test]
fn kv_failover_is_deterministic_per_seed() {
    let a = primary_kill_scenario(0x5EED_CAFE, 6);
    let b = primary_kill_scenario(0x5EED_CAFE, 6);
    assert_eq!(a, b, "fingerprint and event count must match run for run");
}

/// Fixed-seed smoke entry for CI: loss rate from `CHAOS_LOSS_PCT`
/// (default 5), everything else fixed — one deterministic failover pass.
#[test]
fn kv_chaos_smoke_fixed_seed() {
    let loss: u64 = std::env::var("CHAOS_LOSS_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    primary_kill_scenario(0xC0FF_EE00, loss);
}

/// Writes with a deadline too short for a degraded fabric must fail
/// *typed* — and an op that failed `Deadline` must never later surface
/// as an ack (exactly-once bookkeeping).
#[test]
fn kv_deadline_failures_stay_failed() {
    let plan = FaultPlan::new(0xD0D0).with_kill(NodeId(0), SimTime::ZERO);
    let mut fx = build_kv(plan);
    let client = fx.client;
    // Primary dead from t=0; deadline far below the ~8 ms the RPC layer
    // needs to declare the peer dead: these writes must die of Deadline.
    for i in 0..6 {
        let key = format!("k{i}").into_bytes();
        kv_put(
            &mut fx.w,
            client,
            &key,
            b"doomed",
            Some(SimTime::from_millis(1)),
        );
    }
    run_to_quiescence(&mut fx.w);
    let kv = &fx.w.kv;
    assert_eq!(kv.outstanding_ops(), 0, "typed resolution, no hangs");
    assert_eq!(
        kv.stats.acks, 0,
        "nothing can be acked under these deadlines"
    );
    assert_eq!(kv.stats.failures, 6);
    for o in &kv.outcomes {
        assert!(
            matches!(
                o.result,
                Err(RpcError::Deadline | RpcError::PeerUnreachable)
            ),
            "unexpected outcome {:?}",
            o.result
        );
    }
    assert_eq!(fx.w.stats_snapshot().engine_errors, 0);
}

//! RPC deadline semantics at the edges, plus the base round-trip contract.
//!
//! Deadlines are *absolute virtual-time* points carried on the wire. The
//! edges pinned here:
//!
//! * already expired at submit → typed `Deadline` through the normal
//!   completion path, zero wire traffic;
//! * expiring while the send sits in the channel's backpressure queue →
//!   the queued send is withdrawn (`channel_abort_queued_send`), the call
//!   resolves `Deadline`, nothing leaks;
//! * deadline racing the retry/backoff schedule → whichever fires first
//!   resolves the call exactly once, typed;
//! * a proptest over randomized virtual-time schedules (deadlines, loss,
//!   payload sizes): every call resolves exactly once, engine error
//!   counter stays zero.

use std::sync::{Arc, Mutex};

use knet::prelude::*;
use knet_simnic::FaultPlan;
use proptest::prelude::*;

/// (call, result, resolution virtual time in ns). Quiescence keeps
/// draining stale timers after the last resolution, so assertions about
/// *when* a call resolved must use the recorded stamp, not final `now()`.
type Done = Arc<Mutex<Vec<(RpcCall, Result<u64, RpcError>, u64)>>>;

fn sink_into(done: &Done) -> RpcSink<ClusterWorld> {
    let d = done.clone();
    RpcSink::Handler(Arc::new(
        move |w: &mut ClusterWorld, comp: RpcCompletion| {
            let t = now(w).nanos();
            d.lock().unwrap().push((comp.call, comp.result, t));
        },
    ))
}

/// Echo server on `n1`, client on `n0`.
fn echo_pair(
    w: &mut ClusterWorld,
    n0: NodeId,
    n1: NodeId,
    ccfg: RpcClientConfig,
    done: &Done,
) -> (RpcClientId, RpcServerId) {
    let sep = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    let sid = rpc_server_create(
        w,
        sep,
        "echo",
        RpcServerConfig::default(),
        |_w, _req, payload, resp| {
            resp.extend_from_slice(payload);
            RpcOutcome::Reply
        },
        |_w, _node| {},
    )
    .unwrap();
    let cid = rpc_client_create(w, cep, sep, "cli", sink_into(done), ccfg).unwrap();
    (cid, sid)
}

/// A server that accepts requests and never answers them (defers and
/// leaks the token) — the client's timers are the only way out.
fn black_hole(w: &mut ClusterWorld, n1: NodeId) -> Endpoint {
    let sep = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    rpc_server_create(
        w,
        sep,
        "blackhole",
        RpcServerConfig::default(),
        |_w, _req, _payload, _resp| RpcOutcome::Defer,
        |_w, _node| {},
    )
    .unwrap();
    sep
}

#[test]
fn echo_roundtrip_completes_and_collects() {
    let (mut w, n0, n1) = knet::build::two_nodes();
    let done: Done = Default::default();
    let (cid, sid) = echo_pair(&mut w, n0, n1, RpcClientConfig::default(), &done);

    let call = rpc_call(&mut w, cid, 7, b"hello rpc", RpcCallOpts::default()).unwrap();
    run_to_quiescence(&mut w);

    let d = done.lock().unwrap().clone();
    assert_eq!(d.len(), 1, "exactly one completion");
    assert_eq!(d[0].0, call);
    assert_eq!(d[0].1, Ok(9));
    assert!(d[0].2 > 0, "resolution strictly after submit");

    let mut out = Vec::new();
    assert_eq!(rpc_collect(&mut w, cid, call, &mut out), Some(9));
    assert_eq!(&out, b"hello rpc");
    // Collect frees the slot: a second collect misses.
    assert_eq!(rpc_collect(&mut w, cid, call, &mut out), None);

    assert_eq!(rpc_server_stats(&w, sid).requests, 1);
    assert_eq!(rpc_client_stats(&w, cid).completed, 1);
    assert_eq!(w.stats_snapshot().rpc_completed, 1);
    assert_eq!(w.stats_snapshot().engine_errors, 0);
}

#[test]
fn expired_at_submit_resolves_typed_without_wire_traffic() {
    let (mut w, n0, n1) = knet::build::two_nodes();
    // Move virtual time forward so a deadline strictly in the past exists.
    knet_simcore::emit_after(
        &mut w,
        n0.0,
        SimTime::from_millis(5),
        ClusterEv_call(|_| {}),
    );
    run_to_quiescence(&mut w);

    let done: Done = Default::default();
    let (cid, sid) = echo_pair(&mut w, n0, n1, RpcClientConfig::default(), &done);

    let opts = RpcCallOpts {
        deadline: Some(SimTime::from_millis(1)), // long past
        ..Default::default()
    };
    let call = rpc_call(&mut w, cid, 1, b"dead on arrival", opts).unwrap();
    run_to_quiescence(&mut w);

    let d = done.lock().unwrap().clone();
    assert_eq!(d.len(), 1);
    assert_eq!((d[0].0, d[0].1), (call, Err(RpcError::Deadline)));
    // The wire never saw it: the server never got a request, and the
    // client never transmitted (no retries either).
    assert_eq!(rpc_server_stats(&w, sid).requests, 0);
    let cs = rpc_client_stats(&w, cid);
    assert_eq!(cs.expired_at_submit, 1);
    assert_eq!(cs.retries, 0);
    assert_eq!(cs.deadline_failures, 1);
    // The slot is free again: the window is not leaked.
    assert_eq!(w.rpc.clients[cid.0 as usize].outstanding(), 0);
}

/// Boxed cold-path event helper (test-only; keeps the imports small).
#[allow(non_snake_case)]
fn ClusterEv_call(f: impl FnOnce(&mut ClusterWorld) + Send + 'static) -> knet::ClusterEv {
    knet::ClusterEv::Call(Box::new(f))
}

#[test]
fn deadline_expiring_in_send_backpressure_queue_aborts_the_queued_send() {
    // GM is the transport with a bounded send-token pool; one token
    // serializes the wire, so a burst parks in the channel's
    // backpressure queue where the deadline can catch it.
    let mut w = ClusterBuilder::new()
        .gm_params(GmParams {
            send_tokens: 1,
            ..Default::default()
        })
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let done: Done = Default::default();

    let gm_cfg = GmPortConfig::kernel()
        .with_physical_api()
        .with_regcache(4096);
    let sep = w.open_gm(n1, gm_cfg.clone()).unwrap();
    let cep = w.open_gm(n0, gm_cfg).unwrap();
    rpc_server_create(
        &mut w,
        sep,
        "echo",
        RpcServerConfig::default(),
        |_w, _req, payload, resp| {
            resp.extend_from_slice(payload);
            RpcOutcome::Reply
        },
        |_w, _node| {},
    )
    .unwrap();
    let ccfg = RpcClientConfig {
        window: 256,
        req_cap: 8192,
        ..Default::default()
    };
    let cid = rpc_client_create(&mut w, cep, sep, "cli", sink_into(&done), ccfg).unwrap();

    // The deadline is far shorter than the time the serialized queue
    // needs to drain 64 × 4 kB.
    let opts = RpcCallOpts {
        deadline: Some(SimTime::from_micros(120)),
        ..Default::default()
    };
    let mut calls = Vec::new();
    for i in 0..64u64 {
        let payload = vec![i as u8; 4096];
        calls.push(rpc_call(&mut w, cid, 2, &payload, opts).unwrap());
    }
    run_to_quiescence(&mut w);

    let d = done.lock().unwrap().clone();
    assert_eq!(d.len(), calls.len(), "every call resolves exactly once");
    let deadline_failures = d
        .iter()
        .filter(|(_, r, _)| *r == Err(RpcError::Deadline))
        .count();
    assert!(
        deadline_failures > 0,
        "some calls must die in the backpressure queue"
    );
    let st = w.stats_snapshot();
    assert!(
        st.aborted_queued_sends > 0,
        "expired queued sends must be withdrawn, not left to transmit: {:?}",
        st
    );
    assert_eq!(st.engine_errors, 0);
    assert_eq!(w.rpc.clients[cid.0 as usize].outstanding(), 0);
}

#[test]
fn deadline_beats_slower_retry_schedule() {
    let (mut w, n0, n1) = knet::build::two_nodes();
    let done: Done = Default::default();
    let sep = black_hole(&mut w, n1);
    let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    // Attempt timer 2 ms; deadline 500 µs — the deadline must fire first.
    let cid = rpc_client_create(
        &mut w,
        cep,
        sep,
        "cli",
        sink_into(&done),
        RpcClientConfig::default(),
    )
    .unwrap();
    let opts = RpcCallOpts {
        deadline: Some(SimTime::from_micros(500)),
        ..Default::default()
    };
    let call = rpc_call(&mut w, cid, 3, b"x", opts).unwrap();
    run_to_quiescence(&mut w);

    let d = done.lock().unwrap().clone();
    assert_eq!(d.len(), 1);
    assert_eq!((d[0].0, d[0].1), (call, Err(RpcError::Deadline)));
    let cs = rpc_client_stats(&w, cid);
    assert_eq!(cs.retries, 0, "no retransmission before a 2 ms timer");
    assert_eq!(d[0].2, 500_000, "resolution exactly at the deadline");
}

#[test]
fn retry_budget_beats_slower_deadline() {
    let (mut w, n0, n1) = knet::build::two_nodes();
    let done: Done = Default::default();
    let sep = black_hole(&mut w, n1);
    let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    let ccfg = RpcClientConfig {
        policy: RetryPolicy {
            max_attempts: 2,
            attempt_timeout: SimTime::from_micros(300),
            base_backoff: SimTime::from_micros(50),
            max_backoff: SimTime::from_micros(100),
        },
        ..Default::default()
    };
    let cid = rpc_client_create(&mut w, cep, sep, "cli", sink_into(&done), ccfg).unwrap();
    // Deadline far beyond what two 300 µs attempts need.
    let opts = RpcCallOpts {
        deadline: Some(SimTime::from_millis(50)),
        ..Default::default()
    };
    let call = rpc_call(&mut w, cid, 3, b"x", opts).unwrap();
    run_to_quiescence(&mut w);

    let d = done.lock().unwrap().clone();
    assert_eq!(d.len(), 1);
    assert_eq!((d[0].0, d[0].1), (call, Err(RpcError::PeerUnreachable)));
    let cs = rpc_client_stats(&w, cid);
    assert_eq!(cs.retries, 1, "one retransmission then the budget is spent");
    assert!(
        d[0].2 < 50_000_000,
        "resolved by the retry budget, not the deadline (at {} ns)",
        d[0].2
    );
}

#[test]
fn cancellation_is_typed_and_idempotent() {
    let (mut w, n0, n1) = knet::build::two_nodes();
    let done: Done = Default::default();
    let sep = black_hole(&mut w, n1);
    let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    let cid = rpc_client_create(
        &mut w,
        cep,
        sep,
        "cli",
        sink_into(&done),
        RpcClientConfig::default(),
    )
    .unwrap();
    let call = rpc_call(&mut w, cid, 4, b"will cancel", RpcCallOpts::default()).unwrap();
    assert!(rpc_cancel(&mut w, cid, call), "pending call cancels");
    assert!(!rpc_cancel(&mut w, cid, call), "second cancel is a no-op");
    run_to_quiescence(&mut w);

    let d = done.lock().unwrap().clone();
    assert_eq!(d.len(), 1);
    assert_eq!((d[0].0, d[0].1), (call, Err(RpcError::Cancelled)));
    assert_eq!(rpc_client_stats(&w, cid).cancelled, 1);
    assert_eq!(w.stats_snapshot().engine_errors, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized virtual-time schedules: mixed deadlines (some
    /// satisfiable, some not), mixed payload sizes, a lossy wire. The
    /// invariants: every call resolves exactly once with a typed result,
    /// `Ok` calls echo byte-exactly, the engine error counter stays zero,
    /// and the call window fully drains.
    #[test]
    fn every_call_resolves_exactly_once_under_random_schedules(
        seed in 1u64..5000,
        loss_pct in 0u64..10,
        deadlines_us in proptest::collection::vec(50u64..5_000, 4..16),
    ) {
        let mut w = ClusterBuilder::new()
            .fault_plan(FaultPlan::new(seed).with_drop(loss_pct as f64 / 100.0))
            .build();
        let (n0, n1) = (NodeId(0), NodeId(1));
        let done: Done = Default::default();
        let ccfg = RpcClientConfig {
            window: 64,
            policy: RetryPolicy {
                max_attempts: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let (cid, _sid) = echo_pair(&mut w, n0, n1, ccfg, &done);

        let mut expect = Vec::new();
        for (i, us) in deadlines_us.iter().enumerate() {
            let payload = vec![(i as u8).wrapping_mul(31); 1 + (i * 97) % 900];
            let opts = RpcCallOpts {
                deadline: Some(SimTime::from_micros(*us)),
                ..Default::default()
            };
            let call = rpc_call(&mut w, cid, i as u16, &payload, opts).unwrap();
            expect.push((call, payload));
        }
        run_to_quiescence(&mut w);

        let d = done.lock().unwrap().clone();
        prop_assert_eq!(d.len(), expect.len(), "each call resolves exactly once");
        for (call, payload) in &expect {
            let got: Vec<_> = d.iter().filter(|(c, _, _)| c == call).collect();
            prop_assert_eq!(got.len(), 1);
            match got[0].1 {
                Ok(len) => {
                    prop_assert_eq!(len, payload.len() as u64);
                    let mut out = Vec::new();
                    prop_assert_eq!(
                        rpc_collect(&mut w, cid, *call, &mut out),
                        Some(payload.len() as u64)
                    );
                    prop_assert_eq!(&out, payload);
                }
                Err(e) => {
                    // Typed failures only; this workload can only die of
                    // time or budget.
                    prop_assert!(
                        matches!(e, RpcError::Deadline | RpcError::PeerUnreachable),
                        "unexpected error {:?}", e
                    );
                }
            }
        }
        prop_assert_eq!(w.rpc.clients[cid.0 as usize].outstanding(), 0);
        prop_assert_eq!(w.stats_snapshot().engine_errors, 0);
    }
}

//! The selective-repeat reliability layer vs a reference delivery model.
//!
//! The contract `knet_simnic::rel` owes the drivers is simple to state:
//! over any fabric the fault plan can produce (loss, duplication,
//! delay-reorder — short of a dead node), every sequenced packet handed to
//! `rel_send` is delivered to the remote driver **exactly once and
//! byte-exact**, the sender's unacked window never exceeds its cap, and a
//! link whose packets never arrive dies after exactly its retry budget.
//! This suite drives the real state machine — both window halves, the
//! control-stream acks, the adaptive RTO — over randomized fault schedules
//! and checks it against that model packet by packet. (White-box
//! properties, like "a SACKed packet is never retransmitted", live next to
//! the state machine in `crates/simnic/src/rel.rs`; here we observe the
//! black-box contract plus the stats the SACK machinery exposes.)

use knet_simcore::{run_to_quiescence, run_until, Scheduler, SimTime, SimWorld};
use knet_simnic::{
    rel_on_packet, rel_send, FaultPlan, NicId, NicLayer, NicModel, NicWorld, Packet, Proto,
    RelVerdict,
};
use knet_simos::{CpuModel, OsLayer, OsWorld};
use proptest::prelude::*;

/// A minimal composed world: the NIC fabric with the reliability layer,
/// and a "driver" that records every fresh delivery.
struct RelWorld {
    sched: Scheduler<RelWorld>,
    os: OsLayer,
    nics: NicLayer,
    /// Fresh (non-duplicate) deliveries, as `(packet index, payload)`.
    delivered: Vec<(u64, Vec<u8>)>,
    /// Dead-link upcalls.
    dead: Vec<(Proto, NicId, NicId)>,
}

impl SimWorld for RelWorld {
    type Ev = knet_simcore::BoxEvent<Self>;
    fn sched(&self) -> &Scheduler<Self> {
        &self.sched
    }
    fn sched_mut(&mut self) -> &mut Scheduler<Self> {
        &mut self.sched
    }
}
impl OsWorld for RelWorld {
    fn os(&self) -> &OsLayer {
        &self.os
    }
    fn os_mut(&mut self) -> &mut OsLayer {
        &mut self.os
    }
}
impl NicWorld for RelWorld {
    fn nics(&self) -> &NicLayer {
        &self.nics
    }
    fn nics_mut(&mut self) -> &mut NicLayer {
        &mut self.nics
    }
    fn nic_rx(&mut self, _nic: NicId, pkt: Packet) {
        // Exactly what the drivers do first with every inbound packet.
        if rel_on_packet(self, &pkt) == RelVerdict::Consumed {
            return;
        }
        self.delivered.push((pkt.meta[0], pkt.payload.to_vec()));
    }
    fn nic_link_dead(&mut self, proto: Proto, local: NicId, remote: NicId) {
        self.dead.push((proto, local, remote));
    }
}

fn world() -> (RelWorld, NicId, NicId) {
    let mut w = RelWorld {
        sched: Scheduler::new(),
        os: OsLayer::new(),
        nics: NicLayer::new(),
        delivered: Vec::new(),
        dead: Vec::new(),
    };
    let n0 = w.os.add_node(CpuModel::xeon_2600(), 64);
    let n1 = w.os.add_node(CpuModel::xeon_2600(), 64);
    let a = w.nics.add_nic(n0, NicModel::pci_xd());
    let b = w.nics.add_nic(n1, NicModel::pci_xd());
    (w, a, b)
}

/// The reference side: payload of packet `idx` in a stream seeded `s`.
fn payload(s: u64, idx: u64) -> Vec<u8> {
    let len = 1 + ((s ^ idx.wrapping_mul(0x9E37_79B9)) % 300) as usize;
    (0..len)
        .map(|j| {
            (s as u8)
                .wrapping_add((idx as u8).wrapping_mul(31))
                .wrapping_add(j as u8)
        })
        .collect()
}

fn send_stream(w: &mut RelWorld, a: NicId, b: NicId, s: u64, n: u64) {
    for idx in 0..n {
        let pkt = Packet::new(
            a,
            b,
            Proto::Gm,
            0,
            [idx, 0, 0, 0],
            bytes::Bytes::from(payload(s, idx)),
            16,
        );
        rel_send(w, pkt, SimTime::ZERO);
    }
}

/// Run to quiescence while tracking the window high-water mark at every
/// event boundary.
fn run_tracking_window(w: &mut RelWorld, a: NicId, b: NicId) -> usize {
    let mut max_load = 0usize;
    let _ = run_until(w, |w: &RelWorld| {
        max_load = max_load.max(w.nics.rel.window_load(Proto::Gm, a, b));
        false
    });
    max_load
}

/// Exactly-once, byte-exact delivery against the reference model.
fn assert_delivery(w: &RelWorld, s: u64, n: u64) {
    // Hard gate: a typed engine error anywhere in the run means the
    // equivalence evidence is void, whatever the delivery record says.
    assert_eq!(
        w.sched.engine_error(),
        None,
        "engine errors are a hard fail"
    );
    assert_eq!(w.sched.engine_stats().errors, 0);
    let mut got: Vec<_> = w.delivered.clone();
    got.sort_by_key(|(idx, _)| *idx);
    assert_eq!(got.len() as u64, n, "every packet delivered, none twice");
    for (i, (idx, bytes)) in got.iter().enumerate() {
        assert_eq!(*idx, i as u64, "index {i} delivered exactly once");
        assert_eq!(bytes, &payload(s, *idx), "payload {i} byte-exact");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random loss / duplication / delay-reorder schedules: the stream
    /// arrives exactly once and byte-exact, the unacked window never
    /// exceeds its cap, and the link survives.
    #[test]
    fn stream_survives_random_fault_schedules(
        seed in any::<u64>(),
        loss in 0u64..26,
        dup in any::<bool>(),
        reorder in any::<bool>(),
        n in 40u64..120,
    ) {
        let (mut w, a, b) = world();
        let mut plan = FaultPlan::new(seed).with_drop(loss as f64 / 100.0);
        if dup {
            plan = plan.with_dup(0.06);
        }
        if reorder {
            plan = plan.with_delay(0.1, SimTime::from_micros(2), SimTime::from_micros(40));
        }
        w.nics.set_fault_plan(plan);
        send_stream(&mut w, a, b, seed, n);
        let max_load = run_tracking_window(&mut w, a, b);
        prop_assert!(
            max_load <= w.nics.rel.params.window,
            "window cap violated: {max_load}"
        );
        prop_assert!(w.dead.is_empty(), "the link must survive recoverable faults");
        assert_delivery(&w, seed, n);
        let rel = w.nics.rel.stats;
        prop_assert_eq!(rel.data_packets, n);
        // Everything settled: no packet left buffered anywhere.
        prop_assert_eq!(w.nics.rel.buffered_total(), 0);
        if loss == 0 && !dup && !reorder {
            prop_assert_eq!(rel.retransmits, 0, "a clean fabric never retransmits");
            prop_assert_eq!(rel.spurious_rtos, 0);
            prop_assert_eq!(rel.dup_dropped, 0);
        }
    }
}

/// A deterministic high-loss run: the SACK machinery must be doing the
/// work — entries acked out of order, retransmission rounds sparing them —
/// while the stream still lands exactly once.
#[test]
fn high_loss_exercises_sack_machinery() {
    let (mut w, a, b) = world();
    w.nics.set_fault_plan(
        FaultPlan::new(0x5AC4)
            .with_drop(0.2)
            .with_dup(0.05)
            .with_delay(0.1, SimTime::from_micros(2), SimTime::from_micros(40)),
    );
    send_stream(&mut w, a, b, 7, 200);
    let max_load = run_tracking_window(&mut w, a, b);
    assert!(max_load <= 64);
    assert_delivery(&w, 7, 200);
    let rel = w.nics.rel.stats;
    assert!(rel.retransmits > 0, "20% loss forces retransmission rounds");
    assert!(rel.sacked > 0, "out-of-order arrivals are SACKed");
    assert!(
        rel.sack_repairs > 0,
        "retransmission rounds spare SACKed packets"
    );
    assert!(
        rel.retransmits < rel.data_packets,
        "selective repeat resends a fraction of the stream, not multiples \
         of it (got {} resends for {} packets)",
        rel.retransmits,
        rel.data_packets
    );
    assert!(rel.rtt_samples > 0, "acks feed the RTT estimator");
}

/// The adaptive RTO converges near the true network RTT on a clean
/// fabric — orders of magnitude below the 200 µs initial period.
#[test]
fn adaptive_rto_tracks_the_fabric() {
    let (mut w, a, b) = world();
    send_stream(&mut w, a, b, 3, 100);
    run_to_quiescence(&mut w);
    assert_delivery(&w, 3, 100);
    let (srtt, rto) = w.nics.rel.link_rtt(Proto::Gm, a, b).expect("sampled");
    // Small packets on PCI-XD: ack comes back ~one cut-through latency
    // (550 ns) after wire departure.
    assert!(
        srtt < SimTime::from_micros(5),
        "SRTT should sit near the wire RTT, got {srtt}"
    );
    assert_eq!(
        rto, w.nics.rel.params.min_rto,
        "on a fast clean fabric the RTO clamps to its floor"
    );
    assert_eq!(w.nics.rel.stats.spurious_rtos, 0);
    assert_eq!(w.nics.rel.stats.retransmits, 0);
}

/// A link whose packets never arrive dies after exactly its retry budget,
/// tears its rings down, and reports once — while an independent healthy
/// link on the same fabric keeps flowing. (The kill uses a per-link plan,
/// so this also pins down that `for_link` faults stay on their directed
/// pair: note the lossy direction carries both a→b data *and* the
/// control-stream acks for b→a traffic, so the healthy stream must live on
/// a different node pair entirely.)
#[test]
fn budget_exhaustion_kills_only_the_dead_link() {
    let (mut w, a, b) = world();
    let n2 = w.os.add_node(CpuModel::xeon_2600(), 64);
    let n3 = w.os.add_node(CpuModel::xeon_2600(), 64);
    let c = w.nics.add_nic(n2, NicModel::pci_xd());
    let d = w.nics.add_nic(n3, NicModel::pci_xd());
    let (na, nb) = (w.nics.get(a).node, w.nics.get(b).node);
    // The a→b data direction is dead; everything else is clean.
    w.nics
        .set_fault_plan(FaultPlan::new(1).for_link(na, nb, FaultPlan::new(2).with_drop(1.0)));
    send_stream(&mut w, a, b, 11, 5);
    // A healthy stream on the unrelated pair, identified by indices ≥ 1000.
    for idx in 1000..1010u64 {
        let pkt = Packet::new(
            c,
            d,
            Proto::Gm,
            0,
            [idx, 0, 0, 0],
            bytes::Bytes::from(payload(11, idx)),
            16,
        );
        rel_send(&mut w, pkt, SimTime::ZERO);
    }
    run_to_quiescence(&mut w);
    assert_eq!(w.dead, vec![(Proto::Gm, a, b)], "dead exactly once");
    assert!(w.nics.rel.link_dead(Proto::Gm, a, b));
    assert!(
        !w.nics.rel.link_dead(Proto::Gm, c, d),
        "unrelated link healthy"
    );
    assert_eq!(
        w.nics.rel.stats.timeouts,
        w.nics.rel.params.max_retries as u64 + 1,
        "death exactly at budget exhaustion"
    );
    assert_eq!(w.nics.rel.buffered_total(), 0, "all rings torn down");
    let healthy: Vec<_> = w.delivered.iter().filter(|(i, _)| *i >= 1000).collect();
    assert_eq!(healthy.len(), 10, "healthy pair unaffected");
    assert_eq!(
        w.sched.engine_error(),
        None,
        "engine errors are a hard fail"
    );
}

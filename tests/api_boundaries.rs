//! The transport-boundary gate: raw `t_send`/`t_post_recv` calls are the
//! *driver seam*, not the application API. Channels (`knet_core::api`) are
//! the one application-facing send path — batching, GM coalescing and
//! backpressure live there — so nothing above that layer may call the raw
//! transport. CI runs the same check as a grep step; this test makes the
//! tier-1 suite self-enforcing.
//!
//! Allowed callers: `crates/core` (the channel layer itself), `crates/gm`
//! and `crates/mx` (the drivers), and driver-level integration tests under
//! `tests/`. Every in-kernel service — the socket layer, ORFS and NBD —
//! now attaches through handler-backed channels.

use std::fs;
use std::path::Path;

/// Directories that must not contain raw transport calls.
const FORBIDDEN: &[&str] = &[
    "src",
    "examples",
    "crates/zsock",
    "crates/bench",
    "crates/simfs",
    "crates/orfs",
    "crates/nbd",
];

fn scan(dir: &Path, offenders: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            scan(&path, offenders);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            for (i, line) in text.lines().enumerate() {
                if line.contains(".t_send(") || line.contains(".t_post_recv(") {
                    offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
                }
            }
        }
    }
}

#[test]
fn raw_transport_calls_stay_below_the_channel_layer() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenders = Vec::new();
    for dir in FORBIDDEN {
        scan(&root.join(dir), &mut offenders);
    }
    assert!(
        offenders.is_empty(),
        "raw t_send/t_post_recv callers above the channel layer \
         (use channel_send/channel_post_recv):\n{}",
        offenders.join("\n")
    );
}

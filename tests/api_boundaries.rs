//! The transport-boundary gate: raw `t_send`/`t_post_recv` calls are the
//! *driver seam*, not the application API. Channels (`knet_core::api`) are
//! the one application-facing send path — batching, GM coalescing and
//! backpressure live there — so nothing above that layer may call the raw
//! transport. CI runs the same check as a grep step; this test makes the
//! tier-1 suite self-enforcing.
//!
//! Allowed callers: `crates/core` (the channel layer itself), `crates/gm`
//! and `crates/mx` (the drivers), and driver-level integration tests under
//! `tests/`. Every in-kernel service — the socket layer, ORFS and NBD —
//! now attaches through handler-backed channels.

use std::fs;
use std::path::Path;

/// Directories that must not contain raw transport calls.
const FORBIDDEN: &[&str] = &[
    "src",
    "examples",
    "crates/zsock",
    "crates/bench",
    "crates/simfs",
    "crates/orfs",
    "crates/nbd",
    "crates/rpc",
    "crates/kv",
];

/// Directories that must not touch the raw reliability packet fields
/// (the sequence/ack/timestamp members of `Packet`): sequencing, SACKing
/// and RTT echoing belong to the NIC-level window (`knet_simnic::rel`) and
/// the two drivers that feed it — everything else sees only the transport
/// contract. (Same idea, one layer down: the reliability seam is as
/// load-bearing as the driver seam. The cumulative ack and the SACK bitmap
/// themselves ride the control stream and never appear as packet fields;
/// the echoed wire-departure timestamp is the one selective-repeat
/// addition to the wire format.)
const REL_FORBIDDEN: &[&str] = &[
    "src",
    "examples",
    "tests",
    "crates/core",
    "crates/zsock",
    "crates/bench",
    "crates/simfs",
    "crates/orfs",
    "crates/nbd",
    "crates/simos",
    "crates/simcore",
    "crates/rpc",
    "crates/kv",
];

fn scan(dir: &Path, patterns: &[String], offenders: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            scan(&path, patterns, offenders);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            for (i, line) in text.lines().enumerate() {
                if patterns.iter().any(|p| line.contains(p.as_str())) {
                    offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
                }
            }
        }
    }
}

fn offenders_for(dirs: &[&str], patterns: &[String]) -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenders = Vec::new();
    for dir in dirs {
        scan(&root.join(dir), patterns, &mut offenders);
    }
    offenders
}

#[test]
fn raw_transport_calls_stay_below_the_channel_layer() {
    let patterns = vec![".t_send(".to_string(), ".t_post_recv(".to_string()];
    let offenders = offenders_for(FORBIDDEN, &patterns);
    assert!(
        offenders.is_empty(),
        "raw t_send/t_post_recv callers above the channel layer \
         (use channel_send/channel_post_recv):\n{}",
        offenders.join("\n")
    );
}

#[test]
fn reliability_packet_fields_stay_inside_the_window_and_drivers() {
    // Patterns assembled at runtime so this file never matches itself.
    let patterns = vec![
        format!("rel_{}", "seq"),
        format!("rel_{}", "ack"),
        format!("rel_{}", "tsval"),
    ];
    let offenders = offenders_for(REL_FORBIDDEN, &patterns);
    assert!(
        offenders.is_empty(),
        "raw sequence/ack/timestamp packet fields touched above the \
         reliability window (only knet-simnic's rel module and the gm/mx \
         drivers may):\n{}",
        offenders.join("\n")
    );
}

/// Directories that must not touch the collective tree engine's wire
/// surface: the `0xC?` frame opcodes and the firmware entry points
/// (`coll_inject` / `coll_on_packet`) belong to `knet-simnic`'s tree
/// engine and the two drivers that feed it. Everything above — including
/// `knet-coll`, which is the *control plane* (groups, membership,
/// completion contexts) — speaks `CollCmd`/`CollEvent` and the
/// `CollWorld` seam only.
const COLL_FORBIDDEN: &[&str] = &[
    "src",
    "examples",
    "tests",
    "crates/core",
    "crates/coll",
    "crates/zsock",
    "crates/bench",
    "crates/simfs",
    "crates/orfs",
    "crates/nbd",
    "crates/simos",
    "crates/simcore",
];

/// Directories that must not schedule through the engine's boxed escape
/// hatches. The sharded engine's zero-allocation contract holds because
/// steady-state events are *typed* (`lift_nic`/`lift_gm`/`lift_mx` →
/// `ClusterEv` variants); the old free functions (`at`/`after`/
/// `immediately`) that boxed every closure are gone from `knet_simcore`'s
/// surface and must not come back above it. The composed cluster crate,
/// examples and benches may also not fall back to `BoxEvent` — that type
/// exists for standalone layer test-worlds only.
const ENGINE_FORBIDDEN: &[&str] = &[
    "src",
    "examples",
    "tests",
    "crates/core",
    "crates/coll",
    "crates/gm",
    "crates/mx",
    "crates/simnic",
    "crates/simos",
    "crates/zsock",
    "crates/bench",
    "crates/simfs",
    "crates/orfs",
    "crates/nbd",
];

/// Stricter subset: nothing in the composed cluster paths may even name the
/// boxed-event fallback type.
const BOXEVENT_FORBIDDEN: &[&str] = &["src", "examples", "crates/bench"];

#[test]
fn boxed_event_scheduling_stays_inside_the_engine() {
    // Patterns assembled at runtime so this file never matches itself.
    let patterns = vec![
        format!("knet_simcore::{}(", "at"),
        format!("knet_simcore::{}(", "after"),
        format!("knet_simcore::{}(", "immediately"),
        format!(".sched.{}(", "at"),
        format!(".sched_mut().{}(", "at"),
    ];
    let offenders = offenders_for(ENGINE_FORBIDDEN, &patterns);
    assert!(
        offenders.is_empty(),
        "raw boxed scheduling above the engine (use typed lift_* events on \
         the hot path, or node-tagged call_at/call_after for cold control \
         code):\n{}",
        offenders.join("\n")
    );

    let patterns = vec![format!("Box{}", "Event")];
    let offenders = offenders_for(BOXEVENT_FORBIDDEN, &patterns);
    assert!(
        offenders.is_empty(),
        "the boxed-event fallback type leaked into the composed cluster \
         paths (ClusterEv's typed variants are the steady-state contract):\n{}",
        offenders.join("\n")
    );
}

/// The replicated KV store is the tentpole *proof* of the typed RPC layer:
/// every byte it moves must ride `rpc_call` / `rpc_server_reply`, so that
/// deadlines, retry budgets, idempotency keys and typed errors apply to
/// all of its traffic. A raw channel call in `crates/kv` would be a
/// side-channel around every one of those guarantees. (`crates/rpc` is the
/// one consumer of the channel API here — the KV store sits strictly above
/// it. CI runs the same check as a grep step.)
#[test]
fn kv_store_speaks_typed_rpc_only() {
    let patterns = vec![
        format!("channel_{}(", "send"),
        format!("channel_{}(", "post_recv"),
        format!("channel_{}(", "connect"),
        format!("channel_{}(", "accept"),
        format!(".t_{}(", "send"),
        format!(".t_{}(", "post_recv"),
    ];
    let offenders = offenders_for(&["crates/kv"], &patterns);
    assert!(
        offenders.is_empty(),
        "the KV store bypassed the typed RPC layer (use rpc_call / \
         rpc_server_reply — deadlines, retries and cancellation live \
         there):\n{}",
        offenders.join("\n")
    );
}

/// Directories that must not bypass the WDRR scheduler. The tenant-stamped
/// send entry points (`t_send_t`, `gm_send_t`, `mx_isend_t`) and the
/// per-tenant lane queue type are the seam *below* per-tenant fair queueing:
/// calling them directly would let a caller pick its own tenant id or
/// reorder parked sends, defeating both isolation and accounting. Services,
/// examples and integration tests send through channels; only the channel
/// layer (`crates/core`), the two drivers, and the composed world
/// (`src/world.rs`, which implements the `t_send_t` seam) sit below it.
const WDRR_FORBIDDEN: &[&str] = &[
    "examples",
    "tests",
    "crates/coll",
    "crates/zsock",
    "crates/bench",
    "crates/simfs",
    "crates/orfs",
    "crates/nbd",
    "crates/rpc",
    "crates/kv",
];

#[test]
fn tenant_stamped_sends_stay_below_the_wdrr_scheduler() {
    // Patterns assembled at runtime so this file never matches itself.
    let patterns = vec![
        format!(".t_send_{}(", "t"),
        format!("gm_send_{}(", "t"),
        format!("mx_isend_{}(", "t"),
        format!("Wdrr{}", "Lanes"),
    ];
    let offenders = offenders_for(WDRR_FORBIDDEN, &patterns);
    assert!(
        offenders.is_empty(),
        "tenant-stamped raw sends or WDRR queue internals touched above \
         the scheduler (register a tenant, assign the endpoint, and send \
         through the channel API):\n{}",
        offenders.join("\n")
    );
}

/// Directories that must not touch the NIC's physical-lane model. Lane
/// selection (the deficit picker that stripes a flow across a dual-link
/// card) and rx-lane contention (the FIFO-overflow drop model) are
/// properties of the simulated hardware in `knet-simnic`: everything
/// above sees their *effects* only — goodput, `lane_tx` counters,
/// `rx_congestion_drops`, NACKs. A layer that picked its own lane or
/// probed lane occupancy would bake the card's link count into protocol
/// code and break the single-link/dual-link A-B the striping bench runs.
/// (`knet-simcore` defines the lane-bank resource; `knet-simnic` is its
/// one consumer.)
const LANE_FORBIDDEN: &[&str] = &[
    "src",
    "examples",
    "tests",
    "crates/core",
    "crates/coll",
    "crates/gm",
    "crates/mx",
    "crates/zsock",
    "crates/bench",
    "crates/simfs",
    "crates/orfs",
    "crates/nbd",
    "crates/simos",
    "crates/rpc",
    "crates/kv",
];

#[test]
fn physical_lane_model_stays_inside_the_nic_layer() {
    // Patterns assembled at runtime so this file never matches itself.
    let patterns = vec![
        format!("Lane{}", "Bank"),
        format!(".tx.{}(", "acquire"),
        format!(".rx.{}(", "acquire"),
    ];
    let offenders = offenders_for(LANE_FORBIDDEN, &patterns);
    assert!(
        offenders.is_empty(),
        "NIC lane internals touched above the simulated hardware (lane \
         striping and rx contention belong to knet-simnic; observe them \
         through stats and goodput only):\n{}",
        offenders.join("\n")
    );
}

#[test]
fn collective_opcodes_stay_inside_the_nic_engine_and_drivers() {
    // Patterns assembled at runtime so this file never matches itself.
    let patterns = vec![
        format!("{}_{}_", "COLL", "KIND"),
        format!("coll_{}(", "inject"),
        format!("coll_{}(", "on_packet"),
    ];
    let offenders = offenders_for(COLL_FORBIDDEN, &patterns);
    assert!(
        offenders.is_empty(),
        "collective frame opcodes / firmware entry points touched above \
         the NIC tree engine (only knet-simnic's coll module and the gm/mx \
         drivers may; go through knet-coll's group API):\n{}",
        offenders.join("\n")
    );
}

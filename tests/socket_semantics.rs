//! Stream-semantics tests for the zero-copy socket layers: partial
//! consumption, queued readers, back-to-back messages, and the byte stream
//! surviving the zero-copy/buffered mode mixture.

use knet::harness::ubuf;
use knet::prelude::*;
use knet_zsock::{sock_create, sock_recv, sock_send, SockId};

fn pair(
    kind: TransportKind,
) -> (
    ClusterWorld,
    SockId,
    SockId,
    knet::harness::UBuf,
    knet::harness::UBuf,
) {
    let (mut w, n0, n1) = two_nodes_xe();
    let ba = ubuf(&mut w, n0, 1 << 20);
    let bb = ubuf(&mut w, n1, 1 << 20);
    let (ea, eb) = match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096);
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    };
    let sa = sock_create(&mut w, ea, eb).unwrap();
    let sb = sock_create(&mut w, eb, ea).unwrap();
    (w, sa, sb, ba, bb)
}

fn fill(w: &mut ClusterWorld, buf: &knet::harness::UBuf, data: &[u8]) {
    w.os.node_mut(buf.node)
        .write_virt(buf.asid, buf.addr, data)
        .unwrap();
}

fn read_back(w: &ClusterWorld, buf: &knet::harness::UBuf, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    w.os.node(buf.node)
        .read_virt(buf.asid, buf.addr, &mut v)
        .unwrap();
    v
}

#[test]
fn one_send_satisfies_many_small_recvs() {
    // Stream semantics: a 1000-byte message read back in 100-byte chunks.
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, sa, sb, ba, bb) = pair(kind);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        fill(&mut w, &ba, &data);
        sock_send(&mut w, sa, ba.memref(1000));
        knet_simcore::run_to_quiescence(&mut w);
        let mut collected = Vec::new();
        for _ in 0..10 {
            let op = sock_recv(&mut w, sb, bb.memref(100));
            let n = knet::harness::sock_wait(&mut w, sb, op);
            assert_eq!(n, 100, "{kind:?}");
            collected.extend(read_back(&w, &bb, 100));
        }
        assert_eq!(collected, data, "{kind:?} chunked read-back");
    }
}

#[test]
fn one_recv_takes_only_what_is_buffered() {
    // A reader with a huge buffer gets the single pending message, not a
    // blocking wait for more.
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, sa, sb, ba, bb) = pair(kind);
        fill(&mut w, &ba, b"short");
        sock_send(&mut w, sa, ba.memref(5));
        knet_simcore::run_to_quiescence(&mut w);
        let op = sock_recv(&mut w, sb, bb.memref(100_000));
        let n = knet::harness::sock_wait(&mut w, sb, op);
        assert_eq!(n, 5, "{kind:?}");
        assert_eq!(&read_back(&w, &bb, 5), b"short");
    }
}

#[test]
fn queued_readers_drain_in_fifo_order() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, sa, sb, ba, bb) = pair(kind);
        // Two readers queued before any data.
        let r1 = sock_recv(&mut w, sb, bb.memref(4));
        let r2 = sock_recv(&mut w, sb, MemRef::user(bb.asid, bb.addr.add(4096), 4));
        fill(&mut w, &ba, b"AAAABBBB");
        sock_send(&mut w, sa, ba.memref(8));
        let n1 = knet::harness::sock_wait(&mut w, sb, r1);
        let n2 = knet::harness::sock_wait(&mut w, sb, r2);
        assert_eq!((n1, n2), (4, 4), "{kind:?}");
        assert_eq!(&read_back(&w, &bb, 4), b"AAAA");
        let mut second = vec![0u8; 4];
        w.os.node(bb.node)
            .read_virt(bb.asid, bb.addr.add(4096), &mut second)
            .unwrap();
        assert_eq!(&second, b"BBBB", "{kind:?} second reader gets the tail");
    }
}

#[test]
fn pipelined_messages_preserve_stream_order() {
    // Several sends in flight at once, mixing inline, eager, and (on MX)
    // rendezvous regimes; the receiver sees one ordered byte stream.
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, sa, sb, ba, bb) = pair(kind);
        let sizes = [100u64, 50_000, 3, 120_000, 4096];
        let mut expect = Vec::new();
        let mut off = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            let chunk: Vec<u8> = (0..s).map(|j| ((i as u64 * 131 + j) % 251) as u8).collect();
            w.os.node_mut(ba.node)
                .write_virt(ba.asid, ba.addr.add(off), &chunk)
                .unwrap();
            sock_send(&mut w, sa, ba.memref_at(off, s));
            expect.extend(chunk);
            off += s;
        }
        // Reader comes late with mismatched chunk sizes.
        let total: u64 = sizes.iter().sum();
        let mut got = Vec::new();
        while (got.len() as u64) < total {
            let want = 7_777u64.min(total - got.len() as u64);
            let op = sock_recv(&mut w, sb, bb.memref(want));
            let n = knet::harness::sock_wait(&mut w, sb, op);
            assert!(n > 0);
            got.extend(read_back(&w, &bb, n as usize));
        }
        assert_eq!(got, expect, "{kind:?} stream order");
    }
}

#[test]
fn zero_copy_steering_is_used_when_the_reader_waits() {
    // A blocked reader with a big buffer on MX receives large messages
    // zero-copy (the steering statistic increments); a late reader forces
    // the buffered path.
    let (mut w, sa, sb, ba, bb) = pair(TransportKind::Mx);
    let n = 200_000u64;
    // Reader first → steering.
    let r = sock_recv(&mut w, sb, bb.memref(n));
    fill(&mut w, &ba, &vec![7u8; n as usize]);
    sock_send(&mut w, sa, ba.memref(n));
    knet::harness::sock_wait(&mut w, sb, r);
    assert_eq!(w.zsock.sock(sb).stats.zero_copy_receives, 1);
    // Sender first → buffered.
    sock_send(&mut w, sa, ba.memref(n));
    knet_simcore::run_to_quiescence(&mut w);
    let r = sock_recv(&mut w, sb, bb.memref(n));
    knet::harness::sock_wait(&mut w, sb, r);
    assert_eq!(
        w.zsock.sock(sb).stats.zero_copy_receives,
        1,
        "second was buffered"
    );
    assert!(w.zsock.sock(sb).stats.buffered_receives >= 1);
}

//! Lifecycle and contention tests: port/endpoint teardown releases every
//! resource; several clients share one server realistically (the server CPU
//! and NIC serialize); the NIC translation table survives pressure.

use knet::harness::{await_recv, fsops, kbuf, make_server_file, seq_read_mb, ubuf};
use knet::prelude::*;
use knet_core::TransportWorld;
use knet_gm::{gm_close_port, gm_register, GmPortId};
use knet_mx::{mx_close_endpoint, MxEndpointId};
use knet_orfs::{client_create, server_create, ClientKind, VfsConfig};
use knet_simfs::SimFs;

#[test]
fn gm_port_close_releases_registrations_and_table_entries() {
    let (mut w, n0, _n1) = two_nodes();
    let buf = ubuf(&mut w, n0, 64 * 1024);
    let ep = w
        .open_gm(n0, GmPortConfig::user(buf.asid).with_regcache(256))
        .unwrap();
    let port = GmPortId(ep.idx);
    gm_register(&mut w, port, buf.asid, buf.addr, 64 * 1024).unwrap();
    let nic = w.nics.nic_of_node(n0).unwrap();
    assert_eq!(w.nics.get(nic).ttable.len(), 16);
    let frame =
        w.os.node(n0)
            .space(buf.asid)
            .unwrap()
            .frame_of(buf.addr)
            .unwrap();
    assert_eq!(w.os.node(n0).mem.pin_count(frame), 1);

    gm_close_port(&mut w, port).unwrap();
    assert_eq!(w.nics.get(nic).ttable.len(), 0, "translations purged");
    assert_eq!(w.os.node(n0).mem.pin_count(frame), 0, "pins released");
    // The port is gone: further operations fail cleanly.
    assert!(gm_register(&mut w, port, buf.asid, buf.addr, 4096).is_err());
}

#[test]
fn mx_endpoint_close_releases_posted_pins() {
    let (mut w, n0, _n1) = two_nodes();
    let buf = ubuf(&mut w, n0, 256 * 1024);
    let ep = w.open_mx(n0, MxEndpointConfig::user(buf.asid)).unwrap();
    // Posting a large receive pins its pages.
    w.t_post_recv(ep, 1, buf.iov(256 * 1024), 1).unwrap();
    let frame =
        w.os.node(n0)
            .space(buf.asid)
            .unwrap()
            .frame_of(buf.addr)
            .unwrap();
    assert_eq!(w.os.node(n0).mem.pin_count(frame), 1);
    mx_close_endpoint(&mut w, MxEndpointId(ep.idx)).unwrap();
    assert_eq!(w.os.node(n0).mem.pin_count(frame), 0);
}

#[test]
fn translation_table_pressure_is_survivable() {
    // A tiny NIC table: GMKRC must keep evicting yet every transfer stays
    // correct.
    let mut nic = NicModel::pci_xd();
    nic.ttable_entries = 64;
    let mut w = ClusterBuilder::new().nic(nic).build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let big = ubuf(&mut w, n0, 1 << 20); // 256 pages >> 64 entries
    let cq = w.new_cq();
    let tx = w
        .open_gm_cq(n0, GmPortConfig::kernel().with_regcache(48), cq)
        .unwrap();
    let rx_buf = kbuf(&mut w, n1, 64 * 1024);
    let rx = w
        .open_gm_cq(n1, GmPortConfig::kernel().with_physical_api(), cq)
        .unwrap();
    // Walk the big buffer in 64 kB windows: every send misses the cache.
    for i in 0..16u64 {
        let off = i * 64 * 1024;
        let msg = format!("window {i:02}");
        w.os.node_mut(n0)
            .write_virt(big.asid, big.addr.add(off), msg.as_bytes())
            .unwrap();
        w.t_post_recv(
            rx,
            7,
            IoVec::single(MemRef::physical(
                rx_buf.addr.kernel_to_phys().unwrap(),
                64 * 1024,
            )),
            0,
        )
        .unwrap();
        w.t_send(tx, rx, 7, IoVec::single(big.memref_at(off, 64 * 1024)), 0)
            .unwrap();
        await_recv(&mut w, rx);
        let mut back = vec![0u8; msg.len()];
        w.os.node(n1)
            .read_virt(Asid::KERNEL, rx_buf.addr, &mut back)
            .unwrap();
        assert_eq!(back, msg.as_bytes(), "window {i}");
    }
    let port = w.gm.port(GmPortId(tx.idx)).unwrap();
    assert!(
        port.stats.pages_deregistered > 100,
        "pressure forced evictions: {} pages deregistered",
        port.stats.pages_deregistered
    );
    let nic_id = w.nics.nic_of_node(n0).unwrap();
    assert!(w.nics.get(nic_id).ttable.len() <= 64);
}

#[test]
fn three_clients_contend_for_one_server() {
    // One MX server node, three client nodes reading the same file
    // concurrently. Aggregate work is conserved and the server CPU
    // serializes: each client sees lower throughput than it would alone.
    let mut w = ClusterBuilder::new()
        .nodes(4, CpuModel::xeon_2600())
        .build();
    let server_node = NodeId(3);
    let sep = w.open_mx(server_node, MxEndpointConfig::kernel()).unwrap();
    let server = server_create(&mut w, sep, SimFs::with_defaults()).unwrap();
    make_server_file(&mut w, server, "/shared", 2 << 20);

    let mut clients = Vec::new();
    for i in 0..3u32 {
        let node = NodeId(i);
        let user = ubuf(&mut w, node, 1 << 20);
        let cep = w.open_mx(node, MxEndpointConfig::kernel()).unwrap();
        let cid = client_create(
            &mut w,
            cep,
            sep,
            ClientKind::KernelVfs,
            user.asid,
            VfsConfig::default(),
        )
        .unwrap();
        clients.push((cid, user));
    }
    // All three open and issue interleaved direct reads.
    let mut fds = Vec::new();
    for (cid, _) in &clients {
        fds.push(fsops::open(&mut w, *cid, "/shared", true).unwrap());
    }
    let record = 256 * 1024u64;
    let t0 = knet_simcore::now(&w);
    // Interleave: issue one read per client, wait for all, repeat.
    for round in 0..8u64 {
        let mut sids = Vec::new();
        for ((cid, user), _fd) in clients.iter().zip(&fds) {
            let sid = knet_orfs::op_read(
                &mut w,
                *cid,
                fds[0],
                user.memref(record),
                (round * record) % (2 << 20),
            );
            sids.push((*cid, sid));
        }
        for (cid, sid) in sids {
            let r = knet::harness::orfs_wait(&mut w, cid, sid).unwrap();
            assert!(matches!(r, knet_orfs::SysRet::Bytes(n) if n == record));
        }
    }
    let elapsed = knet_simcore::now(&w) - t0;
    let aggregate = knet_simcore::Bandwidth::observed_mb_s(3 * 8 * record, elapsed);
    // Three concurrent streams through one server NIC: the aggregate cannot
    // exceed the 250 MB/s link out of the server, and contention must be
    // visible (aggregate well above a single stream's share).
    assert!(
        aggregate <= 252.0,
        "aggregate {aggregate:.1} MB/s exceeds the server link"
    );
    assert!(
        aggregate >= 180.0,
        "the server link should be near saturation, got {aggregate:.1}"
    );
    // Data integrity for every client (they all used fds[0]'s handle — the
    // server-side handle table is shared state; verify bytes anyway).
    for (_cid, user) in &clients {
        let mut got = vec![0u8; 1024];
        w.os.node(user.node)
            .read_virt(user.asid, user.addr, &mut got)
            .unwrap();
        for (i, &b) in got.iter().enumerate() {
            assert_eq!(
                b,
                knet::harness::pattern_byte(((7u64 * record) % (2 << 20)) + i as u64)
            );
        }
    }
}

#[test]
fn nbd_end_to_end_data_integrity() {
    use knet_nbd::*;
    let (mut w, n0, n1) = two_nodes();
    let user = ubuf(&mut w, n0, 1 << 20);
    let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    let sep = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    let _server = nbd_server_create(&mut w, sep, 4096).unwrap();
    let client = nbd_client_create(&mut w, cep, sep, 42).unwrap();

    let wait = |w: &mut ClusterWorld, op| {
        let outcome = knet_simcore::run_until(w, |w| {
            w.nbd.clients[client.0 as usize]
                .completed
                .iter()
                .any(|(o, _)| *o == op)
        });
        assert_eq!(outcome, RunOutcome::Satisfied);
        nbd_wait(&mut w.nbd.clients[client.0 as usize], op)
            .unwrap()
            .unwrap()
    };

    // Write 512 kB of pattern, evict, read back buffered and raw.
    let len = 512 * 1024u64;
    let pattern: Vec<u8> = (0..len).map(|i| ((i * 11 + 3) % 251) as u8).collect();
    w.os.node_mut(n0)
        .write_virt(user.asid, user.addr, &pattern)
        .unwrap();
    let op = knet_nbd::nbd_write(&mut w, client, user.memref(len), 4096);
    assert_eq!(wait(&mut w, op), len);
    // Clobber the user buffer, then read back through the cache.
    w.os.node_mut(n0)
        .write_virt(user.asid, user.addr, &vec![0u8; len as usize])
        .unwrap();
    let op = knet_nbd::nbd_read(&mut w, client, user.memref(len), 4096);
    assert_eq!(wait(&mut w, op), len);
    let mut back = vec![0u8; len as usize];
    w.os.node(n0)
        .read_virt(user.asid, user.addr, &mut back)
        .unwrap();
    assert_eq!(back, pattern, "buffered read-back");
    // Raw read of a sector in the middle.
    let op = knet_nbd::nbd_read_raw(&mut w, client, user.memref(4096), 1 + 17);
    assert_eq!(wait(&mut w, op), 4096);
    w.os.node(n0)
        .read_virt(user.asid, user.addr, &mut back[..4096])
        .unwrap();
    assert_eq!(
        &back[..4096],
        &pattern[17 * 4096..18 * 4096],
        "raw read-back"
    );
    // Unwritten sectors read as zeroes.
    let op = knet_nbd::nbd_read(&mut w, client, user.memref(4096), 0);
    assert_eq!(wait(&mut w, op), 4096);
    w.os.node(n0)
        .read_virt(user.asid, user.addr, &mut back[..4096])
        .unwrap();
    assert!(back[..4096].iter().all(|&b| b == 0));
}

#[test]
fn orfa_and_orfs_can_share_a_server_process() {
    // A user-space ORFA client and a kernel ORFS client on the SAME node,
    // against one server: the paper's deployment story (the library for
    // legacy binaries, the kernel client for everyone else).
    let (mut w, n0, n1) = two_nodes();
    let sep = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    let server = server_create(&mut w, sep, SimFs::with_defaults()).unwrap();
    make_server_file(&mut w, server, "/f", 256 * 1024);

    let mk = |w: &mut ClusterWorld, kind| {
        let user = ubuf(w, n0, 512 * 1024);
        let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
        let cid = client_create(w, cep, sep, kind, user.asid, VfsConfig::default()).unwrap();
        (cid, user)
    };
    let (orfa, ua) = mk(&mut w, ClientKind::UserLib);
    let (orfs, ub) = mk(&mut w, ClientKind::KernelVfs);

    let fa = fsops::open(&mut w, orfa, "/f", true).unwrap();
    let fb = fsops::open(&mut w, orfs, "/f", false).unwrap();
    let na = fsops::read(&mut w, orfa, fa, ua.memref(100_000), 5).unwrap();
    let nb = fsops::read(&mut w, orfs, fb, ub.memref(100_000), 5).unwrap();
    assert_eq!((na, nb), (100_000, 100_000));
    for (user, _) in [(&ua, 0), (&ub, 1)] {
        let mut got = vec![0u8; 100_000];
        w.os.node(n0)
            .read_virt(user.asid, user.addr, &mut got)
            .unwrap();
        for (i, &b) in got.iter().enumerate() {
            assert_eq!(b, knet::harness::pattern_byte(5 + i as u64));
        }
    }
}

/// A throughput sanity check for the multi-client path used above.
#[test]
fn single_client_direct_read_rate_is_wire_bound() {
    let mut w = ClusterBuilder::new().build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let sep = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    let server = server_create(&mut w, sep, SimFs::with_defaults()).unwrap();
    make_server_file(&mut w, server, "/f", 4 << 20);
    let user = ubuf(&mut w, n0, 1 << 20);
    let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    let cid = client_create(
        &mut w,
        cep,
        sep,
        ClientKind::KernelVfs,
        user.asid,
        VfsConfig::default(),
    )
    .unwrap();
    let fd = fsops::open(&mut w, cid, "/f", true).unwrap();
    let mb = seq_read_mb(&mut w, cid, fd, 1 << 20, 3 << 20, move |_w, _i| {
        user.memref(1 << 20)
    });
    assert!(
        (180.0..=250.0).contains(&mb),
        "direct 1MB reads: {mb:.1} MB/s"
    );
}

//! Property-based tests on the end-to-end stack: random workloads must
//! preserve every byte, keep resource accounting balanced, and leave the
//! deterministic engine deterministic.

use knet::figures::{fs_fixture, FsOpts};
use knet::harness::{fsops, ubuf};
use knet::prelude::*;
use knet_zsock::sock_create;
use proptest::prelude::*;

/// Reference model for file contents.
fn apply_model(model: &mut Vec<u8>, offset: u64, data: &[u8]) {
    let end = offset as usize + data.len();
    if model.len() < end {
        model.resize(end, 0);
    }
    model[offset as usize..end].copy_from_slice(data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random buffered writes at random offsets, a final fsync, and the
    /// server's file equals the byte-level model — over both transports.
    #[test]
    fn random_buffered_writes_match_model(
        ops in prop::collection::vec((0u64..200_000, 1usize..30_000, any::<u8>()), 1..12),
        use_mx in any::<bool>(),
    ) {
        let kind = if use_mx { TransportKind::Mx } else { TransportKind::Gm };
        let mut fx = fs_fixture(FsOpts { kind, file_len: 4096, ..FsOpts::default() });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", false).unwrap();
        let mut model = vec![0u8; 4096];
        // Seed the model with the fixture's pattern.
        for (i, b) in model.iter_mut().enumerate() {
            *b = knet::harness::pattern_byte(i as u64);
        }
        for (offset, len, fill) in ops {
            let data = vec![fill; len];
            fx.w.os
                .node_mut(fx.user.node)
                .write_virt(fx.user.asid, fx.user.addr, &data)
                .unwrap();
            let n = fsops::write(&mut fx.w, fx.cid, fd, fx.user.memref(len as u64), offset)
                .unwrap();
            prop_assert_eq!(n, len as u64);
            apply_model(&mut model, offset, &data);
        }
        fsops::fsync(&mut fx.w, fx.cid, fd).unwrap();
        fsops::close(&mut fx.w, fx.cid, fd).unwrap();
        let server = &mut fx.w.orfs.servers[0];
        let ino = server.fs.lookup_path("/data").unwrap();
        let size = server.fs.getattr(ino).unwrap().size;
        prop_assert_eq!(size, model.len() as u64);
        let mut back = vec![0u8; model.len()];
        server.fs.read(ino, 0, &mut back, knet_simcore::SimTime::ZERO).unwrap();
        prop_assert_eq!(back, model);
    }

    /// Random-size socket messages arrive in order with every byte intact,
    /// mixing inline, eager, and rendezvous regimes.
    #[test]
    fn socket_stream_preserves_random_messages(
        sizes in prop::collection::vec(1u64..200_000, 1..10),
        use_mx in any::<bool>(),
    ) {
        let kind = if use_mx { TransportKind::Mx } else { TransportKind::Gm };
        let (mut w, n0, n1) = two_nodes_xe();
        let ba = ubuf(&mut w, n0, 1 << 20);
        let bb = ubuf(&mut w, n1, 1 << 20);
        let (ea, eb) = match kind {
            TransportKind::Mx => (
                w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
                w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
            ),
            TransportKind::Gm => {
                let cfg = GmPortConfig::kernel().with_physical_api().with_regcache(4096);
                (
                    w.open_gm(n0, cfg.clone()).unwrap(),
                    w.open_gm(n1, cfg).unwrap(),
                )
            }
        };
        let sa = sock_create(&mut w, ea, eb).unwrap();
        let sb = sock_create(&mut w, eb, ea).unwrap();
        for (i, &size) in sizes.iter().enumerate() {
            let fill = (i as u8).wrapping_mul(37).wrapping_add(11);
            let data = vec![fill; size as usize];
            w.os.node_mut(n0).write_virt(ba.asid, ba.addr, &data).unwrap();
            let r = knet_zsock::sock_recv(&mut w, sb, bb.memref(size));
            knet_zsock::sock_send(&mut w, sa, ba.memref(size));
            let got = knet::harness::sock_wait(&mut w, sb, r);
            prop_assert_eq!(got, size);
            let mut back = vec![0u8; size as usize];
            w.os.node(n1).read_virt(bb.asid, bb.addr, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }
    }

    /// Direct reads at arbitrary offsets return exactly the pattern.
    #[test]
    fn random_direct_reads_return_pattern(
        reads in prop::collection::vec((0u64..1_000_000, 1u64..300_000), 1..8),
        use_mx in any::<bool>(),
    ) {
        let kind = if use_mx { TransportKind::Mx } else { TransportKind::Gm };
        let file_len = 1 << 20;
        let mut fx = fs_fixture(FsOpts { kind, file_len, ..FsOpts::default() });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        for (offset, len) in reads {
            let expect = len.min(file_len.saturating_sub(offset));
            let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(len), offset).unwrap();
            prop_assert_eq!(n, expect);
            let mut got = vec![0u8; n as usize];
            fx.w.os.node(fx.user.node).read_virt(fx.user.asid, fx.user.addr, &mut got).unwrap();
            for (i, &b) in got.iter().enumerate() {
                prop_assert_eq!(b, knet::harness::pattern_byte(offset + i as u64));
            }
        }
    }

    /// The world is deterministic: the same workload produces the identical
    /// event count and virtual end time.
    #[test]
    fn simulation_is_deterministic(sizes in prop::collection::vec(1u64..100_000, 1..6)) {
        let run = |sizes: &[u64]| -> (u64, u64) {
            let (mut w, n0, n1) = two_nodes();
            let ka = knet::harness::kbuf(&mut w, n0, 128 * 1024);
            let kb = knet::harness::kbuf(&mut w, n1, 128 * 1024);
            let cq = w.new_cq();
            let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
            let b = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
            for &s in sizes {
                knet::harness::transport_pingpong_us(&mut w, a, b, ka.iov(s), kb.iov(s), 1);
            }
            (knet_simcore::now(&w).nanos(), w.sched.executed())
        };
        let a = run(&sizes);
        let b = run(&sizes);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No pins leak: after any mix of completed MX transfers, every user
    /// page's pin count returns to zero.
    #[test]
    fn mx_transfers_never_leak_pins(sizes in prop::collection::vec(1u64..200_000, 1..8)) {
        let (mut w, n0, n1) = two_nodes();
        let ba = ubuf(&mut w, n0, 1 << 20);
        let bb = ubuf(&mut w, n1, 1 << 20);
        let cq = w.new_cq();
        let a = w.open_mx_cq(n0, MxEndpointConfig::user(ba.asid), cq).unwrap();
        let b = w.open_mx_cq(n1, MxEndpointConfig::user(bb.asid), cq).unwrap();
        for &s in &sizes {
            knet::harness::transport_pingpong_us(&mut w, a, b, ba.iov(s), bb.iov(s), 1);
        }
        knet_simcore::run_to_quiescence(&mut w);
        for (node, buf) in [(n0, &ba), (n1, &bb)] {
            for page in 0..(buf.len / PAGE_SIZE) {
                let frame = w
                    .os
                    .node(node)
                    .space(buf.asid)
                    .unwrap()
                    .frame_of(buf.addr.add(page * PAGE_SIZE))
                    .unwrap();
                prop_assert_eq!(w.os.node(node).mem.pin_count(frame), 0,
                    "leaked pin on page {} of node {:?}", page, node);
            }
        }
    }
}

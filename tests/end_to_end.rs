//! End-to-end integration tests across the whole stack: application →
//! VFS/page-cache → transport (GM and MX) → NIC → wire → server → ext2-like
//! file system, and back. These verify *functional correctness* (every byte)
//! of the paths whose performance the figures measure.

use knet::figures::{fs_fixture, FsOpts};
use knet::harness::{fsops, make_server_file, pattern_byte, sock_pingpong_us, ubuf};
use knet::prelude::*;
use knet_simfs::SimFs;
use knet_zsock::sock_create;

fn check_pattern(buf: &[u8], file_offset: u64) {
    for (i, &b) in buf.iter().enumerate() {
        assert_eq!(
            b,
            pattern_byte(file_offset + i as u64),
            "byte {i} of read at {file_offset}"
        );
    }
}

fn read_user_buf(fx: &knet::ClusterWorld, buf: &knet::harness::UBuf, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    fx.os
        .node(buf.node)
        .read_virt(buf.asid, buf.addr, &mut out)
        .unwrap();
    out
}

#[test]
fn direct_reads_deliver_correct_bytes_over_mx_and_gm() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let mut fx = fs_fixture(FsOpts {
            kind,
            file_len: 1 << 20,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        // Several sizes, several offsets, same user buffer (cache-friendly).
        for (off, len) in [
            (0u64, 100usize),
            (4096, 4096),
            (123_456, 65_536),
            (1 << 19, 300_000),
        ] {
            let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(len as u64), off).unwrap();
            assert_eq!(n, len as u64, "{kind:?} read at {off}");
            let got = read_user_buf(&fx.w, &fx.user, len);
            check_pattern(&got, off);
        }
        // Read past EOF clamps.
        let n = fsops::read(
            &mut fx.w,
            fx.cid,
            fd,
            fx.user.memref(65536),
            (1 << 20) - 1000,
        )
        .unwrap();
        assert_eq!(n, 1000);
        fsops::close(&mut fx.w, fx.cid, fd).unwrap();
    }
}

#[test]
fn buffered_reads_deliver_correct_bytes_and_hit_the_page_cache() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let mut fx = fs_fixture(FsOpts {
            kind,
            file_len: 256 * 1024,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", false).unwrap();
        // Unaligned read spanning several pages.
        let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(10_000), 2_500).unwrap();
        assert_eq!(n, 10_000);
        check_pattern(&read_user_buf(&fx.w, &fx.user, 10_000), 2_500);
        let misses_after_first = fx.w.orfs.client(fx.cid).stats.page_misses;
        assert!(misses_after_first >= 3, "cold cache had to fetch pages");
        // Same range again: pure page-cache hits, no new requests.
        let reqs_before = fx.w.orfs.client(fx.cid).stats.requests;
        let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(10_000), 2_500).unwrap();
        assert_eq!(n, 10_000);
        check_pattern(&read_user_buf(&fx.w, &fx.user, 10_000), 2_500);
        assert_eq!(
            fx.w.orfs.client(fx.cid).stats.page_misses,
            misses_after_first,
            "warm cache"
        );
        assert_eq!(fx.w.orfs.client(fx.cid).stats.requests, reqs_before);
        fsops::close(&mut fx.w, fx.cid, fd).unwrap();
    }
}

#[test]
fn buffered_writes_reach_the_server_on_fsync() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let mut fx = fs_fixture(FsOpts {
            kind,
            file_len: 64 * 1024,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", false).unwrap();
        // Fill the user buffer with a recognizable pattern and write it at
        // an unaligned offset (forces read-modify-write of edge pages).
        let data: Vec<u8> = (0..20_000u64).map(|i| (i % 199) as u8).collect();
        fx.w.os
            .node_mut(fx.user.node)
            .write_virt(fx.user.asid, fx.user.addr, &data)
            .unwrap();
        let n = fsops::write(&mut fx.w, fx.cid, fd, fx.user.memref(20_000), 1_234).unwrap();
        assert_eq!(n, 20_000);
        // Dirty pages exist, server not yet updated.
        assert!(
            !fx.w
                .os
                .node(fx.user.node)
                .page_cache
                .dirty_pages(fx.w.orfs.client(fx.cid).mount_id, 2)
                .is_empty(),
            "pages dirty before fsync ({kind:?})"
        );
        fsops::fsync(&mut fx.w, fx.cid, fd).unwrap();
        // Server file now contains the new bytes, with the old pattern
        // intact around them.
        let server = &mut fx.w.orfs.servers[0];
        let ino = server.fs.lookup_path("/data").unwrap();
        let mut back = vec![0u8; 22_000];
        server
            .fs
            .read(ino, 0, &mut back, knet_simcore::SimTime::ZERO)
            .unwrap();
        check_pattern(&back[..1_234], 0);
        assert_eq!(&back[1_234..21_234], &data[..], "{kind:?} write-back");
        check_pattern(&back[21_234..22_000], 21_234);
        fsops::close(&mut fx.w, fx.cid, fd).unwrap();
    }
}

#[test]
fn direct_writes_are_synchronous_and_vectorial_on_mx() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let mut fx = fs_fixture(FsOpts {
            kind,
            file_len: 4096,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        let data: Vec<u8> = (0..50_000u64).map(|i| (i % 241) as u8).collect();
        fx.w.os
            .node_mut(fx.user.node)
            .write_virt(fx.user.asid, fx.user.addr, &data)
            .unwrap();
        let n = fsops::write(&mut fx.w, fx.cid, fd, fx.user.memref(50_000), 0).unwrap();
        assert_eq!(n, 50_000);
        // Synchronous: already on the server.
        let server = &mut fx.w.orfs.servers[0];
        let ino = server.fs.lookup_path("/data").unwrap();
        let mut back = vec![0u8; 50_000];
        server
            .fs
            .read(ino, 0, &mut back, knet_simcore::SimTime::ZERO)
            .unwrap();
        assert_eq!(back, data, "{kind:?} direct write");
        fsops::close(&mut fx.w, fx.cid, fd).unwrap();
    }
}

#[test]
fn namespace_operations_work_end_to_end() {
    let mut fx = fs_fixture(FsOpts::default());
    let (w, cid) = (&mut fx.w, fx.cid);
    fsops::mkdir(w, cid, "/docs", 0o755).unwrap();
    fsops::mkdir(w, cid, "/docs/reports", 0o755).unwrap();
    fsops::create(w, cid, "/docs/reports/a.txt", 0o644).unwrap();
    fsops::create(w, cid, "/docs/reports/b.txt", 0o644).unwrap();
    let entries = fsops::readdir(w, cid, "/docs/reports").unwrap();
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["a.txt", "b.txt"]);
    let attr = fsops::stat(w, cid, "/docs/reports/a.txt").unwrap();
    assert_eq!(attr.size, 0);
    fsops::unlink(w, cid, "/docs/reports/a.txt").unwrap();
    let entries = fsops::readdir(w, cid, "/docs/reports").unwrap();
    assert_eq!(entries.len(), 1);
    // Dentry caching kicked in for the repeated prefix walks.
    assert!(fx.w.orfs.client(cid).stats.dentry_hits > 0);
}

#[test]
fn orfa_user_client_reads_correctly_without_caches() {
    let mut fx = fs_fixture(FsOpts {
        kind: TransportKind::Gm,
        client: ClientKind::UserLib,
        file_len: 256 * 1024,
        ..FsOpts::default()
    });
    let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
    let n = fsops::read(&mut fx.w, fx.cid, fd, fx.user.memref(100_000), 7).unwrap();
    assert_eq!(n, 100_000);
    check_pattern(&read_user_buf(&fx.w, &fx.user, 100_000), 7);
    // ORFA pays no syscalls and keeps no dentry cache.
    assert_eq!(fx.w.orfs.client(fx.cid).stats.dentry_hits, 0);
    fsops::close(&mut fx.w, fx.cid, fd).unwrap();
}

#[test]
fn sockets_echo_bytes_intact_over_both_transports() {
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes_xe();
        let ba = ubuf(&mut w, n0, 1 << 20);
        let bb = ubuf(&mut w, n1, 1 << 20);
        let (ea, eb) = match kind {
            TransportKind::Mx => (
                w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
                w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
            ),
            TransportKind::Gm => {
                let cfg = GmPortConfig::kernel()
                    .with_physical_api()
                    .with_regcache(4096);
                (
                    w.open_gm(n0, cfg.clone()).unwrap(),
                    w.open_gm(n1, cfg).unwrap(),
                )
            }
        };
        let sa = sock_create(&mut w, ea, eb).unwrap();
        let sb = sock_create(&mut w, eb, ea).unwrap();
        for size in [1u64, 100, 4096, 100_000, 600_000] {
            let data: Vec<u8> = (0..size).map(|i| ((i * 31 + 5) % 251) as u8).collect();
            w.os.node_mut(n0)
                .write_virt(ba.asid, ba.addr, &data)
                .unwrap();
            let r = knet_zsock::sock_recv(&mut w, sb, bb.memref(size));
            knet_zsock::sock_send(&mut w, sa, ba.memref(size));
            let got = knet::harness::sock_wait(&mut w, sb, r);
            assert_eq!(got, size, "{kind:?} size {size}");
            let mut back = vec![0u8; size as usize];
            w.os.node(n1)
                .read_virt(bb.asid, bb.addr, &mut back)
                .unwrap();
            assert_eq!(back, data, "{kind:?} payload at {size}");
        }
        // Ping-pong latency is sane (SOCKETS-MX ≈5 µs, SOCKETS-GM ≈15 µs).
        let us = sock_pingpong_us(&mut w, sa, sb, ba.memref(1), bb.memref(1), 5);
        match kind {
            TransportKind::Mx => assert!(
                (4.0..=6.5).contains(&us),
                "Sockets-MX 1B latency {us:.2} µs (paper: 5)"
            ),
            TransportKind::Gm => assert!(
                (12.0..=18.0).contains(&us),
                "Sockets-GM 1B latency {us:.2} µs (paper: 15)"
            ),
        }
    }
}

#[test]
fn tcp_baseline_echoes_and_is_slow() {
    let (mut w, n0, n1) = two_nodes();
    let ba = ubuf(&mut w, n0, 1 << 20);
    let bb = ubuf(&mut w, n1, 1 << 20);
    let (ta, tb) = knet_zsock::tcp_pair(&mut w, n0, n1);
    let data: Vec<u8> = (0..50_000u64).map(|i| (i % 233) as u8).collect();
    w.os.node_mut(n0)
        .write_virt(ba.asid, ba.addr, &data)
        .unwrap();
    let r = knet_zsock::tcp_recv(&mut w, tb, bb.memref(50_000));
    knet_zsock::tcp_send(&mut w, ta, ba.memref(50_000));
    let got = knet::harness::tcp_wait(&mut w, tb, r);
    assert_eq!(got, 50_000);
    let mut back = vec![0u8; 50_000];
    w.os.node(n1)
        .read_virt(bb.asid, bb.addr, &mut back)
        .unwrap();
    assert_eq!(back, data);
    let us = knet::harness::tcp_pingpong_us(&mut w, ta, tb, ba.memref(1), bb.memref(1), 3);
    assert!(
        us > 15.0,
        "GigE TCP latency must dwarf Sockets-MX (got {us:.1} µs)"
    );
}

#[test]
fn two_clients_share_one_server_consistently() {
    // A writer client (MX) and a reader client (GM) against one server:
    // after the writer's direct write, the reader (O_DIRECT, no stale page
    // cache) sees the new data.
    let mut w = ClusterBuilder::new()
        .nodes(3, CpuModel::xeon_2600())
        .build();
    let (n0, n1, n2) = (NodeId(0), NodeId(1), NodeId(2));
    let server_ep = w.open_mx(n2, MxEndpointConfig::kernel()).unwrap();
    let server = knet_orfs::server_create(&mut w, server_ep, SimFs::with_defaults()).unwrap();
    make_server_file(&mut w, server, "/shared", 64 * 1024);

    let ua = ubuf(&mut w, n0, 1 << 20);
    let ub = ubuf(&mut w, n1, 1 << 20);
    let ca_ep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    let cb_ep = w
        .open_gm(
            n1,
            GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(1024),
        )
        .unwrap();
    // The GM server endpoint for the GM client: a second endpoint served by
    // the same registered server consumer.
    let server_gm_ep = w
        .open_gm(
            n2,
            GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(1024),
        )
        .unwrap();
    knet_orfs::server_attach_endpoint(&mut w, server, server_gm_ep);
    let writer = knet_orfs::client_create(
        &mut w,
        ca_ep,
        server_ep,
        ClientKind::KernelVfs,
        ua.asid,
        VfsConfig::default(),
    )
    .unwrap();
    let reader = knet_orfs::client_create(
        &mut w,
        cb_ep,
        server_gm_ep,
        ClientKind::KernelVfs,
        ub.asid,
        VfsConfig::default(),
    )
    .unwrap();

    let wfd = fsops::open(&mut w, writer, "/shared", true).unwrap();
    let msg = b"written by the MX client";
    w.os.node_mut(n0).write_virt(ua.asid, ua.addr, msg).unwrap();
    fsops::write(&mut w, writer, wfd, ua.memref(msg.len() as u64), 4096).unwrap();

    let rfd = fsops::open(&mut w, reader, "/shared", true).unwrap();
    let n = fsops::read(&mut w, reader, rfd, ub.memref(msg.len() as u64), 4096).unwrap();
    assert_eq!(n, msg.len() as u64);
    let mut back = vec![0u8; msg.len()];
    w.os.node(n1)
        .read_virt(ub.asid, ub.addr, &mut back)
        .unwrap();
    assert_eq!(&back, msg, "cross-transport, cross-client consistency");
}

//! Tests of the composed world's plumbing: the consumer dispatch registry
//! (registration, rebinding, deregistration, parked-event replay, ordering),
//! completion queues, VMA SPY fan-out, and cross-driver isolation.

use knet::harness::{await_event, kbuf, ubuf};
use knet::prelude::*;
use knet_core::api;
use knet_core::{TransportEvent, TransportWorld};
use knet_gm::GmPortId;
use knet_simos::VirtAddr;

fn write_kernel(w: &mut ClusterWorld, node: NodeId, addr: VirtAddr, data: &[u8]) {
    w.os.node_mut(node)
        .write_virt(Asid::KERNEL, addr, data)
        .unwrap();
}

#[test]
fn cq_events_are_per_endpoint() {
    // Two endpoints sharing one CQ: each pops only its own traffic.
    let (mut w, n0, n1) = two_nodes();
    let cq = w.new_cq();
    let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let b1 = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
    let b2 = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    write_kernel(&mut w, n0, ka.addr, b"to-b2");
    w.t_send(a, b2, 9, ka.iov(5), 0).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(!w.has_event(b1), "b1 must not see b2's traffic");
    match w.take_event(b2) {
        Some(TransportEvent::Unexpected { tag, data, from }) => {
            assert_eq!(tag, 9);
            assert_eq!(&data[..], b"to-b2");
            assert_eq!(from, a);
        }
        other => panic!("expected delivery at b2, got {other:?}"),
    }
    // The sender's completion is on the same queue, keyed by `a`.
    assert!(matches!(
        w.take_event(a),
        Some(TransportEvent::SendDone { .. })
    ));
}

#[test]
fn rebinding_a_consumer_reroutes_events() {
    let (mut w, n0, n1) = two_nodes();
    let cq = w.new_cq();
    let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let b = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    // First message lands on b's completion queue.
    w.t_send(a, b, 1, ka.iov(8), 0).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(w.has_event(b));
    w.take_event(b);
    // Hand the endpoint to a socket; `sock_create` binds it to the socket
    // consumer, so traffic now flows to the socket layer, not the queue.
    let sb = knet_zsock::sock_create(&mut w, b, a).unwrap();
    w.t_send(a, b, 2, ka.iov(8), 0).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(!w.has_event(b), "socket-owned endpoint bypasses the queue");
    assert_eq!(
        w.registry
            .consumer_of(b)
            .and_then(|c| w.registry.consumer_name(c).map(str::to_string)),
        Some(format!("zsock-{}", sb.0))
    );
}

#[test]
fn unbound_endpoints_park_events_and_replay_on_bind() {
    // Traffic sent before any consumer exists is not lost: it parks in the
    // registry and replays, in order, when a consumer binds.
    let (mut w, n0, n1) = two_nodes();
    let cq_a = w.new_cq();
    let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq_a).unwrap();
    let b = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(); // unbound
    let ka = kbuf(&mut w, n0, 4096);
    for (i, msg) in [b"one..", b"two.."].iter().enumerate() {
        write_kernel(&mut w, n0, ka.addr, *msg);
        w.t_send(a, b, i as u64, ka.iov(5), 0).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
    }
    assert!(!w.has_event(b), "unbound endpoint has no queue");
    assert_eq!(w.registry.parked_len(b), 2);
    let cq_b = w.new_cq();
    w.attach_cq(b, cq_b);
    assert_eq!(w.registry.parked_len(b), 0, "drained on bind");
    let tags: Vec<u64> = std::iter::from_fn(|| w.take_event(b))
        .map(|ev| match ev {
            TransportEvent::Unexpected { tag, .. } => tag,
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(tags, vec![0, 1], "replayed in arrival order");
}

#[test]
fn deregistering_a_consumer_parks_future_events() {
    let (mut w, n0, n1) = two_nodes();
    let cq = w.new_cq();
    let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let b = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    let cid = w.registry.consumer_of(b).expect("bound");
    assert!(w.registry.deregister(cid));
    assert!(!w.registry.deregister(cid), "double deregister is a no-op");
    assert_eq!(w.registry.consumer_of(b), None, "routes dropped");
    w.t_send(a, b, 5, ka.iov(4), 0).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert_eq!(w.registry.parked_len(b), 1, "events park after deregister");
    assert!(!w.has_event(b));
}

#[test]
fn per_endpoint_event_order_is_preserved() {
    // Several messages with distinct tags: the receiving endpoint's events
    // pop in arrival order even though the CQ is shared with the sender.
    let (mut w, n0, n1) = two_nodes();
    let cq = w.new_cq();
    let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let b = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    for tag in 10..15u64 {
        w.t_send(a, b, tag, ka.iov(16), tag).unwrap();
        knet_simcore::run_to_quiescence(&mut w);
    }
    let tags: Vec<u64> = std::iter::from_fn(|| w.take_event(b))
        .map(|ev| match ev {
            TransportEvent::Unexpected { tag, .. } => tag,
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(tags, vec![10, 11, 12, 13, 14]);
    // Sender saw its five completions, in issue order.
    let ctxs: Vec<u64> = std::iter::from_fn(|| w.take_event(a))
        .map(|ev| match ev {
            TransportEvent::SendDone { ctx } => ctx,
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(ctxs, vec![10, 11, 12, 13, 14]);
}

#[test]
fn unexpected_roundtrip_over_both_transports() {
    // An Unexpected delivery each way (GM and MX), through the registry,
    // with byte-exact payloads and correct `from` attribution.
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let (ea, eb) = match kind {
            TransportKind::Mx => (
                w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap(),
                w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap(),
            ),
            TransportKind::Gm => {
                let cfg = GmPortConfig::kernel().with_physical_api();
                (
                    w.open_gm_cq(n0, cfg.clone(), cq).unwrap(),
                    w.open_gm_cq(n1, cfg, cq).unwrap(),
                )
            }
        };
        let ka = kbuf(&mut w, n0, 4096);
        let kb = kbuf(&mut w, n1, 4096);
        write_kernel(&mut w, n0, ka.addr, b"ping!");
        w.t_send(ea, eb, 1, ka.iov(5), 0).unwrap();
        let (tag, data, from) = loop {
            match await_event(&mut w, eb) {
                TransportEvent::Unexpected { tag, data, from } => break (tag, data, from),
                _ => continue,
            }
        };
        assert_eq!((tag, &data[..], from), (1, &b"ping!"[..], ea), "{kind:?}");
        // And back.
        write_kernel(&mut w, n1, kb.addr, b"pong!");
        w.t_send(eb, ea, 2, kb.iov(5), 0).unwrap();
        let (tag, data, from) = loop {
            match await_event(&mut w, ea) {
                TransportEvent::Unexpected { tag, data, from } => break (tag, data, from),
                _ => continue,
            }
        };
        assert_eq!((tag, &data[..], from), (2, &b"pong!"[..], eb), "{kind:?}");
    }
}

#[test]
fn new_workloads_attach_without_touching_the_world() {
    // The acceptance test for the registry redesign: wire a brand-new
    // "echo service" workload purely through consumer registration — no
    // `ClusterWorld` edits, no enum variants, just a handler.
    use std::sync::{Arc, Mutex};

    let (mut w, n0, n1) = two_nodes();
    let cq = w.new_cq();
    let client = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let service = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    let echo_buf = kbuf(&mut w, n1, 4096);
    let log: Arc<Mutex<Vec<u64>>> = Arc::default();

    let log2 = Arc::clone(&log);
    let cid = w.registry.register("echo-service", move |w, ep, ev| {
        if let TransportEvent::Unexpected { tag, data, from } = ev {
            log2.lock().unwrap().push(tag);
            // Echo the payload back, tag + 1000.
            let n = data.len() as u64;
            w.os.node_mut(ep.node)
                .write_virt(Asid::KERNEL, echo_buf.addr, &data)
                .unwrap();
            w.t_send(ep, from, tag + 1000, echo_buf.iov(n), 0).unwrap();
        }
    });
    api::bind(&mut w, service, cid);

    let ka = kbuf(&mut w, n0, 4096);
    write_kernel(&mut w, n0, ka.addr, b"hello, echo");
    w.t_send(client, service, 42, ka.iov(11), 0).unwrap();
    let (tag, data) = loop {
        match await_event(&mut w, client) {
            TransportEvent::Unexpected { tag, data, .. } => break (tag, data),
            _ => continue,
        }
    };
    assert_eq!(tag, 1042);
    assert_eq!(&data[..], b"hello, echo");
    assert_eq!(*log.lock().unwrap(), vec![42]);
}

#[test]
fn vma_events_fan_out_to_all_gm_caches_on_the_node() {
    let (mut w, n0, _n1) = two_nodes();
    let buf = ubuf(&mut w, n0, 16 * 4096);
    // Two kernel ports with caches on the same node.
    let p1 = w
        .open_gm(n0, GmPortConfig::kernel().with_regcache(64))
        .unwrap();
    let p2 = w
        .open_gm(n0, GmPortConfig::kernel().with_regcache(64))
        .unwrap();
    for p in [p1, p2] {
        knet_gm::gm_ensure_cached(&mut w, GmPortId(p.idx), buf.asid, buf.addr, 8 * 4096).unwrap();
    }
    knet_simos::munmap(&mut w, n0, buf.asid, buf.addr, 8 * 4096).unwrap();
    for p in [p1, p2] {
        let cache =
            w.gm.port(GmPortId(p.idx))
                .unwrap()
                .regcache
                .as_ref()
                .unwrap();
        assert_eq!(cache.stats.invalidations, 8, "both caches notified");
        assert!(cache.is_empty());
    }
    // The remaining (unmapped but previously pinned) frames are gone.
    assert!(w.os.node(n0).space(buf.asid).unwrap().mapped_pages() == 8);
}

#[test]
fn gm_and_mx_coexist_on_one_node_pair() {
    // Both drivers on the same NICs at once: traffic stays separated by
    // protocol and the translation table is shared without interference.
    let (mut w, n0, n1) = two_nodes();
    let cq = w.new_cq();
    let ka = kbuf(&mut w, n0, 8192);
    let kb = kbuf(&mut w, n1, 8192);
    let gm_cfg = GmPortConfig::kernel().with_physical_api();
    let ga = w.open_gm_cq(n0, gm_cfg.clone(), cq).unwrap();
    let gb = w.open_gm_cq(n1, gm_cfg, cq).unwrap();
    let ma = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let mb = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
    write_kernel(&mut w, n0, ka.addr, b"via GM !via MX ?");
    // Interleave sends on both drivers.
    let phys = MemRef::physical(ka.addr.kernel_to_phys().unwrap(), 7);
    w.t_send(ga, gb, 1, IoVec::single(phys), 0).unwrap();
    w.t_send(
        ma,
        mb,
        2,
        IoVec::single(MemRef::kernel(ka.addr.add(8), 7)),
        0,
    )
    .unwrap();
    let _ = kb;
    // Both arrive, each at its own driver's endpoint.
    let (gm_tag, gm_len) = match await_event(&mut w, gb) {
        TransportEvent::Unexpected { tag, data, .. } => (tag, data.len()),
        other => panic!("{other:?}"),
    };
    let (mx_tag, mx_data) = loop {
        match await_event(&mut w, mb) {
            TransportEvent::Unexpected { tag, data, .. } => break (tag, data),
            _ => continue,
        }
    };
    assert_eq!((gm_tag, gm_len), (1, 7));
    assert_eq!(mx_tag, 2);
    assert_eq!(&mx_data[..], b"via MX ");
}

#[test]
fn unknown_destination_fails_cleanly() {
    let (mut w, n0, _n1) = two_nodes();
    let cq = w.new_cq();
    let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    let bogus = knet_core::Endpoint {
        kind: TransportKind::Mx,
        node: NodeId(1),
        idx: 999,
    };
    assert!(w.t_send(a, bogus, 1, ka.iov(16), 0).is_err());
    // GM: sending via a closed port errors too.
    let g = w
        .open_gm_cq(n0, GmPortConfig::kernel().with_physical_api(), cq)
        .unwrap();
    knet_gm::gm_close_port(&mut w, GmPortId(g.idx)).unwrap();
    let phys = MemRef::physical(ka.addr.kernel_to_phys().unwrap(), 4);
    assert!(w.t_send(g, g, 1, IoVec::single(phys), 0).is_err());
}

//! Tests of the composed world's plumbing: endpoint ownership routing,
//! driver mailboxes, VMA SPY fan-out, and cross-driver isolation.

use knet::harness::{await_event, kbuf, ubuf};
use knet::prelude::*;
use knet::Owner;
use knet_core::{TransportEvent, TransportWorld};
use knet_gm::GmPortId;

#[test]
fn driver_mailboxes_are_per_endpoint() {
    let (mut w, n0, n1) = two_nodes();
    let a = w.open_mx(n0, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
    let b1 = w.open_mx(n1, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
    let b2 = w.open_mx(n1, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    w.os
        .node_mut(n0)
        .write_virt(Asid::KERNEL, ka.addr, b"to-b2")
        .unwrap();
    w.t_send(a, b2, 9, ka.iov(5), 0).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(!w.has_event(b1), "b1 must not see b2's traffic");
    match w.take_event(b2) {
        Some(TransportEvent::Unexpected { tag, data, from }) => {
            assert_eq!(tag, 9);
            assert_eq!(&data[..], b"to-b2");
            assert_eq!(from, a);
        }
        other => panic!("expected delivery at b2, got {other:?}"),
    }
}

#[test]
fn reassigning_ownership_reroutes_events() {
    let (mut w, n0, n1) = two_nodes();
    let a = w.open_mx(n0, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
    let b = w.open_mx(n1, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    // First message lands in the driver mailbox.
    w.t_send(a, b, 1, ka.iov(8), 0).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(w.has_event(b));
    w.take_event(b);
    // Hand the endpoint to a socket; traffic now flows to the socket layer,
    // not the mailbox.
    let sock_b = knet_zsock::sock_create(&mut w, b, a).unwrap();
    w.set_owner(b, Owner::Sock(sock_b));
    w.t_send(a, b, 2, ka.iov(8), 0).unwrap();
    knet_simcore::run_to_quiescence(&mut w);
    assert!(!w.has_event(b), "socket-owned endpoint bypasses the mailbox");
}

#[test]
fn vma_events_fan_out_to_all_gm_caches_on_the_node() {
    let (mut w, n0, _n1) = two_nodes();
    let buf = ubuf(&mut w, n0, 16 * 4096);
    // Two kernel ports with caches on the same node.
    let p1 = w
        .open_gm(n0, GmPortConfig::kernel().with_regcache(64), Owner::Driver)
        .unwrap();
    let p2 = w
        .open_gm(n0, GmPortConfig::kernel().with_regcache(64), Owner::Driver)
        .unwrap();
    for p in [p1, p2] {
        knet_gm::gm_ensure_cached(&mut w, GmPortId(p.idx), buf.asid, buf.addr, 8 * 4096)
            .unwrap();
    }
    knet_simos::munmap(&mut w, n0, buf.asid, buf.addr, 8 * 4096).unwrap();
    for p in [p1, p2] {
        let cache = w.gm.port(GmPortId(p.idx)).unwrap().regcache.as_ref().unwrap();
        assert_eq!(cache.stats.invalidations, 8, "both caches notified");
        assert!(cache.is_empty());
    }
    // The remaining (unmapped but previously pinned) frames are gone.
    assert!(w.os.node(n0).space(buf.asid).unwrap().mapped_pages() == 8);
}

#[test]
fn gm_and_mx_coexist_on_one_node_pair() {
    // Both drivers on the same NICs at once: traffic stays separated by
    // protocol and the translation table is shared without interference.
    let (mut w, n0, n1) = two_nodes();
    let ka = kbuf(&mut w, n0, 8192);
    let kb = kbuf(&mut w, n1, 8192);
    let gm_cfg = GmPortConfig::kernel().with_physical_api();
    let ga = w.open_gm(n0, gm_cfg.clone(), Owner::Driver).unwrap();
    let gb = w.open_gm(n1, gm_cfg, Owner::Driver).unwrap();
    let ma = w.open_mx(n0, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
    let mb = w.open_mx(n1, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
    w.os
        .node_mut(n0)
        .write_virt(Asid::KERNEL, ka.addr, b"via GM !via MX ?")
        .unwrap();
    // Interleave sends on both drivers.
    let phys = MemRef::physical(ka.addr.kernel_to_phys().unwrap(), 7);
    w.t_send(ga, gb, 1, IoVec::single(phys), 0).unwrap();
    w.t_send(ma, mb, 2, IoVec::single(MemRef::kernel(ka.addr.add(8), 7)), 0)
        .unwrap();
    let _ = kb;
    // Both arrive, each at its own driver's endpoint.
    let (gm_tag, gm_len) = match await_event(&mut w, gb) {
        TransportEvent::Unexpected { tag, data, .. } => (tag, data.len()),
        other => panic!("{other:?}"),
    };
    let (mx_tag, mx_data) = loop {
        match await_event(&mut w, mb) {
            TransportEvent::Unexpected { tag, data, .. } => break (tag, data),
            _ => continue,
        }
    };
    assert_eq!((gm_tag, gm_len), (1, 7));
    assert_eq!(mx_tag, 2);
    assert_eq!(&mx_data[..], b"via MX ");
}

#[test]
fn unknown_destination_fails_cleanly() {
    let (mut w, n0, _n1) = two_nodes();
    let a = w.open_mx(n0, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    let bogus = knet_core::Endpoint {
        kind: TransportKind::Mx,
        node: NodeId(1),
        idx: 999,
    };
    assert!(w.t_send(a, bogus, 1, ka.iov(16), 0).is_err());
    // GM: sending via a closed port errors too.
    let g = w.open_gm(n0, GmPortConfig::kernel().with_physical_api(), Owner::Driver).unwrap();
    knet_gm::gm_close_port(&mut w, GmPortId(g.idx)).unwrap();
    let phys = MemRef::physical(ka.addr.kernel_to_phys().unwrap(), 4);
    assert!(w.t_send(g, g, 1, IoVec::single(phys), 0).is_err());
}

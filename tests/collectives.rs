//! The collective subsystem, end to end: groups wired over real GM/MX
//! kernel endpoints, payload bytes moving NIC-to-NIC down and up k-ary
//! trees, completions surfacing as typed `TransportEvent`s — plus the
//! failure contract (a dead member resolves, never hangs) and the
//! per-link reliability breakdown.

use knet::figures::{coll_fixture, CollFixture};
use knet::prelude::*;
use knet::world::ClusterWorld;
use knet_core::TransportEvent;
use knet_simnic::FaultPlan;
use knet_simos::Asid;

fn write_kernel(w: &mut ClusterWorld, node: NodeId, addr: knet_simos::VirtAddr, data: &[u8]) {
    w.os.node_mut(node)
        .write_virt(Asid::KERNEL, addr, data)
        .unwrap();
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

type Dones = Vec<(u64, Vec<u8>)>;
type Recvs = Vec<(u64, Vec<u8>)>;
type Fails = Vec<(u64, NetError)>;

/// Drain one endpoint's CQ into (dones, recvs, fails).
fn drain(w: &mut ClusterWorld, ep: Endpoint) -> (Dones, Recvs, Fails) {
    let (mut dones, mut recvs, mut fails) = (Vec::new(), Vec::new(), Vec::new());
    while let Some(ev) = w.take_event(ep) {
        match ev {
            TransportEvent::CollectiveDone { ctx, data, .. } => dones.push((ctx, data.to_vec())),
            TransportEvent::CollectiveRecv { tag, data, .. } => recvs.push((tag, data.to_vec())),
            TransportEvent::CollectiveFailed { ctx, error, .. } => fails.push((ctx, error)),
            other => panic!("unexpected event {other:?}"),
        }
    }
    (dones, recvs, fails)
}

#[test]
fn bcast_reaches_every_member_byte_exact_on_gm() {
    let CollFixture {
        mut w,
        group,
        eps,
        bufs,
    } = coll_fixture(TransportKind::Gm, 8, 2);
    // A multi-chunk payload (larger than one MTU) with a recognizable
    // pattern, staged in the root's kernel buffer.
    let payload = pattern(10_000, 7);
    write_kernel(&mut w, NodeId(0), bufs[0].addr, &payload);

    let ctx = channel_bcast(&mut w, group, 42, &bufs[0].iov(payload.len() as u64)).unwrap();
    run_to_quiescence(&mut w);

    // Root: exactly one aggregated completion, no self-delivery.
    let (dones, recvs, fails) = drain(&mut w, eps[0]);
    assert_eq!(dones.len(), 1, "one completion regardless of group size");
    assert_eq!(dones[0].0, ctx);
    assert!(recvs.is_empty() && fails.is_empty());

    // Every non-root member: the payload, byte-exact, tagged.
    for &ep in &eps[1..] {
        let (dones, recvs, fails) = drain(&mut w, ep);
        assert!(dones.is_empty() && fails.is_empty());
        assert_eq!(recvs.len(), 1);
        assert_eq!(recvs[0].0, 42);
        assert_eq!(recvs[0].1, payload, "byte-exact delivery at {ep:?}");
    }

    assert_eq!(w.coll.pending_count(), 0, "no stranded host contexts");
    assert_eq!(w.nics.coll.pending_count(), 0, "no stranded NIC slots");
    let snap = w.stats_snapshot();
    assert_eq!(snap.coll_started, 1);
    assert_eq!(snap.coll_completed, 1);
    assert!(snap.coll_frames > 0, "frames crossed the tree engine");
}

#[test]
fn barrier_releases_no_one_until_the_last_member_enters() {
    let CollFixture {
        mut w, group, eps, ..
    } = coll_fixture(TransportKind::Mx, 6, 3);

    // Everyone but the last member enters. The world cannot go quiescent
    // here — the tree's probe chain keeps chasing the straggler — so run
    // to a generous virtual-time deadline instead.
    let mut ctxs = Vec::new();
    for &ep in &eps[..5] {
        ctxs.push(channel_barrier(&mut w, group, ep).unwrap());
    }
    let deadline = SimTime::from_micros(20_000);
    let out = run_until(&mut w, |w| now(w) >= deadline);
    assert!(matches!(out, RunOutcome::Satisfied));
    for &ep in &eps {
        let (dones, recvs, fails) = drain(&mut w, ep);
        assert!(
            dones.is_empty() && recvs.is_empty() && fails.is_empty(),
            "no completion may fire before the last member enters"
        );
    }

    // The straggler enters: everyone completes.
    ctxs.push(channel_barrier(&mut w, group, eps[5]).unwrap());
    run_to_quiescence(&mut w);
    for (i, &ep) in eps.iter().enumerate() {
        let (dones, _, fails) = drain(&mut w, ep);
        assert!(fails.is_empty());
        assert_eq!(dones.len(), 1, "member {i} released");
        assert_eq!(dones[0].0, ctxs[i]);
    }
    assert_eq!(w.coll.pending_count(), 0);
    assert_eq!(w.nics.coll.pending_count(), 0);
}

#[test]
fn reduce_combines_lanes_in_nic_across_the_tree() {
    let CollFixture {
        mut w, group, eps, ..
    } = coll_fixture(TransportKind::Mx, 7, 2);

    // Member i contributes lanes [i+1, (i+1)^2, i as bitmask].
    let mut root_ctx = 0;
    for (i, &ep) in eps.iter().enumerate() {
        let v = (i + 1) as u64;
        let ctx = channel_reduce(&mut w, group, ep, ReduceOp::Sum, &[v, v * v, 1 << i]).unwrap();
        if i == 0 {
            root_ctx = ctx;
        }
    }
    run_to_quiescence(&mut w);

    let (dones, _, fails) = drain(&mut w, eps[0]);
    assert!(fails.is_empty());
    assert_eq!(dones.len(), 1);
    assert_eq!(dones[0].0, root_ctx);
    let lanes: Vec<u64> = dones[0]
        .1
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let n = eps.len() as u64;
    assert_eq!(
        lanes,
        vec![
            n * (n + 1) / 2,
            (1..=n).map(|v| v * v).sum::<u64>(),
            (1 << eps.len()) - 1,
        ],
        "the root holds the lane-wise combination of every contribution"
    );

    // Non-root members complete locally (empty payload).
    for &ep in &eps[1..] {
        let (dones, _, fails) = drain(&mut w, ep);
        assert!(fails.is_empty());
        assert_eq!(dones.len(), 1);
        assert!(dones[0].1.is_empty());
    }

    // The combine happened inside the NICs, not at the host.
    assert!(w.nics.coll.stats.combines > 0, "in-NIC combines ran");
    assert_eq!(w.coll.pending_count(), 0);
}

#[test]
fn min_and_bitand_use_their_identities() {
    let CollFixture {
        mut w, group, eps, ..
    } = coll_fixture(TransportKind::Gm, 4, 2);
    for (i, &ep) in eps.iter().enumerate() {
        channel_reduce(&mut w, group, ep, ReduceOp::Min, &[10 + i as u64]).unwrap();
    }
    run_to_quiescence(&mut w);
    let (dones, _, _) = drain(&mut w, eps[0]);
    assert_eq!(dones[0].1, 10u64.to_le_bytes().to_vec(), "min survives");

    for (i, &ep) in eps.iter().enumerate() {
        channel_reduce(&mut w, group, ep, ReduceOp::BitAnd, &[!(1 << i)]).unwrap();
    }
    run_to_quiescence(&mut w);
    let (dones, _, _) = drain(&mut w, eps[0]);
    assert_eq!(
        dones[0].1,
        (!0b1111u64).to_le_bytes().to_vec(),
        "and-reduction clears exactly the contributed zero bits"
    );
}

#[test]
fn group_api_enforces_its_contract() {
    let CollFixture {
        mut w, group, eps, ..
    } = coll_fixture(TransportKind::Gm, 4, 2);

    // Zero fan-out is meaningless.
    assert!(matches!(
        group_create(&mut w, eps[0], 0),
        Err(NetError::Unsupported)
    ));
    // One member per node.
    assert!(matches!(
        group_join(&mut w, group, eps[1]),
        Err(NetError::BadEndpoint)
    ));
    // Transport kinds cannot mix within a group.
    let mx = w.open_mx(NodeId(3), MxEndpointConfig::kernel()).unwrap();
    assert!(matches!(
        group_join(&mut w, group, mx),
        Err(NetError::BadEndpoint)
    ));
    // The root cannot leave.
    assert!(matches!(
        group_leave(&mut w, group, eps[0]),
        Err(NetError::Unsupported)
    ));
    // Empty payloads are rejected (nothing to fan out / combine).
    assert!(channel_reduce(&mut w, group, eps[0], ReduceOp::Sum, &[]).is_err());

    // A member can leave; the re-wired group still completes collectives.
    group_leave(&mut w, group, eps[3]).unwrap();
    for &ep in &eps[..3] {
        channel_barrier(&mut w, group, ep).unwrap();
    }
    run_to_quiescence(&mut w);
    for &ep in &eps[..3] {
        let (dones, _, fails) = drain(&mut w, ep);
        assert_eq!(dones.len(), 1);
        assert!(fails.is_empty());
    }
    // The departed member saw nothing.
    let (dones, recvs, fails) = drain(&mut w, eps[3]);
    assert!(dones.is_empty() && recvs.is_empty() && fails.is_empty());

    let gs = w.coll.group_stats(group).unwrap();
    assert_eq!(gs.started, 3);
    assert_eq!(gs.completed, 3);
    assert_eq!(gs.failed, 0);
}

/// Satellite regression: a member killed mid-collective resolves the round
/// as a typed failure for every survivor — no silent hang. The kill takes
/// the straggler before it enters the barrier; the tree's probe chain
/// exhausts the dead link's retry budget, and the `PeerDown` machinery
/// fans `CollectiveFailed` out to every outstanding context.
#[test]
fn member_killed_mid_barrier_fails_survivors_typed() {
    let CollFixture {
        mut w, group, eps, ..
    } = coll_fixture(TransportKind::Mx, 6, 2);
    let victim = 5usize;
    w.set_fault_plan(
        FaultPlan::new(0xC011_DEAD).with_kill(NodeId(victim as u32), SimTime::from_micros(300)),
    );

    // Every survivor enters; the victim never does.
    let mut ctxs = Vec::new();
    for (i, &ep) in eps.iter().enumerate() {
        if i != victim {
            ctxs.push((i, channel_barrier(&mut w, group, ep).unwrap()));
        }
    }
    // Quiescence must be *reached* (the probe chain dies once the failure
    // resolves) — this is the no-silent-hang half of the contract.
    run_to_quiescence(&mut w);

    for (i, ctx) in ctxs {
        let (dones, _, fails) = drain(&mut w, eps[i]);
        assert!(dones.is_empty(), "member {i} must not complete");
        assert_eq!(fails.len(), 1, "member {i} gets exactly one failure");
        assert_eq!(fails[0].0, ctx, "the failure names the barrier's context");
        assert!(matches!(fails[0].1, NetError::PeerUnreachable));
    }
    assert_eq!(w.coll.pending_count(), 0, "no stranded host contexts");
    assert_eq!(w.nics.coll.pending_count(), 0, "no stranded NIC slots");

    // The group is poisoned: further collectives fail synchronously.
    assert!(matches!(
        channel_barrier(&mut w, group, eps[0]),
        Err(NetError::PeerUnreachable)
    ));
    let snap = w.stats_snapshot();
    assert_eq!(snap.coll_failed as usize, eps.len() - 1);
}

/// Satellite: the aggregate `RelStats` mirror stays, and the new per-link
/// breakdown attributes traffic to individual directed links — rows sum
/// back to the aggregate counters they slice.
#[test]
fn rel_link_breakdown_sums_to_the_aggregate() {
    let CollFixture {
        mut w,
        group,
        eps: _,
        bufs,
    } = coll_fixture(TransportKind::Gm, 4, 2);
    let payload = pattern(4096, 3);
    write_kernel(&mut w, NodeId(0), bufs[0].addr, &payload);
    channel_bcast(&mut w, group, 1, &bufs[0].iov(4096)).unwrap();
    run_to_quiescence(&mut w);

    let rows = w.rel_link_stats();
    assert!(!rows.is_empty());
    let agg = w.nics.rel.stats;
    assert_eq!(
        rows.iter().map(|r| r.data_packets).sum::<u64>(),
        agg.data_packets,
        "per-link rows partition the aggregate data-packet count"
    );
    assert_eq!(
        rows.iter().map(|r| r.retransmits).sum::<u64>(),
        agg.retransmits
    );
    assert_eq!(
        rows.iter().map(|r| r.rtt_samples).sum::<u64>(),
        agg.rtt_samples
    );
    // The breakdown is deterministically ordered.
    let mut sorted = rows.clone();
    sorted.sort_by_key(|r| (r.proto as u8, r.src.0, r.dst.0));
    assert_eq!(
        rows.iter().map(|r| (r.src.0, r.dst.0)).collect::<Vec<_>>(),
        sorted
            .iter()
            .map(|r| (r.src.0, r.dst.0))
            .collect::<Vec<_>>()
    );
    // The root's downlinks are individually attributable, and the tree
    // (fan-out 2 at the root) kept the root's uplink count bounded: the
    // root sends to exactly its two children, not to all three members.
    let root_tx: Vec<_> = rows.iter().filter(|r| r.src.0 == 0).collect();
    assert_eq!(root_tx.len(), 2, "root transmits on exactly k=2 links");
    for r in &root_tx {
        assert!(r.data_packets > 0);
        assert!(!r.dead);
    }
    // Single-link query agrees with the breakdown row.
    let one = w
        .nics
        .rel
        .link_stats(knet_simnic::Proto::Gm, root_tx[0].src, root_tx[0].dst)
        .unwrap();
    assert_eq!(one.data_packets, root_tx[0].data_packets);
}

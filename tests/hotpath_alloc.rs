//! The allocation-free hot path, *asserted*.
//!
//! A counting global allocator (per-thread counters, so parallel test
//! threads cannot interfere) proves that the structures the steady-state
//! send path crosses perform **zero heap allocations** once warm:
//!
//! * GMKRC cache-hit planning (`RegCache::plan_range_into`),
//! * NIC translation-table lookups,
//! * io-vector construction/cloning at inline width,
//! * completion-queue push/pop at the slab's high-water mark.
//!
//! The scheduler itself is held to the same contract: steady-state events
//! are *typed* enum variants dispatched from a recycled slab arena —
//! **zero heap allocations per event** once warm
//! (`typed_event_dispatch_allocates_nothing`), with the engine counters
//! (`arena_uses` climbing, `arena_grows` flat) as the receipts. The full
//! end-to-end send path then allocates only the packet's payload `Bytes`
//! — the driver- and API-layer buffers are all recycled, which the pool
//! statistics assert: scratch `grows` and context-pool `slots` stay flat
//! in steady state while `uses`/`reuses` keep climbing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use knet::build::ClusterBuilder;
use knet::harness::kbuf;
use knet_core::api::{channel_connect, channel_post_recv, channel_send};
use knet_core::{
    Endpoint, IoVec, MemRef, RangePlan, RegCache, RegKey, TransportEvent, TransportKind,
};
use knet_gm::GmPortConfig;
use knet_simnic::{TransKey, TransTable};
use knet_simos::{Asid, CpuModel, FrameIdx, NodeId, PhysAddr, VirtAddr, PAGE_SIZE};

// ---------------------------------------------------------------- allocator

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let r = f();
    (ALLOCS.with(Cell::get) - before, r)
}

// ---------------------------------------------------------------- structures

#[test]
fn regcache_hit_path_allocates_nothing() {
    let asid = Asid(1);
    let mut cache = RegCache::new(4096);
    for vpn in 0..2048u64 {
        cache.commit(RegKey { asid, vpn }, FrameIdx(vpn as u32));
    }
    let mut plan = RangePlan::default();
    // Warm the plan scratch (a miss fills `missing` once).
    cache.plan_range_into(
        asid,
        VirtAddr::new(4000 * PAGE_SIZE),
        2 * PAGE_SIZE,
        &mut plan,
    );

    let (allocs, hits) = count(|| {
        let mut hits = 0u64;
        for i in 0..10_000u64 {
            let vpn = i % 2048;
            cache.plan_range_into(asid, VirtAddr::new(vpn << 12), PAGE_SIZE, &mut plan);
            hits += plan.hit_pages;
        }
        hits
    });
    assert_eq!(hits, 10_000);
    assert_eq!(allocs, 0, "steady-state cache hits must not allocate");
}

#[test]
fn regcache_eviction_selection_allocates_nothing() {
    // pop_lru is the O(1) victim read-off; the only allocation on the full
    // evict-commit cycle is the ordered index's node (miss path, not hits).
    let asid = Asid(1);
    let mut cache = RegCache::new(512);
    for vpn in 0..512u64 {
        cache.commit(RegKey { asid, vpn }, FrameIdx(vpn as u32));
    }
    let (allocs, victims) = count(|| {
        let mut victims = 0;
        for _ in 0..256 {
            if cache.pop_lru().is_some() {
                victims += 1;
            }
        }
        victims
    });
    assert_eq!(victims, 256);
    assert_eq!(allocs, 0, "LRU victim selection must not allocate");
}

#[test]
fn ttable_lookup_allocates_nothing() {
    let mut tt = TransTable::new(8192);
    for vpn in 0..4096u64 {
        tt.insert(TransKey { asid: Asid(1), vpn }, PhysAddr::new(vpn << 12))
            .unwrap();
    }
    let (allocs, _) = count(|| {
        for i in 0..10_000u64 {
            let vpn = i % 4096;
            tt.lookup(Asid(1), VirtAddr::new(vpn << 12)).unwrap();
        }
    });
    assert_eq!(allocs, 0, "translation lookups must not allocate");
}

#[test]
fn inline_iovecs_allocate_nothing() {
    let seg = MemRef::physical(PhysAddr::new(0x1000), 256);
    let (allocs, segs) = count(|| {
        let mut segs = 0usize;
        for _ in 0..1_000 {
            let mut iov = IoVec::single(seg);
            iov.push(MemRef::physical(PhysAddr::new(0x2000), 256));
            iov.push(MemRef::physical(PhysAddr::new(0x3000), 256));
            segs += iov.clone().seg_count();
        }
        segs
    });
    assert_eq!(segs, 3_000);
    assert_eq!(allocs, 0, "inline io-vectors must not allocate");
}

#[test]
fn cq_steady_state_allocates_nothing() {
    use knet::world::ClusterWorld;
    let mut reg = knet_core::Registry::<ClusterWorld>::new();
    let cq = reg.create_cq();
    let ep = Endpoint {
        kind: TransportKind::Gm,
        node: NodeId(0),
        idx: 7,
    };
    // Warm: fill to the high-water mark once, then drain.
    for i in 0..64u64 {
        reg.cq_push(cq, ep, TransportEvent::SendDone { ctx: i });
    }
    let mut batch = Vec::new();
    reg.cq_pop_batch(cq, ep, usize::MAX, &mut batch);

    let (allocs, popped) = count(|| {
        let mut popped = 0usize;
        for round in 0..1_000u64 {
            for i in 0..32u64 {
                reg.cq_push(
                    cq,
                    ep,
                    TransportEvent::SendDone {
                        ctx: round * 32 + i,
                    },
                );
            }
            while reg.cq_pop_for(cq, ep).is_some() {
                popped += 1;
            }
        }
        popped
    });
    assert_eq!(popped, 32_000);
    assert_eq!(allocs, 0, "warm completion queues must not allocate");
}

// ---------------------------------------------------------------- engine

/// The scheduler's typed-event path end to end: emit → heap → arena slot →
/// dispatch, with **zero heap allocations per event** once the arena and
/// heap have reached their high-water marks. (`RelTimer` on a vacant link
/// key is the cheapest typed event — it crosses the full dispatch machinery
/// and returns.)
#[test]
fn typed_event_dispatch_allocates_nothing() {
    use knet::ClusterEv;
    use knet_simcore::SimTime;
    use knet_simnic::{NicEv, Proto};

    let mut w = ClusterBuilder::new()
        .nodes(2, CpuModel::xeon_2600())
        .build();
    let burst = |w: &mut knet::world::ClusterWorld| {
        for i in 0..512u64 {
            let t = w.sched.now() + SimTime::from_nanos(10 + i);
            let ev = ClusterEv::Nic(NicEv::RelTimer {
                key: (Proto::Gm, 0, 1),
            });
            knet_simcore::emit_at(w, (i % 2) as u32, t, ev);
        }
        knet_simcore::run_to_quiescence(w);
    };

    // Warm-up: grow the heap and the event arena to their high-water marks.
    burst(&mut w);
    let s0 = w.engine_stats();

    let (allocs, _) = count(|| {
        for _ in 0..4 {
            burst(&mut w);
        }
    });
    let s1 = w.engine_stats();

    assert_eq!(allocs, 0, "warm typed-event dispatch must not allocate");
    assert!(
        s1.arena_uses >= s0.arena_uses + 2048,
        "every event takes an arena slot"
    );
    assert_eq!(
        s1.arena_grows, s0.arena_grows,
        "steady state must not grow the event arena"
    );
    assert_eq!(s1.errors, 0, "no engine errors on the hot path");
    // The registry snapshot mirrors the engine counters (satellite view).
    let snap = w.stats_snapshot();
    assert_eq!(snap.engine_arena_uses, s1.arena_uses);
    assert_eq!(snap.engine_arena_grows, s1.arena_grows);
    assert_eq!(snap.engine_events, s1.executed);
    assert_eq!(snap.engine_errors, 0);
}

// ---------------------------------------------------------------- full path

/// Drive real messages through channels over GM and hold the *pools* to
/// their contract: in steady state the scratch buffers stop growing and the
/// send-context pool stops minting slots — every per-operation buffer the
/// driver and API layers need is recycled.
#[test]
fn channel_send_path_recycles_pools_in_steady_state() {
    let mut w = ClusterBuilder::new()
        .nodes(2, CpuModel::xeon_2600())
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let cq0 = w.new_cq();
    let cq1 = w.new_cq();
    let cfg = GmPortConfig::kernel().with_physical_api();
    let a = w.open_gm_cq(n0, cfg.clone(), cq0).unwrap();
    let b = w.open_gm_cq(n1, cfg, cq1).unwrap();
    let ka = kbuf(&mut w, n0, 4096);
    let kb = kbuf(&mut w, n1, 4096);
    let ch_a = channel_connect(&mut w, a, b, cq0);
    let ch_b = channel_connect(&mut w, b, a, cq1);

    let mut batch = Vec::new();
    let mut round = |w: &mut knet::world::ClusterWorld, tag: u64| {
        channel_post_recv(w, ch_b, tag, kb.iov(4096)).unwrap();
        channel_send(w, ch_a, tag, ka.iov(4096)).unwrap();
        knet_simcore::run_to_quiescence(w);
        w.take_events(a, usize::MAX, &mut batch);
        w.take_events(b, usize::MAX, &mut batch);
    };
    let _ = ch_b;

    // Warm-up: reach every pool's high-water mark.
    for tag in 1..=16u64 {
        round(&mut w, tag);
    }
    let scratch0 = w.gm.scratch.stats;
    let pool0 = w.registry.stats;
    let rel0 = w.nics.rel.stats;

    for tag in 17..=116u64 {
        round(&mut w, tag);
    }
    let scratch1 = w.gm.scratch.stats;
    let pool1 = w.registry.stats;
    let rel1 = w.nics.rel.stats;

    assert!(
        scratch1.uses >= scratch0.uses + 100,
        "every send borrows the scratch"
    );
    assert_eq!(
        scratch1.grows, scratch0.grows,
        "steady state must not grow driver scratch buffers"
    );
    assert_eq!(
        pool1.ctx_pool_slots, pool0.ctx_pool_slots,
        "steady state must not mint new send-context slots"
    );
    assert!(
        pool1.ctx_pool_reuses >= pool0.ctx_pool_reuses + 100,
        "steady-state sends recycle pooled contexts"
    );
    assert!(
        pool1.batched_pops > pool0.batched_pops,
        "completions drained through cq_pop_batch"
    );
    // The reliability window rides the same contract: every packet flows
    // through it (sequencing, the unacked ring, SACK-bearing acks) with
    // zero steady-state allocations — link states and ring capacities reach
    // their high-water mark during warm-up and never grow again. Retained
    // packets clone `Bytes` payloads (refcount, no copy), so the lossless
    // path stays exactly as allocation-free as before the window existed.
    assert!(
        rel1.data_packets >= rel0.data_packets + 100,
        "every send crosses the reliability window"
    );
    assert_eq!(
        rel1.grows, rel0.grows,
        "steady state must not grow the window rings"
    );
    assert_eq!(rel1.links, rel0.links, "no new link states in steady state");
    assert_eq!(
        rel1.retransmits, rel0.retransmits,
        "a lossless fabric never retransmits"
    );
    assert_eq!(rel1.dup_dropped, 0, "no duplicates without faults");
    // The selective-repeat additions keep the same discipline: the SACK
    // bitmap is one machine word per link and the RTT estimator three
    // inline fields — both recycled with the link state (`grows` flat
    // above covers them) — and every ack feeds a sample without the
    // adaptive timer ever firing a false round on a clean fabric.
    assert!(
        rel1.rtt_samples >= rel0.rtt_samples + 100,
        "every ack samples the RTT estimator"
    );
    assert_eq!(
        rel1.spurious_rtos, 0,
        "a lossless fabric never has a spurious RTO"
    );
    assert_eq!(rel1.sacked, 0, "in-order lossless arrivals never need SACK");
    assert!(
        rel1.srtt_ns > 0 && rel1.rto_ns >= rel1.srtt_ns,
        "the estimator holds a live SRTT and a derived RTO"
    );
    // The mirrored view through the registry snapshot matches the source.
    let snap = w.stats_snapshot();
    assert_eq!(snap.rel_rtt_samples, rel1.rtt_samples);
    assert_eq!(snap.rel_retransmits, rel1.retransmits);
    assert_eq!(snap.rel_spurious_rtos, 0);
    assert_eq!(snap.rel_srtt_ns, rel1.srtt_ns);
}

/// The multi-tenant machinery rides the same contract: per-tenant WDRR
/// lanes in the channel, per-tenant pacing lanes in the driver and token
/// buckets at the NIC all reach their high-water mark during warm-up and
/// never grow again. Two tenants share a 2-node GM cluster — "rt"
/// unthrottled, "bulk" behind a token bucket so its sends cross the
/// Defer → pacing-lane → pace-timer path every round — while a tiny token
/// pool parks sends in the channel lanes. Once warm, an identical batch of
/// rounds performs *exactly* the same number of heap allocations as the
/// previous one: the steady-state tenant path allocates nothing beyond the
/// payload `Bytes` the driver already accounts.
#[test]
fn multi_tenant_send_path_keeps_lanes_and_buckets_flat() {
    use knet_gm::GmParams;
    use knet_simnic::QosPolicy;

    let mut w = ClusterBuilder::new()
        .nodes(2, CpuModel::xeon_2600())
        .gm_params(GmParams {
            send_tokens: 2,
            ..GmParams::default()
        })
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let rt = w.register_tenant("rt", 4, None);
    let bulk = w.register_tenant(
        "bulk",
        1,
        Some(QosPolicy {
            rate_bytes_per_sec: 20_000_000,
            burst_bytes: 8192,
            pace_queue_cap: 1024,
        }),
    );
    let cq = w.new_cq();
    let cfg = GmPortConfig::kernel().with_physical_api();
    let a_rt = w.open_gm_cq(n0, cfg.clone(), cq).unwrap();
    let b_rt = w.open_gm_cq(n1, cfg.clone(), cq).unwrap();
    let a_bulk = w.open_gm_cq(n0, cfg.clone(), cq).unwrap();
    let b_bulk = w.open_gm_cq(n1, cfg, cq).unwrap();
    let ch_rt = channel_connect(&mut w, a_rt, b_rt, cq);
    let ch_bulk = channel_connect(&mut w, a_bulk, b_bulk, cq);
    w.assign_tenant(a_rt, rt);
    w.assign_tenant(a_bulk, bulk);
    let ka = kbuf(&mut w, n0, 4096);

    let mut batch = Vec::new();
    let mut round = |w: &mut knet::world::ClusterWorld, r: u64| {
        // Six sends per tenant against two tokens: four park in each
        // channel's tenant lane; bulk's admitted sends outrun the bucket
        // and defer through the driver pacing lane.
        for i in 0..6u64 {
            channel_send(w, ch_rt, r * 100 + i, ka.iov(1024)).unwrap();
            channel_send(w, ch_bulk, r * 100 + i, ka.iov(1024)).unwrap();
        }
        knet_simcore::run_to_quiescence(w);
        w.take_events(a_rt, usize::MAX, &mut batch);
        w.take_events(a_bulk, usize::MAX, &mut batch);
        w.take_events(b_rt, usize::MAX, &mut batch);
        w.take_events(b_bulk, usize::MAX, &mut batch);
    };

    // Warm-up: lanes, buckets, pace timers and pools reach their marks.
    for r in 1..=16u64 {
        round(&mut w, r);
    }
    let lane_grows = |w: &knet::world::ClusterWorld| {
        let rt_ch = w.registry.channel(ch_rt).unwrap();
        let bulk_ch = w.registry.channel(ch_bulk).unwrap();
        (
            rt_ch.queue_grows(),
            rt_ch.queue_lanes(),
            bulk_ch.queue_grows(),
            bulk_ch.queue_lanes(),
            w.gm.paced_grows(),
        )
    };
    let lanes0 = lane_grows(&w);
    let pool0 = w.registry.stats;
    let qos0 = w.nics.qos.totals();

    let (allocs_a, _) = count(|| {
        for r in 17..=66u64 {
            round(&mut w, r);
        }
    });
    let (allocs_b, _) = count(|| {
        for r in 67..=116u64 {
            round(&mut w, r);
        }
    });
    let lanes1 = lane_grows(&w);
    let pool1 = w.registry.stats;
    let qos1 = w.nics.qos.totals();

    assert_eq!(
        allocs_a, allocs_b,
        "identical warm batches must allocate identically — any growth \
         would make the second batch cheaper or dearer"
    );
    assert_eq!(lanes1, lanes0, "tenant lane slabs and pacing queues flat");
    assert_eq!(
        pool1.ctx_pool_slots, pool0.ctx_pool_slots,
        "no new send-context slots for tenant traffic"
    );
    assert!(
        pool1.queued_sends >= pool0.queued_sends + 100,
        "the rounds really parked sends in the tenant lanes"
    );
    assert!(
        qos1.deferred > qos0.deferred,
        "bulk really crossed the pacing path"
    );
    assert_eq!(qos1.shed, qos0.shed, "nothing shed at this offered load");
    // Per-tenant rows kept pace without minting rows (dense vectors).
    let rows = w.tenant_stats();
    let rt_row = rows.iter().find(|r| r.name == "rt").unwrap();
    let bulk_row = rows.iter().find(|r| r.name == "bulk").unwrap();
    assert!(rt_row.channel.queued_sends > 0 && bulk_row.channel.queued_sends > 0);
    assert_eq!(
        rt_row.qos.admitted, 0,
        "unthrottled tenants skip the bucket"
    );
    assert!(bulk_row.qos.admitted > 0 && bulk_row.qos.deferred > 0);
}

// ---------------------------------------------------------------- rpc

/// The RPC codec's warm path is *strictly* allocation-free: requests and
/// responses encode into a recycled scratch buffer, and decoding borrows
/// payload slices out of the frame — no copies, no boxes, nothing.
#[test]
fn rpc_codec_warm_encode_decode_allocates_nothing() {
    use knet_rpc::codec::{
        decode_request, decode_response, encode_request, encode_response, ReqHeader, RespHeader,
        NO_DEADLINE, RESP_HEADER_LEN, RPC_SCHEMA_VERSION,
    };
    let mut frame = Vec::new();
    let payload = [7u8; 512];
    // Warm: one encode of the largest frame grows the scratch to capacity.
    encode_request(
        &mut frame,
        ReqHeader {
            version: RPC_SCHEMA_VERSION,
            method: 1,
            corr: 1,
            deadline_ns: NO_DEADLINE,
            idem: 1,
        },
        &payload,
    );
    let (allocs, checksum) = count(|| {
        let mut sum = 0u64;
        for i in 0..10_000u64 {
            encode_request(
                &mut frame,
                ReqHeader {
                    version: RPC_SCHEMA_VERSION,
                    method: (i % 7) as u16,
                    corr: (i << 32) | i,
                    deadline_ns: 1_000_000 + i,
                    idem: i,
                },
                &payload,
            );
            let (hdr, p) = decode_request(&frame).expect("decodes");
            sum += hdr.corr ^ p[0] as u64;
            encode_response(
                &mut frame,
                RespHeader {
                    version: RPC_SCHEMA_VERSION,
                    status: None,
                    corr: hdr.corr,
                },
                &payload[..64],
            );
            let (rh, len) = decode_response(&frame).expect("decodes");
            sum += rh.corr + len as u64 + frame[RESP_HEADER_LEN] as u64;
        }
        sum
    });
    assert!(checksum > 0);
    assert_eq!(allocs, 0, "warm codec encode/decode must not allocate");
}

/// Warm RPC round-trips and warm *retries* hold the layer to the same
/// contract as the raw channel path: call slots are pooled (the slab stops
/// minting), the codec scratch is recycled (`grows` flat while `uses`
/// climbs), and the channel context pool underneath stays at its
/// high-water mark. A steady-state RPC costs no new buffers anywhere —
/// only the per-packet payload `Bytes` the driver already accounts.
#[test]
fn rpc_round_trips_and_retries_recycle_pools_in_steady_state() {
    use knet::prelude::*;
    use std::sync::Arc;

    let mut w = ClusterBuilder::new()
        .nodes(2, CpuModel::xeon_2600())
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let sep = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    rpc_server_create(
        &mut w,
        sep,
        "echo",
        RpcServerConfig::default(),
        |_w, _req, payload, resp| {
            resp.extend_from_slice(payload);
            RpcOutcome::Reply
        },
        |_w, _node| {},
    )
    .unwrap();
    let cid = rpc_client_create(
        &mut w,
        cep,
        sep,
        "cli",
        RpcSink::Handler(Arc::new(|_w, _comp| {})),
        RpcClientConfig::default(),
    )
    .unwrap();

    let mut out = Vec::new();
    let mut round = |w: &mut knet::world::ClusterWorld, i: u64| {
        let call = rpc_call(w, cid, 3, b"steady-state payload", RpcCallOpts::default()).unwrap();
        knet_simcore::run_to_quiescence(w);
        assert_eq!(
            rpc_collect(w, cid, call, &mut out),
            Some(20),
            "round {i} echoes"
        );
    };

    // Warm-up: every pool reaches its high-water mark.
    for i in 1..=16u64 {
        round(&mut w, i);
    }
    let (uses0, grows0) = w.rpc.scratch_stats();
    let pool0 = w.registry.stats;

    for i in 17..=116u64 {
        round(&mut w, i);
    }
    let (uses1, grows1) = w.rpc.scratch_stats();
    let pool1 = w.registry.stats;

    assert!(
        uses1 >= uses0 + 200,
        "every round-trip borrows codec scratch on both sides"
    );
    assert_eq!(grows1, grows0, "steady state must not grow the RPC scratch");
    assert_eq!(
        pool1.ctx_pool_slots, pool0.ctx_pool_slots,
        "steady-state RPC must not mint channel context slots"
    );
    assert!(
        pool1.ctx_pool_reuses >= pool0.ctx_pool_reuses + 100,
        "RPC sends recycle pooled contexts"
    );
    let cs = rpc_client_stats(&w, cid);
    assert_eq!(cs.completed, 116);
    assert_eq!(cs.retries, 0, "a healthy echo pair never retries");

    // The *retry* path rides the same pools: a black-hole server forces
    // attempt-timer resends until the budget exhausts (typed
    // `PeerUnreachable`), and none of it may grow a buffer either.
    let bep = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    rpc_server_create(
        &mut w,
        bep,
        "blackhole",
        RpcServerConfig::default(),
        |_w, _req, _payload, _resp| RpcOutcome::Defer,
        |_w, _node| {},
    )
    .unwrap();
    let cep2 = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    let rcid = rpc_client_create(
        &mut w,
        cep2,
        bep,
        "retrier",
        RpcSink::Handler(Arc::new(|_w, _comp| {})),
        RpcClientConfig {
            policy: RetryPolicy {
                max_attempts: 3,
                attempt_timeout: SimTime::from_micros(300),
                base_backoff: SimTime::from_micros(50),
                max_backoff: SimTime::from_micros(200),
            },
            ..Default::default()
        },
    )
    .unwrap();
    let failed_round = |w: &mut knet::world::ClusterWorld| {
        rpc_call(
            w,
            rcid,
            9,
            b"shouting into the void",
            RpcCallOpts::default(),
        )
        .unwrap();
        knet_simcore::run_to_quiescence(w);
    };
    // Warm the retry machinery once (timer events, resend path).
    failed_round(&mut w);
    let (_, rgrows0) = w.rpc.scratch_stats();
    let rpool0 = w.registry.stats.ctx_pool_slots;
    for _ in 0..24 {
        failed_round(&mut w);
    }
    let (_, rgrows1) = w.rpc.scratch_stats();
    let rs = rpc_client_stats(&w, rcid);
    assert_eq!(rs.failed, 25, "every voided call fails typed");
    assert_eq!(rs.retries, 50, "two resends per call (budget of three)");
    assert_eq!(rgrows1, rgrows0, "warm retries must not grow the scratch");
    assert_eq!(
        w.registry.stats.ctx_pool_slots, rpool0,
        "warm retries must not mint context slots"
    );
    assert_eq!(w.stats_snapshot().engine_errors, 0);
}

// ---------------------------------------------------------------- collectives

/// The in-NIC reduce combiner works lane-wise in place on the recycled
/// accumulator — the innermost loop of every reduction must not allocate.
#[test]
fn combine_lanes_allocates_nothing() {
    use knet_simnic::{combine_lanes, ReduceOp};
    let mut acc = vec![0u8; 4096];
    let chunk: Vec<u8> = (0..2048u64).flat_map(|i| i.to_le_bytes()).collect();
    let (allocs, _) = count(|| {
        for op in [
            ReduceOp::Sum,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::BitXor,
        ] {
            for _ in 0..1_000 {
                combine_lanes(op, &mut acc, 0, &chunk[..4096]);
                combine_lanes(op, &mut acc, 2048, &chunk[..2048]);
            }
        }
    });
    assert_eq!(allocs, 0, "the reduce combiner must not allocate");
}

/// Warm collective rounds hold every pool to its contract: the NIC tree
/// engine recycles its payload/progress scratch (`buf_grows` flat while
/// `buf_uses` climbs), the host layer recycles its staging scratch, and no
/// round leaves contexts or tree slots behind.
#[test]
fn collective_rounds_recycle_pools_in_steady_state() {
    use knet::figures::{coll_fixture, CollFixture};
    use knet::prelude::*;
    let CollFixture {
        mut w,
        group,
        eps,
        bufs,
    } = coll_fixture(TransportKind::Gm, 8, 2);
    let mut batch = Vec::new();
    let mut round = |w: &mut knet::world::ClusterWorld, r: u64| {
        channel_bcast(w, group, r, &bufs[0].iov(4096)).unwrap();
        knet_simcore::run_to_quiescence(w);
        for &ep in &eps {
            channel_barrier(w, group, ep).unwrap();
        }
        knet_simcore::run_to_quiescence(w);
        for (m, &ep) in eps.iter().enumerate() {
            channel_reduce(w, group, ep, ReduceOp::Sum, &[m as u64, r]).unwrap();
        }
        knet_simcore::run_to_quiescence(w);
        for &ep in &eps {
            w.take_events(ep, usize::MAX, &mut batch);
        }
    };

    // Warm-up: reach the pools' high-water marks.
    for r in 1..=8u64 {
        round(&mut w, r);
    }
    let nic0 = w.nics.coll.stats;
    let scr0 = w.coll.scratch_stats;
    let pool0 = w.registry.stats;

    for r in 9..=40u64 {
        round(&mut w, r);
    }
    let nic1 = w.nics.coll.stats;
    let scr1 = w.coll.scratch_stats;
    let pool1 = w.registry.stats;

    assert!(
        nic1.buf_uses >= nic0.buf_uses + 32,
        "every round borrows NIC tree scratch"
    );
    assert_eq!(
        nic1.buf_grows, nic0.buf_grows,
        "steady state must not grow the NIC tree pools"
    );
    assert!(
        scr1.uses >= scr0.uses + 32,
        "every round stages via scratch"
    );
    assert_eq!(
        scr1.grows, scr0.grows,
        "steady state must not grow the staging scratch"
    );
    assert_eq!(
        pool1.ctx_pool_slots, pool0.ctx_pool_slots,
        "collectives must not mint point-to-point context slots"
    );
    assert_eq!(w.coll.pending_count(), 0, "no stranded host contexts");
    assert_eq!(w.nics.coll.pending_count(), 0, "no stranded NIC slots");
    // The point-to-point reliability rings reached their high-water mark
    // during warm-up too — collective frames ride the same windows.
    assert_eq!(w.nics.rel.stats.retransmits, 0, "lossless fabric");
}

//! The O(1) GMKRC must be *observationally identical* to the flat-map
//! implementation it replaced: same hits, same miss lists, same eviction
//! victims in the same order, same invalidation sets, same drain contents,
//! same statistics — on arbitrary interleavings of register / plan /
//! evict / invalidate / drain.
//!
//! `ModelCache` below is a line-for-line reimplementation of the pre-rework
//! `RegCache` (a `BTreeMap` keyed by `RegKey` with a logical clock per
//! entry, `evict_lru` collecting and sorting every entry); the property
//! drives it in lock-step with the real cache over seeded random op
//! streams.

use std::collections::BTreeMap;

use knet_core::{RegCache, RegKey};
use knet_simos::{page_slices, Asid, FrameIdx, VirtAddr, VmaChange, VmaEvent, PAGE_SIZE};
use proptest::TestRng;

// ---------------------------------------------------------------- model

#[derive(Clone, Copy)]
struct ModelEntry {
    frame: FrameIdx,
    last_use: u64,
}

/// The previous `RegCache` implementation, kept as the executable spec.
struct ModelCache {
    entries: BTreeMap<RegKey, ModelEntry>,
    capacity: usize,
    clock: u64,
    page_hits: u64,
    page_misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl ModelCache {
    fn new(capacity: usize) -> Self {
        ModelCache {
            entries: BTreeMap::new(),
            capacity,
            clock: 0,
            page_hits: 0,
            page_misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    fn plan_range(&mut self, asid: Asid, addr: VirtAddr, len: u64) -> (Vec<VirtAddr>, u64) {
        let mut missing = Vec::new();
        let mut hits = 0u64;
        let mut last_vpn = None;
        for (page, _, _) in page_slices(addr, len) {
            if last_vpn == Some(page.vpn()) {
                continue;
            }
            last_vpn = Some(page.vpn());
            let key = RegKey::of(asid, page);
            self.clock += 1;
            match self.entries.get_mut(&key) {
                Some(e) => {
                    e.last_use = self.clock;
                    hits += 1;
                    self.page_hits += 1;
                }
                None => {
                    missing.push(page);
                    self.page_misses += 1;
                }
            }
        }
        (missing, hits)
    }

    fn commit(&mut self, key: RegKey, frame: FrameIdx) {
        self.clock += 1;
        self.entries.insert(
            key,
            ModelEntry {
                frame,
                last_use: self.clock,
            },
        );
    }

    fn pressure(&self, need: usize) -> usize {
        (self.entries.len() + need).saturating_sub(self.capacity)
    }

    fn evict_lru(&mut self, n: usize) -> Vec<(RegKey, FrameIdx)> {
        let mut by_age: Vec<(u64, RegKey)> =
            self.entries.iter().map(|(k, e)| (e.last_use, *k)).collect();
        by_age.sort_unstable();
        let victims: Vec<RegKey> = by_age.into_iter().take(n).map(|(_, k)| k).collect();
        let mut out = Vec::new();
        for k in victims {
            if let Some(e) = self.entries.remove(&k) {
                self.evictions += 1;
                out.push((k, e.frame));
            }
        }
        out
    }

    fn invalidate(&mut self, ev: &VmaEvent) -> Vec<(RegKey, FrameIdx)> {
        let range = match ev.change {
            VmaChange::Unmap { start, len } | VmaChange::Protect { start, len } => Some((
                start.vpn(),
                VirtAddr::new(start.raw() + len.max(1) - 1).vpn(),
            )),
            VmaChange::Exit => None,
            VmaChange::Fork { .. } => return Vec::new(),
        };
        let (lo, hi) = range.unwrap_or((0, u64::MAX));
        let keys: Vec<RegKey> = self
            .entries
            .range(
                RegKey {
                    asid: ev.asid,
                    vpn: lo,
                }..=RegKey {
                    asid: ev.asid,
                    vpn: hi,
                },
            )
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::new();
        for k in keys {
            if let Some(e) = self.entries.remove(&k) {
                self.invalidations += 1;
                out.push((k, e.frame));
            }
        }
        out
    }

    fn drain(&mut self) -> Vec<(RegKey, FrameIdx)> {
        let out: Vec<(RegKey, FrameIdx)> =
            self.entries.iter().map(|(k, e)| (*k, e.frame)).collect();
        self.entries.clear();
        out
    }
}

// ---------------------------------------------------------------- property

fn key_list(v: &[(RegKey, FrameIdx)]) -> Vec<(u32, u64, u32)> {
    v.iter().map(|(k, f)| (k.asid.0, k.vpn, f.0)).collect()
}

/// One random op stream, model and implementation in lock-step.
fn run_stream(seed: u64, ops: usize, capacity: usize) {
    let mut rng = TestRng::new(seed);
    let mut model = ModelCache::new(capacity);
    let mut real = RegCache::new(capacity);
    let asids = [Asid(1), Asid(2), Asid(7)];

    for step in 0..ops {
        let ctx = format!("seed {seed} step {step}");
        match rng.below(100) {
            // Plan a range (the hot path): must agree on hits and misses.
            0..=44 => {
                let asid = asids[rng.below(asids.len() as u64) as usize];
                let addr = VirtAddr::new(rng.below(64) * PAGE_SIZE + rng.below(PAGE_SIZE));
                let len = rng.below(6 * PAGE_SIZE) + 1;
                let (m_missing, m_hits) = model.plan_range(asid, addr, len);
                let plan = real.plan_range(asid, addr, len);
                assert_eq!(plan.missing, m_missing, "{ctx}: miss list");
                assert_eq!(plan.hit_pages, m_hits, "{ctx}: hit count");
                // Register what was missing (as the driver would).
                for page in m_missing {
                    let key = RegKey::of(asid, page);
                    let frame = FrameIdx(rng.below(1 << 20) as u32);
                    model.commit(key, frame);
                    real.commit(key, frame);
                }
            }
            // Direct commit (re-registration of a possibly-known page).
            45..=59 => {
                let key = RegKey {
                    asid: asids[rng.below(asids.len() as u64) as usize],
                    vpn: rng.below(64),
                };
                let frame = FrameIdx(rng.below(1 << 20) as u32);
                model.commit(key, frame);
                real.commit(key, frame);
            }
            // Evict under (possibly synthetic) pressure: victims must match
            // exactly, order included.
            60..=74 => {
                let n = (rng.below(8) + 1) as usize;
                assert_eq!(model.pressure(n), real.pressure(n), "{ctx}: pressure");
                let m = model.evict_lru(n);
                let r = real.evict_lru(n);
                assert_eq!(key_list(&r), key_list(&m), "{ctx}: eviction victims");
            }
            // VMA SPY events: identical invalidation sets.
            75..=92 => {
                let asid = asids[rng.below(asids.len() as u64) as usize];
                let ev = match rng.below(4) {
                    0 => VmaEvent::unmap(
                        asid,
                        VirtAddr::new(rng.below(64) * PAGE_SIZE),
                        (rng.below(8) + 1) * PAGE_SIZE,
                    ),
                    1 => VmaEvent::protect(
                        asid,
                        VirtAddr::new(rng.below(64) * PAGE_SIZE),
                        (rng.below(8) + 1) * PAGE_SIZE,
                    ),
                    2 => VmaEvent::exit(asid),
                    _ => VmaEvent::fork(asid, Asid(99)),
                };
                let m = model.invalidate(&ev);
                let r = real.invalidate(&ev);
                assert_eq!(key_list(&r), key_list(&m), "{ctx}: invalidation set");
            }
            // Occasional full drain (port close).
            _ => {
                let m = model.drain();
                let r = real.drain();
                assert_eq!(key_list(&r), key_list(&m), "{ctx}: drain");
            }
        }
        assert_eq!(real.len(), model.entries.len(), "{ctx}: occupancy");
    }

    // Lifetime statistics agree too.
    assert_eq!(real.stats.page_hits, model.page_hits, "hits (seed {seed})");
    assert_eq!(
        real.stats.page_misses, model.page_misses,
        "misses (seed {seed})"
    );
    assert_eq!(
        real.stats.evictions, model.evictions,
        "evictions (seed {seed})"
    );
    assert_eq!(
        real.stats.invalidations, model.invalidations,
        "invalidations (seed {seed})"
    );
}

#[test]
fn o1_regcache_matches_the_flat_map_model() {
    for seed in 0..32u64 {
        run_stream(0xC0FFEE ^ seed.wrapping_mul(0x9E3779B97F4A7C15), 400, 24);
    }
}

#[test]
fn o1_regcache_matches_under_tight_capacity_thrash() {
    // Capacity 4 with a 64-page universe: constant eviction churn.
    for seed in 0..16u64 {
        run_stream(0xBEEF ^ seed.wrapping_mul(0x2545F4914F6CDD1D), 300, 4);
    }
}

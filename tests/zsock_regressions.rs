//! Regression tests for the zero-copy socket stream layer: the
//! reorder-map stall after zero-copy completions, staging of payloads the
//! 4 MiB socket ring cannot hold, and stream integrity under randomized
//! message/reader interleavings (dual-lane PCI-XE cards deliver
//! consecutive messages out of order).

use knet::harness::{sock_wait, ubuf, UBuf};
use knet::prelude::*;
use knet_zsock::{sock_create, sock_recv, sock_send, SockId};
use proptest::prelude::*;

/// A connected socket pair on the PCI-XE (dual-lane) testbed with
/// `buf_len`-byte user buffers on both sides.
fn pair(kind: TransportKind, buf_len: u64) -> (ClusterWorld, SockId, SockId, UBuf, UBuf) {
    let (mut w, n0, n1) = two_nodes_xe();
    let ba = ubuf(&mut w, n0, buf_len);
    let bb = ubuf(&mut w, n1, buf_len);
    let (ea, eb) = match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096);
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    };
    let sa = sock_create(&mut w, ea, eb).unwrap();
    let sb = sock_create(&mut w, eb, ea).unwrap();
    (w, sa, sb, ba, bb)
}

fn fill_at(w: &mut ClusterWorld, buf: &UBuf, off: u64, data: &[u8]) {
    w.os.node_mut(buf.node)
        .write_virt(buf.asid, buf.addr.add(off), data)
        .unwrap();
}

fn read_back(w: &ClusterWorld, buf: &UBuf, off: u64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    w.os.node(buf.node)
        .read_virt(buf.asid, buf.addr.add(off), &mut v)
        .unwrap();
    v
}

fn pattern(seed: u64, len: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((seed * 131 + i * 7 + 3) % 251) as u8)
        .collect()
}

// ------------------------------------------------------- reorder stall

#[test]
fn zero_copy_completion_promotes_parked_reorder_segments() {
    // Dual-lane out-of-order schedule: seq 0 is a large rendezvous message
    // steered zero-copy into a blocked reader; seq 1 is a small inline
    // message that rides the second lane and lands (out of order) in the
    // reorder map while seq 0 is still in flight. When seq 0's zero-copy
    // completion advances rx_next past it, seq 1 must be promoted into the
    // stream buffer — before the fix, it sat in the reorder map until
    // unrelated traffic arrived and the second reader stalled forever.
    let (mut w, sa, sb, ba, bb) = pair(TransportKind::Mx, 1 << 20);
    let big = 200_000u64;
    let small = 64u64;

    // Reader blocks first with a large-enough buffer → seq 0 goes Direct.
    let r1 = sock_recv(&mut w, sb, bb.memref(big));
    let d0 = pattern(0, big);
    let d1 = pattern(1, small);
    fill_at(&mut w, &ba, 0, &d0);
    fill_at(&mut w, &ba, big, &d1);
    sock_send(&mut w, sa, ba.memref(big)); // seq 0: rendezvous, slow
    sock_send(&mut w, sa, ba.memref_at(big, small)); // seq 1: inline, fast lane
    assert_eq!(sock_wait(&mut w, sb, r1), big, "zero-copy read completes");
    assert_eq!(read_back(&w, &bb, 0, big as usize), d0);
    assert_eq!(
        w.zsock.sock(sb).stats.zero_copy_receives,
        1,
        "seq 0 was steered (the schedule exercises the Direct path)"
    );

    // The small message must now be claimable without any further traffic.
    let r2 = sock_recv(&mut w, sb, bb.memref(small));
    assert_eq!(
        sock_wait(&mut w, sb, r2),
        small,
        "seq 1 promoted out of the reorder map"
    );
    assert_eq!(read_back(&w, &bb, 0, small as usize), d1);
}

// ------------------------------------------------- oversized payloads

#[test]
fn payloads_larger_than_the_socket_ring_survive_intact() {
    // A payload bigger than the 4 MiB socket ring must neither wrap over
    // in-flight ring data nor write past the allocation: it is staged in a
    // dedicated kernel buffer (freed after landing) on both the GM send
    // side (copy protocol) and the late-reader receive side.
    const BIG: u64 = (4 << 20) + (1 << 20); // 5 MiB > SOCK_RING
    for kind in [TransportKind::Mx, TransportKind::Gm] {
        let (mut w, sa, sb, ba, bb) = pair(kind, 8 << 20);
        let data = pattern(7, BIG);
        fill_at(&mut w, &ba, 0, &data);
        sock_send(&mut w, sa, ba.memref(BIG));
        // No reader yet: the payload lands in kernel staging (the ring is
        // too small — the dedicated-allocation fallback must kick in).
        run_to_quiescence(&mut w);
        assert!(
            w.zsock.sock(sb).stats.oversize_allocs >= 1,
            "{kind:?}: receive staging fell back to a dedicated allocation"
        );
        if kind == TransportKind::Gm {
            assert!(
                w.zsock.sock(sa).stats.oversize_allocs >= 1,
                "GM send-side copy staging fell back to a dedicated allocation"
            );
        }
        // Read it back in chunks; the bytes must be exact.
        let mut got = Vec::new();
        while (got.len() as u64) < BIG {
            let want = (1 << 20u64).min(BIG - got.len() as u64);
            let op = sock_recv(&mut w, sb, bb.memref(want));
            let n = sock_wait(&mut w, sb, op);
            assert!(n > 0, "{kind:?}: reader progresses");
            got.extend(read_back(&w, &bb, 0, n as usize));
        }
        assert_eq!(got, data, "{kind:?}: oversized payload is byte-exact");
    }
}

#[test]
fn ring_never_hands_out_overlapping_reservations() {
    // Many in-flight messages whose staging would have collided under the
    // old wrap-to-zero ring: with ~1 MiB frames, four in-flight fills the
    // 4 MiB ring and the fifth used to wrap over frame 0 while its bytes
    // were still queued for the reader. All bytes must survive.
    let (mut w, sa, sb, bb_src, bb) = pair(TransportKind::Gm, 8 << 20);
    let frame = 1 << 20;
    let n_frames = 6u64;
    let mut expect = Vec::new();
    for i in 0..n_frames {
        let d = pattern(i, frame);
        fill_at(&mut w, &bb_src, i * frame, &d);
        sock_send(&mut w, sa, bb_src.memref_at(i * frame, frame));
        expect.extend(d);
    }
    // Let everything land in the kernel socket buffer before reading.
    run_to_quiescence(&mut w);
    let mut got = Vec::new();
    while (got.len() as u64) < n_frames * frame {
        let op = sock_recv(&mut w, sb, bb.memref(frame));
        let n = sock_wait(&mut w, sb, op);
        got.extend(read_back(&w, &bb, 0, n as usize));
    }
    assert_eq!(got, expect, "no reservation overwrote in-flight bytes");
}

// ------------------------------------- randomized lane interleavings

fn arb_sizes() -> impl Strategy<Value = Vec<u64>> {
    // Mix of regimes: inline (≤4 kB on MX), eager medium, rendezvous
    // large — consecutive messages ride different lanes on PCI-XE and
    // overtake each other.
    prop::collection::vec(
        prop_oneof![1u64..256, 2_000u64..10_000, 40_000u64..200_000],
        2..7,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn stream_bytes_arrive_in_order_under_random_interleavings(
        sizes in arb_sizes(),
        chunk in 1_000u64..50_000,
        reader_first in any::<bool>(),
    ) {
        let (mut w, sa, sb, ba, bb) = pair(TransportKind::Mx, 2 << 20);
        let total: u64 = sizes.iter().sum();
        let mut expect = Vec::new();
        let mut off = 0u64;
        let mut first_op = None;
        if reader_first {
            // A blocked reader exercises the zero-copy steering path for
            // the first message.
            first_op = Some(sock_recv(&mut w, sb, bb.memref(chunk)));
        }
        for (i, &s) in sizes.iter().enumerate() {
            let d = pattern(i as u64, s);
            fill_at(&mut w, &ba, off, &d);
            sock_send(&mut w, sa, ba.memref_at(off, s));
            expect.extend(d);
            off += s;
        }
        let mut got = Vec::new();
        if let Some(op) = first_op {
            let n = sock_wait(&mut w, sb, op);
            prop_assert!(n > 0);
            got.extend(read_back(&w, &bb, 0, n as usize));
        }
        while (got.len() as u64) < total {
            let want = chunk.min(total - got.len() as u64);
            let op = sock_recv(&mut w, sb, bb.memref(want));
            let n = sock_wait(&mut w, sb, op);
            prop_assert!(n > 0, "reader never stalls");
            got.extend(read_back(&w, &bb, 0, n as usize));
        }
        prop_assert_eq!(got, expect, "stream is in order and complete");
    }
}

// --------------------------------------------------- socket id recycling

#[test]
fn socket_ids_never_alias_across_close_create_churn() {
    // SockId used to be allocated from `socks.len()`, so once slots were
    // recycled a close-heavy workload aliased stale ids onto new sockets.
    // Ids are generation-tagged now: a closed id stops resolving, a
    // recycled slot mints a distinct id, and traffic still flows
    // end-to-end after every generation.
    let (mut w, n0, n1) = two_nodes_xe();
    let ba = ubuf(&mut w, n0, 1 << 20);
    let bb = ubuf(&mut w, n1, 1 << 20);
    let mut seen = std::collections::BTreeSet::new();
    let mut prev: Option<(SockId, SockId)> = None;
    for round in 0..4u64 {
        let ea = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
        let eb = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
        let sa = sock_create(&mut w, ea, eb).unwrap();
        let sb = sock_create(&mut w, eb, ea).unwrap();
        assert!(
            seen.insert(sa),
            "round {round}: sa id {sa:?} recycled verbatim"
        );
        assert!(
            seen.insert(sb),
            "round {round}: sb id {sb:?} recycled verbatim"
        );
        if let Some((dead_a, dead_b)) = prev {
            // Stale ids resolve to nothing — not to the new sockets now
            // occupying their slots.
            assert!(w.zsock.try_sock(dead_a).is_none(), "round {round}");
            assert!(w.zsock.try_sock(dead_b).is_none(), "round {round}");
        }
        // The new pair still moves bytes.
        let data = pattern(round, 20_000);
        fill_at(&mut w, &ba, 0, &data);
        let r = sock_recv(&mut w, sb, bb.memref(20_000));
        sock_send(&mut w, sa, ba.memref(20_000));
        assert_eq!(sock_wait(&mut w, sb, r), 20_000, "round {round}");
        assert_eq!(read_back(&w, &bb, 0, 20_000), data, "round {round}");
        knet_zsock::sock_close(&mut w, sa);
        knet_zsock::sock_close(&mut w, sb);
        assert!(w.zsock.try_sock(sa).is_none(), "closed id stops resolving");
        // Closing a stale id is a no-op, not a panic.
        knet_zsock::sock_close(&mut w, sa);
        prev = Some((sa, sb));
    }
    assert_eq!(w.zsock.count(), 0, "all sockets closed");
    run_to_quiescence(&mut w);
}

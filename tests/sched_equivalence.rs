//! Sharded-engine equivalence: the conservative-lookahead parallel engine
//! must be **bit-identical** to the sequential event loop.
//!
//! Every workload here runs once on a plain sequential `ClusterWorld` and
//! once per shard count on a [`ShardedCluster`] (real threads for 2+
//! shards), with the same seed, and must produce the same fingerprint:
//! `executed()` event counts, a rolling hash of every transport event each
//! endpoint observed, and — for the collective workload — the NIC tree
//! fingerprint. A single reordered event anywhere shifts the fingerprint.
//!
//! The chaos workload exercises the whole cross-shard surface: seeded
//! drop/duplicate/delay fault dice (per-directed-link streams), MX channel
//! traffic in both directions, reliability retransmission timers, acks,
//! and node kills with `PeerDown` failover.

use knet::harness::{kbuf, KBuf};
use knet::prelude::*;
use knet::ShardedCluster;
use knet_core::api::{channel_send, ChannelId};
use knet_core::Endpoint;
use knet_simnic::FaultPlan;
use knet_simos::Asid;
use proptest::prelude::*;

// ----------------------------------------------------------------- driver

/// One workload driver: the sequential baseline or a sharded cluster. The
/// workloads below are written against this so the *same code* drives both
/// engines.
enum Driver {
    Seq(Box<ClusterWorld>),
    Sharded(ShardedCluster),
}

impl Driver {
    fn seq(n: usize) -> Self {
        Driver::Seq(Box::new(builder(n).build()))
    }

    fn sharded(n: usize, k: usize) -> Self {
        Driver::Sharded(builder(n).build_sharded(k))
    }

    /// Mirrored setup (must precede any `on`/`run`).
    fn setup<T>(&mut self, f: impl Fn(&mut ClusterWorld) -> T) -> T {
        match self {
            Driver::Seq(w) => f(w),
            Driver::Sharded(s) => s.setup(f),
        }
    }

    /// A control op against the world owning `node`.
    fn on<R>(&mut self, node: u32, f: impl FnOnce(&mut ClusterWorld) -> R) -> R {
        match self {
            Driver::Seq(w) => f(w),
            Driver::Sharded(s) => s.on(node, f),
        }
    }

    fn run(&mut self) {
        match self {
            Driver::Seq(w) => {
                run_to_quiescence(&mut **w);
            }
            Driver::Sharded(s) => {
                s.run_to_quiescence();
            }
        }
    }

    fn executed(&self) -> u64 {
        match self {
            Driver::Seq(w) => w.sched.executed(),
            Driver::Sharded(s) => s.executed(),
        }
    }

    fn world(&self, node: u32) -> &ClusterWorld {
        match self {
            Driver::Seq(w) => w,
            Driver::Sharded(s) => s.world(node),
        }
    }

    /// No shard may have recorded a typed engine error.
    fn assert_clean(&self) {
        match self {
            Driver::Seq(w) => assert_eq!(w.sched.engine_error(), None),
            Driver::Sharded(s) => assert_eq!(s.engine_error(), None),
        }
    }
}

fn builder(n: usize) -> ClusterBuilder {
    ClusterBuilder::new()
        .nodes(n, CpuModel::xeon_2600())
        .mem_frames(32_768.max(n as u32 * 512))
}

// ------------------------------------------------------------ fingerprint

/// FNV-1a-style rolling mix — order-sensitive, so any reordering of the
/// observed event stream changes the result.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

fn mix_event(h: u64, ev: &TransportEvent) -> u64 {
    match ev {
        TransportEvent::SendDone { ctx } => mix(mix(h, 1), *ctx),
        TransportEvent::RecvDone { ctx, tag, len, .. } => {
            mix(mix(mix(mix(h, 2), *ctx), *tag), *len)
        }
        TransportEvent::Unexpected { tag, data, from } => {
            let sum: u64 = data.iter().map(|&b| b as u64).sum();
            mix(mix(mix(mix(h, 3), *tag), sum), from.idx as u64)
        }
        TransportEvent::SendFailed { ctx, .. } => mix(mix(h, 4), *ctx),
        TransportEvent::PeerDown { peer } => mix(mix(h, 5), peer.node.0 as u64),
        TransportEvent::CollectiveDone { ctx, data, .. } => {
            let sum: u64 = data.iter().map(|&b| b as u64).sum();
            mix(mix(mix(h, 6), *ctx), sum)
        }
        TransportEvent::CollectiveRecv { tag, data, .. } => {
            let sum: u64 = data.iter().map(|&b| b as u64).sum();
            mix(mix(mix(h, 7), *tag), sum)
        }
        TransportEvent::CollectiveFailed { ctx, .. } => mix(mix(h, 8), *ctx),
        TransportEvent::RpcDone { call, len, error } => {
            mix(mix(mix(mix(h, 9), *call), *len), error.is_some() as u64)
        }
    }
}

// -------------------------------------------------------- chaos workload

struct Mesh {
    eps: Vec<Endpoint>,
    bufs: Vec<KBuf>,
    /// `chans[i]` connects `eps[i] → eps[(i + 1) % n]`.
    chans: Vec<ChannelId>,
}

/// Ring-mesh channel traffic under a seeded faulty fabric (drops, dups,
/// delay-reorder, and optionally a node kill). Returns the fingerprint.
///
/// The mesh is multi-tenant: endpoints rotate through two weighted tenants
/// plus a token-bucket-paced one, so the per-channel WDRR lanes, the
/// driver pacing lanes and the NIC buckets all carry state under chaos —
/// and that state is folded into the fingerprint per node each round. (The
/// paced tenant stays off the kill target: a dead NIC drains nothing, by
/// design.)
fn chaos_fingerprint(d: &mut Driver, n: usize, seed: u64, loss_pct: u64, kill: bool) -> (u64, u64) {
    let mesh = d.setup(|w| {
        let mut plan = FaultPlan::new(seed)
            .with_drop(loss_pct as f64 / 100.0)
            .with_dup(0.03)
            .with_delay(0.06, SimTime::from_micros(2), SimTime::from_micros(60));
        if kill {
            plan = plan.with_kill(NodeId(n as u32 - 1), SimTime::from_millis(2));
        }
        w.set_fault_plan(plan);
        let silver = w.register_tenant("silver", 2, None);
        let bulk = w.register_tenant(
            "bulk",
            3,
            Some(knet_simnic::QosPolicy {
                rate_bytes_per_sec: 50_000_000,
                burst_bytes: 16_384,
                pace_queue_cap: 256,
            }),
        );
        let gold = w.register_tenant("gold", 4, None);
        let mut eps = Vec::new();
        let mut bufs = Vec::new();
        let mut cqs = Vec::new();
        for i in 0..n {
            let node = NodeId(i as u32);
            let cq = w.new_cq();
            let ep = w.open_mx_cq(node, MxEndpointConfig::kernel(), cq).unwrap();
            w.assign_tenant(ep, [silver, bulk, gold][i % 3]);
            eps.push(ep);
            cqs.push(cq);
            bufs.push(kbuf(w, node, 64 << 10));
        }
        let chans = (0..n)
            .map(|i| knet_core::api::channel_connect(w, eps[i], eps[(i + 1) % n], cqs[i]))
            .collect();
        Mesh { eps, bufs, chans }
    });

    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for round in 0..3u64 {
        for i in 0..n {
            let len = 900 + 611 * round + 37 * i as u64;
            let buf = mesh.bufs[i];
            let ch = mesh.chans[i];
            d.on(i as u32, |w| {
                let data: Vec<u8> = (0..len)
                    .map(|j| (seed ^ (round * 131 + i as u64 * 17 + j)) as u8)
                    .collect();
                w.os.node_mut(buf.node)
                    .write_virt(Asid::KERNEL, buf.addr, &data)
                    .unwrap();
                // Sends to a killed peer may fail synchronously once the
                // link dies — that is part of the fingerprinted behaviour.
                let _ = channel_send(w, ch, round * 100 + i as u64, buf.iov(len));
            });
        }
        d.run();
        for i in 0..n {
            let ep = mesh.eps[i];
            fp = d.on(i as u32, |w| {
                let mut h = fp;
                while let Some(ev) = w.take_event(ep) {
                    h = mix_event(h, &ev);
                }
                // Fold this node's tenant-scheduler slice — channel WDRR
                // lanes, driver pacing lanes, NIC token buckets — so a
                // single mis-scheduled tenant byte anywhere diverges.
                w.tenant_fingerprint_node(NodeId(i as u32), |v| h = mix(h, v));
                h
            });
        }
    }
    d.assert_clean();
    (d.executed(), fp)
}

// --------------------------------------------------- collective workload

/// Broadcast + barrier + reduce rounds over an n-member NIC-tree group.
fn coll_fingerprint(d: &mut Driver, n: usize, fanout: usize, seed: u64) -> (u64, u64, u64) {
    let (group, eps, root_buf) = d.setup(|w| {
        let mut eps = Vec::new();
        let mut bufs = Vec::new();
        for i in 0..n {
            let node = NodeId(i as u32);
            let cq = w.new_cq();
            eps.push(w.open_mx_cq(node, MxEndpointConfig::kernel(), cq).unwrap());
            bufs.push(kbuf(w, node, 32 << 10));
        }
        let group = knet_coll::group_create(w, eps[0], fanout).unwrap();
        for &ep in &eps[1..] {
            knet_coll::group_join(w, group, ep).unwrap();
        }
        (group, eps, bufs[0])
    });

    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for round in 0..2u64 {
        let len = 4_000 + 512 * round;
        d.on(0, |w| {
            let payload: Vec<u8> = (0..len).map(|i| (seed ^ (round * 91 + i)) as u8).collect();
            w.os.node_mut(NodeId(0))
                .write_virt(Asid::KERNEL, root_buf.addr, &payload)
                .unwrap();
            channel_bcast(w, group, round, &root_buf.iov(len)).unwrap();
        });
        d.run();
        for (i, &ep) in eps.iter().enumerate() {
            fp = d.on(i as u32, |w| {
                let mut h = fp;
                while let Some(ev) = w.take_event(ep) {
                    h = mix_event(h, &ev);
                }
                h
            });
        }

        for (i, &ep) in eps.iter().enumerate() {
            d.on(i as u32, |w| {
                channel_barrier(w, group, ep).unwrap();
            });
        }
        d.run();

        for (i, &ep) in eps.iter().enumerate() {
            let v = (i as u64 + 1) * (round + 1);
            d.on(i as u32, |w| {
                channel_reduce(w, group, ep, ReduceOp::Sum, &[v, v * 3]).unwrap();
            });
        }
        d.run();
        for (i, &ep) in eps.iter().enumerate() {
            fp = d.on(i as u32, |w| {
                let mut h = fp;
                while let Some(ev) = w.take_event(ep) {
                    h = mix_event(h, &ev);
                }
                h
            });
        }
    }
    d.assert_clean();
    let tree = d
        .world(0)
        .nics
        .coll
        .tree_fingerprint(knet_simnic::Proto::Mx, group.0);
    (d.executed(), fp, tree)
}

// ----------------------------------------------------------------- tests

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The full chaos surface (faults + reliability + failover) is
    /// bit-identical at every shard count.
    #[test]
    fn chaos_fingerprints_match_across_shard_counts(
        seed in 1u64..1_000_000,
        loss in 0u64..12,
        kill in any::<bool>(),
    ) {
        let n = 9; // not divisible by any shard count: uneven ownership
        let baseline = chaos_fingerprint(&mut Driver::seq(n), n, seed, loss, kill);
        for k in SHARD_COUNTS {
            let got = chaos_fingerprint(&mut Driver::sharded(n, k), n, seed, loss, kill);
            prop_assert_eq!(got, baseline, "shard count {} diverged", k);
        }
    }

    /// NIC-tree collectives (fan-out, fan-in, in-NIC combines) are
    /// bit-identical at every shard count.
    #[test]
    fn collective_fingerprints_match_across_shard_counts(
        seed in 1u64..1_000_000,
        fanout in 2usize..4,
    ) {
        let n = 7;
        let baseline = coll_fingerprint(&mut Driver::seq(n), n, fanout, seed);
        for k in SHARD_COUNTS {
            let got = coll_fingerprint(&mut Driver::sharded(n, k), n, fanout, seed);
            prop_assert_eq!(got, baseline, "shard count {} diverged", k);
        }
    }
}

/// CI shard-matrix entry: `KNET_SHARDS=1,4` (comma-separated shard counts)
/// runs the chaos equivalence at a fixed seed against the sequential
/// baseline.
#[test]
fn chaos_smoke_shard_matrix() {
    let counts: Vec<usize> = std::env::var("KNET_SHARDS")
        .unwrap_or_else(|_| "1,2".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let n = 9;
    let baseline = chaos_fingerprint(&mut Driver::seq(n), n, 0xC0FFEE, 8, false);
    for k in counts {
        let got = chaos_fingerprint(&mut Driver::sharded(n, k), n, 0xC0FFEE, 8, false);
        assert_eq!(got, baseline, "shard count {k} diverged");
    }
}

//! Offline shim for the `proptest` crate: deterministic random-sampling
//! property testing with the subset of the API this workspace uses.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case panics with the assert message; rerun
//!   with the same build to reproduce (generation is deterministic, seeded
//!   from the test name and case index).
//! * **Regex strategies** support only the `[class]{min,max}` shape the
//!   tests use (plus plain literals as a fallback).

use std::ops::Range;

// ------------------------------------------------------------------- RNG

/// SplitMix64: tiny, deterministic, good enough for sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is irrelevant at sampling scale.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// -------------------------------------------------------------- Strategy

/// A value generator. The `Value` it produces is sampled fresh per case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe alias used by `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn DynStrategy<Value = T>>;

pub trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// Integer and float ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// Tuples of strategies.
macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ------------------------------------------------------------- Arbitrary

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// -------------------------------------------------------- regex strategy

/// `&str` as a strategy: supports `[class]{min,max}` (char classes with
/// ranges and literals); any other pattern generates itself literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, min, max)) => {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let reps = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_string();
    let (min, max) = match reps.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = reps.parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    (!chars.is_empty() && min <= max).then_some((chars, min, max))
}

// ----------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ----------------------------------------------------------- test runner

/// Number of cases per property (no other knobs in the shim).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Seed for a named test: stable across runs, distinct across tests.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)))
                        .wrapping_add(case as u64),
                );
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts that panic (no shrinking, so these are plain asserts).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The `proptest::prelude` the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// `prop::collection`, `prop::sample` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = crate::Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn regex_class_shape() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c._]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc._".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_wires_up(v in prop::collection::vec((0u8..10, any::<bool>()), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            for (n, _b) in v {
                prop_assert!(n < 10);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..5).prop_map(|v| v * 2),
            Just(100u32),
        ]) {
            prop_assert!(x == 100 || (x.is_multiple_of(2) && x < 10));
        }
    }
}

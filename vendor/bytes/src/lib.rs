//! Offline shim for the `bytes` crate: cheaply cloneable, sliceable,
//! immutable byte buffers, plus a growable builder. Implements exactly the
//! subset of the real crate's API that this workspace uses (the container
//! builds without network access to a registry).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable view of immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice (the shim copies; lifetimes stay simple).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

/// Debug shows short buffers in full, long ones abbreviated.
fn debug_bytes(b: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if b.len() <= 32 {
        write!(f, "b\"")?;
        for &x in b {
            for c in std::ascii::escape_default(x) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    } else {
        write!(f, "Bytes[len={}]", b.len())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self, f)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s)
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(s.len(), 3);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn equality_and_freeze() {
        let mut m = BytesMut::with_capacity(4);
        m.extend_from_slice(b"abc");
        let b = m.freeze();
        assert_eq!(b, Bytes::from_static(b"abc"));
        assert_eq!(b, b"abc"[..]);
        assert_eq!(b.to_vec(), b"abc".to_vec());
    }
}

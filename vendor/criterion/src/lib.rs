//! Offline shim for the `criterion` crate: runs each benchmark a fixed
//! number of wall-clock iterations and prints mean time per iteration.
//! API-compatible with the subset `knet-bench` uses; no statistics beyond
//! the mean, no HTML reports.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value (best-effort, stable Rust).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

/// Top-level driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one("", name, self.sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&self.name, name, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, name: &str, iters: u64, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: iters.max(1),
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.total.as_secs_f64() / b.iters as f64;
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {label:<40} {:>12.3} us/iter ({} iters)",
        per_iter * 1e6,
        b.iters
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

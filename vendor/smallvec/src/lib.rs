//! Offline shim of an inline small-vector: up to `N` elements live inline
//! (no heap allocation), longer sequences spill to a `Vec`. The API is the
//! small subset this workspace needs for io-vector segment lists and
//! driver scratch — not the real `smallvec` crate's interface.
//!
//! Elements must be `Copy + Default` so the shim can stay entirely safe
//! Rust (the inline storage is a plain array, no `MaybeUninit`): exactly
//! the shape of `MemRef` / `PhysSeg` segment descriptors.
//!
//! Invariant: when `spill` is non-empty it holds *all* elements and the
//! inline buffer is dead; otherwise the first `inline_len` inline slots are
//! live. A vector that spilled stays spilled until [`SmallVec::clear`].

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// A vector of `T` that stores up to `N` elements inline.
#[derive(Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    inline_len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    pub fn new() -> Self {
        SmallVec {
            inline_len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.inline_len
        } else {
            self.spill.len()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True while the elements live inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        self.spill.is_empty()
    }

    pub fn push(&mut self, v: T) {
        if !self.spill.is_empty() {
            self.spill.push(v);
        } else if self.inline_len < N {
            self.inline[self.inline_len] = v;
            self.inline_len += 1;
        } else {
            self.spill.reserve(N + 1);
            self.spill
                .extend_from_slice(&self.inline[..self.inline_len]);
            self.spill.push(v);
            self.inline_len = 0;
        }
    }

    pub fn pop(&mut self) -> Option<T> {
        if !self.spill.is_empty() {
            self.spill.pop()
        } else if self.inline_len > 0 {
            self.inline_len -= 1;
            Some(self.inline[self.inline_len])
        } else {
            None
        }
    }

    /// Drop every element; a spilled vector keeps its heap capacity but
    /// returns to inline storage for subsequent pushes.
    pub fn clear(&mut self) {
        self.inline_len = 0;
        self.spill.clear();
    }

    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.inline_len]
        } else {
            &self.spill
        }
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.inline_len]
        } else {
            &mut self.spill
        }
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    pub fn from_vec(v: Vec<T>) -> Self {
        if v.len() <= N {
            let mut s = Self::new();
            for x in v {
                s.push(x);
            }
            s
        } else {
            SmallVec {
                inline_len: 0,
                inline: [T::default(); N],
                spill: v,
            }
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        Self::from_vec(v)
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_n() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
            assert!(v.is_inline());
        }
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v.push(4);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_and_clear_restore_inline_mode() {
        let mut v: SmallVec<u32, 2> = SmallVec::from_vec(vec![1, 2, 3]);
        assert!(!v.is_inline());
        assert_eq!(v.pop(), Some(3));
        v.clear();
        assert!(v.is_inline());
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn equality_ignores_representation() {
        let a: SmallVec<u32, 2> = SmallVec::from_vec(vec![1, 2, 3]);
        let mut b: SmallVec<u32, 2> = SmallVec::new();
        b.extend([1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_small_goes_inline() {
        let v: SmallVec<u32, 4> = SmallVec::from_vec(vec![1, 2]);
        assert!(v.is_inline());
        assert_eq!(v.len(), 2);
    }
}

//! Cluster construction.

use knet_gm::{GmLayer, GmParams};
use knet_mx::{MxLayer, MxParams};
use knet_simnic::{FaultPlan, NicLayer, NicModel, QosPolicy, RelParams};
use knet_simos::{CpuModel, NodeId, OsLayer};
use knet_zsock::{TcpLayer, TcpParams, ZsockLayer, ZsockParams};

use crate::shard::ShardedCluster;
use crate::world::ClusterWorld;

/// Builder for a [`ClusterWorld`]: `n` nodes, one NIC each, full crossbar.
pub struct ClusterBuilder {
    cpus: Vec<CpuModel>,
    nic: NicModel,
    mem_frames: u32,
    gm_params: GmParams,
    mx_params: MxParams,
    zsock_params: ZsockParams,
    tcp_params: TcpParams,
    fault: Option<FaultPlan>,
    rel_params: RelParams,
    tenants: Vec<TenantSpec>,
}

/// A tenant declared at build time: registry name, WDRR weight, and an
/// optional NIC admission policy (`None` ⇒ unthrottled, scheduler-only).
struct TenantSpec {
    name: String,
    weight: u64,
    policy: Option<QosPolicy>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Two Xeon nodes on PCI-XD cards — the paper's base testbed (§3.1).
    pub fn new() -> Self {
        ClusterBuilder {
            cpus: vec![CpuModel::xeon_2600(), CpuModel::xeon_2600()],
            nic: NicModel::pci_xd(),
            mem_frames: 65_536,
            gm_params: GmParams::default(),
            mx_params: MxParams::default(),
            zsock_params: ZsockParams::default(),
            tcp_params: TcpParams::default(),
            fault: None,
            rel_params: RelParams::default(),
            tenants: Vec::new(),
        }
    }

    /// Declare a tenant (consumer group) with a WDRR `weight` and no NIC
    /// rate limit. Tenant ids are minted in declaration order starting at
    /// 1 (id 0 is the always-present default tenant), identically in every
    /// shard, so sharded runs see the same tenant directory.
    pub fn tenant(mut self, name: &str, weight: u64) -> Self {
        self.tenants.push(TenantSpec {
            name: name.to_string(),
            weight,
            policy: None,
        });
        self
    }

    /// Declare a tenant with a WDRR `weight` **and** a token-bucket policy
    /// at the NIC admission point: sustained `rate_bytes_per_sec` with
    /// `burst_bytes` of credit, sends beyond the rate paced in virtual
    /// time (or shed with `NetError::Overload` once the pacing queue hits
    /// the policy's cap).
    pub fn tenant_limited(
        mut self,
        name: &str,
        weight: u64,
        rate_bytes_per_sec: u64,
        burst_bytes: u64,
    ) -> Self {
        self.tenants.push(TenantSpec {
            name: name.to_string(),
            weight,
            policy: Some(QosPolicy {
                rate_bytes_per_sec,
                burst_bytes,
                ..QosPolicy::default()
            }),
        });
        self
    }

    /// Use `n` identical nodes with the given CPU.
    pub fn nodes(mut self, n: usize, cpu: CpuModel) -> Self {
        self.cpus = vec![cpu; n];
        self
    }

    /// Select the NIC generation (PCI-XD for the file-system figures,
    /// PCI-XE for the socket figures, as in the paper).
    pub fn nic(mut self, nic: NicModel) -> Self {
        self.nic = nic;
        self
    }

    /// Installed memory per node, in 4 kB frames.
    pub fn mem_frames(mut self, frames: u32) -> Self {
        self.mem_frames = frames;
        self
    }

    pub fn gm_params(mut self, p: GmParams) -> Self {
        self.gm_params = p;
        self
    }

    pub fn mx_params(mut self, p: MxParams) -> Self {
        self.mx_params = p;
        self
    }

    pub fn zsock_params(mut self, p: ZsockParams) -> Self {
        self.zsock_params = p;
        self
    }

    pub fn tcp_params(mut self, p: TcpParams) -> Self {
        self.tcp_params = p;
        self
    }

    /// Make the fabric lossy: install a seeded fault plan (drop /
    /// duplicate / delay-reorder dice, one-shot node kills, per-link
    /// overrides). The drivers' reliability windows absorb the injected
    /// faults.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Tune the NIC-level reliability windows: AIMD congestion control,
    /// fast-retransmit threshold, ack aggregation, retry budget (see
    /// `knet_simnic::RelParams`). `RelParams::fixed_window()` is the
    /// pre-control-loop sender — the incast bench's baseline.
    pub fn rel_params(mut self, p: RelParams) -> Self {
        self.rel_params = p;
        self
    }

    /// Make one *direction* of one node pair misbehave: install `plan`'s
    /// dice for packets `src → dst` only, leaving the rest of the fabric
    /// on whatever base plan is (or is not) installed. Asymmetric links —
    /// a flaky uplink next to a clean downlink — compose by calling this
    /// repeatedly.
    pub fn fault_link(mut self, src: NodeId, dst: NodeId, plan: FaultPlan) -> Self {
        let base = self.fault.take().unwrap_or_else(|| FaultPlan::new(0));
        self.fault = Some(base.for_link(src, dst, plan));
        self
    }

    /// Build the world.
    pub fn build(self) -> ClusterWorld {
        self.build_one()
    }

    fn build_one(&self) -> ClusterWorld {
        let mut os = OsLayer::new();
        let mut nics = NicLayer::new();
        for cpu in &self.cpus {
            let node = os.add_node(cpu.clone(), self.mem_frames);
            nics.add_nic(node, self.nic.clone());
        }
        if let Some(plan) = &self.fault {
            nics.set_fault_plan(plan.clone());
        }
        nics.rel = knet_simnic::RelState::new(self.rel_params);
        let mut w = ClusterWorld::from_layers(
            os,
            nics,
            GmLayer::new(self.gm_params),
            MxLayer::new(self.mx_params),
            ZsockLayer::new(self.zsock_params),
            TcpLayer::new(self.tcp_params),
        );
        for spec in &self.tenants {
            w.register_tenant(&spec.name, spec.weight, spec.policy);
        }
        w
    }

    /// Build the cluster as `shards` node-partitioned replicas stepped by
    /// the conservative-lookahead parallel engine. The lookahead is the
    /// NIC's wire latency — the minimum delay of any cross-node event —
    /// so sharded execution is bit-identical to `build()` plus the
    /// sequential loop (see `knet_simcore::engine`).
    pub fn build_sharded(self, shards: usize) -> ShardedCluster {
        assert!(shards >= 1, "at least one shard");
        let lookahead = self.nic.wire_latency;
        let worlds = (0..shards).map(|_| self.build_one()).collect();
        ShardedCluster::from_worlds(worlds, lookahead)
    }
}

/// Convenience: the standard two-node world.
pub fn two_nodes() -> (ClusterWorld, NodeId, NodeId) {
    let w = ClusterBuilder::new().build();
    (w, NodeId(0), NodeId(1))
}

/// Convenience: two nodes on PCI-XE cards (the §5.3 socket testbed).
pub fn two_nodes_xe() -> (ClusterWorld, NodeId, NodeId) {
    let w = ClusterBuilder::new().nic(NicModel::pci_xe()).build();
    (w, NodeId(0), NodeId(1))
}

//! `ClusterEv` — the composed world's typed event.
//!
//! Every layer schedules work through its `lift_*` hook; here those hooks
//! produce plain enum variants instead of boxed closures, so the steady-state
//! hot path (packet deliveries, reliability timers, driver completions,
//! collective progressions) moves through the scheduler's recycled slab
//! arena with **zero heap allocation per event** —
//! `tests/hotpath_alloc.rs` pins this down. Control code and cold paths
//! (harness setup, comparison stacks) still box through [`ClusterEv::Call`].

use knet_gm::{run_gm_ev, GmEv};
use knet_kv::{run_kv_ev, KvEv};
use knet_mx::{run_mx_ev, MxEv};
use knet_rpc::{run_rpc_ev, RpcEv};
use knet_simcore::SimEvent;
use knet_simnic::{run_nic_ev, NicEv};

use crate::world::ClusterWorld;

/// The typed event set of [`ClusterWorld`].
pub enum ClusterEv {
    /// NIC-layer events: packet arrivals, reliability timers/acks,
    /// collective deliveries and probes.
    Nic(NicEv),
    /// GM driver completions (send tokens, receive matches, unexpecteds).
    Gm(GmEv),
    /// MX driver completions (sends, matched receives, unexpecteds).
    Mx(MxEv),
    /// RPC timers: virtual-time deadlines and retry/backoff firings.
    Rpc(RpcEv),
    /// KV layer: paced operation reissues after failures.
    Kv(KvEv),
    /// Boxed cold path: setup code, comparison stacks, deferred frees.
    Call(Box<dyn FnOnce(&mut ClusterWorld) + Send>),
}

impl SimEvent<ClusterWorld> for ClusterEv {
    fn from_call(f: Box<dyn FnOnce(&mut ClusterWorld) + Send>) -> Self {
        ClusterEv::Call(f)
    }
    fn run(self, w: &mut ClusterWorld) {
        match self {
            ClusterEv::Nic(ev) => run_nic_ev(w, ev),
            ClusterEv::Gm(ev) => run_gm_ev(w, ev),
            ClusterEv::Mx(ev) => run_mx_ev(w, ev),
            ClusterEv::Rpc(ev) => run_rpc_ev(w, ev),
            ClusterEv::Kv(ev) => run_kv_ev(w, ev),
            ClusterEv::Call(f) => f(w),
        }
    }
}

//! # knet — an efficient network API for in-kernel applications in clusters
//!
//! A faithful, functional reproduction of *Goglin, Glück, Vicat-Blanc
//! Primet, "An Efficient Network API for in-Kernel Applications in
//! Clusters" (IEEE Cluster 2005)* as a deterministic discrete-event cluster
//! model in Rust. Real payload bytes move through simulated page tables,
//! page-caches, NIC DMA engines and wires, under a cost model calibrated to
//! the paper's measurements — so both the *correctness* claims (zero-copy,
//! registration-cache coherence) and the *performance* claims (figures 1–8,
//! table 1) are reproducible and testable.
//!
//! Layer map (bottom-up):
//!
//! | crate | role |
//! |---|---|
//! | `knet-simcore` | discrete-event engine, virtual time, timed resources |
//! | `knet-simos`   | CPU cost models, physical memory, address spaces, page-cache, VMA SPY |
//! | `knet-simnic`  | Myrinet-like NIC: DMA, translation table, links, crossbar |
//! | `knet-core`    | the paper's API: address classes, io-vectors, GMKRC, transport, **channels + completion queues + consumer registry** |
//! | `knet-gm`      | GM driver: registration, event queues, kernel port, physical patch |
//! | `knet-mx`      | MX driver: matching, small/medium/large protocols, copy removal |
//! | `knet-simfs`   | ext2-like server file system |
//! | `knet-orfs`    | ORFA/ORFS remote file access (server, user & kernel clients) |
//! | `knet-zsock`   | SOCKETS-GM / SOCKETS-MX + TCP/IP-GigE baseline |
//! | `knet` (this)  | the composed world, builder, benchmark harness, figures |
//!
//! ## How applications attach
//!
//! The composed [`ClusterWorld`] knows no application. Endpoints are opened
//! raw ([`ClusterWorld::open_gm`] / [`ClusterWorld::open_mx`]) and events
//! for them are routed by the **consumer registry** (`knet_core::api`):
//!
//! * in-kernel services (ORFS, NBD, sockets) register an upcall handler at
//!   creation — `server_create`, `client_create`, `sock_create`,
//!   `nbd_*_create` all bind their endpoints themselves;
//! * polling drivers bind endpoints to a **completion queue**
//!   ([`ClusterWorld::open_mx_cq`] / [`ClusterWorld::attach_cq`]) and pop
//!   [`knet_core::CqEntry`]s — queues are indexed per endpoint, so popping
//!   one endpoint's events never scans past the others';
//! * **channels are the one application-facing send path**
//!   (`knet_core::api::channel_connect` / `channel_accept` /
//!   `channel_connect_handler`): connected, tagged, vectored message pipes
//!   that coalesce multi-segment io-vectors on GM and absorb transport
//!   token exhaustion in a bounded backpressure queue retried on
//!   `SendDone`. Raw `t_send`/`t_post_recv` are the driver seam; nothing
//!   above the channel layer calls them (enforced by
//!   `tests/api_boundaries.rs` and the CI grep gate).
//!
//! Events arriving at a not-yet-bound endpoint park in the registry and
//! replay when a consumer binds — wiring order never loses traffic.
//!
//! ## Quickstart
//!
//! ```
//! use knet::prelude::*;
//!
//! // Two Xeon nodes on PCI-XD Myrinet, as in the paper's testbed.
//! let (mut w, n0, n1) = knet::build::two_nodes();
//! let cq = w.new_cq();
//! let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
//! let b = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
//! let ka = knet::harness::kbuf(&mut w, n0, 4096);
//! let kb = knet::harness::kbuf(&mut w, n1, 4096);
//! let lat = knet::harness::transport_pingpong_us(&mut w, a, b, ka.iov(1), kb.iov(1), 10);
//! assert!((3.0..6.0).contains(&lat), "MX 1-byte latency ≈ 4.2 µs, got {lat}");
//!
//! // The same endpoints as a typed channel: tagged, vectored sends with
//! // completions on the channel's CQ.
//! let ch = knet_core::api::channel_connect(&mut w, a, b, cq);
//! let ctx = knet_core::api::channel_send(&mut w, ch, 7, ka.iov(64)).unwrap();
//! knet_simcore::run_to_quiescence(&mut w);
//! assert!(matches!(
//!     w.registry.cq_pop_for(cq, a),
//!     Some(CqEntry { event: TransportEvent::SendDone { ctx: c }, .. }) if c == ctx
//! ));
//! ```

pub mod build;
pub mod event;
pub mod figures;
pub mod harness;
pub mod report;
pub mod shard;
pub mod workload;
pub mod world;

pub use build::ClusterBuilder;
pub use event::ClusterEv;
pub use shard::ShardedCluster;
pub use world::{ClusterWorld, TenantStatsRow};

/// Everything needed to script experiments.
pub mod prelude {
    pub use crate::build::{two_nodes, two_nodes_xe, ClusterBuilder};
    pub use crate::harness::{fsops, kbuf, ubuf, KBuf, UBuf};
    pub use crate::world::ClusterWorld;
    pub use knet_coll::{
        channel_barrier, channel_bcast, channel_reduce, group_create, group_join, group_leave,
        CollWorld, GroupId,
    };
    pub use knet_core::api::{
        bind, channel_accept, channel_cancel_recv, channel_close, channel_connect,
        channel_connect_handler, channel_peer, channel_post_recv, channel_send,
        channel_set_send_queue_cap,
    };
    pub use knet_core::{
        ChannelId, ConsumerId, CqEntry, CqId, DispatchWorld, Endpoint, IoVec, MemRef, NetError,
        RpcError, TenantId, TransportEvent, TransportKind,
    };
    pub use knet_gm::{GmParams, GmPortConfig};
    pub use knet_kv::{
        kv_add_shards, kv_check, kv_client_create, kv_fingerprint, kv_get, kv_pair, kv_put,
        kv_replica_create, kv_report_dead, KvClientId, KvConfig, KvOutcome, KvReplicaId, KvResult,
        KvWorld,
    };
    pub use knet_mx::{MxEndpointConfig, MxOpts, MxParams};
    pub use knet_orfs::{ClientKind, VfsConfig};
    pub use knet_rpc::{
        rpc_call, rpc_cancel, rpc_client_create, rpc_client_stats, rpc_collect, rpc_server_create,
        rpc_server_reply, rpc_server_stats, RetryPolicy, RpcCall, RpcCallOpts, RpcClientConfig,
        RpcClientId, RpcCompletion, RpcOutcome, RpcRequest, RpcServerConfig, RpcServerId, RpcSink,
        RpcWorld,
    };
    pub use knet_simcore::{now, run_to_quiescence, run_until, RunOutcome, SimTime};
    pub use knet_simnic::{CollOp, NicModel, QosPolicy, ReduceOp};
    pub use knet_simos::{Asid, CpuModel, NodeId, PAGE_SIZE};
}

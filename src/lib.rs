//! # knet — an efficient network API for in-kernel applications in clusters
//!
//! A faithful, functional reproduction of *Goglin, Glück, Vicat-Blanc
//! Primet, "An Efficient Network API for in-Kernel Applications in
//! Clusters" (IEEE Cluster 2005)* as a deterministic discrete-event cluster
//! model in Rust. Real payload bytes move through simulated page tables,
//! page-caches, NIC DMA engines and wires, under a cost model calibrated to
//! the paper's measurements — so both the *correctness* claims (zero-copy,
//! registration-cache coherence) and the *performance* claims (figures 1–8,
//! table 1) are reproducible and testable.
//!
//! Layer map (bottom-up):
//!
//! | crate | role |
//! |---|---|
//! | `knet-simcore` | discrete-event engine, virtual time, timed resources |
//! | `knet-simos`   | CPU cost models, physical memory, address spaces, page-cache, VMA SPY |
//! | `knet-simnic`  | Myrinet-like NIC: DMA, translation table, links, crossbar |
//! | `knet-core`    | the paper's API: address classes, io-vectors, GMKRC, transport |
//! | `knet-gm`      | GM driver: registration, event queues, kernel port, physical patch |
//! | `knet-mx`      | MX driver: matching, small/medium/large protocols, copy removal |
//! | `knet-simfs`   | ext2-like server file system |
//! | `knet-orfs`    | ORFA/ORFS remote file access (server, user & kernel clients) |
//! | `knet-zsock`   | SOCKETS-GM / SOCKETS-MX + TCP/IP-GigE baseline |
//! | `knet` (this)  | the composed world, builder, benchmark harness, figures |
//!
//! ## Quickstart
//!
//! ```
//! use knet::prelude::*;
//!
//! // Two Xeon nodes on PCI-XD Myrinet, as in the paper's testbed.
//! let (mut w, n0, n1) = knet::build::two_nodes();
//! let a = w.open_mx(n0, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
//! let b = w.open_mx(n1, MxEndpointConfig::kernel(), Owner::Driver).unwrap();
//! let ka = knet::harness::kbuf(&mut w, n0, 4096);
//! let kb = knet::harness::kbuf(&mut w, n1, 4096);
//! let lat = knet::harness::transport_pingpong_us(&mut w, a, b, ka.iov(1), kb.iov(1), 10);
//! assert!((3.0..6.0).contains(&lat), "MX 1-byte latency ≈ 4.2 µs, got {lat}");
//! ```

pub mod build;
pub mod figures;
pub mod harness;
pub mod report;
pub mod world;

pub use build::ClusterBuilder;
pub use world::{ClusterWorld, Owner};

/// Everything needed to script experiments.
pub mod prelude {
    pub use crate::build::{two_nodes, two_nodes_xe, ClusterBuilder};
    pub use crate::harness::{fsops, kbuf, ubuf, KBuf, UBuf};
    pub use crate::world::{ClusterWorld, Owner};
    pub use knet_core::{Endpoint, IoVec, MemRef, NetError, TransportEvent, TransportKind};
    pub use knet_gm::{GmParams, GmPortConfig};
    pub use knet_mx::{MxEndpointConfig, MxOpts, MxParams};
    pub use knet_orfs::{ClientKind, VfsConfig};
    pub use knet_simcore::{now, run_to_quiescence, run_until, RunOutcome, SimTime};
    pub use knet_simos::{Asid, CpuModel, NodeId, PAGE_SIZE};
    pub use knet_simnic::NicModel;
}

//! Plain-text rendering of figures and tables for the benchmark binaries.

use crate::figures::{Figure, Table1Row};

/// Render a figure as an aligned text table (one column per series).
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} ({})\n", fig.title, fig.id));
    out.push_str(&format!("   x: {}   y: {}\n", fig.x_label, fig.y_label));
    // Header.
    let mut header = format!("{:>12}", "size");
    for s in &fig.series {
        header.push_str(&format!("  {:>24}", truncate(&s.name, 24)));
    }
    out.push_str(&header);
    out.push('\n');
    // All x values, in order (series may have identical grids).
    let xs: Vec<u64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for x in xs {
        let mut line = format!("{:>12}", x);
        for s in &fig.series {
            match s.exact(x) {
                Some(y) => line.push_str(&format!("  {:>24.2}", y)),
                None => line.push_str(&format!("  {:>24}", "-")),
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Render a figure as CSV.
pub fn render_csv(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str("size");
    for s in &fig.series {
        out.push(',');
        out.push_str(&s.name.replace(',', ";"));
    }
    out.push('\n');
    let xs: Vec<u64> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for x in xs {
        out.push_str(&x.to_string());
        for s in &fig.series {
            out.push(',');
            if let Some(y) = s.exact(x) {
                out.push_str(&format!("{y:.4}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Render Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<46}  {:<42}  {:<42}\n", "Metric", "GM", "MX"));
    out.push_str(&format!("{}\n", "-".repeat(134)));
    for r in rows {
        out.push_str(&format!("{:<46}  {:<42}  {:<42}\n", r.metric, r.gm, r.mx));
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knet_simcore::Series;

    fn tiny_fig() -> Figure {
        let mut a = Series::new("alpha");
        a.push(1, 1.5);
        a.push(2, 2.5);
        let mut b = Series::new("beta");
        b.push(1, 10.0);
        b.push(2, 20.0);
        Figure {
            id: "t",
            title: "test",
            x_label: "x",
            y_label: "y",
            series: vec![a, b],
        }
    }

    #[test]
    fn text_table_contains_all_points() {
        let txt = render_figure(&tiny_fig());
        assert!(txt.contains("alpha"));
        assert!(txt.contains("beta"));
        assert!(txt.contains("1.50"));
        assert!(txt.contains("20.00"));
    }

    #[test]
    fn csv_is_well_formed() {
        let csv = render_csv(&tiny_fig());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "size,alpha,beta");
        assert!(lines[1].starts_with("1,1.5000,10.0000"));
    }
}

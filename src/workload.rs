//! Open-loop multi-tenant traffic harness.
//!
//! Drives the composed stack the way a saturated cluster does: **tens of
//! thousands of logical clients**, each an independent arrival process with
//! heavy-tailed (Pareto) inter-arrival gaps in *virtual time*, multiplexed
//! onto per-(tenant, node) channels toward per-tenant echo services. Open
//! loop means arrivals do not wait for completions — a slow tenant builds
//! queue, it does not throttle the offered load — which is exactly the
//! regime where tail latency and cross-tenant isolation are decided.
//!
//! The harness is deterministic per seed and shard-invariant by
//! construction: every arrival is a virtual-time event chained on the
//! client's *node* (so the sharded engine routes it to the owning shard),
//! client RNG streams are split from the seed per (class, client), and no
//! wall-clock or global mutable ordering enters the measured path. Sample
//! sinks are cross-thread (`Mutex`) but order-insensitive — percentiles
//! are computed from sorted samples.
//!
//! Latency is measured request→reply: the gap between a client's scheduled
//! arrival (== its send instant) and the echoed reply landing back at the
//! client, so it includes channel queueing, WDRR scheduling, token-bucket
//! pacing, both wire directions and the echo turn-around. Sends shed by
//! admission control ([`NetError::Overload`]) or a full channel lane
//! ([`NetError::SendQueueFull`]) are counted, not measured.
//!
//! `crates/bench/benches/tail.rs` wraps this module into `BENCH_tail.json`;
//! `tests/tenant_isolation.rs` uses it for the noisy-neighbor proof.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use knet_core::api::{
    channel_accept_handler, channel_connect_handler, channel_send, channel_send_to,
};
use knet_core::{IoVec, NetError, TenantId, TransportEvent};
use knet_mx::MxEndpointConfig;
use knet_simcore::{emit_at, now, SimTime};
use knet_simnic::QosPolicy;
use knet_simos::NodeId;

use crate::event::ClusterEv;
use crate::harness::kbuf;
use crate::shard::ShardedCluster;
use crate::world::ClusterWorld;

/// One tenant class: a population of logical clients with a common message
/// shape, arrival law, WDRR weight and (optional) NIC admission policy.
#[derive(Clone, Debug)]
pub struct ClassSpec {
    /// Tenant name (minted idempotently in the registry).
    pub name: String,
    /// WDRR weight at every scheduling point.
    pub weight: u64,
    /// Token-bucket sustained rate at the NIC admission point;
    /// `0` = unthrottled (no policy installed).
    pub rate_bytes_per_sec: u64,
    /// Token-bucket burst credit (ignored when unthrottled).
    pub burst_bytes: u64,
    /// Request payload size; the echo reply is the same size, so a
    /// throttled tenant pays the bucket twice per operation.
    pub msg_bytes: u64,
    /// Number of logical clients (arrival processes).
    pub clients: u32,
    /// Mean inter-arrival gap per client.
    pub mean_gap: SimTime,
    /// Pareto shape ×1000 (e.g. `1500` ⇒ α = 1.5). Must be > 1000 for the
    /// mean to exist; smaller α ⇒ heavier tail.
    pub alpha_milli: u32,
}

/// A full workload: the tenant classes plus placement and horizon.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Seed for every client's arrival stream.
    pub seed: u64,
    /// Arrivals stop at this virtual instant; in-flight traffic drains.
    pub horizon: SimTime,
    /// Node hosting the per-tenant echo services.
    pub server_node: NodeId,
    /// Nodes hosting clients (round-robin per class); must not contain
    /// `server_node`.
    pub client_nodes: Vec<NodeId>,
    pub classes: Vec<ClassSpec>,
}

/// Per-class accumulator (behind a mutex: shard worlds run on threads).
#[derive(Default)]
struct ClassSink {
    /// tag → send instant (nanos), removed when the echo lands.
    pending: HashMap<u64, u64>,
    /// Completed request→reply latencies, nanos, unordered.
    samples: Vec<u64>,
    sent: u64,
    shed: u64,
    queue_full: u64,
    failed: u64,
    other_errors: u64,
}

/// Shared sample sink for one workload run: one lane per class. Create
/// once, hand the same `Arc` to [`install`] on every shard world.
pub struct WorkloadSink {
    classes: Vec<Mutex<ClassSink>>,
}

impl WorkloadSink {
    pub fn new(spec: &WorkloadSpec) -> Arc<WorkloadSink> {
        Arc::new(WorkloadSink {
            classes: spec.classes.iter().map(|_| Mutex::default()).collect(),
        })
    }
}

/// What one class did, percentiles in microseconds. `completed` can trail
/// `sent` by the shed/failed counts (and by replies the server shed).
#[derive(Clone, Debug)]
pub struct ClassReport {
    pub name: String,
    pub tenant: TenantId,
    pub clients: u32,
    pub sent: u64,
    pub completed: u64,
    /// Sends refused by NIC admission ([`NetError::Overload`]), client side.
    pub shed: u64,
    /// Sends refused by a full channel lane ([`NetError::SendQueueFull`]).
    pub queue_full: u64,
    /// Accepted sends that later failed (`TransportEvent::SendFailed`).
    pub failed: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub mean_us: f64,
    pub max_us: f64,
}

/// The state one arrival event carries to the next: the whole per-client
/// process lives in this value, re-emitted on the client's node so the
/// sharded engine keeps the chain on the owning shard.
struct Arrival {
    class: usize,
    client: u32,
    seq: u64,
    rng: u64,
    ch: knet_core::ChannelId,
    iov: IoVec,
    node: NodeId,
    horizon: SimTime,
    mean_gap_ns: u64,
    alpha_milli: u32,
    sink: Arc<WorkloadSink>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pareto-distributed gap with the given mean: inverse-CDF on a 53-bit
/// uniform, scale chosen so `E[gap] = mean` (`x_m = mean·(α−1)/α`).
fn pareto_gap_ns(rng: &mut u64, mean_ns: u64, alpha_milli: u32) -> u64 {
    let alpha = f64::from(alpha_milli.max(1001)) / 1000.0;
    let u = (splitmix(rng) >> 11) as f64 / (1u64 << 53) as f64;
    let xm = mean_ns as f64 * (alpha - 1.0) / alpha;
    let gap = xm * (1.0 - u).powf(-1.0 / alpha);
    gap as u64
}

fn fire_arrival(w: &mut ClusterWorld, mut st: Arrival) {
    let now_ns = now(w).nanos();
    let tag = (u64::from(st.client) << 32) | (st.seq & 0xffff_ffff);
    let res = channel_send(w, st.ch, tag, st.iov.clone());
    {
        let mut c = st.sink.classes[st.class].lock().unwrap();
        c.sent += 1;
        match res {
            Ok(_) => {
                c.pending.insert(tag, now_ns);
            }
            Err(NetError::Overload) => c.shed += 1,
            Err(NetError::SendQueueFull) => c.queue_full += 1,
            Err(_) => c.other_errors += 1,
        }
    }
    let gap = pareto_gap_ns(&mut st.rng, st.mean_gap_ns, st.alpha_milli);
    let next = SimTime::from_nanos(now_ns.saturating_add(gap));
    if next < st.horizon {
        st.seq += 1;
        let node = st.node.0;
        emit_at(
            w,
            node,
            next,
            ClusterEv::Call(Box::new(move |w| fire_arrival(w, st))),
        );
    }
}

/// Install the workload into one world: mint tenants, stand up per-class
/// echo services and client channels, and seed every client's first
/// arrival. Deterministic — in a sharded run, call inside
/// [`ShardedCluster::setup`] with the *same* `spec` and `sink` so every
/// replica builds identical state and each shard keeps only the arrival
/// chains of the nodes it owns.
pub fn install(w: &mut ClusterWorld, spec: &WorkloadSpec, sink: &Arc<WorkloadSink>) {
    assert!(
        !spec.client_nodes.is_empty(),
        "need at least one client node"
    );
    assert!(
        !spec.client_nodes.contains(&spec.server_node),
        "server node cannot also host clients"
    );
    let t0 = now(w);
    for (ci, cls) in spec.classes.iter().enumerate() {
        let policy = (cls.rate_bytes_per_sec > 0).then_some(QosPolicy {
            rate_bytes_per_sec: cls.rate_bytes_per_sec,
            burst_bytes: cls.burst_bytes,
            ..QosPolicy::default()
        });
        let tenant = w.register_tenant(&cls.name, cls.weight, policy);

        // Echo service: every unexpected request is answered to its sender
        // with an equal-sized reply, on the same tenant's budget.
        let srv_ep = w
            .open_mx(spec.server_node, MxEndpointConfig::kernel())
            .expect("open echo endpoint");
        let reply_iov = kbuf(w, spec.server_node, cls.msg_bytes.max(1)).iov(cls.msg_bytes);
        let srv_ch_cell = Arc::new(Mutex::new(None::<knet_core::ChannelId>));
        let cell = srv_ch_cell.clone();
        let shed_sink = sink.clone();
        let srv_ch = channel_accept_handler(
            w,
            srv_ep,
            &format!("tail-echo:{}", cls.name),
            move |w2, _ep, ev| {
                if let TransportEvent::Unexpected { tag, from, .. } = ev {
                    let ch = cell.lock().unwrap().expect("echo channel registered");
                    match channel_send_to(w2, ch, from, tag, reply_iov.clone()) {
                        Ok(_) => {}
                        Err(NetError::Overload) => {
                            shed_sink.classes[ci].lock().unwrap().shed += 1;
                        }
                        Err(NetError::SendQueueFull) => {
                            shed_sink.classes[ci].lock().unwrap().queue_full += 1;
                        }
                        Err(_) => {
                            shed_sink.classes[ci].lock().unwrap().other_errors += 1;
                        }
                    }
                }
            },
        );
        *srv_ch_cell.lock().unwrap() = Some(srv_ch);
        w.assign_tenant(srv_ep, tenant);

        // One client channel per node: logical clients multiplex onto it
        // (tags pack client and sequence), so client count scales without
        // an endpoint per client.
        let mut chans = Vec::with_capacity(spec.client_nodes.len());
        for &node in &spec.client_nodes {
            let cli_ep = w
                .open_mx(node, MxEndpointConfig::kernel())
                .expect("open client endpoint");
            let send_buf = kbuf(w, node, cls.msg_bytes.max(1));
            let reply_sink = sink.clone();
            let ch = channel_connect_handler(
                w,
                cli_ep,
                srv_ep,
                &format!("tail-cli:{}:{}", cls.name, node.0),
                move |w2, _ep, ev| match ev {
                    TransportEvent::Unexpected { tag, .. } => {
                        let landed = now(w2).nanos();
                        let mut c = reply_sink.classes[ci].lock().unwrap();
                        if let Some(sent_at) = c.pending.remove(&tag) {
                            c.samples.push(landed.saturating_sub(sent_at));
                        }
                    }
                    TransportEvent::SendFailed { .. } => {
                        reply_sink.classes[ci].lock().unwrap().failed += 1;
                    }
                    _ => {}
                },
            );
            w.assign_tenant(cli_ep, tenant);
            chans.push((node, ch, send_buf.iov(cls.msg_bytes)));
        }

        // Seed every client's first arrival: RNG split per (class, client),
        // chain emitted on the client's own node.
        for client in 0..cls.clients {
            let (node, ch, iov) = chans[client as usize % chans.len()].clone();
            let mut rng = spec
                .seed
                .wrapping_add((ci as u64) << 40)
                .wrapping_add(u64::from(client).wrapping_mul(0x5851_F42D_4C95_7F2D));
            let first = pareto_gap_ns(&mut rng, cls.mean_gap.nanos(), cls.alpha_milli);
            let at = SimTime::from_nanos(t0.nanos().saturating_add(first));
            if at >= spec.horizon {
                continue;
            }
            let st = Arrival {
                class: ci,
                client,
                seq: 0,
                rng,
                ch,
                iov,
                node,
                horizon: spec.horizon,
                mean_gap_ns: cls.mean_gap.nanos(),
                alpha_milli: cls.alpha_milli,
                sink: sink.clone(),
            };
            emit_at(
                w,
                node.0,
                at,
                ClusterEv::Call(Box::new(move |w| fire_arrival(w, st))),
            );
        }
    }
}

fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1000.0
}

/// Fold the sink into per-class reports (sorts each class's samples).
pub fn collect(w: &ClusterWorld, spec: &WorkloadSpec, sink: &WorkloadSink) -> Vec<ClassReport> {
    spec.classes
        .iter()
        .zip(&sink.classes)
        .map(|(cls, lane)| {
            let mut c = lane.lock().unwrap();
            c.samples.sort_unstable();
            let n = c.samples.len();
            let sum: u128 = c.samples.iter().map(|&x| u128::from(x)).sum();
            ClassReport {
                name: cls.name.clone(),
                tenant: w
                    .registry
                    .tenant_table()
                    .lookup(&cls.name)
                    .unwrap_or(TenantId::DEFAULT),
                clients: cls.clients,
                sent: c.sent,
                completed: n as u64,
                shed: c.shed,
                queue_full: c.queue_full,
                failed: c.failed + c.other_errors,
                p50_us: percentile_us(&c.samples, 0.50),
                p99_us: percentile_us(&c.samples, 0.99),
                p999_us: percentile_us(&c.samples, 0.999),
                mean_us: if n == 0 {
                    0.0
                } else {
                    (sum as f64 / n as f64) / 1000.0
                },
                max_us: c.samples.last().map_or(0.0, |&x| x as f64 / 1000.0),
            }
        })
        .collect()
}

/// Run a workload to completion on a solo world and report.
pub fn run_solo(w: &mut ClusterWorld, spec: &WorkloadSpec) -> Vec<ClassReport> {
    let sink = WorkloadSink::new(spec);
    install(w, spec, &sink);
    knet_simcore::run_to_quiescence(w);
    collect(w, spec, &sink)
}

/// Run a workload to completion across a sharded cluster and report.
/// Identical samples to [`run_solo`] on the same spec — the isolation and
/// equivalence tests assert exactly that.
pub fn run_sharded(shards: &mut ShardedCluster, spec: &WorkloadSpec) -> Vec<ClassReport> {
    let sink = WorkloadSink::new(spec);
    shards.setup(|w| install(w, spec, &sink));
    shards.run_to_quiescence();
    collect(shards.world(spec.server_node.0), spec, &sink)
}

//! Benchmark drivers: synchronous wrappers over the event-driven world.
//!
//! These helpers are shared by the figure regenerators in [`crate::figures`],
//! the examples, and the integration tests. All times are *virtual*.

use knet_core::api::{channel_close, channel_connect, channel_post_recv, channel_send};
use knet_core::{Endpoint, IoVec, MemRef, TransportEvent};
use knet_orfs::{OrfsClientId, SysResult, SyscallId};
use knet_simcore::{run_until, RunOutcome, SimTime};
use knet_simos::{Asid, NodeId, Prot, VirtAddr};
use knet_zsock::{SockId, SockOpId, TcpOpId, TcpSockId};

use crate::world::ClusterWorld;

/// A kernel buffer for raw transport benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct KBuf {
    pub node: NodeId,
    pub addr: VirtAddr,
    pub len: u64,
}

impl KBuf {
    pub fn memref(&self, len: u64) -> MemRef {
        MemRef::kernel(self.addr, len.min(self.len))
    }

    pub fn iov(&self, len: u64) -> IoVec {
        IoVec::single(self.memref(len))
    }
}

/// Allocate a kernel buffer on `node`.
pub fn kbuf(w: &mut ClusterWorld, node: NodeId, len: u64) -> KBuf {
    let addr =
        w.os.node_mut(node)
            .kalloc(len)
            .expect("kernel buffer allocation");
    KBuf { node, addr, len }
}

/// A user-space buffer (process + anonymous mapping).
#[derive(Clone, Copy, Debug)]
pub struct UBuf {
    pub node: NodeId,
    pub asid: Asid,
    pub addr: VirtAddr,
    pub len: u64,
}

impl UBuf {
    pub fn memref(&self, len: u64) -> MemRef {
        MemRef::user(self.asid, self.addr, len.min(self.len))
    }

    pub fn memref_at(&self, offset: u64, len: u64) -> MemRef {
        MemRef::user(self.asid, self.addr.add(offset), len)
    }

    pub fn iov(&self, len: u64) -> IoVec {
        IoVec::single(self.memref(len))
    }
}

/// Create a process with one mapped buffer on `node`.
pub fn ubuf(w: &mut ClusterWorld, node: NodeId, len: u64) -> UBuf {
    let asid = w.os.node_mut(node).create_process();
    let addr =
        w.os.node_mut(node)
            .map_anon(asid, len, Prot::RW)
            .expect("user mapping");
    UBuf {
        node,
        asid,
        addr,
        len,
    }
}

/// Run until the endpoint's completion queue holds an event, then pop it
/// (served by the registry's per-endpoint index). Panics if the simulation
/// drains first (a protocol bug).
pub fn await_event(w: &mut ClusterWorld, ep: Endpoint) -> TransportEvent {
    let outcome = run_until(w, |w| w.has_event(ep));
    assert_eq!(
        outcome,
        RunOutcome::Satisfied,
        "no event arrived for {ep:?}"
    );
    w.take_event(ep).expect("event present")
}

/// Run until a `RecvDone` arrives for `ep` (discarding send completions).
///
/// Completions are drained in batches ([`ClusterWorld::take_events`]) —
/// one registry access per burst instead of per event. The harness drivers
/// are lock-step (at most one data event outstanding per await), which the
/// drain asserts.
pub fn await_recv(w: &mut ClusterWorld, ep: Endpoint) -> (u64, u64) {
    let mut batch = Vec::new();
    loop {
        let outcome = run_until(w, |w| w.has_event(ep));
        assert_eq!(
            outcome,
            RunOutcome::Satisfied,
            "no event arrived for {ep:?}"
        );
        w.take_events(ep, 64, &mut batch);
        let mut data: Option<(u64, u64)> = None;
        for e in batch.drain(..) {
            match e.event {
                TransportEvent::RecvDone { tag, len, .. } => {
                    assert!(
                        data.is_none(),
                        "lock-step driver saw concurrent data events"
                    );
                    data = Some((tag, len));
                }
                TransportEvent::Unexpected { tag, data: d, .. } => {
                    assert!(
                        data.is_none(),
                        "lock-step driver saw concurrent data events"
                    );
                    data = Some((tag, d.len() as u64));
                }
                TransportEvent::SendDone { .. } => {}
                TransportEvent::SendFailed { ctx, error } => {
                    panic!("benchmark send {ctx} failed: {error}")
                }
                TransportEvent::PeerDown { peer } => {
                    panic!("benchmark peer {peer:?} died (reliability window exhausted)")
                }
                TransportEvent::CollectiveDone { .. }
                | TransportEvent::CollectiveRecv { .. }
                | TransportEvent::RpcDone { .. } => {}
                TransportEvent::CollectiveFailed { ctx, error, .. } => {
                    panic!("benchmark collective {ctx} failed: {error}")
                }
            }
        }
        if let Some(d) = data {
            return d;
        }
    }
}

/// One-way latency (µs) of a ping-pong of `size` bytes between two
/// endpoints using the provided buffers, averaged over `iters` round trips
/// after one warm-up.
///
/// The endpoints are wrapped in a **channel pair** for the duration of the
/// measurement — channels are the application-facing send path (batching,
/// GM coalescing and backpressure live there), so the benchmark drivers
/// exercise exactly what applications run on. Endpoints already bound to a
/// CQ keep their queue (the channels feed it, and the binding is restored
/// when the measurement ends); unbound endpoints get a fresh queue they
/// stay bound to afterwards. Endpoints owned by a *service* (a handler
/// consumer — e.g. a zsock socket) are refused: stealing one would tear
/// the service's channel down.
pub fn transport_pingpong_us(
    w: &mut ClusterWorld,
    a: Endpoint,
    b: Endpoint,
    buf_a: IoVec,
    buf_b: IoVec,
    iters: u32,
) -> f64 {
    for ep in [a, b] {
        assert!(
            w.registry.consumer_of(ep).is_none() || w.registry.cq_of(ep).is_some(),
            "transport_pingpong_us needs a CQ-bound or unbound endpoint; \
             {ep:?} is owned by a handler consumer (a service)"
        );
    }
    let cq_a = w.registry.cq_of(a).unwrap_or_else(|| w.new_cq());
    let cq_b = w.registry.cq_of(b).unwrap_or_else(|| w.new_cq());
    let ch_a = channel_connect(w, a, b, cq_a);
    let ch_b = channel_connect(w, b, a, cq_b);
    let round = |w: &mut ClusterWorld| {
        channel_post_recv(w, ch_b, 1, buf_b.clone()).expect("post recv b");
        channel_send(w, ch_a, 1, buf_a.clone()).expect("send a->b");
        await_recv(w, b);
        channel_post_recv(w, ch_a, 2, buf_a.clone()).expect("post recv a");
        channel_send(w, ch_b, 2, buf_b.clone()).expect("send b->a");
        await_recv(w, a);
    };
    round(w);
    let t0 = knet_simcore::now(w);
    for _ in 0..iters {
        round(w);
    }
    let elapsed = knet_simcore::now(w) - t0;
    // Close the channels and hand the endpoints back as plain CQ-bound
    // consumers (replaying anything that parked in between), so callers
    // can keep polling them or run another measurement.
    channel_close(w, ch_a);
    channel_close(w, ch_b);
    w.attach_cq(a, cq_a);
    w.attach_cq(b, cq_b);
    elapsed.micros() / (2.0 * iters as f64)
}

/// NetPIPE-convention bandwidth (MB/s) at `size`: `size / one_way_time`.
pub fn transport_bandwidth_mb(
    w: &mut ClusterWorld,
    a: Endpoint,
    b: Endpoint,
    buf_a: IoVec,
    buf_b: IoVec,
    iters: u32,
) -> f64 {
    let size = buf_a.total_len();
    let us = transport_pingpong_us(w, a, b, buf_a, buf_b, iters);
    size as f64 / us
}

/// Block until ORFS syscall `sid` completes on client `cid`.
pub fn orfs_wait(w: &mut ClusterWorld, cid: OrfsClientId, sid: SyscallId) -> SysResult {
    let outcome = run_until(w, |w| {
        w.orfs.client(cid).completed.iter().any(|(s, _)| *s == sid)
    });
    assert_eq!(
        outcome,
        RunOutcome::Satisfied,
        "syscall {sid} never completed"
    );
    let c = w.orfs.clients.get_mut(cid.0 as usize).expect("client");
    let pos = c
        .completed
        .iter()
        .position(|(s, _)| *s == sid)
        .expect("present");
    c.completed.remove(pos).expect("present").1
}

/// Synchronous ORFS wrappers (issue + wait).
pub mod fsops {
    use super::*;
    use knet_orfs::{
        op_close, op_create, op_fsync, op_mkdir, op_open, op_read, op_readdir, op_stat, op_unlink,
        op_write, OrfsError, SysRet, WireAttr, WireDirEntry,
    };

    pub fn open(
        w: &mut ClusterWorld,
        cid: OrfsClientId,
        path: &str,
        direct: bool,
    ) -> Result<u32, OrfsError> {
        let sid = op_open(w, cid, path, direct);
        match orfs_wait(w, cid, sid)? {
            SysRet::Fd(fd) => Ok(fd),
            _ => Err(OrfsError::Decode),
        }
    }

    pub fn read(
        w: &mut ClusterWorld,
        cid: OrfsClientId,
        fd: u32,
        dest: MemRef,
        offset: u64,
    ) -> Result<u64, OrfsError> {
        let sid = op_read(w, cid, fd, dest, offset);
        match orfs_wait(w, cid, sid)? {
            SysRet::Bytes(n) => Ok(n),
            _ => Err(OrfsError::Decode),
        }
    }

    pub fn write(
        w: &mut ClusterWorld,
        cid: OrfsClientId,
        fd: u32,
        src: MemRef,
        offset: u64,
    ) -> Result<u64, OrfsError> {
        let sid = op_write(w, cid, fd, src, offset);
        match orfs_wait(w, cid, sid)? {
            SysRet::Bytes(n) => Ok(n),
            _ => Err(OrfsError::Decode),
        }
    }

    pub fn close(w: &mut ClusterWorld, cid: OrfsClientId, fd: u32) -> Result<(), OrfsError> {
        let sid = op_close(w, cid, fd);
        orfs_wait(w, cid, sid).map(|_| ())
    }

    pub fn fsync(w: &mut ClusterWorld, cid: OrfsClientId, fd: u32) -> Result<(), OrfsError> {
        let sid = op_fsync(w, cid, fd);
        orfs_wait(w, cid, sid).map(|_| ())
    }

    pub fn create(
        w: &mut ClusterWorld,
        cid: OrfsClientId,
        path: &str,
        mode: u16,
    ) -> Result<u32, OrfsError> {
        let sid = op_create(w, cid, path, mode);
        match orfs_wait(w, cid, sid)? {
            SysRet::Ino(i) => Ok(i),
            _ => Err(OrfsError::Decode),
        }
    }

    pub fn mkdir(
        w: &mut ClusterWorld,
        cid: OrfsClientId,
        path: &str,
        mode: u16,
    ) -> Result<u32, OrfsError> {
        let sid = op_mkdir(w, cid, path, mode);
        match orfs_wait(w, cid, sid)? {
            SysRet::Ino(i) => Ok(i),
            _ => Err(OrfsError::Decode),
        }
    }

    pub fn unlink(w: &mut ClusterWorld, cid: OrfsClientId, path: &str) -> Result<(), OrfsError> {
        let sid = op_unlink(w, cid, path);
        orfs_wait(w, cid, sid).map(|_| ())
    }

    pub fn stat(
        w: &mut ClusterWorld,
        cid: OrfsClientId,
        path: &str,
    ) -> Result<WireAttr, OrfsError> {
        let sid = op_stat(w, cid, path);
        match orfs_wait(w, cid, sid)? {
            SysRet::Attr(a) => Ok(a),
            _ => Err(OrfsError::Decode),
        }
    }

    pub fn readdir(
        w: &mut ClusterWorld,
        cid: OrfsClientId,
        path: &str,
    ) -> Result<Vec<WireDirEntry>, OrfsError> {
        let sid = op_readdir(w, cid, path);
        match orfs_wait(w, cid, sid)? {
            SysRet::Entries(e) => Ok(e),
            _ => Err(OrfsError::Decode),
        }
    }
}

/// Sequential-read throughput (MB/s at the application level, as in
/// Figures 3b/4b/7): read `total` bytes in `record`-sized records.
///
/// `dest_for(i)` supplies the destination buffer for record `i` — reuse one
/// buffer for a warm registration cache, rotate over a large pool to get 0 %
/// hits (the paper's "without registration cache" series).
pub fn seq_read_mb(
    w: &mut ClusterWorld,
    cid: OrfsClientId,
    fd: u32,
    record: u64,
    total: u64,
    mut dest_for: impl FnMut(&mut ClusterWorld, u64) -> MemRef,
) -> f64 {
    let records = (total / record).max(1);
    // Warm-up record (registration cache, dentries) — read at the file
    // *tail* so the measured range's page-cache stays cold.
    let d = dest_for(w, 0);
    fsops::read(w, cid, fd, d, total).expect("warm-up read");
    let t0 = knet_simcore::now(w);
    let mut moved = 0u64;
    for i in 0..records {
        let d = dest_for(w, i);
        let n = fsops::read(w, cid, fd, d, i * record).expect("read");
        moved += n;
    }
    let elapsed = knet_simcore::now(w) - t0;
    knet_simcore::Bandwidth::observed_mb_s(moved, elapsed)
}

/// Block until socket op `op` completes on `sid`.
pub fn sock_wait(w: &mut ClusterWorld, sid: SockId, op: SockOpId) -> u64 {
    let outcome = run_until(w, |w| {
        w.zsock.sock(sid).completed.iter().any(|(o, _)| *o == op)
    });
    assert_eq!(outcome, RunOutcome::Satisfied, "socket op never completed");
    let s = w.zsock.sock_mut(sid);
    let pos = s.completed.iter().position(|(o, _)| *o == op).expect("op");
    s.completed
        .remove(pos)
        .expect("op")
        .1
        .expect("socket op ok")
}

/// NetPIPE ping-pong over a socket pair: one-way latency in µs.
pub fn sock_pingpong_us(
    w: &mut ClusterWorld,
    sa: SockId,
    sb: SockId,
    buf_a: MemRef,
    buf_b: MemRef,
    iters: u32,
) -> f64 {
    let round = |w: &mut ClusterWorld| {
        let r = knet_zsock::sock_recv(w, sb, buf_b);
        knet_zsock::sock_send(w, sa, buf_a);
        sock_wait(w, sb, r);
        let r2 = knet_zsock::sock_recv(w, sa, buf_a);
        knet_zsock::sock_send(w, sb, buf_b);
        sock_wait(w, sa, r2);
    };
    round(w);
    let t0 = knet_simcore::now(w);
    for _ in 0..iters {
        round(w);
    }
    (knet_simcore::now(w) - t0).micros() / (2.0 * iters as f64)
}

/// Block until TCP op `op` completes.
pub fn tcp_wait(w: &mut ClusterWorld, sid: TcpSockId, op: TcpOpId) -> u64 {
    let outcome = run_until(w, |w| {
        w.tcp.sock(sid).completed.iter().any(|(o, _)| *o == op)
    });
    assert_eq!(outcome, RunOutcome::Satisfied, "tcp op never completed");
    let s = w.tcp.sock_mut(sid);
    let pos = s.completed.iter().position(|(o, _)| *o == op).expect("op");
    s.completed.remove(pos).expect("op").1
}

/// NetPIPE ping-pong over the TCP baseline: one-way latency in µs.
pub fn tcp_pingpong_us(
    w: &mut ClusterWorld,
    sa: TcpSockId,
    sb: TcpSockId,
    buf_a: MemRef,
    buf_b: MemRef,
    iters: u32,
) -> f64 {
    let round = |w: &mut ClusterWorld| {
        let r = knet_zsock::tcp_recv(w, sb, buf_b);
        knet_zsock::tcp_send(w, sa, buf_a);
        tcp_wait(w, sb, r);
        let r2 = knet_zsock::tcp_recv(w, sa, buf_a);
        knet_zsock::tcp_send(w, sb, buf_b);
        tcp_wait(w, sa, r2);
    };
    round(w);
    let t0 = knet_simcore::now(w);
    for _ in 0..iters {
        round(w);
    }
    (knet_simcore::now(w) - t0).micros() / (2.0 * iters as f64)
}

/// Populate a file of `len` bytes with a deterministic pattern on a server's
/// file system. Returns the byte at every offset via `pattern_byte`.
pub fn make_server_file(
    w: &mut ClusterWorld,
    server: knet_orfs::OrfsServerId,
    path: &str,
    len: u64,
) {
    let now = knet_simcore::now(w);
    let fs = &mut w.orfs.server_mut(server).fs;
    let ino = fs.create(path, 0o644, now).expect("create");
    let chunk = 64 * 1024;
    let mut buf = vec![0u8; chunk as usize];
    let mut off = 0u64;
    while off < len {
        let n = chunk.min(len - off) as usize;
        for (i, b) in buf[..n].iter_mut().enumerate() {
            *b = pattern_byte(off + i as u64);
        }
        fs.write(ino, off, &buf[..n], now).expect("write");
        off += n as u64;
    }
    // Setup I/O is free: drain the accumulated cost.
    let _ = fs.take_cost();
}

/// The deterministic file pattern used by tests to verify reads end-to-end.
pub fn pattern_byte(offset: u64) -> u8 {
    ((offset * 131 + 7) % 251) as u8
}

/// Elapsed virtual time of `f`.
pub fn timed(w: &mut ClusterWorld, f: impl FnOnce(&mut ClusterWorld)) -> SimTime {
    let t0 = knet_simcore::now(w);
    f(w);
    knet_simcore::now(w) - t0
}

//! `ClusterWorld` — the composed simulation world.
//!
//! Every layer crate exposes its state type plus a capability trait; this is
//! the one place they all meet. `ClusterWorld` implements each trait and
//! routes the upcalls:
//!
//! * `nic_rx` → GM or MX firmware, by packet protocol;
//! * `vma_event` → the GM registration caches (VMA SPY subscribers);
//! * `gm_dispatch`/`mx_dispatch` → the endpoint's owner (benchmark driver
//!   mailbox, ORFS server/client, or a socket), converting driver events to
//!   unified [`TransportEvent`]s;
//! * [`TransportWorld`] (`t_send`/`t_post_recv`) → the owning driver, with
//!   the GM glue inserting GMKRC registration for user-virtual buffers
//!   exactly where the paper's in-kernel clients needed it.

use std::collections::{BTreeMap, VecDeque};

use knet_core::{
    Endpoint, IoVec, MemRef, NetError, TransportEvent, TransportKind, TransportWorld,
};
use knet_gm::{
    gm_ensure_cached, gm_next_event, gm_on_packet, gm_on_vma_event, gm_open_port,
    gm_provide_receive_buffer, gm_send, GmEvent, GmLayer, GmPortConfig, GmPortId, GmWorld,
};
use knet_mx::{
    mx_irecv, mx_isend, mx_next_event, mx_on_packet, mx_open_endpoint, MxEndpointConfig,
    MxEndpointId, MxEvent, MxLayer, MxWorld,
};
use knet_nbd::{nbd_on_client_event, nbd_on_server_event, NbdClientId, NbdLayer, NbdServerId, NbdWorld};
use knet_orfs::{client_on_event, server_on_event, OrfsClientId, OrfsLayer, OrfsServerId, OrfsWorld};
use knet_simcore::{Scheduler, SimWorld};
use knet_simnic::{NicId, NicLayer, NicWorld, Packet, Proto};
use knet_simos::{NodeId, OsLayer, OsWorld, VmaEvent};
use knet_zsock::{sock_on_event, SockId, TcpLayer, TcpWorld, ZsockLayer, ZsockWorld};

/// Who consumes the events of a transport endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Owner {
    /// A benchmark driver: events accumulate in the world's mailbox.
    Driver,
    OrfsServer(OrfsServerId),
    OrfsClient(OrfsClientId),
    Sock(SockId),
    NbdServer(NbdServerId),
    NbdClient(NbdClientId),
}

/// The fully composed world.
pub struct ClusterWorld {
    pub sched: Scheduler<ClusterWorld>,
    pub os: OsLayer,
    pub nics: NicLayer,
    pub gm: GmLayer,
    pub mx: MxLayer,
    pub orfs: OrfsLayer,
    pub zsock: ZsockLayer,
    pub tcp: TcpLayer,
    pub nbd: NbdLayer,
    gm_owners: BTreeMap<u32, Owner>,
    mx_owners: BTreeMap<u32, Owner>,
    /// Events for driver-owned endpoints.
    pub mailbox: BTreeMap<(TransportKind, u32), VecDeque<TransportEvent>>,
}

impl ClusterWorld {
    pub(crate) fn from_layers(
        os: OsLayer,
        nics: NicLayer,
        gm: GmLayer,
        mx: MxLayer,
        zsock: ZsockLayer,
        tcp: TcpLayer,
    ) -> Self {
        ClusterWorld {
            sched: Scheduler::new(),
            os,
            nics,
            gm,
            mx,
            orfs: OrfsLayer::new(),
            zsock,
            tcp,
            nbd: NbdLayer::new(),
            gm_owners: BTreeMap::new(),
            mx_owners: BTreeMap::new(),
            mailbox: BTreeMap::new(),
        }
    }

    /// Open a GM port wrapped as a transport endpoint.
    pub fn open_gm(
        &mut self,
        node: NodeId,
        cfg: GmPortConfig,
        owner: Owner,
    ) -> Result<Endpoint, NetError> {
        let port = gm_open_port(self, node, cfg)?;
        self.gm_owners.insert(port.0, owner);
        Ok(Endpoint {
            kind: TransportKind::Gm,
            node,
            idx: port.0,
        })
    }

    /// Open an MX endpoint wrapped as a transport endpoint. Unexpected
    /// delivery is always enabled — the transport contract requires it.
    pub fn open_mx(
        &mut self,
        node: NodeId,
        cfg: MxEndpointConfig,
        owner: Owner,
    ) -> Result<Endpoint, NetError> {
        let ep = mx_open_endpoint(self, node, cfg.with_unexpected_delivery())?;
        self.mx_owners.insert(ep.0, owner);
        Ok(Endpoint {
            kind: TransportKind::Mx,
            node,
            idx: ep.0,
        })
    }

    /// Reassign an endpoint's owner (used when wiring clients/servers that
    /// need their endpoint before they exist).
    pub fn set_owner(&mut self, ep: Endpoint, owner: Owner) {
        match ep.kind {
            TransportKind::Gm => self.gm_owners.insert(ep.idx, owner),
            TransportKind::Mx => self.mx_owners.insert(ep.idx, owner),
        };
    }

    fn owner_of(&self, kind: TransportKind, idx: u32) -> Owner {
        let map = match kind {
            TransportKind::Gm => &self.gm_owners,
            TransportKind::Mx => &self.mx_owners,
        };
        map.get(&idx).copied().unwrap_or(Owner::Driver)
    }

    /// Pop the next driver-mailbox event for `ep`.
    pub fn take_event(&mut self, ep: Endpoint) -> Option<TransportEvent> {
        self.mailbox.get_mut(&(ep.kind, ep.idx))?.pop_front()
    }

    /// Peek whether a driver-mailbox event is waiting for `ep`.
    pub fn has_event(&self, ep: Endpoint) -> bool {
        self.mailbox
            .get(&(ep.kind, ep.idx))
            .map(|q| !q.is_empty())
            .unwrap_or(false)
    }

    fn route(&mut self, ep: Endpoint, ev: TransportEvent) {
        match self.owner_of(ep.kind, ep.idx) {
            Owner::Driver => {
                self.mailbox
                    .entry((ep.kind, ep.idx))
                    .or_default()
                    .push_back(ev);
            }
            Owner::OrfsServer(id) => server_on_event(self, id, ep, ev),
            Owner::OrfsClient(id) => client_on_event(self, id, ev),
            Owner::Sock(id) => sock_on_event(self, id, ev),
            Owner::NbdServer(id) => nbd_on_server_event(self, id, ev),
            Owner::NbdClient(id) => nbd_on_client_event(self, id, ev),
        }
    }
}

impl SimWorld for ClusterWorld {
    fn sched(&self) -> &Scheduler<Self> {
        &self.sched
    }
    fn sched_mut(&mut self) -> &mut Scheduler<Self> {
        &mut self.sched
    }
}

impl OsWorld for ClusterWorld {
    fn os(&self) -> &OsLayer {
        &self.os
    }
    fn os_mut(&mut self) -> &mut OsLayer {
        &mut self.os
    }
    fn vma_event(&mut self, node: NodeId, ev: VmaEvent) {
        // The VMA SPY notifier chain: GM registration caches subscribe.
        gm_on_vma_event(self, node, &ev);
    }
}

impl NicWorld for ClusterWorld {
    fn nics(&self) -> &NicLayer {
        &self.nics
    }
    fn nics_mut(&mut self) -> &mut NicLayer {
        &mut self.nics
    }
    fn nic_rx(&mut self, nic: NicId, pkt: Packet) {
        match pkt.proto {
            Proto::Gm => gm_on_packet(self, nic, pkt),
            Proto::Mx => mx_on_packet(self, nic, pkt),
            Proto::Raw => {}
        }
    }
}

impl GmWorld for ClusterWorld {
    fn gm(&self) -> &GmLayer {
        &self.gm
    }
    fn gm_mut(&mut self) -> &mut GmLayer {
        &mut self.gm
    }
    fn gm_dispatch(&mut self, port: GmPortId) {
        let node = match self.gm.port(port) {
            Ok(p) => p.node,
            Err(_) => return,
        };
        while let Some(ev) = gm_next_event(self, port) {
            let tev = match ev {
                GmEvent::SendDone { ctx } => TransportEvent::SendDone { ctx },
                GmEvent::RecvDone { ctx, tag, len, .. } => {
                    TransportEvent::RecvDone { ctx, tag, len }
                }
                GmEvent::Unexpected { tag, data, from } => {
                    let from_node = self.gm.port(from).map(|p| p.node).unwrap_or(node);
                    TransportEvent::Unexpected {
                        tag,
                        data,
                        from: Endpoint {
                            kind: TransportKind::Gm,
                            node: from_node,
                            idx: from.0,
                        },
                    }
                }
            };
            let ep = Endpoint {
                kind: TransportKind::Gm,
                node,
                idx: port.0,
            };
            self.route(ep, tev);
        }
    }
}

impl MxWorld for ClusterWorld {
    fn mx(&self) -> &MxLayer {
        &self.mx
    }
    fn mx_mut(&mut self) -> &mut MxLayer {
        &mut self.mx
    }
    fn mx_dispatch(&mut self, ep_id: MxEndpointId) {
        let node = match self.mx.ep(ep_id) {
            Ok(e) => e.node,
            Err(_) => return,
        };
        while let Some(ev) = mx_next_event(self, ep_id) {
            let tev = match ev {
                MxEvent::SendDone { ctx } => TransportEvent::SendDone { ctx },
                MxEvent::RecvDone { ctx, tag, len, .. } => {
                    TransportEvent::RecvDone { ctx, tag, len }
                }
                MxEvent::Unexpected { tag, data, from } => {
                    let from_node = self.mx.ep(from).map(|e| e.node).unwrap_or(node);
                    TransportEvent::Unexpected {
                        tag,
                        data,
                        from: Endpoint {
                            kind: TransportKind::Mx,
                            node: from_node,
                            idx: from.0,
                        },
                    }
                }
            };
            let ep = Endpoint {
                kind: TransportKind::Mx,
                node,
                idx: ep_id.0,
            };
            self.route(ep, tev);
        }
    }
}

impl TransportWorld for ClusterWorld {
    fn t_send(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        tag: u64,
        iov: IoVec,
        ctx: u64,
    ) -> Result<(), NetError> {
        match from.kind {
            TransportKind::Mx => mx_isend(
                self,
                MxEndpointId(from.idx),
                MxEndpointId(to.idx),
                tag,
                &iov,
                ctx,
            ),
            TransportKind::Gm => {
                // GM is not vectorial (§4.1): single-segment sends only;
                // clients coalesce above this layer.
                if iov.seg_count() != 1 {
                    return Err(NetError::Unsupported);
                }
                let seg = iov.segs()[0];
                // On-the-fly registration through GMKRC for pageable memory.
                if let MemRef::UserVirtual { asid, addr, len } = seg {
                    let port = GmPortId(from.idx);
                    if self.gm.port(port)?.regcache.is_some() {
                        gm_ensure_cached(self, port, asid, addr, len)?;
                    }
                }
                gm_send(self, GmPortId(from.idx), seg, GmPortId(to.idx), tag, ctx)
            }
        }
    }

    fn t_post_recv(
        &mut self,
        ep: Endpoint,
        tag: u64,
        iov: IoVec,
        ctx: u64,
    ) -> Result<(), NetError> {
        match ep.kind {
            TransportKind::Mx => mx_irecv(self, MxEndpointId(ep.idx), tag, &iov, ctx),
            TransportKind::Gm => {
                let port = GmPortId(ep.idx);
                for seg in iov.segs() {
                    if let MemRef::UserVirtual { asid, addr, len } = *seg {
                        if self.gm.port(port)?.regcache.is_some() {
                            gm_ensure_cached(self, port, asid, addr, len)?;
                        }
                    }
                }
                gm_provide_receive_buffer(self, port, &iov, tag, ctx)
            }
        }
    }

    fn t_cancel_recv(&mut self, ep: Endpoint, tag: u64) -> bool {
        match ep.kind {
            TransportKind::Mx => knet_mx::mx_cancel_recv(self, MxEndpointId(ep.idx), tag),
            TransportKind::Gm => {
                knet_gm::gm_cancel_receive_buffer(self, GmPortId(ep.idx), tag)
            }
        }
    }
}

impl OrfsWorld for ClusterWorld {
    fn orfs(&self) -> &OrfsLayer {
        &self.orfs
    }
    fn orfs_mut(&mut self) -> &mut OrfsLayer {
        &mut self.orfs
    }
}

impl ZsockWorld for ClusterWorld {
    fn zsock(&self) -> &ZsockLayer {
        &self.zsock
    }
    fn zsock_mut(&mut self) -> &mut ZsockLayer {
        &mut self.zsock
    }
}

impl TcpWorld for ClusterWorld {
    fn tcp(&self) -> &TcpLayer {
        &self.tcp
    }
    fn tcp_mut(&mut self) -> &mut TcpLayer {
        &mut self.tcp
    }
}

impl NbdWorld for ClusterWorld {
    fn nbd(&self) -> &NbdLayer {
        &self.nbd
    }
    fn nbd_mut(&mut self) -> &mut NbdLayer {
        &mut self.nbd
    }
}

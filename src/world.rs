//! `ClusterWorld` — the composed simulation world.
//!
//! Every layer crate exposes its state type plus a capability trait; this is
//! the one place they all meet. `ClusterWorld` implements each trait and
//! routes the upcalls:
//!
//! * `nic_rx` → GM or MX firmware, by packet protocol;
//! * `vma_event` → the GM registration caches (VMA SPY subscribers);
//! * `gm_dispatch`/`mx_dispatch` → unified [`TransportEvent`]s handed to
//!   [`knet_core::api::deliver`], which routes each endpoint's events to
//!   whatever consumer registered for it — a completion queue for polling
//!   drivers, or an application handler (ORFS, NBD, sockets). The world
//!   itself names no application: new workloads attach through the
//!   registry, not by editing this file.
//! * [`TransportWorld`] (`t_send`/`t_post_recv`) → the owning driver, with
//!   the GM glue inserting GMKRC registration for user-virtual buffers
//!   exactly where the paper's in-kernel clients needed it. This is the
//!   *driver seam*: applications and benchmarks send through channels
//!   (`knet_core::api::channel_send`), never through the raw transport —
//!   enforced by `tests/api_boundaries.rs`.

use knet_coll::{CollLayer, CollWorld};
use knet_core::api::{self, ConsumerId, CqId, Registry};
use knet_core::{
    DispatchWorld, Endpoint, IoVec, MemRef, NetError, TenantId, TenantSendStats, TransportEvent,
    TransportKind, TransportWorld,
};
use knet_gm::{
    gm_ensure_cached, gm_next_event, gm_on_packet, gm_on_vma_event, gm_open_port,
    gm_provide_receive_buffer, gm_send_t, GmEv, GmEvent, GmLayer, GmPortConfig, GmPortId, GmWorld,
};
use knet_kv::{KvEv, KvLayer, KvWorld};
use knet_mx::{
    mx_irecv, mx_isend_t, mx_next_event, mx_on_packet, mx_open_endpoint, MxEndpointConfig,
    MxEndpointId, MxEv, MxEvent, MxLayer, MxWorld,
};
use knet_nbd::{NbdLayer, NbdWorld};
use knet_orfs::{OrfsLayer, OrfsWorld};
use knet_rpc::{RpcEv, RpcLayer, RpcWorld};
use knet_simcore::{Scheduler, SimWorld};

use crate::event::ClusterEv;
use knet_simnic::{CollCmd, CollEvent, NicEv, NicId, NicLayer, NicWorld, Packet, Proto};
use knet_simos::{NodeId, OsLayer, OsWorld, VmaEvent};
use knet_zsock::{TcpLayer, TcpWorld, ZsockLayer, ZsockWorld};

/// The fully composed world.
pub struct ClusterWorld {
    pub sched: Scheduler<ClusterWorld>,
    pub os: OsLayer,
    pub nics: NicLayer,
    pub gm: GmLayer,
    pub mx: MxLayer,
    pub orfs: OrfsLayer,
    pub zsock: ZsockLayer,
    pub tcp: TcpLayer,
    pub nbd: NbdLayer,
    /// Collective groups (rosters, round counters, completion contexts).
    pub coll: CollLayer,
    /// Typed RPC over channels: call slabs, servers, deadline/retry state.
    pub rpc: RpcLayer<ClusterWorld>,
    /// Replicated KV store (the RPC layer's proof-of-API consumer).
    pub kv: KvLayer,
    /// Endpoint → consumer dispatch, completion queues, channels.
    pub registry: Registry<ClusterWorld>,
}

impl ClusterWorld {
    pub(crate) fn from_layers(
        os: OsLayer,
        nics: NicLayer,
        gm: GmLayer,
        mx: MxLayer,
        zsock: ZsockLayer,
        tcp: TcpLayer,
    ) -> Self {
        ClusterWorld {
            sched: Scheduler::new(),
            os,
            nics,
            gm,
            mx,
            orfs: OrfsLayer::new(),
            zsock,
            tcp,
            nbd: NbdLayer::new(),
            coll: CollLayer::default(),
            rpc: RpcLayer::new(),
            kv: KvLayer::new(),
            registry: Registry::new(),
        }
    }

    /// Create a completion queue.
    pub fn new_cq(&mut self) -> CqId {
        self.registry.create_cq()
    }

    /// Open a GM port wrapped as a transport endpoint. The endpoint starts
    /// unbound: events park in the registry until a consumer attaches
    /// (application handler or [`Self::attach_cq`]).
    pub fn open_gm(&mut self, node: NodeId, cfg: GmPortConfig) -> Result<Endpoint, NetError> {
        let port = gm_open_port(self, node, cfg)?;
        Ok(Endpoint {
            kind: TransportKind::Gm,
            node,
            idx: port.0,
        })
    }

    /// Open an MX endpoint wrapped as a transport endpoint. Unexpected
    /// delivery is always enabled — the transport contract requires it.
    /// The endpoint starts unbound (see [`Self::open_gm`]).
    pub fn open_mx(&mut self, node: NodeId, cfg: MxEndpointConfig) -> Result<Endpoint, NetError> {
        let ep = mx_open_endpoint(self, node, cfg.with_unexpected_delivery())?;
        Ok(Endpoint {
            kind: TransportKind::Mx,
            node,
            idx: ep.0,
        })
    }

    /// Open a GM endpoint for a polling driver: bound to `cq` on creation.
    pub fn open_gm_cq(
        &mut self,
        node: NodeId,
        cfg: GmPortConfig,
        cq: CqId,
    ) -> Result<Endpoint, NetError> {
        let ep = self.open_gm(node, cfg)?;
        self.attach_cq(ep, cq);
        Ok(ep)
    }

    /// Open an MX endpoint for a polling driver: bound to `cq` on creation.
    pub fn open_mx_cq(
        &mut self,
        node: NodeId,
        cfg: MxEndpointConfig,
        cq: CqId,
    ) -> Result<Endpoint, NetError> {
        let ep = self.open_mx(node, cfg)?;
        self.attach_cq(ep, cq);
        Ok(ep)
    }

    /// Bind an endpoint's events to a completion queue (replacing any
    /// previous consumer; parked events replay into the queue).
    pub fn attach_cq(&mut self, ep: Endpoint, cq: CqId) -> ConsumerId {
        let cid = self.registry.register_cq("driver-cq", cq);
        api::bind(self, ep, cid);
        cid
    }

    /// Pop the next completion-queue event for `ep`.
    pub fn take_event(&mut self, ep: Endpoint) -> Option<TransportEvent> {
        self.registry.take_event(ep)
    }

    /// Drain up to `max` pending events for `ep` from its bound queue into
    /// `out` (cleared first), oldest first — the batched form
    /// ([`Registry::cq_pop_batch`]); one registry access amortizes over a
    /// burst of completions. Returns the number drained.
    pub fn take_events(
        &mut self,
        ep: Endpoint,
        max: usize,
        out: &mut Vec<knet_core::CqEntry>,
    ) -> usize {
        let Some(cq) = self.registry.cq_of(ep) else {
            out.clear();
            return 0;
        };
        self.registry.cq_pop_batch(cq, ep, max, out)
    }

    /// Peek whether a completion-queue event is waiting for `ep`.
    pub fn has_event(&self, ep: Endpoint) -> bool {
        self.registry.has_event(ep)
    }

    /// Install a fault plan on the fabric (see `knet_simnic::FaultPlan`):
    /// seeded drop/duplicate/delay dice plus one-shot node kills, and —
    /// via [`knet_simnic::FaultPlan::for_link`] — per-link asymmetric
    /// overrides with their own independent dice streams. The driver-level
    /// reliability windows absorb the injected faults; an exhausted retry
    /// budget surfaces as `TransportEvent::PeerDown`.
    pub fn set_fault_plan(&mut self, plan: knet_simnic::FaultPlan) {
        self.nics.set_fault_plan(plan);
    }

    /// The registry counters with the NIC-level reliability counters
    /// (`knet_simnic::RelStats`) mirrored in: one snapshot tests, figures
    /// and the bench can assert on without reaching below the driver seam.
    pub fn stats_snapshot(&self) -> knet_core::RegistryStats {
        let mut st = self.registry.stats;
        let rel = self.nics.rel.stats;
        st.rel_data_packets = rel.data_packets;
        st.rel_retransmits = rel.retransmits;
        st.rel_sack_repairs = rel.sack_repairs;
        st.rel_rtt_samples = rel.rtt_samples;
        st.rel_spurious_rtos = rel.spurious_rtos;
        st.rel_srtt_ns = rel.srtt_ns;
        st.rel_rto_ns = rel.rto_ns;
        st.rel_fast_retransmits = rel.fast_retransmits;
        st.rel_cwnd_cuts = rel.cwnd_cuts;
        st.rel_delayed_acks = rel.acks_delayed;
        st.nic_rx_congestion_drops = self.nics.congestion_drops();
        let coll = self.coll.stats;
        st.coll_started = coll.started;
        st.coll_completed = coll.completed;
        st.coll_failed = coll.failed;
        let nic_coll = self.nics.coll.stats;
        st.coll_frames = nic_coll.frames;
        st.coll_combines = nic_coll.combines;
        let rpc = self.rpc.stats;
        st.rpc_calls = rpc.calls;
        st.rpc_completed = rpc.completed;
        st.rpc_failed = rpc.failed;
        st.rpc_retries = rpc.retries;
        st.rpc_expired_dropped = rpc.expired_dropped;
        st.rpc_idem_hits = rpc.idem_hits;
        let eng = self.sched.engine_stats();
        st.engine_events = eng.executed;
        st.engine_epochs = eng.epochs;
        st.engine_mailbox_injected = eng.mailbox_injected;
        st.engine_mailbox_high_water = eng.mailbox_high_water;
        st.engine_arena_uses = eng.arena_uses;
        st.engine_arena_grows = eng.arena_grows;
        st.engine_errors = eng.errors;
        let qos = self.nics.qos.totals();
        st.qos_admitted = qos.admitted;
        st.qos_deferred = qos.deferred;
        st.qos_shed = qos.shed;
        st
    }

    /// The raw engine counters of this world's scheduler shard (the
    /// aggregate view lives in [`Self::stats_snapshot`]; sharded runs sum
    /// each world's copy).
    pub fn engine_stats(&self) -> knet_simcore::EngineStats {
        self.sched.engine_stats()
    }

    /// Per-link reliability counters, one row per live link state,
    /// deterministically ordered — the breakdown behind the aggregate
    /// [`Self::stats_snapshot`], so a hot link (e.g. a collective tree's
    /// root edge) is attributable instead of averaged away.
    pub fn rel_link_stats(&self) -> Vec<knet_simnic::RelLinkStats> {
        self.nics.rel.link_breakdown()
    }

    /// Register a tenant (idempotent by name): mints the registry id,
    /// installs the WDRR weight in both drivers, and — when `policy` is
    /// given — the token-bucket policy at the NIC admission point.
    pub fn register_tenant(
        &mut self,
        name: &str,
        weight: u64,
        policy: Option<knet_simnic::QosPolicy>,
    ) -> TenantId {
        let t = self.registry.tenant_create(name, weight);
        if let Some(p) = policy {
            self.nics.qos.set_policy(t.0, p);
        }
        self.sync_tenant_weights();
        t
    }

    /// Attribute an endpoint's sends to `tenant` (channels created for it
    /// pick the tenant up; existing channels are re-tagged).
    pub fn assign_tenant(&mut self, ep: Endpoint, tenant: TenantId) {
        self.registry.assign_tenant(ep, tenant);
    }

    /// Mirror the registry's tenant weights into the driver pacing
    /// schedulers (both drivers index weights by dense tenant id).
    fn sync_tenant_weights(&mut self) {
        let table = self.registry.tenant_table();
        let n = table.count();
        self.gm.tenant_weights.clear();
        self.mx.tenant_weights.clear();
        for i in 0..n {
            let wgt = table.weight(TenantId(i as u32));
            self.gm.tenant_weights.push(wgt);
            self.mx.tenant_weights.push(wgt);
        }
    }

    /// One stats row per tenant: channel-layer queueing counters joined
    /// with the NIC admission counters (summed over the tenant's NICs).
    pub fn tenant_stats(&self) -> Vec<TenantStatsRow> {
        self.registry
            .tenant_rows()
            .into_iter()
            .map(|row| TenantStatsRow {
                id: row.id,
                name: row.name,
                weight: row.weight,
                channel: row.stats,
                qos: self.nics.qos.tenant_stats(row.id.0),
            })
            .collect()
    }

    /// Fold every tenant-visible scheduler and admission state into a
    /// fingerprint accumulator: channel WDRR lanes, driver pacing lanes,
    /// token buckets. Zero-cost mix when no tenant is configured; used by
    /// `tests/sched_equivalence.rs` to prove shard invariance.
    pub fn tenant_fingerprint(&self, mut mix: impl FnMut(u64)) {
        self.registry.wdrr_fingerprint(&mut mix);
        self.gm.paced_fingerprint(&mut mix);
        self.mx.paced_fingerprint(&mut mix);
        self.nics.qos.fingerprint(&mut mix);
    }

    /// [`Self::tenant_fingerprint`] restricted to one node's slice —
    /// channels homed on the node, pacing lanes and token buckets of its
    /// NIC. In a sharded run a node's slice is authoritative only on the
    /// owning shard world, so equivalence tests fold node slices from their
    /// owners and get bit-identical results at every shard count.
    pub fn tenant_fingerprint_node(&self, node: NodeId, mut mix: impl FnMut(u64)) {
        self.registry.wdrr_fingerprint_node(node.0, &mut mix);
        if let Some(nic) = self.nics.nic_of_node(node) {
            self.gm.paced_fingerprint_nic(nic, &mut mix);
            self.mx.paced_fingerprint_nic(nic, &mut mix);
            self.nics.qos.fingerprint_nic(nic, &mut mix);
        }
    }
}

/// Per-tenant observability row surfaced by [`ClusterWorld::tenant_stats`]:
/// the channel layer's queueing counters and the NIC admission point's
/// token-bucket counters, keyed by the registry's tenant directory.
#[derive(Clone, Debug)]
pub struct TenantStatsRow {
    pub id: TenantId,
    pub name: String,
    pub weight: u64,
    pub channel: TenantSendStats,
    pub qos: knet_simnic::QosTenantStats,
}

impl SimWorld for ClusterWorld {
    type Ev = ClusterEv;
    fn sched(&self) -> &Scheduler<Self> {
        &self.sched
    }
    fn sched_mut(&mut self) -> &mut Scheduler<Self> {
        &mut self.sched
    }
}

/// The parallel engine moves whole worlds onto worker threads.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ClusterWorld>();
};

impl OsWorld for ClusterWorld {
    fn os(&self) -> &OsLayer {
        &self.os
    }
    fn os_mut(&mut self) -> &mut OsLayer {
        &mut self.os
    }
    fn vma_event(&mut self, node: NodeId, ev: VmaEvent) {
        // The VMA SPY notifier chain: GM registration caches subscribe.
        gm_on_vma_event(self, node, &ev);
    }
}

impl NicWorld for ClusterWorld {
    fn nics(&self) -> &NicLayer {
        &self.nics
    }
    fn nics_mut(&mut self) -> &mut NicLayer {
        &mut self.nics
    }
    fn lift_nic(ev: NicEv) -> ClusterEv {
        ClusterEv::Nic(ev)
    }
    fn nic_rx(&mut self, nic: NicId, pkt: Packet) {
        match pkt.proto {
            Proto::Gm => gm_on_packet(self, nic, pkt),
            Proto::Mx => mx_on_packet(self, nic, pkt),
            Proto::Raw => {}
        }
    }
    fn nic_link_dead(&mut self, proto: Proto, local: NicId, remote: NicId) {
        // A reliability window exhausted its retry budget: surface the dead
        // peer to every channel above the driver seam, and resolve every
        // collective the dead node was a member of as a typed failure.
        let kind = match proto {
            Proto::Gm => TransportKind::Gm,
            Proto::Mx => TransportKind::Mx,
            Proto::Raw => return,
        };
        let local_node = self.nics.get(local).node;
        let remote_node = self.nics.get(remote).node;
        api::peer_down(self, kind, local_node, remote_node);
        knet_coll::coll_peer_down(self, kind, remote_node);
    }
    fn coll_event(&mut self, proto: Proto, nic: NicId, ev: CollEvent) {
        let kind = match proto {
            Proto::Gm => TransportKind::Gm,
            Proto::Mx => TransportKind::Mx,
            Proto::Raw => return,
        };
        let node = self.nics.get(nic).node;
        knet_coll::on_nic_event(self, kind, node, ev);
    }
}

impl CollWorld for ClusterWorld {
    fn coll(&self) -> &CollLayer {
        &self.coll
    }
    fn coll_mut(&mut self) -> &mut CollLayer {
        &mut self.coll
    }
    fn coll_post(&mut self, ep: Endpoint, cmd: CollCmd) -> Result<(), NetError> {
        match ep.kind {
            TransportKind::Gm => knet_gm::gm_coll_post(self, GmPortId(ep.idx), cmd),
            TransportKind::Mx => knet_mx::mx_coll_post(self, MxEndpointId(ep.idx), cmd),
        }
    }
    fn coll_install(
        &mut self,
        ep: Endpoint,
        parent: Option<Endpoint>,
        children: &[Endpoint],
        group: u32,
    ) {
        let proto = match ep.kind {
            TransportKind::Gm => Proto::Gm,
            TransportKind::Mx => Proto::Mx,
        };
        let Some(nic) = self.nics.nic_of_node(ep.node) else {
            return;
        };
        let parent = parent.and_then(|p| self.nics.nic_of_node(p.node));
        let mut kids: Vec<NicId> = Vec::with_capacity(children.len());
        for c in children {
            if let Some(n) = self.nics.nic_of_node(c.node) {
                kids.push(n);
            }
        }
        self.nics
            .coll
            .install_tree(proto, group, nic, parent, &kids);
    }
    fn coll_uninstall(&mut self, ep: Endpoint, group: u32) {
        let proto = match ep.kind {
            TransportKind::Gm => Proto::Gm,
            TransportKind::Mx => Proto::Mx,
        };
        if let Some(nic) = self.nics.nic_of_node(ep.node) {
            self.nics.coll.uninstall_tree(proto, group, nic);
        }
    }
    fn coll_purge(&mut self, kind: TransportKind, group: u32) {
        let proto = match kind {
            TransportKind::Gm => Proto::Gm,
            TransportKind::Mx => Proto::Mx,
        };
        self.nics.coll.purge_group(proto, group);
    }
}

impl RpcWorld for ClusterWorld {
    fn rpc(&self) -> &RpcLayer<Self> {
        &self.rpc
    }
    fn rpc_mut(&mut self) -> &mut RpcLayer<Self> {
        &mut self.rpc
    }
    fn lift_rpc(ev: RpcEv) -> ClusterEv {
        ClusterEv::Rpc(ev)
    }
}

impl KvWorld for ClusterWorld {
    fn kv(&self) -> &KvLayer {
        &self.kv
    }
    fn kv_mut(&mut self) -> &mut KvLayer {
        &mut self.kv
    }
    fn lift_kv(ev: KvEv) -> ClusterEv {
        ClusterEv::Kv(ev)
    }
}

impl DispatchWorld for ClusterWorld {
    fn registry(&self) -> &Registry<Self> {
        &self.registry
    }
    fn registry_mut(&mut self) -> &mut Registry<Self> {
        &mut self.registry
    }
}

impl GmWorld for ClusterWorld {
    fn gm(&self) -> &GmLayer {
        &self.gm
    }
    fn gm_mut(&mut self) -> &mut GmLayer {
        &mut self.gm
    }
    fn lift_gm(ev: GmEv) -> ClusterEv {
        ClusterEv::Gm(ev)
    }
    fn gm_dispatch(&mut self, port: GmPortId) {
        let node = match self.gm.port(port) {
            Ok(p) => p.node,
            Err(_) => return,
        };
        while let Some(ev) = gm_next_event(self, port) {
            let tev = match ev {
                GmEvent::SendDone { ctx } => TransportEvent::SendDone { ctx },
                GmEvent::SendFailed { ctx, error } => TransportEvent::SendFailed { ctx, error },
                GmEvent::RecvDone {
                    ctx,
                    tag,
                    len,
                    from,
                } => {
                    let from_node = self.gm.port(from).map(|p| p.node).unwrap_or(node);
                    TransportEvent::RecvDone {
                        ctx,
                        tag,
                        len,
                        from: Endpoint {
                            kind: TransportKind::Gm,
                            node: from_node,
                            idx: from.0,
                        },
                    }
                }
                GmEvent::Unexpected { tag, data, from } => {
                    let from_node = self.gm.port(from).map(|p| p.node).unwrap_or(node);
                    TransportEvent::Unexpected {
                        tag,
                        data,
                        from: Endpoint {
                            kind: TransportKind::Gm,
                            node: from_node,
                            idx: from.0,
                        },
                    }
                }
            };
            let ep = Endpoint {
                kind: TransportKind::Gm,
                node,
                idx: port.0,
            };
            api::deliver(self, ep, tev);
        }
    }
}

impl MxWorld for ClusterWorld {
    fn mx(&self) -> &MxLayer {
        &self.mx
    }
    fn mx_mut(&mut self) -> &mut MxLayer {
        &mut self.mx
    }
    fn lift_mx(ev: MxEv) -> ClusterEv {
        ClusterEv::Mx(ev)
    }
    fn mx_dispatch(&mut self, ep_id: MxEndpointId) {
        let node = match self.mx.ep(ep_id) {
            Ok(e) => e.node,
            Err(_) => return,
        };
        while let Some(ev) = mx_next_event(self, ep_id) {
            let tev = match ev {
                MxEvent::SendDone { ctx } => TransportEvent::SendDone { ctx },
                MxEvent::SendFailed { ctx, error } => TransportEvent::SendFailed { ctx, error },
                MxEvent::RecvDone {
                    ctx,
                    tag,
                    len,
                    from,
                } => {
                    let from_node = self.mx.ep(from).map(|e| e.node).unwrap_or(node);
                    TransportEvent::RecvDone {
                        ctx,
                        tag,
                        len,
                        from: Endpoint {
                            kind: TransportKind::Mx,
                            node: from_node,
                            idx: from.0,
                        },
                    }
                }
                MxEvent::Unexpected { tag, data, from } => {
                    let from_node = self.mx.ep(from).map(|e| e.node).unwrap_or(node);
                    TransportEvent::Unexpected {
                        tag,
                        data,
                        from: Endpoint {
                            kind: TransportKind::Mx,
                            node: from_node,
                            idx: from.0,
                        },
                    }
                }
            };
            let ep = Endpoint {
                kind: TransportKind::Mx,
                node,
                idx: ep_id.0,
            };
            api::deliver(self, ep, tev);
        }
    }
}

impl TransportWorld for ClusterWorld {
    fn t_send(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        tag: u64,
        iov: IoVec,
        ctx: u64,
    ) -> Result<(), NetError> {
        self.t_send_t(from, to, tag, iov, ctx, TenantId::DEFAULT)
    }

    fn t_send_t(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        tag: u64,
        iov: IoVec,
        ctx: u64,
        tenant: TenantId,
    ) -> Result<(), NetError> {
        match from.kind {
            TransportKind::Mx => mx_isend_t(
                self,
                MxEndpointId(from.idx),
                MxEndpointId(to.idx),
                tag,
                &iov,
                ctx,
                tenant,
            ),
            TransportKind::Gm => {
                // GM is not vectorial (§4.1): single-segment sends only.
                // The channel layer (`knet_core::api::channel_send`)
                // coalesces above this point; raw callers see the driver's
                // real contract.
                if iov.seg_count() != 1 {
                    return Err(NetError::Unsupported);
                }
                let seg = iov.segs()[0];
                let port = GmPortId(from.idx);
                match seg {
                    // On-the-fly registration through GMKRC for pageable
                    // memory.
                    MemRef::UserVirtual { asid, addr, len } => {
                        if self.gm.port(port)?.regcache.is_some() {
                            gm_ensure_cached(self, port, asid, addr, len)?;
                        }
                    }
                    // Stock GM (no physical-address patch) needs kernel
                    // buffers registered too; the cache absorbs the cost the
                    // same way (the channel layer's coalescing staging
                    // buffers take this path).
                    MemRef::KernelVirtual { addr, len } => {
                        let p = self.gm.port(port)?;
                        if p.regcache.is_some() && !p.physical_api {
                            gm_ensure_cached(self, port, knet_simos::Asid::KERNEL, addr, len)?;
                        }
                    }
                    MemRef::Physical { .. } => {}
                }
                gm_send_t(self, port, seg, GmPortId(to.idx), tag, ctx, tenant)
            }
        }
    }

    fn t_post_recv(
        &mut self,
        ep: Endpoint,
        tag: u64,
        iov: IoVec,
        ctx: u64,
    ) -> Result<(), NetError> {
        match ep.kind {
            TransportKind::Mx => mx_irecv(self, MxEndpointId(ep.idx), tag, &iov, ctx),
            TransportKind::Gm => {
                let port = GmPortId(ep.idx);
                for seg in iov.segs() {
                    if let MemRef::UserVirtual { asid, addr, len } = *seg {
                        if self.gm.port(port)?.regcache.is_some() {
                            gm_ensure_cached(self, port, asid, addr, len)?;
                        }
                    }
                }
                gm_provide_receive_buffer(self, port, &iov, tag, ctx)
            }
        }
    }

    fn t_cancel_recv(&mut self, ep: Endpoint, tag: u64) -> bool {
        match ep.kind {
            TransportKind::Mx => knet_mx::mx_cancel_recv(self, MxEndpointId(ep.idx), tag),
            TransportKind::Gm => knet_gm::gm_cancel_receive_buffer(self, GmPortId(ep.idx), tag),
        }
    }
}

impl OrfsWorld for ClusterWorld {
    fn orfs(&self) -> &OrfsLayer {
        &self.orfs
    }
    fn orfs_mut(&mut self) -> &mut OrfsLayer {
        &mut self.orfs
    }
}

impl ZsockWorld for ClusterWorld {
    fn zsock(&self) -> &ZsockLayer {
        &self.zsock
    }
    fn zsock_mut(&mut self) -> &mut ZsockLayer {
        &mut self.zsock
    }
}

impl TcpWorld for ClusterWorld {
    fn tcp(&self) -> &TcpLayer {
        &self.tcp
    }
    fn tcp_mut(&mut self) -> &mut TcpLayer {
        &mut self.tcp
    }
}

impl NbdWorld for ClusterWorld {
    fn nbd(&self) -> &NbdLayer {
        &self.nbd
    }
    fn nbd_mut(&mut self) -> &mut NbdLayer {
        &mut self.nbd
    }
}

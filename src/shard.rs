//! `ShardedCluster` — one cluster split across `k` node-partitioned worlds.
//!
//! The parallel engine (`knet_simcore::engine`) steps `k` schedulers on real
//! threads; this type owns the `k` [`ClusterWorld`] replicas and keeps the
//! whole arrangement **bit-identical to the sequential engine**:
//!
//! * **Mirrored setup.** [`ShardedCluster::setup`] runs the same closure on
//!   every world (`ShardPhase::Mirror`): layer state — nodes, NICs, ports,
//!   endpoints, channels, trees — is replicated everywhere, and each
//!   scheduler keeps only the events targeting the nodes it owns
//!   (`node % shards == shard_id`). Identical code ⇒ identical ids on every
//!   replica.
//! * **Routed control.** After setup, steady-state control ops go through
//!   [`ShardedCluster::on`]: the closure runs on the *owner* world only
//!   (`ShardPhase::Routed`), any events it schedules at foreign nodes are
//!   exported through the scheduler outbox and injected into the owning
//!   shards immediately, and a single global control-sequence counter is
//!   threaded through so control events carry exactly the ordering keys the
//!   sequential engine would have assigned.
//! * **Aligned clocks.** [`ShardedCluster::run_to_quiescence`] drains all
//!   shards under the conservative lookahead (the minimum NIC wire latency)
//!   and leaves every clock at the global maximum, so the next control op
//!   observes the same `now` a sequential run would have.
//!
//! `tests/sched_equivalence.rs` holds the receipts: chaos and collective
//! workloads produce identical `executed()` / tree fingerprints at
//! 1, 2, 4 and 8 shards.

use knet_simcore::{
    run_shards_to_quiescence, EngineStats, EpochReport, ShardPhase, SimTime, DEFAULT_EVENT_BUDGET,
};

use crate::world::ClusterWorld;

/// A cluster partitioned into `k` shard worlds stepped in parallel.
pub struct ShardedCluster {
    worlds: Vec<ClusterWorld>,
    /// Conservative lookahead: no cross-shard event can land sooner than
    /// this after its cause (the minimum NIC wire latency at build time).
    lookahead: SimTime,
    /// The global control-stream sequence counter, threaded through every
    /// [`Self::on`] call so control events get sequential-identical keys.
    control_seq: u64,
    setup_done: bool,
}

impl ShardedCluster {
    /// Wrap `k` freshly built identical worlds. Use
    /// [`crate::build::ClusterBuilder::build_sharded`] instead of calling
    /// this directly.
    pub(crate) fn from_worlds(mut worlds: Vec<ClusterWorld>, lookahead: SimTime) -> Self {
        assert!(!worlds.is_empty());
        assert!(lookahead > SimTime::ZERO);
        let k = worlds.len() as u32;
        for (i, w) in worlds.iter_mut().enumerate() {
            w.sched.configure_shard(i as u32, k);
            w.sched.set_phase(ShardPhase::Mirror);
        }
        ShardedCluster {
            worlds,
            lookahead,
            control_seq: 0,
            setup_done: false,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.worlds.len()
    }

    /// The shard that owns `node`.
    fn owner(&self, node: u32) -> usize {
        node as usize % self.worlds.len()
    }

    /// Mirrored setup: run `f` identically on every world, returning the
    /// last replica's value (identical code ⇒ identical values — ids handed
    /// out by the layers are deterministic). Must complete before the first
    /// [`Self::on`] / [`Self::run_to_quiescence`] — once shard states
    /// diverge (events executed, routed ops applied), mirrored execution is
    /// no longer sound and this panics.
    pub fn setup<T>(&mut self, f: impl Fn(&mut ClusterWorld) -> T) -> T {
        assert!(
            !self.setup_done,
            "setup() must precede all routed operations"
        );
        let mut last = None;
        for w in &mut self.worlds {
            last = Some(f(w));
        }
        last.expect("at least one shard")
    }

    /// Switch from mirrored setup to routed steady-state. Idempotent;
    /// called automatically by the first `on`/`run_to_quiescence`.
    fn seal_setup(&mut self) {
        if self.setup_done {
            return;
        }
        self.setup_done = true;
        // Every replica ran identical setup code, so every control counter
        // agrees; adopt it as the global one.
        self.control_seq = self.worlds[0].sched.control_seq();
        for w in &mut self.worlds {
            debug_assert_eq!(w.sched.control_seq(), self.control_seq);
            w.sched.set_phase(ShardPhase::Routed);
        }
    }

    /// Run a control operation against the world that owns `node` and
    /// return its result. Events the operation schedules at foreign nodes
    /// are routed into their owners' heaps before this returns.
    pub fn on<R>(&mut self, node: u32, f: impl FnOnce(&mut ClusterWorld) -> R) -> R {
        self.seal_setup();
        let i = self.owner(node);
        self.worlds[i].sched.set_control_seq(self.control_seq);
        let r = f(&mut self.worlds[i]);
        self.control_seq = self.worlds[i].sched.control_seq();
        self.route_outbox(i);
        r
    }

    /// Read-only view of the world owning `node` (its layer state for that
    /// node is authoritative; other replicas' copies are stale post-setup).
    pub fn world(&self, node: u32) -> &ClusterWorld {
        &self.worlds[node as usize % self.worlds.len()]
    }

    /// Move shard `i`'s outbox into the destination shards' heaps.
    fn route_outbox(&mut self, i: usize) {
        let mut outbox = Vec::new();
        self.worlds[i].sched.drain_outbox(&mut outbox);
        if outbox.is_empty() {
            return;
        }
        let k = self.worlds.len();
        for dest in 0..k {
            let mut batch: Vec<_> = Vec::new();
            let mut j = 0;
            while j < outbox.len() {
                if outbox[j].node as usize % k == dest {
                    batch.push(outbox.swap_remove(j));
                } else {
                    j += 1;
                }
            }
            if !batch.is_empty() {
                self.worlds[dest].sched.inject(&mut batch);
            }
        }
    }

    /// Drain every shard to quiescence on one thread per shard, then align
    /// all clocks to the global maximum.
    pub fn run_to_quiescence(&mut self) -> EpochReport {
        self.run_to_quiescence_budgeted(DEFAULT_EVENT_BUDGET)
    }

    /// [`Self::run_to_quiescence`] with an explicit total event budget.
    pub fn run_to_quiescence_budgeted(&mut self, budget: u64) -> EpochReport {
        self.seal_setup();
        let report = run_shards_to_quiescence(&mut self.worlds, self.lookahead, budget);
        // Threads only align clocks among themselves in the k>1 path; the
        // solo path and routed control both want the invariant anyway.
        let max_now = self
            .worlds
            .iter()
            .map(|w| w.sched.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        for w in &mut self.worlds {
            w.sched.align_now(max_now);
        }
        report
    }

    /// Sum of every shard's event count (the cross-shard-count fingerprint).
    pub fn executed(&self) -> u64 {
        self.worlds.iter().map(|w| w.sched.executed()).sum()
    }

    /// Engine counters summed over all shards, plus the per-shard list.
    pub fn engine_stats(&self) -> (EngineStats, Vec<EngineStats>) {
        let per: Vec<EngineStats> = self.worlds.iter().map(|w| w.engine_stats()).collect();
        let mut sum = EngineStats::default();
        for s in &per {
            sum.executed += s.executed;
            sum.pending += s.pending;
            sum.epochs = sum.epochs.max(s.epochs);
            sum.mailbox_injected += s.mailbox_injected;
            sum.mailbox_high_water = sum.mailbox_high_water.max(s.mailbox_high_water);
            sum.arena_uses += s.arena_uses;
            sum.arena_grows += s.arena_grows;
            sum.mirror_dropped += s.mirror_dropped;
            sum.errors += s.errors;
        }
        (sum, per)
    }

    /// Aggregate stats snapshot: world 0's registry-style snapshot shape
    /// with the engine counters summed over every shard. (Layer counters
    /// other than the engine's are per-shard in a sharded run; read them
    /// through [`Self::world`].)
    pub fn stats_snapshot(&self) -> knet_core::RegistryStats {
        let mut st = self.worlds[0].stats_snapshot();
        let (sum, _) = self.engine_stats();
        st.engine_events = sum.executed;
        st.engine_epochs = sum.epochs;
        st.engine_mailbox_injected = sum.mailbox_injected;
        st.engine_mailbox_high_water = sum.mailbox_high_water;
        st.engine_arena_uses = sum.arena_uses;
        st.engine_arena_grows = sum.arena_grows;
        st.engine_errors = sum.errors;
        st
    }

    /// First typed engine error recorded on any shard, if one exists.
    pub fn engine_error(&self) -> Option<knet_simcore::EngineError> {
        self.worlds.iter().find_map(|w| w.sched.engine_error())
    }
}

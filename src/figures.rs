//! Regenerators for every table and figure of the paper's evaluation.
//!
//! Each function rebuilds the exact experimental setup (node/NIC generation,
//! driver configuration, workload) and returns the same series the paper
//! plots. The benchmark binaries print them; the integration tests assert
//! the paper's qualitative claims on them (orderings, crossovers,
//! improvement factors).

use knet_core::{MemRef, TransportKind};
use knet_gm::{gm_register, GmParams, GmPortConfig, GmPortId};
use knet_mx::{MxEndpointConfig, MxOpts};
use knet_orfs::{client_create, server_create, ClientKind, OrfsClientId, VfsConfig};
use knet_simcore::{pow2_sizes, Series};
use knet_simfs::SimFs;
use knet_simos::{Asid, CpuModel, NodeId, PAGE_SIZE};
use knet_zsock::{sock_create, tcp_pair};

use crate::build::{two_nodes, two_nodes_xe, ClusterBuilder};
use crate::harness::{
    self, kbuf, make_server_file, seq_read_mb, sock_pingpong_us, tcp_pingpong_us,
    transport_pingpong_us, ubuf,
};
use crate::world::ClusterWorld;

/// A regenerated figure.
pub struct Figure {
    pub id: &'static str,
    pub title: &'static str,
    pub x_label: &'static str,
    pub y_label: &'static str,
    pub series: Vec<Series>,
}

// ---------------------------------------------------------------- Figure 1b

/// Figure 1b: copy vs memory registration/deregistration cost, 0–256 kB.
pub fn fig1b() -> Figure {
    let sizes = pow2_sizes(256, 256 * 1024);
    let p4 = CpuModel::p4_2600();
    let p3 = CpuModel::p3_1200();
    let gm = GmParams::default();
    let mut copy_p3 = Series::new("Copy (P3 1.2 GHz)");
    let mut copy_p4 = Series::new("Copy (P4 2.6 GHz)");
    let mut reg = Series::new("Memory Registration");
    let mut dereg = Series::new("Memory De-registration");
    let mut both = Series::new("Register + Dereg.");
    for &s in &sizes {
        let pages = s.div_ceil(PAGE_SIZE);
        copy_p3.push(s, p3.memcpy_cost(s).micros());
        copy_p4.push(s, p4.memcpy_cost(s).micros());
        reg.push(s, gm.register_cost(pages).micros());
        dereg.push(s, gm.deregister_cost(pages).micros());
        both.push(
            s,
            (gm.register_cost(pages) + gm.deregister_cost(pages)).micros(),
        );
    }
    Figure {
        id: "fig1b",
        title: "Copy vs memory registration cost in GM",
        x_label: "message size (bytes)",
        y_label: "overhead (us)",
        series: vec![copy_p3, copy_p4, reg, dereg, both],
    }
}

// ---------------------------------------------------------------- raw pairs

/// GM user-mode endpoints with `len`-byte registered user buffers.
fn gm_user_registered(
    w: &mut ClusterWorld,
    n0: NodeId,
    n1: NodeId,
    len: u64,
) -> (
    knet_core::Endpoint,
    knet_core::Endpoint,
    harness::UBuf,
    harness::UBuf,
) {
    let cq = w.new_cq();
    let ba = ubuf(w, n0, len);
    let bb = ubuf(w, n1, len);
    let ea = w.open_gm_cq(n0, GmPortConfig::user(ba.asid), cq).unwrap();
    let eb = w.open_gm_cq(n1, GmPortConfig::user(bb.asid), cq).unwrap();
    gm_register(w, GmPortId(ea.idx), ba.asid, ba.addr, len).unwrap();
    gm_register(w, GmPortId(eb.idx), bb.asid, bb.addr, len).unwrap();
    (ea, eb, ba, bb)
}

/// GM kernel endpoints (optionally with the physical-address patch) and
/// kernel buffers, registered when the patch is off.
fn gm_kernel_pair(
    w: &mut ClusterWorld,
    n0: NodeId,
    n1: NodeId,
    len: u64,
    physical: bool,
) -> (knet_core::Endpoint, knet_core::Endpoint, MemRef, MemRef) {
    let cfg = if physical {
        GmPortConfig::kernel().with_physical_api()
    } else {
        GmPortConfig::kernel()
    };
    let cq = w.new_cq();
    let ea = w.open_gm_cq(n0, cfg.clone(), cq).unwrap();
    let eb = w.open_gm_cq(n1, cfg, cq).unwrap();
    let ka = kbuf(w, n0, len);
    let kb = kbuf(w, n1, len);
    let (ra, rb) = if physical {
        (
            MemRef::physical(ka.addr.kernel_to_phys().unwrap(), len),
            MemRef::physical(kb.addr.kernel_to_phys().unwrap(), len),
        )
    } else {
        gm_register(w, GmPortId(ea.idx), Asid::KERNEL, ka.addr, len).unwrap();
        gm_register(w, GmPortId(eb.idx), Asid::KERNEL, kb.addr, len).unwrap();
        (MemRef::kernel(ka.addr, len), MemRef::kernel(kb.addr, len))
    };
    (ea, eb, ra, rb)
}

fn clamp(m: &MemRef, len: u64) -> MemRef {
    match *m {
        MemRef::UserVirtual { asid, addr, len: l } => MemRef::user(asid, addr, l.min(len)),
        MemRef::KernelVirtual { addr, len: l } => MemRef::kernel(addr, l.min(len)),
        MemRef::Physical { addr, len: l } => MemRef::physical(addr, l.min(len)),
    }
}

// ---------------------------------------------------------------- Figure 5

/// Figure 5a: GM vs MX small-message latency, user and kernel, 1 B–4 kB.
pub fn fig5a() -> Figure {
    let sizes = pow2_sizes(1, 4096);
    let mut out: Vec<Series> = Vec::new();

    // GM user.
    let mut s = Series::new("GM User");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let (ea, eb, ba, bb) = gm_user_registered(&mut w, n0, n1, 4096.max(n));
        let us = transport_pingpong_us(
            &mut w,
            ea,
            eb,
            knet_core::IoVec::single(ba.memref(n)),
            knet_core::IoVec::single(bb.memref(n)),
            5,
        );
        s.push(n, us);
    }
    out.push(s);

    // GM kernel (registered kernel memory — stock GM).
    let mut s = Series::new("GM Kernel");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let (ea, eb, ra, rb) = gm_kernel_pair(&mut w, n0, n1, 4096.max(n), false);
        let us = transport_pingpong_us(
            &mut w,
            ea,
            eb,
            knet_core::IoVec::single(clamp(&ra, n)),
            knet_core::IoVec::single(clamp(&rb, n)),
            5,
        );
        s.push(n, us);
    }
    out.push(s);

    // MX user.
    let mut s = Series::new("MX User");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let ba = ubuf(&mut w, n0, 4096.max(n));
        let bb = ubuf(&mut w, n1, 4096.max(n));
        let ea = w
            .open_mx_cq(n0, MxEndpointConfig::user(ba.asid), cq)
            .unwrap();
        let eb = w
            .open_mx_cq(n1, MxEndpointConfig::user(bb.asid), cq)
            .unwrap();
        let us = transport_pingpong_us(&mut w, ea, eb, ba.iov(n), bb.iov(n), 5);
        s.push(n, us);
    }
    out.push(s);

    // MX kernel.
    let mut s = Series::new("MX Kernel");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let ea = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
        let eb = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
        let ka = kbuf(&mut w, n0, 4096.max(n));
        let kb = kbuf(&mut w, n1, 4096.max(n));
        let us = transport_pingpong_us(&mut w, ea, eb, ka.iov(n), kb.iov(n), 5);
        s.push(n, us);
    }
    out.push(s);

    Figure {
        id: "fig5a",
        title: "MX vs GM small-message latency",
        x_label: "message size (bytes)",
        y_label: "latency (us)",
        series: out,
    }
}

/// Figure 5b: GM / MX-user / MX-kernel-physical bandwidth, 1 B–1 MB.
pub fn fig5b() -> Figure {
    let sizes = pow2_sizes(1, 1 << 20);
    let mut out: Vec<Series> = Vec::new();

    let mut s = Series::new("GM");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let (ea, eb, ba, bb) = gm_user_registered(&mut w, n0, n1, (1 << 20).max(n));
        let us = transport_pingpong_us(
            &mut w,
            ea,
            eb,
            knet_core::IoVec::single(ba.memref(n)),
            knet_core::IoVec::single(bb.memref(n)),
            3,
        );
        s.push(n, n as f64 / us);
    }
    out.push(s);

    let mut s = Series::new("MX User");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let ba = ubuf(&mut w, n0, (1 << 20).max(n));
        let bb = ubuf(&mut w, n1, (1 << 20).max(n));
        let ea = w
            .open_mx_cq(n0, MxEndpointConfig::user(ba.asid), cq)
            .unwrap();
        let eb = w
            .open_mx_cq(n1, MxEndpointConfig::user(bb.asid), cq)
            .unwrap();
        let us = transport_pingpong_us(&mut w, ea, eb, ba.iov(n), bb.iov(n), 3);
        s.push(n, n as f64 / us);
    }
    out.push(s);

    let mut s = Series::new("MX Kernel Physical");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let ea = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
        let eb = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
        let ka = kbuf(&mut w, n0, (1 << 20).max(n));
        let kb = kbuf(&mut w, n1, (1 << 20).max(n));
        let pa = MemRef::physical(ka.addr.kernel_to_phys().unwrap(), n);
        let pb = MemRef::physical(kb.addr.kernel_to_phys().unwrap(), n);
        let us = transport_pingpong_us(
            &mut w,
            ea,
            eb,
            knet_core::IoVec::single(pa),
            knet_core::IoVec::single(pb),
            3,
        );
        s.push(n, n as f64 / us);
    }
    out.push(s);

    Figure {
        id: "fig5b",
        title: "MX vs GM bandwidth",
        x_label: "message size (bytes)",
        y_label: "bandwidth (MB/s)",
        series: out,
    }
}

// ---------------------------------------------------------------- Figure 6

/// Figure 6: medium-message copy removal, 1 kB–256 kB.
pub fn fig6() -> Figure {
    let sizes = pow2_sizes(1024, 256 * 1024);
    let mut out: Vec<Series> = Vec::new();

    let mut user = Series::new("MX User");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let cq = w.new_cq();
        let ba = ubuf(&mut w, n0, n);
        let bb = ubuf(&mut w, n1, n);
        let ea = w
            .open_mx_cq(n0, MxEndpointConfig::user(ba.asid), cq)
            .unwrap();
        let eb = w
            .open_mx_cq(n1, MxEndpointConfig::user(bb.asid), cq)
            .unwrap();
        let us = transport_pingpong_us(&mut w, ea, eb, ba.iov(n), bb.iov(n), 3);
        user.push(n, n as f64 / us);
    }
    out.push(user);

    for (name, opts) in [
        ("MX Kernel", MxOpts::default()),
        (
            "MX Kernel No-send-copy",
            MxOpts {
                no_send_copy: true,
                no_recv_copy: false,
            },
        ),
        (
            "MX Kernel No-copy (predicted)",
            MxOpts {
                no_send_copy: true,
                no_recv_copy: true,
            },
        ),
    ] {
        let mut s = Series::new(name);
        for &n in &sizes {
            let (mut w, n0, n1) = two_nodes();
            let cq = w.new_cq();
            let cfg = MxEndpointConfig::kernel().with_opts(opts);
            let ea = w.open_mx_cq(n0, cfg, cq).unwrap();
            let eb = w.open_mx_cq(n1, cfg, cq).unwrap();
            let ka = kbuf(&mut w, n0, n);
            let kb = kbuf(&mut w, n1, n);
            let us = transport_pingpong_us(&mut w, ea, eb, ka.iov(n), kb.iov(n), 3);
            s.push(n, n as f64 / us);
        }
        out.push(s);
    }

    Figure {
        id: "fig6",
        title: "Impact of removing the medium-message copies",
        x_label: "message size (bytes)",
        y_label: "bandwidth (MB/s)",
        series: out,
    }
}

// ---------------------------------------------------------------- Figure 4a

/// Figure 4a: in-kernel GM latency, registered-virtual vs physical, 16 B–4 kB.
pub fn fig4a() -> Figure {
    let sizes = pow2_sizes(16, 4096);
    let mut out = Vec::new();
    for (name, physical) in [("Memory Registration", false), ("Physical Address", true)] {
        let mut s = Series::new(name);
        for &n in &sizes {
            let (mut w, n0, n1) = two_nodes();
            let (ea, eb, ra, rb) = gm_kernel_pair(&mut w, n0, n1, 4096.max(n), physical);
            let us = transport_pingpong_us(
                &mut w,
                ea,
                eb,
                knet_core::IoVec::single(clamp(&ra, n)),
                knet_core::IoVec::single(clamp(&rb, n)),
                5,
            );
            s.push(n, us);
        }
        out.push(s);
    }
    Figure {
        id: "fig4a",
        title: "Kernel communication latency: registered vs physical addressing",
        x_label: "message size (bytes)",
        y_label: "latency (us)",
        series: out,
    }
}

// ----------------------------------------------------------- ORFS fixtures

/// An ORFS/ORFA deployment over the chosen transport.
pub struct FsFixture {
    pub w: ClusterWorld,
    pub cid: OrfsClientId,
    pub user: harness::UBuf,
    pub client_node: NodeId,
}

/// Options for [`fs_fixture`].
#[derive(Clone, Copy)]
pub struct FsOpts {
    pub kind: TransportKind,
    pub client: ClientKind,
    /// Registration-cache capacity in pages for GM ports (`None` = no cache).
    pub regcache_pages: Option<usize>,
    pub combine_pages: bool,
    pub file_len: u64,
}

impl Default for FsOpts {
    fn default() -> Self {
        FsOpts {
            kind: TransportKind::Mx,
            client: ClientKind::KernelVfs,
            regcache_pages: Some(4096),
            combine_pages: false,
            file_len: 8 << 20,
        }
    }
}

/// [`fs_fixture`] over a faulty fabric — the lossy-link scenario knob: the
/// same deployment, with a seeded `FaultPlan` installed before any traffic
/// flows (including per-link asymmetric overrides built with
/// `FaultPlan::for_link`). The drivers' reliability windows absorb the
/// injected faults, so every figure and test driven off the fixture must
/// produce identical bytes (the chaos suite asserts exactly that).
pub fn fs_fixture_faulty(opts: FsOpts, plan: knet_simnic::FaultPlan) -> FsFixture {
    let mut fx = fs_fixture(opts);
    fx.w.set_fault_plan(plan);
    fx
}

/// [`fs_fixture`] with an *asymmetric* faulty fabric: `plan`'s dice apply
/// only to the client→server direction (node 0 → node 1); the reply path
/// stays clean. Exercises one-sided recovery — data/announcement loss with
/// a lossless ack/reply channel — which go-back-N and selective repeat
/// handle very differently.
pub fn fs_fixture_asym(opts: FsOpts, plan: knet_simnic::FaultPlan) -> FsFixture {
    let seed = plan.seed;
    fs_fixture_faulty(
        opts,
        knet_simnic::FaultPlan::new(seed).for_link(NodeId(0), NodeId(1), plan),
    )
}

/// Build a server (node 1) + client (node 0) world with `/data` populated.
pub fn fs_fixture(opts: FsOpts) -> FsFixture {
    let mut w = ClusterBuilder::new().mem_frames(131_072).build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let user = ubuf(&mut w, n0, 4 << 20);

    let (client_ep, server_ep) = match opts.kind {
        TransportKind::Mx => {
            let c = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
            let s = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
            (c, s)
        }
        TransportKind::Gm => {
            // In-kernel ORFS sleeps between completions: GM's notification
            // thread is on its critical path (§5.2). The user-space ORFA
            // library busy-polls its own port instead.
            let mut ccfg = match opts.client {
                ClientKind::KernelVfs => GmPortConfig::kernel()
                    .with_physical_api()
                    .with_blocking_notify(),
                ClientKind::UserLib => GmPortConfig::user(user.asid),
            };
            if let Some(pages) = opts.regcache_pages {
                ccfg = ccfg.with_regcache(pages);
            }
            let scfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096)
                .with_blocking_notify();
            let c = w.open_gm(n0, ccfg).unwrap();
            let s = w.open_gm(n1, scfg).unwrap();
            (c, s)
        }
    };
    let server = server_create(&mut w, server_ep, SimFs::with_defaults()).unwrap();
    let cid = client_create(
        &mut w,
        client_ep,
        server_ep,
        opts.client,
        user.asid,
        VfsConfig {
            combine_pages: opts.combine_pages,
            max_combine: 16,
        },
    )
    .unwrap();
    make_server_file(&mut w, server, "/data", opts.file_len);
    FsFixture {
        w,
        cid,
        user,
        client_node: n0,
    }
}

/// Sequential-read throughput series over record sizes, one fresh fixture
/// per point (cold page-cache, warm dentries after open).
fn fs_read_series(
    name: &str,
    sizes: &[u64],
    opts: FsOpts,
    direct: bool,
    rotate_pool: bool,
) -> Series {
    let mut s = Series::new(name);
    for &record in sizes {
        let total = (record * 32).clamp(64 * 1024, 4 << 20);
        let mut fx = fs_fixture(FsOpts {
            file_len: total + record,
            ..opts
        });
        let fd = harness::fsops::open(&mut fx.w, fx.cid, "/data", direct).expect("open");
        let user = fx.user;
        let pool_len = user.len;
        let mb = seq_read_mb(&mut fx.w, fx.cid, fd, record, total, move |_w, i| {
            if rotate_pool {
                // Rotate across a pool far larger than the registration
                // cache: every access misses (the paper's no-cache curve).
                let off = (i * record) % (pool_len - record).max(1);
                user.memref_at(off & !(PAGE_SIZE - 1), record)
            } else {
                user.memref(record)
            }
        });
        s.push(record, mb);
    }
    s
}

// ---------------------------------------------------------------- Figure 3b

/// Figure 3b: direct access with/without registration cache on GM.
pub fn fig3b() -> Figure {
    let sizes = pow2_sizes(1024, 512 * 1024);
    let mut out = Vec::new();

    // Raw GM reference (user-space, registered, 100 % reuse).
    let mut raw = Series::new("GM Raw");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let (ea, eb, ba, bb) = gm_user_registered(&mut w, n0, n1, (512 * 1024).max(n));
        let us = transport_pingpong_us(
            &mut w,
            ea,
            eb,
            knet_core::IoVec::single(ba.memref(n)),
            knet_core::IoVec::single(bb.memref(n)),
            3,
        );
        raw.push(n, n as f64 / us);
    }
    out.push(raw);

    let gm = |client, cache| FsOpts {
        kind: TransportKind::Gm,
        client,
        regcache_pages: cache,
        combine_pages: false,
        file_len: 8 << 20,
    };
    out.push(fs_read_series(
        "ORFA with Registration Cache",
        &sizes,
        gm(ClientKind::UserLib, Some(4096)),
        true,
        false,
    ));
    out.push(fs_read_series(
        "ORFS with Registration Cache",
        &sizes,
        gm(ClientKind::KernelVfs, Some(4096)),
        true,
        false,
    ));
    // 0 % hits: small cache, rotating pool.
    out.push(fs_read_series(
        "ORFS without Reg. Cache",
        &sizes,
        gm(ClientKind::KernelVfs, Some(128)),
        true,
        true,
    ));

    Figure {
        id: "fig3b",
        title: "ORFS direct access and the registration cache",
        x_label: "record size (bytes)",
        y_label: "throughput (MB/s)",
        series: out,
    }
}

// ---------------------------------------------------------------- Figure 4b

/// Figure 4b: ORFS/GM direct vs buffered access.
pub fn fig4b() -> Figure {
    let sizes = pow2_sizes(64, 1 << 20);
    let gm_opts = FsOpts {
        kind: TransportKind::Gm,
        client: ClientKind::KernelVfs,
        regcache_pages: Some(4096),
        combine_pages: false,
        file_len: 8 << 20,
    };
    let direct = fs_read_series("ORFS/GM Direct Access", &sizes, gm_opts, true, false);
    let buffered = fs_read_series("ORFS/GM Buffered Access", &sizes, gm_opts, false, false);
    Figure {
        id: "fig4b",
        title: "Direct vs buffered remote file access on GM",
        x_label: "record size (bytes)",
        y_label: "throughput (MB/s)",
        series: vec![direct, buffered],
    }
}

// ---------------------------------------------------------------- Figure 7

/// Figure 7a/b: ORFS over GM vs MX, direct (`true`) or buffered (`false`).
pub fn fig7(direct: bool) -> Figure {
    let sizes = pow2_sizes(1024, 1 << 20);
    let gm_opts = FsOpts {
        kind: TransportKind::Gm,
        client: ClientKind::KernelVfs,
        regcache_pages: Some(4096),
        combine_pages: false,
        file_len: 8 << 20,
    };
    let mx_opts = FsOpts {
        kind: TransportKind::Mx,
        ..gm_opts
    };
    let mode = if direct { "Direct" } else { "Buffered" };
    let series = vec![
        fs_read_series(&format!("ORFS/GM {mode}"), &sizes, gm_opts, direct, false),
        fs_read_series(&format!("ORFS/MX {mode}"), &sizes, mx_opts, direct, false),
    ];
    Figure {
        id: if direct { "fig7a" } else { "fig7b" },
        title: if direct {
            "Direct file access: GM vs MX"
        } else {
            "Buffered file access: GM vs MX"
        },
        x_label: "record size (bytes)",
        y_label: "throughput (MB/s)",
        series,
    }
}

// ---------------------------------------------------------------- Figure 8

/// Build a SOCKETS-GM or SOCKETS-MX pair on the PCI-XE world.
fn sock_fixture(
    kind: TransportKind,
) -> (
    ClusterWorld,
    knet_zsock::SockId,
    knet_zsock::SockId,
    harness::UBuf,
    harness::UBuf,
) {
    let (mut w, n0, n1) = two_nodes_xe();
    let ba = ubuf(&mut w, n0, 2 << 20);
    let bb = ubuf(&mut w, n1, 2 << 20);
    let (ea, eb) = match kind {
        TransportKind::Mx => (
            w.open_mx(n0, MxEndpointConfig::kernel()).unwrap(),
            w.open_mx(n1, MxEndpointConfig::kernel()).unwrap(),
        ),
        TransportKind::Gm => {
            let cfg = GmPortConfig::kernel()
                .with_physical_api()
                .with_regcache(4096);
            (
                w.open_gm(n0, cfg.clone()).unwrap(),
                w.open_gm(n1, cfg).unwrap(),
            )
        }
    };
    let sa = sock_create(&mut w, ea, eb).unwrap();
    let sb = sock_create(&mut w, eb, ea).unwrap();
    (w, sa, sb, ba, bb)
}

/// Figure 8a: SOCKETS-GM vs SOCKETS-MX latency (1 B–4 kB, PCI-XE).
pub fn fig8a() -> Figure {
    let sizes = pow2_sizes(1, 4096);
    let mut out = Vec::new();
    for (name, kind) in [
        ("Sockets-GM", TransportKind::Gm),
        ("Sockets-MX", TransportKind::Mx),
    ] {
        let mut s = Series::new(name);
        for &n in &sizes {
            let (mut w, sa, sb, ba, bb) = sock_fixture(kind);
            let us = sock_pingpong_us(&mut w, sa, sb, ba.memref(n), bb.memref(n), 5);
            s.push(n, us);
        }
        out.push(s);
    }
    Figure {
        id: "fig8a",
        title: "Zero-copy socket latency (PCI-XE)",
        x_label: "message size (bytes)",
        y_label: "latency (us)",
        series: out,
    }
}

/// Figure 8b: SOCKETS-GM vs SOCKETS-MX bandwidth (1 B–1 MB, PCI-XE).
pub fn fig8b() -> Figure {
    let sizes = pow2_sizes(1, 1 << 20);
    let mut out = Vec::new();
    for (name, kind) in [
        ("Sockets-GM", TransportKind::Gm),
        ("Sockets-MX", TransportKind::Mx),
    ] {
        let mut s = Series::new(name);
        for &n in &sizes {
            let (mut w, sa, sb, ba, bb) = sock_fixture(kind);
            let us = sock_pingpong_us(&mut w, sa, sb, ba.memref(n), bb.memref(n), 3);
            s.push(n, n as f64 / us);
        }
        out.push(s);
    }
    Figure {
        id: "fig8b",
        title: "Zero-copy socket bandwidth (PCI-XE)",
        x_label: "message size (bytes)",
        y_label: "bandwidth (MB/s)",
        series: out,
    }
}

/// Extension: the TCP/IP-over-GigE baseline the paper name-drops ("A common
/// GIGA-ETHERNET network might get much more [latency]").
pub fn tcp_baseline() -> Figure {
    let sizes = pow2_sizes(1, 1 << 20);
    let mut lat = Series::new("TCP/IP GigE latency (us)");
    let mut bw = Series::new("TCP/IP GigE bandwidth (MB/s)");
    for &n in &sizes {
        let (mut w, n0, n1) = two_nodes();
        let ba = ubuf(&mut w, n0, (1 << 20).max(n));
        let bb = ubuf(&mut w, n1, (1 << 20).max(n));
        let (ta, tb) = tcp_pair(&mut w, n0, n1);
        let us = tcp_pingpong_us(&mut w, ta, tb, ba.memref(n), bb.memref(n), 3);
        lat.push(n, us);
        bw.push(n, n as f64 / us);
    }
    Figure {
        id: "tcp",
        title: "TCP/IP over Gigabit Ethernet (baseline)",
        x_label: "message size (bytes)",
        y_label: "latency (us) / bandwidth (MB/s)",
        series: vec![lat, bw],
    }
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1.
pub struct Table1Row {
    pub metric: &'static str,
    pub gm: String,
    pub mx: String,
}

/// Table 1: the summary comparison.
pub fn table1() -> Vec<Table1Row> {
    let f5a = fig5a();
    let gm_k = f5a.series[1].exact(1).unwrap_or(f64::NAN);
    let gm_u = f5a.series[0].exact(1).unwrap_or(f64::NAN);
    let mx_k = f5a.series[3].exact(1).unwrap_or(f64::NAN);
    let mx_u = f5a.series[2].exact(1).unwrap_or(f64::NAN);

    let f7b = fig7(false);
    let buf_gm = f7b.series[0].exact(65536).unwrap_or(f64::NAN);
    let buf_mx = f7b.series[1].exact(65536).unwrap_or(f64::NAN);

    let f7a = fig7(true);
    let dir_gm = f7a.series[0].exact(1 << 20).unwrap_or(f64::NAN);
    let dir_mx = f7a.series[1].exact(1 << 20).unwrap_or(f64::NAN);

    let f8a = fig8a();
    let sg_lat = f8a.series[0].exact(1).unwrap_or(f64::NAN);
    let sm_lat = f8a.series[1].exact(1).unwrap_or(f64::NAN);

    let f8b = fig8b();
    let sg_bw = f8b.series[0].peak();
    let sm_bw = f8b.series[1].peak();

    vec![
        Table1Row {
            metric: "Kernel latency (1B, one-way)",
            gm: format!("{gm_k:.1} us ({gm_u:.1} in user space)"),
            mx: format!("{mx_k:.1} us ({mx_u:.1} in user space)"),
        },
        Table1Row {
            metric: "Buffered remote file access (64kB records)",
            gm: format!("{buf_gm:.0} MB/s (needs physical API patch)"),
            mx: format!(
                "{buf_mx:.0} MB/s (+{:.0} %)",
                (buf_mx / buf_gm - 1.0) * 100.0
            ),
        },
        Table1Row {
            metric: "Direct remote file access (1MB records)",
            gm: format!("{dir_gm:.0} MB/s (needs kernel patching)"),
            mx: format!("{dir_mx:.0} MB/s"),
        },
        Table1Row {
            metric: "0-copy socket latency (1B)",
            gm: format!("{sg_lat:.1} us"),
            mx: format!("{sm_lat:.1} us"),
        },
        Table1Row {
            metric: "0-copy socket peak bandwidth",
            gm: format!("{sg_bw:.0} MB/s ({:.0} % of link)", sg_bw / 5.0),
            mx: format!("{sm_bw:.0} MB/s (+{:.0} %)", (sm_bw / sg_bw - 1.0) * 100.0),
        },
    ]
}

// --------------------------------------------------------------- collectives

/// A cluster with one kernel endpoint per node, all joined into a single
/// collective group — the deployment every collective test, chaos scenario
/// and `BENCH_collectives` mode drives.
pub struct CollFixture {
    pub w: ClusterWorld,
    pub group: knet_coll::GroupId,
    /// Member endpoints, root first (member `i` lives on node `i`).
    pub eps: Vec<knet_core::Endpoint>,
    /// One 64 KiB kernel buffer per node (payload staging for broadcasts).
    pub bufs: Vec<harness::KBuf>,
}

/// Build an `n`-node cluster (GM or MX kernel endpoints, one per node,
/// each bound to its own completion queue) and wire all of them into one
/// collective group with fan-out `fanout`, rooted at node 0.
pub fn coll_fixture(kind: TransportKind, n: usize, fanout: usize) -> CollFixture {
    let frames = 32_768.max(n as u32 * 512);
    let mut w = ClusterBuilder::new()
        .nodes(n, CpuModel::xeon_2600())
        .mem_frames(frames)
        .build();
    let mut eps = Vec::with_capacity(n);
    let mut bufs = Vec::with_capacity(n);
    for i in 0..n {
        let node = NodeId(i as u32);
        let cq = w.new_cq();
        let ep = match kind {
            TransportKind::Gm => w
                .open_gm_cq(node, GmPortConfig::kernel().with_physical_api(), cq)
                .unwrap(),
            TransportKind::Mx => w.open_mx_cq(node, MxEndpointConfig::kernel(), cq).unwrap(),
        };
        eps.push(ep);
        bufs.push(kbuf(&mut w, node, 64 << 10));
    }
    let group = knet_coll::group_create(&mut w, eps[0], fanout).unwrap();
    for &ep in &eps[1..] {
        knet_coll::group_join(&mut w, group, ep).unwrap();
    }
    CollFixture {
        w,
        group,
        eps,
        bufs,
    }
}

//! # knet-zsock — zero-copy socket protocols and the TCP/IP baseline
//!
//! The paper's second in-kernel application (§5.3): SOCKETS-GM and
//! SOCKETS-MX give unmodified socket applications the Myrinet network by
//! adding a socket protocol that bypasses TCP/IP. Both ride the channel
//! API ([`stream`] opens a handler-backed channel per socket and sends
//! every frame through `channel_send`/`channel_post_recv`); the SOCKETS-GM
//! dispatcher-thread penalty and the zero-copy receive steering are where
//! the figure-8 gap comes from. [`tcp`] provides the TCP/IP-over-GigE
//! reference.

pub mod params;
pub mod stream;
pub mod tcp;

pub use params::{TcpParams, ZsockParams};
pub use stream::{
    sock_close, sock_create, sock_on_event, sock_recv, sock_send, Sock, SockId, SockOpId,
    SockResult, SockStats, ZsockLayer, ZsockWorld, SOCK_SLOT_BITS,
};
pub use tcp::{
    tcp_pair, tcp_recv, tcp_send, TcpLayer, TcpOpId, TcpSock, TcpSockId, TcpStats, TcpWorld,
};

//! Zero-copy stream sockets over the kernel network API.
//!
//! SOCKETS-GM and SOCKETS-MX (§5.3) "allow existing applications in binary
//! format to benefit from the high-speed Myrinet network when using TCP/IP
//! socket function calls": a new socket protocol passes data directly onto
//! the network, bypassing TCP/IP.
//!
//! The socket layer is a **channel consumer**: each socket opens a
//! handler-backed channel ([`knet_core::channel_connect_handler`]) over its
//! endpoint pair and moves every message through
//! `channel_send`/`channel_post_recv`/`channel_cancel_recv` — batching,
//! GM coalescing of vectored frames, and send backpressure all live in the
//! channel layer, not here.
//!
//! Wire protocol per message: a 16-byte header (sequence, length); payloads
//! up to the inline threshold ride behind the header in the *same* message
//! as a two-segment io-vector (coalesced by the channel on GM, vectored
//! natively on MX), larger payloads follow as a separate tagged message.
//! When the reader has already blocked in `recv` with a large-enough
//! buffer, the payload is steered **zero-copy** into user memory (the
//! transport pins/registers as its driver requires); otherwise it lands in
//! a kernel socket buffer and is copied out on the next `recv`. Kernel
//! staging comes from a per-socket ring of tracked extents; a payload the
//! ring cannot hold (oversized, or every byte in flight) falls back to a
//! dedicated kernel allocation freed when the bytes land — staging never
//! overwrites in-flight data and never writes past the ring.
//!
//! The SOCKETS-GM peculiarity the paper measures — "limited completion
//! notification mechanisms in GM require the use of an extra (dispatching)
//! kernel thread which increases the latency" — is charged on every event
//! that reaches a GM-backed socket.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use knet_core::api::{
    channel_cancel_recv, channel_close, channel_connect_handler, channel_post_recv, channel_send,
    release_kernel_buffer,
};
use knet_core::{ChannelId, Endpoint, IoVec, MemRef, NetError, TransportEvent, TransportKind};
use knet_simos::{cpu_charge, Asid, VirtAddr};

use crate::params::ZsockParams;

/// Identifier of one socket endpoint.
///
/// Generation-tagged: the low [`SOCK_SLOT_BITS`] bits index the layer's
/// slot table, the high bits carry the slot's generation, bumped on every
/// [`sock_close`]. A close-heavy workload therefore never aliases a stale
/// id onto a recycled slot — the stale id simply stops resolving
/// (regression-tested in `tests/zsock_regressions.rs`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SockId(pub u32);

/// Bits of a [`SockId`] that index the slot table (65 536 concurrent
/// sockets; the remaining 16 bits are the generation).
pub const SOCK_SLOT_BITS: u32 = 16;

impl SockId {
    fn slot(self) -> usize {
        (self.0 & ((1 << SOCK_SLOT_BITS) - 1)) as usize
    }

    fn generation(self) -> u32 {
        self.0 >> SOCK_SLOT_BITS
    }

    fn encode(slot: usize, generation: u32) -> Self {
        assert!(slot < (1 << SOCK_SLOT_BITS), "socket slot table full");
        SockId(((generation & 0xFFFF) << SOCK_SLOT_BITS) | slot as u32)
    }
}

/// Identifier of an in-flight socket operation.
pub type SockOpId = u64;

/// Result of a socket operation: bytes moved.
pub type SockResult = Result<u64, NetError>;

const TAG_HDR_BASE: u64 = 1 << 62;
const TAG_DATA_BASE: u64 = 2 << 62;

/// Per-socket counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SockStats {
    pub sends: u64,
    pub recvs: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub zero_copy_receives: u64,
    pub buffered_receives: u64,
    pub dispatch_wakeups: u64,
    /// Staging requests the ring could not hold (oversized payload or ring
    /// exhausted) served by a dedicated kernel allocation instead.
    pub oversize_allocs: u64,
}

/// A staging reservation: a tracked extent of the socket ring, or a
/// dedicated kernel allocation when the ring cannot hold the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SockBuf {
    Ring { off: u64, len: u64 },
    Heap { addr: VirtAddr, len: u64 },
}

impl SockBuf {
    fn len(&self) -> u64 {
        match *self {
            SockBuf::Ring { len, .. } | SockBuf::Heap { len, .. } => len,
        }
    }
}

/// What a send completion releases and reports.
#[derive(Debug)]
struct TxDone {
    /// The socket op to complete (`None` for header-only frames).
    op: Option<SockOpId>,
    /// Staging to release (header bytes, GM payload copies).
    buf: Option<SockBuf>,
}

/// How an in-flight inbound message will land.
#[derive(Debug)]
enum Inbound {
    /// Steered into a blocked reader's buffer (zero-copy). `dst` is kept so
    /// a payload that overtakes the posted descriptor can still be copied
    /// in.
    Direct { op: SockOpId, len: u64, dst: MemRef },
    /// Landing in kernel staging (ring extent or dedicated allocation).
    ToRing { buf: SockBuf },
}

/// A pending blocked `recv`.
#[derive(Clone, Copy, Debug)]
struct PendingRecv {
    op: SockOpId,
    dst: MemRef,
}

/// One socket endpoint.
pub struct Sock {
    pub id: SockId,
    pub ep: Endpoint,
    pub peer_ep: Endpoint,
    /// Outbound sequence counter.
    tx_seq: u64,
    /// Next inbound sequence to deliver (stream order).
    rx_next: u64,
    /// In-flight inbound messages by sequence.
    inbound: BTreeMap<u64, Inbound>,
    /// Landed but out-of-order segments awaiting their predecessors.
    reorder: BTreeMap<u64, Bytes>,
    /// Sequences whose payload arrived before their header.
    arrived_early: std::collections::BTreeSet<u64>,
    /// Reassembled, in-order bytes waiting for a reader.
    rx_buf: VecDeque<Bytes>,
    rx_buffered: u64,
    /// Readers blocked in `recv`.
    waiting: VecDeque<PendingRecv>,
    /// Kernel socket buffer ring.
    ring: VirtAddr,
    ring_len: u64,
    /// Next-fit cursor into the ring.
    ring_off: u64,
    /// Live ring extents (`offset → len`), so a reservation never
    /// overwrites bytes still in flight.
    ring_live: BTreeMap<u64, u64>,
    /// In-flight sends, slab-indexed by the channel context's pooled slot
    /// ([`knet_core::ctx_slot`]): O(1), allocation-free at the in-flight
    /// high-water mark. Each slot stores the full context value so a
    /// recycled slot can never complete someone else's frame.
    tx_inflight: Vec<Option<(u64, TxDone)>>,
    next_op: u64,
    /// Set when a frame was lost (a send failed after its sequence number
    /// was committed): the stream can never be whole again, so the socket
    /// is poisoned and every subsequent op fails fast with this error.
    error: Option<NetError>,
    /// Completed operations for the driver.
    pub completed: VecDeque<(SockOpId, SockResult)>,
    pub stats: SockStats,
}

impl Sock {
    /// First free ring offset `>= start` with room for `len` bytes, walking
    /// the live extents (which are sorted and disjoint).
    fn fit_from(&self, start: u64, len: u64) -> Option<u64> {
        let mut pos = start;
        for (&off, &l) in &self.ring_live {
            let end = off + l;
            if end <= pos {
                continue;
            }
            if off >= pos + len {
                break; // the gap before this extent fits
            }
            pos = end;
        }
        (pos + len <= self.ring_len).then_some(pos)
    }

    /// Reserve `len` bytes of the ring, next-fit with wrap-around. Returns
    /// `None` when the ring cannot hold the reservation — the caller falls
    /// back to a dedicated allocation; in-flight ring data is never
    /// overwritten and nothing is ever written past the ring.
    fn ring_reserve(&mut self, len: u64) -> Option<SockBuf> {
        if len > self.ring_len {
            return None;
        }
        let off = self
            .fit_from(self.ring_off, len)
            .or_else(|| self.fit_from(0, len))?;
        self.ring_live.insert(off, len);
        self.ring_off = (off + len) % self.ring_len;
        Some(SockBuf::Ring { off, len })
    }

    fn ring_release(&mut self, off: u64) {
        self.ring_live.remove(&off);
    }

    /// Kernel-virtual address of a staging reservation.
    fn addr_of(&self, buf: SockBuf) -> VirtAddr {
        match buf {
            SockBuf::Ring { off, .. } => self.ring.add(off),
            SockBuf::Heap { addr, .. } => addr,
        }
    }

    /// Bytes currently buffered in the kernel (not yet consumed).
    pub fn buffered(&self) -> u64 {
        self.rx_buffered
    }

    /// The error that poisoned this socket, if a send ever failed after
    /// its sequence number was committed to the stream.
    pub fn error(&self) -> Option<NetError> {
        self.error
    }
}

/// All sockets in the world: a slab of slots with a free list and
/// per-slot generations (see [`SockId`]).
#[derive(Default)]
pub struct ZsockLayer {
    pub params: ZsockParams,
    socks: Vec<Option<Sock>>,
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl ZsockLayer {
    pub fn new(params: ZsockParams) -> Self {
        ZsockLayer {
            params,
            socks: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Resolve a socket id, `None` when stale (closed, or the slot was
    /// recycled by a later [`sock_create`]).
    pub fn try_sock(&self, id: SockId) -> Option<&Sock> {
        let slot = id.slot();
        if self.gens.get(slot).copied()? & 0xFFFF != id.generation() {
            return None;
        }
        self.socks.get(slot)?.as_ref()
    }

    fn try_sock_mut(&mut self, id: SockId) -> Option<&mut Sock> {
        let slot = id.slot();
        if self.gens.get(slot).copied()? & 0xFFFF != id.generation() {
            return None;
        }
        self.socks.get_mut(slot)?.as_mut()
    }

    pub fn sock(&self, id: SockId) -> &Sock {
        self.try_sock(id).expect("stale or closed SockId")
    }

    pub fn sock_mut(&mut self, id: SockId) -> &mut Sock {
        self.try_sock_mut(id).expect("stale or closed SockId")
    }

    /// Live (open) sockets.
    pub fn count(&self) -> usize {
        self.socks.iter().flatten().count()
    }
}

/// Capability trait: a world with the socket layer.
pub trait ZsockWorld: knet_core::DispatchWorld {
    fn zsock(&self) -> &ZsockLayer;
    fn zsock_mut(&mut self) -> &mut ZsockLayer;
}

const SOCK_RING: u64 = 4 << 20;

/// Virtual-time grace between [`sock_close`] and the release of the
/// socket's staging memory (see the deferred free in `sock_close`).
const SOCK_CLOSE_GRACE: knet_simcore::SimTime = knet_simcore::SimTime::from_millis(50);

/// The channel carrying this socket's traffic.
fn chan<W: ZsockWorld>(w: &W, sid: SockId) -> ChannelId {
    w.registry()
        .channel_of(w.zsock().sock(sid).ep)
        .expect("socket endpoint owns a channel")
}

/// Reserve `len` bytes of kernel staging: from the socket ring when it
/// fits, otherwise (oversized payload, or every ring byte in flight) a
/// dedicated kernel allocation released with the reservation.
fn stage_alloc<W: ZsockWorld>(w: &mut W, sid: SockId, len: u64) -> Result<SockBuf, NetError> {
    let want = len.max(1);
    if let Some(buf) = w.zsock_mut().sock_mut(sid).ring_reserve(want) {
        return Ok(buf);
    }
    let node = w.zsock().sock(sid).ep.node;
    let addr = w.os_mut().node_mut(node).kalloc(want)?;
    w.zsock_mut().sock_mut(sid).stats.oversize_allocs += 1;
    Ok(SockBuf::Heap { addr, len: want })
}

/// Release a staging reservation (ring extent or dedicated allocation).
fn stage_release<W: ZsockWorld>(w: &mut W, sid: SockId, buf: SockBuf) {
    match buf {
        SockBuf::Ring { off, .. } => w.zsock_mut().sock_mut(sid).ring_release(off),
        SockBuf::Heap { addr, len } => {
            let node = w.zsock().sock(sid).ep.node;
            release_kernel_buffer(w, node, addr, len);
        }
    }
}

/// Create one socket endpoint bound to transport endpoint `ep`, already
/// connected to `peer_ep` (the benchmarks connect explicit pairs, as
/// NETPIPE does). The socket attaches to the API as a handler-backed
/// channel: all of its sends and posted receives go through the channel.
pub fn sock_create<W: ZsockWorld>(
    w: &mut W,
    ep: Endpoint,
    peer_ep: Endpoint,
) -> Result<SockId, NetError> {
    let ring = w.os_mut().node_mut(ep.node).kalloc(SOCK_RING)?;
    let id = {
        let l = w.zsock_mut();
        let slot = match l.free.pop() {
            Some(s) => s as usize,
            None => {
                l.socks.push(None);
                l.gens.push(0);
                l.socks.len() - 1
            }
        };
        SockId::encode(slot, l.gens[slot] & 0xFFFF)
    };
    let sock = Sock {
        id,
        ep,
        peer_ep,
        tx_seq: 0,
        rx_next: 0,
        inbound: BTreeMap::new(),
        reorder: BTreeMap::new(),
        arrived_early: std::collections::BTreeSet::new(),
        rx_buf: VecDeque::new(),
        rx_buffered: 0,
        waiting: VecDeque::new(),
        ring,
        ring_len: SOCK_RING,
        ring_off: 0,
        ring_live: BTreeMap::new(),
        tx_inflight: Vec::new(),
        next_op: 1,
        error: None,
        completed: VecDeque::new(),
        stats: SockStats::default(),
    };
    w.zsock_mut().socks[id.slot()] = Some(sock);
    channel_connect_handler(
        w,
        ep,
        peer_ep,
        &format!("zsock-{}", id.0),
        move |w, _via, ev| sock_on_event(w, id, ev),
    );
    Ok(id)
}

/// Close a socket: tear its channel down (backpressure-queued frames
/// complete as `SendFailed` while the handler is still bound), release
/// every staging reservation still referenced by in-flight state, free the
/// ring, and recycle the slot under a bumped generation — the closed
/// [`SockId`] stops resolving and can never alias a later socket.
/// Closing a stale id is a no-op.
pub fn sock_close<W: ZsockWorld>(w: &mut W, sid: SockId) {
    let Some(ep) = w.zsock().try_sock(sid).map(|s| s.ep) else {
        return;
    };
    // Withdraw the posted receives of in-flight inbound payloads *before*
    // the channel (and then the staging memory) goes away: a payload
    // landing after the ring is freed would scatter into recycled kernel
    // memory.
    let pending_tags: Vec<u64> = w
        .zsock()
        .try_sock(sid)
        .map(|s| s.inbound.keys().map(|seq| TAG_DATA_BASE + seq).collect())
        .unwrap_or_default();
    // Channel teardown next: SendFailed completions for queued frames
    // reach the handler while the socket still exists.
    if let Some(ch) = w.registry().channel_of(ep) {
        for tag in pending_tags {
            channel_cancel_recv(w, ch, tag);
        }
        channel_close(w, ch);
    }
    let Some(sock) = w.zsock_mut().socks[sid.slot()].take() else {
        return;
    };
    let node = sock.ep.node;
    // Dedicated heap staging still in flight dies with the socket.
    let mut heaps: Vec<(VirtAddr, u64)> = Vec::new();
    for entry in sock.tx_inflight.iter().flatten() {
        if let (
            _,
            TxDone {
                buf: Some(SockBuf::Heap { addr, len }),
                ..
            },
        ) = entry
        {
            heaps.push((*addr, *len));
        }
    }
    for inbound in sock.inbound.values() {
        if let Inbound::ToRing {
            buf: SockBuf::Heap { addr, len },
        } = inbound
        {
            heaps.push((*addr, *len));
        }
    }
    // Release the staging memory only after a grace period: a transfer the
    // driver matched mid-assembly is *consumed*, not pending
    // (`t_cancel_recv`'s contract), and keeps scattering chunks into these
    // frames at later instants — an immediate free would let a subsequent
    // kalloc reuse them under the incoming DMA. Slot generations protect
    // the SockId, not the frames; the deferred free does. The grace bound
    // comfortably exceeds the reliability layer's worst case (retry budget
    // × rto plus a full window's wire time), and virtual time is free.
    let ring = sock.ring;
    let ring_len = sock.ring_len;
    knet_simcore::call_after(w, node.0, SOCK_CLOSE_GRACE, move |w: &mut W| {
        for (addr, len) in heaps {
            release_kernel_buffer(w, node, addr, len);
        }
        release_kernel_buffer(w, node, ring, ring_len);
    });
    let l = w.zsock_mut();
    l.gens[sid.slot()] = l.gens[sid.slot()].wrapping_add(1);
    l.free.push(sid.slot() as u32);
}

/// Charge the entry cost of a socket call (syscall + socket layer).
fn charge_call<W: ZsockWorld>(w: &mut W, sid: SockId) {
    let node = w.zsock().sock(sid).ep.node;
    let cost = w.os().node(node).cpu.model.syscall + w.zsock().params.sock_layer;
    cpu_charge(w, node, cost);
}

/// Record an accepted channel send so its `SendDone` releases staging and
/// completes the right op; on submission failure, release immediately and
/// surface the error on `op`.
fn track_send<W: ZsockWorld>(
    w: &mut W,
    sid: SockId,
    sent: Result<u64, NetError>,
    op: Option<SockOpId>,
    buf: Option<SockBuf>,
) {
    match sent {
        Ok(ctx) => {
            let slot = knet_core::ctx_slot(ctx).expect("channel send contexts are pooled");
            let s = w.zsock_mut().sock_mut(sid);
            if s.tx_inflight.len() <= slot {
                s.tx_inflight.resize_with(slot + 1, || None);
            }
            debug_assert!(
                s.tx_inflight[slot].is_none(),
                "slot recycled while in flight"
            );
            s.tx_inflight[slot] = Some((ctx, TxDone { op, buf }));
        }
        Err(e) => {
            if let Some(buf) = buf {
                stage_release(w, sid, buf);
            }
            poison(w, sid, e, op);
        }
    }
}

/// Take the in-flight record of `ctx`, if this socket owns it (full
/// context values are compared, so a recycled pool slot never matches a
/// stale record).
fn tx_take<W: ZsockWorld>(w: &mut W, sid: SockId, ctx: u64) -> Option<TxDone> {
    let slot = knet_core::ctx_slot(ctx)?;
    let s = w.zsock_mut().sock_mut(sid);
    let entry = s.tx_inflight.get_mut(slot)?;
    if entry.as_ref().is_some_and(|(c, _)| *c == ctx) {
        entry.take().map(|(_, t)| t)
    } else {
        None
    }
}

/// A frame was lost after its sequence number was committed — the peer can
/// never reassemble the stream past it. Fail loudly: complete `op`, every
/// reader already parked in `waiting`, and every later op with the error,
/// instead of letting anyone stall.
fn poison<W: ZsockWorld>(w: &mut W, sid: SockId, e: NetError, op: Option<SockOpId>) {
    let s = w.zsock_mut().sock_mut(sid);
    s.error.get_or_insert(e);
    if let Some(op) = op {
        s.completed.push_back((op, Err(e)));
    }
    while let Some(p) = s.waiting.pop_front() {
        s.completed.push_back((p.op, Err(e)));
    }
}

/// Fail an op immediately when the socket is already poisoned. Returns the
/// op id to hand back when it fired.
fn fail_fast_if_poisoned<W: ZsockWorld>(w: &mut W, sid: SockId) -> Option<SockOpId> {
    let s = w.zsock_mut().sock_mut(sid);
    let e = s.error?;
    let op = s.next_op;
    s.next_op += 1;
    s.completed.push_back((op, Err(e)));
    Some(op)
}

/// `send(fd, buf)`: frame and transmit; completes when the transport
/// releases the buffer.
///
/// Protocol shape per backend (what the paper's two implementations did):
/// * payloads up to the inline threshold ride behind the header in one
///   two-segment message — vectored natively on MX, gathered through the
///   channel staging buffer on GM (one accounted memcpy);
/// * larger payloads follow as a separate zero-copy message on MX, while
///   GM copies them into pre-registered kernel staging first — Sockets-GM
///   dodged its "memory registration problems" with copies (§5.3), which
///   is also why it cannot reach the link rate.
pub fn sock_send<W: ZsockWorld>(w: &mut W, sid: SockId, src: MemRef) -> SockOpId {
    charge_call(w, sid);
    if let Some(op) = fail_fast_if_poisoned(w, sid) {
        return op;
    }
    let len = src.len();
    let (op, seq, ep, node) = {
        let s = w.zsock_mut().sock_mut(sid);
        let op = s.next_op;
        s.next_op += 1;
        let seq = s.tx_seq;
        s.tx_seq += 1;
        s.stats.sends += 1;
        s.stats.bytes_sent += len;
        (op, seq, s.ep, s.ep.node)
    };
    let ch = chan(w, sid);
    let params = w.zsock().params;
    let inline_max = match ep.kind {
        TransportKind::Mx => params.inline_max_mx,
        TransportKind::Gm => params.inline_max_gm,
    };
    // Header: [seq, len] little-endian, staged through the ring.
    let mut hdr = [0u8; 16];
    hdr[..8].copy_from_slice(&seq.to_le_bytes());
    hdr[8..].copy_from_slice(&len.to_le_bytes());
    let hbuf = match stage_alloc(w, sid, 16) {
        Ok(b) => b,
        Err(e) => {
            // seq was already committed: the stream has a permanent hole.
            poison(w, sid, e, Some(op));
            return op;
        }
    };
    let hdr_addr = w.zsock().sock(sid).addr_of(hbuf);
    w.os_mut()
        .node_mut(node)
        .write_virt(Asid::KERNEL, hdr_addr, &hdr)
        .expect("sock staging mapped");

    if len <= inline_max {
        // One message: header ++ payload as a two-segment io-vector. The
        // channel coalesces it on GM; MX takes the vector as-is.
        let mut iov = IoVec::new();
        iov.push(MemRef::kernel(hdr_addr, 16));
        iov.push(src);
        let sent = channel_send(w, ch, TAG_HDR_BASE + seq, iov);
        track_send(w, sid, sent, Some(op), Some(hbuf));
        return op;
    }

    // Header first, then the bulk payload.
    let sent = channel_send(
        w,
        ch,
        TAG_HDR_BASE + seq,
        IoVec::single(MemRef::kernel(hdr_addr, 16)),
    );
    track_send(w, sid, sent, None, Some(hbuf));
    let (data_src, dbuf) = match ep.kind {
        TransportKind::Mx => (src, None),
        TransportKind::Gm => {
            // Copy into pre-registered kernel staging; send from there.
            let buf = match stage_alloc(w, sid, len) {
                Ok(b) => b,
                Err(e) => {
                    // The header announcing seq is already out but its data
                    // can never follow: the stream is dead.
                    poison(w, sid, e, Some(op));
                    return op;
                }
            };
            let addr = w.zsock().sock(sid).addr_of(buf);
            let data =
                knet_core::read_iovec(w.os().node(node), &IoVec::single(src)).unwrap_or_default();
            w.os_mut()
                .node_mut(node)
                .write_virt(Asid::KERNEL, addr, &data)
                .expect("sock staging mapped");
            let copy = w.os().node(node).cpu.model.ring_copy_cost(len);
            cpu_charge(w, node, copy);
            (MemRef::kernel(addr, len), Some(buf))
        }
    };
    let sent = channel_send(w, ch, TAG_DATA_BASE + seq, IoVec::single(data_src));
    track_send(w, sid, sent, Some(op), dbuf);
    op
}

/// `recv(fd, buf)`: completes with up to `dst.len()` bytes (stream
/// semantics: any in-order buffered bytes satisfy it immediately).
pub fn sock_recv<W: ZsockWorld>(w: &mut W, sid: SockId, dst: MemRef) -> SockOpId {
    charge_call(w, sid);
    if let Some(op) = fail_fast_if_poisoned(w, sid) {
        return op;
    }
    let op = {
        let s = w.zsock_mut().sock_mut(sid);
        let op = s.next_op;
        s.next_op += 1;
        s.stats.recvs += 1;
        s.waiting.push_back(PendingRecv { op, dst });
        op
    };
    drain_rx(w, sid);
    op
}

/// Move buffered bytes into waiting readers (kernel → user copies).
fn drain_rx<W: ZsockWorld>(w: &mut W, sid: SockId) {
    loop {
        let node = w.zsock().sock(sid).ep.node;
        let (pending, available) = {
            let s = w.zsock().sock(sid);
            (s.waiting.front().copied(), s.rx_buffered)
        };
        let Some(p) = pending else { return };
        if available == 0 {
            return;
        }
        // Copy up to the buffer size from the head of the stream.
        let want = p.dst.len().min(available);
        let mut out: Vec<u8> = Vec::with_capacity(want as usize);
        {
            let s = w.zsock_mut().sock_mut(sid);
            while (out.len() as u64) < want {
                let need = want - out.len() as u64;
                let chunk = s.rx_buf.front_mut().expect("buffered bytes exist");
                if (chunk.len() as u64) <= need {
                    out.extend_from_slice(chunk);
                    s.rx_buf.pop_front();
                } else {
                    out.extend_from_slice(&chunk[..need as usize]);
                    *chunk = chunk.slice(need as usize..);
                }
            }
            s.rx_buffered -= want;
            s.waiting.pop_front();
            s.stats.buffered_receives += 1;
            s.stats.bytes_received += want;
        }
        // Functional copy into the destination + memcpy charge.
        knet_core::write_iovec(w.os_mut().node_mut(node), &IoVec::single(p.dst), &out).ok();
        let copy = w.os().node(node).cpu.model.memcpy_cost(want);
        cpu_charge(w, node, copy);
        let s = w.zsock_mut().sock_mut(sid);
        s.completed.push_back((p.op, Ok(want)));
    }
}

/// Transport upcall for socket `sid` (delivered through its channel's
/// handler consumer).
pub fn sock_on_event<W: ZsockWorld>(w: &mut W, sid: SockId, ev: TransportEvent) {
    // A completion can race a close (e.g. teardown-time SendFailed replay
    // ordering): a stale socket id is simply ignored.
    let Some((node, kind, peer_node)) = w
        .zsock()
        .try_sock(sid)
        .map(|s| (s.ep.node, s.ep.kind, s.peer_ep.node))
    else {
        return;
    };
    if let TransportEvent::PeerDown { peer } = ev {
        // The driver's reliability window declared the peer dead: the
        // stream can never be whole again. Fail every parked reader and
        // all future ops instead of stalling.
        if peer.node == peer_node {
            poison(w, sid, NetError::PeerUnreachable, None);
        }
        return;
    }
    // The SOCKETS-GM dispatcher thread: every completion is picked up by an
    // extra kernel thread before the socket layer sees it.
    if kind == TransportKind::Gm {
        let p = w.zsock().params;
        let cost =
            w.os().node(node).cpu.model.ctx_switch * p.gm_dispatch_switches as u64 + p.gm_interrupt;
        cpu_charge(w, node, cost);
        w.zsock_mut().sock_mut(sid).stats.dispatch_wakeups += 1;
    }
    match ev {
        TransportEvent::Unexpected { tag, data, .. }
            if (TAG_HDR_BASE..TAG_DATA_BASE).contains(&tag) =>
        {
            // A stream header, possibly with the payload inline.
            if data.len() < 16 {
                return;
            }
            let seq = u64::from_le_bytes(data[..8].try_into().unwrap());
            let len = u64::from_le_bytes(data[8..16].try_into().unwrap());
            if data.len() as u64 == 16 + len {
                // Inline payload: consume directly.
                accept_in_order(w, sid, seq, data.slice(16..));
                drain_rx(w, sid);
            } else {
                on_header(w, sid, seq, len);
            }
        }
        TransportEvent::Unexpected { tag, data, .. } if tag >= TAG_DATA_BASE => {
            // The payload overtook its descriptor: the wire delivered it
            // before the host finished processing the header (or before the
            // header itself). Withdraw any now-useless posted receive and
            // land the bytes by copy.
            let seq = tag - TAG_DATA_BASE;
            let ch = chan(w, sid);
            let inbound = w.zsock_mut().sock_mut(sid).inbound.remove(&seq);
            match inbound {
                Some(Inbound::Direct { op, len, dst }) => {
                    channel_cancel_recv(w, ch, TAG_DATA_BASE + seq);
                    let n = (data.len() as u64).min(len);
                    knet_core::write_iovec(w.os_mut().node_mut(node), &IoVec::single(dst), &data)
                        .ok();
                    let copy = w.os().node(node).cpu.model.memcpy_cost(n);
                    cpu_charge(w, node, copy);
                    {
                        let s = w.zsock_mut().sock_mut(sid);
                        s.rx_next = s.rx_next.max(seq + 1);
                        s.stats.buffered_receives += 1;
                        s.stats.bytes_received += n;
                        s.completed.push_back((op, Ok(n)));
                        // The consumed sequence may unblock successors
                        // already parked out of order.
                        promote_reorder(s);
                    }
                    drain_rx(w, sid);
                }
                Some(Inbound::ToRing { buf }) => {
                    channel_cancel_recv(w, ch, TAG_DATA_BASE + seq);
                    stage_release(w, sid, buf);
                    accept_in_order(w, sid, seq, data);
                    drain_rx(w, sid);
                }
                None => {
                    // Payload before header: remember so the header does not
                    // post a receive for data that already landed.
                    w.zsock_mut().sock_mut(sid).arrived_early.insert(seq);
                    accept_in_order(w, sid, seq, data);
                    drain_rx(w, sid);
                }
            }
        }
        TransportEvent::RecvDone { tag, len, .. } if tag >= TAG_DATA_BASE => {
            on_data_landed(w, sid, tag - TAG_DATA_BASE, len);
        }
        TransportEvent::SendDone { ctx } => {
            let done = tx_take(w, sid, ctx);
            if let Some(t) = done {
                if let Some(buf) = t.buf {
                    stage_release(w, sid, buf);
                }
                if let Some(op) = t.op {
                    let s = w.zsock_mut().sock_mut(sid);
                    s.completed.push_back((op, Ok(0)));
                }
            }
        }
        TransportEvent::SendFailed { ctx, error } => {
            // A backpressure-queued frame was dropped by its retry: the
            // stream has a hole the peer can never fill. Release the
            // staging, fail the op, poison the socket.
            let done = tx_take(w, sid, ctx);
            if let Some(t) = done {
                if let Some(buf) = t.buf {
                    stage_release(w, sid, buf);
                }
                poison(w, sid, error, t.op);
            } else {
                poison(w, sid, error, None);
            }
        }
        TransportEvent::RecvDone { .. } | TransportEvent::Unexpected { .. } => {}
        // Streams never join collective groups nor issue RPCs.
        TransportEvent::CollectiveDone { .. }
        | TransportEvent::CollectiveRecv { .. }
        | TransportEvent::CollectiveFailed { .. }
        | TransportEvent::RpcDone { .. } => {}
        TransportEvent::PeerDown { .. } => unreachable!("handled before the dispatcher charge"),
    }
}

/// A header announced `len` bytes with sequence `seq`: decide where the
/// payload will land and post the receive on the channel.
fn on_header<W: ZsockWorld>(w: &mut W, sid: SockId, seq: u64, len: u64) {
    // If the payload already landed (it overtook the header), there is
    // nothing to post.
    if w.zsock_mut().sock_mut(sid).arrived_early.remove(&seq) {
        return;
    }
    let ch = chan(w, sid);
    let can_direct = {
        let s = w.zsock().sock(sid);
        let in_order = seq == s.rx_next && s.rx_buffered == 0 && s.inbound.is_empty();
        let fits = s
            .waiting
            .front()
            .map(|p| p.dst.len() >= len)
            .unwrap_or(false);
        // Sockets-GM never steers into user buffers (registration trouble);
        // everything lands in the ring and is copied out.
        let steer = s.ep.kind == TransportKind::Mx;
        steer && in_order && fits
    };
    if can_direct {
        // Zero-copy: steer into the blocked reader's buffer.
        let p = {
            let s = w.zsock_mut().sock_mut(sid);
            s.waiting.pop_front().expect("checked")
        };
        let dst = clamp_memref(&p.dst, len);
        let _ = channel_post_recv(w, ch, TAG_DATA_BASE + seq, IoVec::single(dst));
        let s = w.zsock_mut().sock_mut(sid);
        s.inbound
            .insert(seq, Inbound::Direct { op: p.op, len, dst });
    } else {
        // Kernel staging path (ring extent, or a dedicated allocation for
        // payloads the ring cannot hold). An allocation failure means the
        // announced frame can never land: the stream is dead — poison the
        // socket (failing any parked readers) rather than crash or stall.
        let buf = match stage_alloc(w, sid, len) {
            Ok(b) => b,
            Err(e) => {
                poison(w, sid, e, None);
                return;
            }
        };
        let addr = w.zsock().sock(sid).addr_of(buf);
        let _ = channel_post_recv(
            w,
            ch,
            TAG_DATA_BASE + seq,
            IoVec::single(MemRef::kernel(addr, buf.len())),
        );
        let s = w.zsock_mut().sock_mut(sid);
        s.inbound.insert(seq, Inbound::ToRing { buf });
    }
}

/// The payload with sequence `seq` finished landing (`got` bytes).
fn on_data_landed<W: ZsockWorld>(w: &mut W, sid: SockId, seq: u64, got: u64) {
    let node = w.zsock().sock(sid).ep.node;
    let inbound = w.zsock_mut().sock_mut(sid).inbound.remove(&seq);
    match inbound {
        Some(Inbound::Direct { op, len, dst: _ }) => {
            let n = got.min(len);
            {
                let s = w.zsock_mut().sock_mut(sid);
                s.rx_next = s.rx_next.max(seq + 1);
                s.stats.zero_copy_receives += 1;
                s.stats.bytes_received += n;
                s.completed.push_back((op, Ok(n)));
                // A zero-copy completion consumes its sequence without
                // passing through `accept_in_order` — promote successors
                // already parked in the reorder map, or a blocked reader
                // stalls forever.
                promote_reorder(s);
            }
            drain_rx(w, sid);
        }
        Some(Inbound::ToRing { buf }) => {
            let n = got.min(buf.len());
            let mut data = vec![0u8; n as usize];
            let addr = w.zsock().sock(sid).addr_of(buf);
            w.os()
                .node(node)
                .read_virt(Asid::KERNEL, addr, &mut data)
                .expect("staging mapped");
            stage_release(w, sid, buf);
            accept_in_order(w, sid, seq, Bytes::from(data));
            drain_rx(w, sid);
        }
        None => {}
    }
}

/// Promote contiguous segments from the reorder map into the in-order
/// stream buffer. Must run every time `rx_next` advances.
fn promote_reorder(s: &mut Sock) {
    while let Some(d) = s.reorder.remove(&s.rx_next) {
        s.rx_buffered += d.len() as u64;
        s.rx_buf.push_back(d);
        s.rx_next += 1;
    }
}

/// Append `data` (sequence `seq`) to the in-order stream buffer.
/// Out-of-order segments (possible on dual-link cards when consecutive
/// messages ride different lanes) wait in a reorder map until the gap
/// closes.
fn accept_in_order<W: ZsockWorld>(w: &mut W, sid: SockId, seq: u64, data: Bytes) {
    let s = w.zsock_mut().sock_mut(sid);
    s.reorder.insert(seq, data);
    promote_reorder(s);
}

fn clamp_memref(m: &MemRef, len: u64) -> MemRef {
    match *m {
        MemRef::UserVirtual { asid, addr, len: l } => MemRef::user(asid, addr, l.min(len)),
        MemRef::KernelVirtual { addr, len: l } => MemRef::kernel(addr, l.min(len)),
        MemRef::Physical { addr, len: l } => MemRef::physical(addr, l.min(len)),
    }
}

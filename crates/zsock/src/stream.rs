//! Zero-copy stream sockets over the kernel network API.
//!
//! SOCKETS-GM and SOCKETS-MX (§5.3) "allow existing applications in binary
//! format to benefit from the high-speed Myrinet network when using TCP/IP
//! socket function calls": a new socket protocol passes data directly onto
//! the network, bypassing TCP/IP.
//!
//! Wire protocol per message: a 16-byte header (sequence, length), then the
//! payload as a separate tagged transport message. When the reader has
//! already blocked in `recv` with a large-enough buffer, the payload is
//! steered **zero-copy** into user memory (the transport pins/registers as
//! its driver requires); otherwise it lands in a kernel socket buffer and is
//! copied out on the next `recv`.
//!
//! The SOCKETS-GM peculiarity the paper measures — "limited completion
//! notification mechanisms in GM require the use of an extra (dispatching)
//! kernel thread which increases the latency" — is charged on every event
//! that reaches a GM-backed socket.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use knet_core::{Endpoint, IoVec, MemRef, NetError, TransportEvent, TransportKind};
use knet_simos::{cpu_charge, Asid, VirtAddr};

use crate::params::ZsockParams;

/// Identifier of one socket endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SockId(pub u32);

/// Identifier of an in-flight socket operation.
pub type SockOpId = u64;

/// Result of a socket operation: bytes moved.
pub type SockResult = Result<u64, NetError>;

const TAG_HDR_BASE: u64 = 1 << 62;
const TAG_DATA_BASE: u64 = 2 << 62;

/// Per-socket counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SockStats {
    pub sends: u64,
    pub recvs: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub zero_copy_receives: u64,
    pub buffered_receives: u64,
    pub dispatch_wakeups: u64,
}

/// How an in-flight inbound message will land.
#[derive(Debug)]
enum Inbound {
    /// Steered into a blocked reader's buffer (zero-copy). `dst` is kept so
    /// a payload that overtakes the posted descriptor can still be copied
    /// in.
    Direct { op: SockOpId, len: u64, dst: MemRef },
    /// Landing in the kernel socket buffer at this ring address.
    ToRing { addr: VirtAddr, len: u64 },
}

/// A pending blocked `recv`.
#[derive(Clone, Copy, Debug)]
struct PendingRecv {
    op: SockOpId,
    dst: MemRef,
}

/// One socket endpoint.
pub struct Sock {
    pub id: SockId,
    pub ep: Endpoint,
    pub peer_ep: Endpoint,
    /// Outbound sequence counter.
    tx_seq: u64,
    /// Next inbound sequence to deliver (stream order).
    rx_next: u64,
    /// In-flight inbound messages by sequence.
    inbound: BTreeMap<u64, Inbound>,
    /// Landed but out-of-order segments awaiting their predecessors.
    reorder: BTreeMap<u64, Bytes>,
    /// Sequences whose payload arrived before their header.
    arrived_early: std::collections::BTreeSet<u64>,
    /// Reassembled, in-order bytes waiting for a reader.
    rx_buf: VecDeque<Bytes>,
    rx_buffered: u64,
    /// Readers blocked in `recv`.
    waiting: VecDeque<PendingRecv>,
    /// Kernel socket buffer ring.
    ring: VirtAddr,
    ring_len: u64,
    ring_off: u64,
    next_op: u64,
    /// Completed operations for the driver.
    pub completed: VecDeque<(SockOpId, SockResult)>,
    pub stats: SockStats,
}

impl Sock {
    fn ring_reserve(&mut self, len: u64) -> VirtAddr {
        debug_assert!(len <= self.ring_len);
        if self.ring_off + len > self.ring_len {
            self.ring_off = 0;
        }
        let a = self.ring.add(self.ring_off);
        self.ring_off += len;
        a
    }

    /// Bytes currently buffered in the kernel (not yet consumed).
    pub fn buffered(&self) -> u64 {
        self.rx_buffered
    }
}

/// All sockets in the world.
#[derive(Default)]
pub struct ZsockLayer {
    pub params: ZsockParams,
    socks: Vec<Sock>,
}

impl ZsockLayer {
    pub fn new(params: ZsockParams) -> Self {
        ZsockLayer {
            params,
            socks: Vec::new(),
        }
    }

    pub fn sock(&self, id: SockId) -> &Sock {
        &self.socks[id.0 as usize]
    }

    pub fn sock_mut(&mut self, id: SockId) -> &mut Sock {
        &mut self.socks[id.0 as usize]
    }

    pub fn count(&self) -> usize {
        self.socks.len()
    }
}

/// Capability trait: a world with the socket layer.
pub trait ZsockWorld: knet_core::DispatchWorld {
    fn zsock(&self) -> &ZsockLayer;
    fn zsock_mut(&mut self) -> &mut ZsockLayer;
}

const SOCK_RING: u64 = 4 << 20;

/// Create one socket endpoint bound to transport endpoint `ep`, already
/// connected to `peer_ep` (the benchmarks connect explicit pairs, as
/// NETPIPE does).
pub fn sock_create<W: ZsockWorld>(
    w: &mut W,
    ep: Endpoint,
    peer_ep: Endpoint,
) -> Result<SockId, NetError> {
    let ring = w.os_mut().node_mut(ep.node).kalloc(SOCK_RING)?;
    let id = SockId(w.zsock().socks.len() as u32);
    w.zsock_mut().socks.push(Sock {
        id,
        ep,
        peer_ep,
        tx_seq: 0,
        rx_next: 0,
        inbound: BTreeMap::new(),
        reorder: BTreeMap::new(),
        arrived_early: std::collections::BTreeSet::new(),
        rx_buf: VecDeque::new(),
        rx_buffered: 0,
        waiting: VecDeque::new(),
        ring,
        ring_len: SOCK_RING,
        ring_off: 0,
        next_op: 1,
        completed: VecDeque::new(),
        stats: SockStats::default(),
    });
    let cid = w
        .registry_mut()
        .register(&format!("zsock-{}", id.0), move |w, _via, ev| {
            sock_on_event(w, id, ev)
        });
    knet_core::api::bind(w, ep, cid);
    Ok(id)
}

/// Charge the entry cost of a socket call (syscall + socket layer).
fn charge_call<W: ZsockWorld>(w: &mut W, sid: SockId) {
    let node = w.zsock().sock(sid).ep.node;
    let cost = w.os().node(node).cpu.model.syscall + w.zsock().params.sock_layer;
    cpu_charge(w, node, cost);
}

/// `send(fd, buf)`: frame and transmit; completes when the transport
/// releases the buffer.
///
/// Protocol shape per backend (what the paper's two implementations did):
/// * **MX**: payloads up to `inline_max_mx` ride *inside* the header
///   message (one message, one completion); larger payloads follow as a
///   separate zero-copy message the receiver steers into the blocked
///   reader's buffer.
/// * **GM**: small payloads inline; everything else is copied into the
///   pre-registered socket ring and sent from there — Sockets-GM dodged its
///   "memory registration problems" with copies (§5.3), which is also why
///   it cannot reach the link rate.
pub fn sock_send<W: ZsockWorld>(w: &mut W, sid: SockId, src: MemRef) -> SockOpId {
    charge_call(w, sid);
    let len = src.len();
    let (op, seq, ep, peer, node) = {
        let s = w.zsock_mut().sock_mut(sid);
        let op = s.next_op;
        s.next_op += 1;
        let seq = s.tx_seq;
        s.tx_seq += 1;
        s.stats.sends += 1;
        s.stats.bytes_sent += len;
        (op, seq, s.ep, s.peer_ep, s.ep.node)
    };
    let params = w.zsock().params.clone();
    let inline_max = match ep.kind {
        TransportKind::Mx => params.inline_max_mx,
        TransportKind::Gm => params.inline_max_gm,
    };
    // Header: [seq, len] little-endian.
    let mut hdr = [0u8; 16];
    hdr[..8].copy_from_slice(&seq.to_le_bytes());
    hdr[8..].copy_from_slice(&len.to_le_bytes());

    if len <= inline_max {
        // One message: header ++ payload, staged through the socket ring.
        let total = 16 + len;
        let hdr_addr = {
            let s = w.zsock_mut().sock_mut(sid);
            s.ring_reserve(total)
        };
        w.os_mut()
            .node_mut(node)
            .write_virt(Asid::KERNEL, hdr_addr, &hdr)
            .expect("sock ring mapped");
        let data =
            knet_core::read_iovec(w.os().node(node), &IoVec::single(src)).unwrap_or_default();
        w.os_mut()
            .node_mut(node)
            .write_virt(Asid::KERNEL, hdr_addr.add(16), &data)
            .expect("sock ring mapped");
        let copy = w.os().node(node).cpu.model.ring_copy_cost(len);
        cpu_charge(w, node, copy);
        let r = w.t_send(
            ep,
            peer,
            TAG_HDR_BASE + seq,
            IoVec::single(MemRef::kernel(hdr_addr, total)),
            op,
        );
        if let Err(e) = r {
            let s = w.zsock_mut().sock_mut(sid);
            s.completed.push_back((op, Err(e)));
        }
        return op;
    }

    // Header first, then the bulk payload.
    let hdr_addr = {
        let s = w.zsock_mut().sock_mut(sid);
        s.ring_reserve(16)
    };
    w.os_mut()
        .node_mut(node)
        .write_virt(Asid::KERNEL, hdr_addr, &hdr)
        .expect("sock ring mapped");
    let _ = w.t_send(
        ep,
        peer,
        TAG_HDR_BASE + seq,
        IoVec::single(MemRef::kernel(hdr_addr, 16)),
        0,
    );
    let data_src = match ep.kind {
        TransportKind::Mx => src,
        TransportKind::Gm => {
            // Copy into the pre-registered ring; send from kernel memory.
            let addr = {
                let s = w.zsock_mut().sock_mut(sid);
                s.ring_reserve(len)
            };
            let data =
                knet_core::read_iovec(w.os().node(node), &IoVec::single(src)).unwrap_or_default();
            w.os_mut()
                .node_mut(node)
                .write_virt(Asid::KERNEL, addr, &data)
                .expect("sock ring mapped");
            let copy = w.os().node(node).cpu.model.ring_copy_cost(len);
            cpu_charge(w, node, copy);
            MemRef::kernel(addr, len)
        }
    };
    let r = w.t_send(ep, peer, TAG_DATA_BASE + seq, IoVec::single(data_src), op);
    if let Err(e) = r {
        let s = w.zsock_mut().sock_mut(sid);
        s.completed.push_back((op, Err(e)));
    }
    op
}

/// `recv(fd, buf)`: completes with up to `dst.len()` bytes (stream
/// semantics: any in-order buffered bytes satisfy it immediately).
pub fn sock_recv<W: ZsockWorld>(w: &mut W, sid: SockId, dst: MemRef) -> SockOpId {
    charge_call(w, sid);
    let op = {
        let s = w.zsock_mut().sock_mut(sid);
        let op = s.next_op;
        s.next_op += 1;
        s.stats.recvs += 1;
        s.waiting.push_back(PendingRecv { op, dst });
        op
    };
    drain_rx(w, sid);
    op
}

/// Move buffered bytes into waiting readers (kernel → user copies).
fn drain_rx<W: ZsockWorld>(w: &mut W, sid: SockId) {
    loop {
        let node = w.zsock().sock(sid).ep.node;
        let (pending, available) = {
            let s = w.zsock().sock(sid);
            (s.waiting.front().copied(), s.rx_buffered)
        };
        let Some(p) = pending else { return };
        if available == 0 {
            return;
        }
        // Copy up to the buffer size from the head of the stream.
        let want = p.dst.len().min(available);
        let mut out: Vec<u8> = Vec::with_capacity(want as usize);
        {
            let s = w.zsock_mut().sock_mut(sid);
            while (out.len() as u64) < want {
                let need = want - out.len() as u64;
                let chunk = s.rx_buf.front_mut().expect("buffered bytes exist");
                if (chunk.len() as u64) <= need {
                    out.extend_from_slice(chunk);
                    s.rx_buf.pop_front();
                } else {
                    out.extend_from_slice(&chunk[..need as usize]);
                    *chunk = chunk.slice(need as usize..);
                }
            }
            s.rx_buffered -= want;
            s.waiting.pop_front();
            s.stats.buffered_receives += 1;
            s.stats.bytes_received += want;
        }
        // Functional copy into the destination + memcpy charge.
        knet_core::write_iovec(w.os_mut().node_mut(node), &IoVec::single(p.dst), &out).ok();
        let copy = w.os().node(node).cpu.model.memcpy_cost(want);
        cpu_charge(w, node, copy);
        let s = w.zsock_mut().sock_mut(sid);
        s.completed.push_back((p.op, Ok(want)));
    }
}

/// Transport upcall for socket `sid`.
pub fn sock_on_event<W: ZsockWorld>(w: &mut W, sid: SockId, ev: TransportEvent) {
    // The SOCKETS-GM dispatcher thread: every completion is picked up by an
    // extra kernel thread before the socket layer sees it.
    let (node, kind) = {
        let s = w.zsock().sock(sid);
        (s.ep.node, s.ep.kind)
    };
    if kind == TransportKind::Gm {
        let p = w.zsock().params.clone();
        let cost =
            w.os().node(node).cpu.model.ctx_switch * p.gm_dispatch_switches as u64 + p.gm_interrupt;
        cpu_charge(w, node, cost);
        w.zsock_mut().sock_mut(sid).stats.dispatch_wakeups += 1;
    }
    match ev {
        TransportEvent::Unexpected { tag, data, .. }
            if (TAG_HDR_BASE..TAG_DATA_BASE).contains(&tag) =>
        {
            // A stream header, possibly with the payload inline.
            if data.len() < 16 {
                return;
            }
            let seq = u64::from_le_bytes(data[..8].try_into().unwrap());
            let len = u64::from_le_bytes(data[8..16].try_into().unwrap());
            if data.len() as u64 == 16 + len {
                // Inline payload: consume directly.
                accept_in_order(w, sid, seq, data.slice(16..));
                drain_rx(w, sid);
            } else {
                on_header(w, sid, seq, len);
            }
        }
        TransportEvent::Unexpected { tag, data, .. } if tag >= TAG_DATA_BASE => {
            // The payload overtook its descriptor: the wire delivered it
            // before the host finished processing the header (or before the
            // header itself). Withdraw any now-useless posted receive and
            // land the bytes by copy.
            let seq = tag - TAG_DATA_BASE;
            let ep = w.zsock().sock(sid).ep;
            let inbound = w.zsock_mut().sock_mut(sid).inbound.remove(&seq);
            match inbound {
                Some(Inbound::Direct { op, len, dst }) => {
                    w.t_cancel_recv(ep, TAG_DATA_BASE + seq);
                    let node = ep.node;
                    let n = (data.len() as u64).min(len);
                    knet_core::write_iovec(w.os_mut().node_mut(node), &IoVec::single(dst), &data)
                        .ok();
                    let copy = w.os().node(node).cpu.model.memcpy_cost(n);
                    cpu_charge(w, node, copy);
                    let s = w.zsock_mut().sock_mut(sid);
                    s.rx_next = s.rx_next.max(seq + 1);
                    s.stats.buffered_receives += 1;
                    s.stats.bytes_received += n;
                    s.completed.push_back((op, Ok(n)));
                    drain_rx(w, sid);
                }
                Some(Inbound::ToRing { .. }) => {
                    w.t_cancel_recv(ep, TAG_DATA_BASE + seq);
                    accept_in_order(w, sid, seq, data);
                    drain_rx(w, sid);
                }
                None => {
                    // Payload before header: remember so the header does not
                    // post a receive for data that already landed.
                    w.zsock_mut().sock_mut(sid).arrived_early.insert(seq);
                    accept_in_order(w, sid, seq, data);
                    drain_rx(w, sid);
                }
            }
        }
        TransportEvent::RecvDone { ctx, len, .. } => {
            on_data_landed(w, sid, ctx, len);
        }
        TransportEvent::SendDone { ctx } => {
            if ctx != 0 {
                let s = w.zsock_mut().sock_mut(sid);
                s.completed.push_back((ctx, Ok(0)));
            }
        }
        TransportEvent::Unexpected { .. } => {}
    }
}

/// A header announced `len` bytes with sequence `seq`: decide where the
/// payload will land and post the receive.
fn on_header<W: ZsockWorld>(w: &mut W, sid: SockId, seq: u64, len: u64) {
    // If the payload already landed (it overtook the header), there is
    // nothing to post.
    if w.zsock_mut().sock_mut(sid).arrived_early.remove(&seq) {
        return;
    }
    let (ep, can_direct) = {
        let s = w.zsock().sock(sid);
        let in_order = seq == s.rx_next && s.rx_buffered == 0 && s.inbound.is_empty();
        let fits = s
            .waiting
            .front()
            .map(|p| p.dst.len() >= len)
            .unwrap_or(false);
        // Sockets-GM never steers into user buffers (registration trouble);
        // everything lands in the ring and is copied out.
        let steer = s.ep.kind == TransportKind::Mx;
        (s.ep, steer && in_order && fits)
    };
    if can_direct {
        // Zero-copy: steer into the blocked reader's buffer.
        let p = {
            let s = w.zsock_mut().sock_mut(sid);
            s.waiting.pop_front().expect("checked")
        };
        let dst = clamp_memref(&p.dst, len);
        let _ = w.t_post_recv(ep, TAG_DATA_BASE + seq, IoVec::single(dst), seq);
        let s = w.zsock_mut().sock_mut(sid);
        s.inbound
            .insert(seq, Inbound::Direct { op: p.op, len, dst });
    } else {
        // Kernel socket buffer path.
        let addr = {
            let s = w.zsock_mut().sock_mut(sid);
            s.ring_reserve(len.max(1))
        };
        let _ = w.t_post_recv(
            ep,
            TAG_DATA_BASE + seq,
            IoVec::single(MemRef::kernel(addr, len)),
            seq,
        );
        let s = w.zsock_mut().sock_mut(sid);
        s.inbound.insert(seq, Inbound::ToRing { addr, len });
    }
}

/// The payload with sequence `seq` finished landing (`got` bytes).
fn on_data_landed<W: ZsockWorld>(w: &mut W, sid: SockId, seq: u64, got: u64) {
    let node = w.zsock().sock(sid).ep.node;
    let inbound = w.zsock_mut().sock_mut(sid).inbound.remove(&seq);
    match inbound {
        Some(Inbound::Direct { op, len, dst: _ }) => {
            let n = got.min(len);
            let s = w.zsock_mut().sock_mut(sid);
            s.rx_next = s.rx_next.max(seq + 1);
            s.stats.zero_copy_receives += 1;
            s.stats.bytes_received += n;
            s.completed.push_back((op, Ok(n)));
        }
        Some(Inbound::ToRing { addr, len }) => {
            let n = got.min(len);
            let mut data = vec![0u8; n as usize];
            w.os()
                .node(node)
                .read_virt(Asid::KERNEL, addr, &mut data)
                .expect("ring mapped");
            accept_in_order(w, sid, seq, Bytes::from(data));
            drain_rx(w, sid);
        }
        None => {}
    }
}

/// Append `data` (sequence `seq`) to the in-order stream buffer.
/// Out-of-order segments (possible on dual-link cards when consecutive
/// messages ride different lanes) wait in a reorder map until the gap
/// closes.
fn accept_in_order<W: ZsockWorld>(w: &mut W, sid: SockId, seq: u64, data: Bytes) {
    let s = w.zsock_mut().sock_mut(sid);
    s.reorder.insert(seq, data);
    while let Some(d) = s.reorder.remove(&s.rx_next) {
        s.rx_buffered += d.len() as u64;
        s.rx_buf.push_back(d);
        s.rx_next += 1;
    }
}

fn clamp_memref(m: &MemRef, len: u64) -> MemRef {
    match *m {
        MemRef::UserVirtual { asid, addr, len: l } => MemRef::user(asid, addr, l.min(len)),
        MemRef::KernelVirtual { addr, len: l } => MemRef::kernel(addr, l.min(len)),
        MemRef::Physical { addr, len: l } => MemRef::physical(addr, l.min(len)),
    }
}

//! The TCP/IP-over-Gigabit-Ethernet baseline.
//!
//! The paper's reference point for the socket comparison (§5.3): the full
//! TCP/IP stack "with fragmentation and checksum computation" whose host
//! processing is known to consume about half of the transaction cost
//! [Sum00], on a commodity GigE wire. Modeled at the socket layer as an
//! explicit cost pipeline (sender stack → wire occupancy → receiver stack)
//! rather than through the Myrinet NIC model — this network has no OS-bypass
//! and no DMA engine the applications can see.

use std::collections::VecDeque;

use bytes::Bytes;
use knet_core::{read_iovec, write_iovec, IoVec, MemRef};
use knet_simcore::{Busy, SimTime};
use knet_simos::{cpu_charge, NodeId, OsWorld};

use crate::params::TcpParams;

/// Identifier of a TCP socket endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TcpSockId(pub u32);

/// Identifier of an in-flight operation.
pub type TcpOpId = u64;

#[derive(Clone, Copy, Debug)]
struct PendingRecv {
    op: TcpOpId,
    dst: MemRef,
}

/// Per-socket counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpStats {
    pub sends: u64,
    pub recvs: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub packets: u64,
}

/// One TCP socket endpoint.
pub struct TcpSock {
    pub id: TcpSockId,
    pub node: NodeId,
    pub peer: Option<TcpSockId>,
    rx: VecDeque<Bytes>,
    rx_buffered: u64,
    waiting: VecDeque<PendingRecv>,
    next_op: u64,
    pub completed: VecDeque<(TcpOpId, u64)>,
    pub stats: TcpStats,
}

/// All TCP state: sockets plus one shared full-duplex GigE wire per
/// direction between each node pair.
pub struct TcpLayer {
    pub params: TcpParams,
    socks: Vec<TcpSock>,
    wires: std::collections::BTreeMap<(u32, u32), Busy>,
}

impl Default for TcpLayer {
    fn default() -> Self {
        Self::new(TcpParams::default())
    }
}

impl TcpLayer {
    pub fn new(params: TcpParams) -> Self {
        TcpLayer {
            params,
            socks: Vec::new(),
            wires: std::collections::BTreeMap::new(),
        }
    }

    pub fn sock(&self, id: TcpSockId) -> &TcpSock {
        &self.socks[id.0 as usize]
    }

    pub fn sock_mut(&mut self, id: TcpSockId) -> &mut TcpSock {
        &mut self.socks[id.0 as usize]
    }
}

/// Capability trait: a world with the TCP baseline.
pub trait TcpWorld: OsWorld {
    fn tcp(&self) -> &TcpLayer;
    fn tcp_mut(&mut self) -> &mut TcpLayer;
}

/// Create a connected pair of TCP sockets between two nodes.
pub fn tcp_pair<W: TcpWorld>(w: &mut W, a: NodeId, b: NodeId) -> (TcpSockId, TcpSockId) {
    let base = w.tcp().socks.len() as u32;
    let (ia, ib) = (TcpSockId(base), TcpSockId(base + 1));
    for (id, node, peer) in [(ia, a, ib), (ib, b, ia)] {
        w.tcp_mut().socks.push(TcpSock {
            id,
            node,
            peer: Some(peer),
            rx: VecDeque::new(),
            rx_buffered: 0,
            waiting: VecDeque::new(),
            next_op: 1,
            completed: VecDeque::new(),
            stats: TcpStats::default(),
        });
    }
    (ia, ib)
}

/// `send(fd, buf)` through the TCP/IP stack.
pub fn tcp_send<W: TcpWorld>(w: &mut W, sid: TcpSockId, src: MemRef) -> TcpOpId {
    let params = w.tcp().params;
    let (node, peer, op) = {
        let s = w.tcp_mut().sock_mut(sid);
        let op = s.next_op;
        s.next_op += 1;
        s.stats.sends += 1;
        s.stats.bytes_sent += src.len();
        s.stats.packets += src.len().div_ceil(params.mtu).max(1);
        (s.node, s.peer.expect("connected"), op)
    };
    let len = src.len();
    let data = read_iovec(w.os().node(node), &IoVec::single(src))
        .map(Bytes::from)
        .unwrap_or_default();
    // Sender stack: copy into skbs, fragment, checksum.
    let host_done = cpu_charge(w, node, params.host_cost(len));
    // Wire occupancy (shared per direction).
    let peer_node = w.tcp().sock(peer).node;
    let wire_end = {
        let now = knet_simcore::now(w);
        let wire = w.tcp_mut().wires.entry((node.0, peer_node.0)).or_default();
        let (_, end) = wire.acquire(host_done.max(now), params.wire_cost(len));
        end
    };
    let arrival = wire_end + params.wire_latency;
    // Receiver stack then delivery. The arrival is the receiver node's
    // event; note the comparison stack's own `wire_latency` is *not*
    // guaranteed to clear the sharded engine's lookahead — a too-small
    // setting surfaces as a typed `CausalityViolation`, never silence.
    knet_simcore::call_at(w, peer_node.0, arrival, move |w: &mut W| {
        let p = w.tcp().params;
        let rx_node = w.tcp().sock(peer).node;
        let done = cpu_charge(w, rx_node, p.host_cost(len));
        knet_simcore::call_at(w, rx_node.0, done, move |w: &mut W| {
            let s = w.tcp_mut().sock_mut(peer);
            s.rx_buffered += data.len() as u64;
            s.rx.push_back(data);
            drain(w, peer);
        });
    });
    // Send completes locally once the stack has copied the buffer.
    knet_simcore::call_at(w, node.0, host_done, move |w: &mut W| {
        let s = w.tcp_mut().sock_mut(sid);
        s.completed.push_back((op, len));
    });
    op
}

/// `recv(fd, buf)`: stream semantics.
pub fn tcp_recv<W: TcpWorld>(w: &mut W, sid: TcpSockId, dst: MemRef) -> TcpOpId {
    let op = {
        let s = w.tcp_mut().sock_mut(sid);
        let op = s.next_op;
        s.next_op += 1;
        s.stats.recvs += 1;
        s.waiting.push_back(PendingRecv { op, dst });
        op
    };
    drain(w, sid);
    op
}

fn drain<W: TcpWorld>(w: &mut W, sid: TcpSockId) {
    loop {
        let node = w.tcp().sock(sid).node;
        let (pending, available) = {
            let s = w.tcp().sock(sid);
            (s.waiting.front().copied(), s.rx_buffered)
        };
        let Some(p) = pending else { return };
        if available == 0 {
            return;
        }
        let want = p.dst.len().min(available);
        let mut out: Vec<u8> = Vec::with_capacity(want as usize);
        {
            let s = w.tcp_mut().sock_mut(sid);
            while (out.len() as u64) < want {
                let need = want - out.len() as u64;
                let chunk = s.rx.front_mut().expect("buffered");
                if (chunk.len() as u64) <= need {
                    out.extend_from_slice(chunk);
                    s.rx.pop_front();
                } else {
                    out.extend_from_slice(&chunk[..need as usize]);
                    *chunk = chunk.slice(need as usize..);
                }
            }
            s.rx_buffered -= want;
            s.waiting.pop_front();
            s.stats.bytes_received += want;
        }
        write_iovec(w.os_mut().node_mut(node), &IoVec::single(p.dst), &out).ok();
        // The copy-to-user is part of host_cost; charge only a small
        // wake-up here.
        cpu_charge(w, node, SimTime::from_nanos(300));
        let s = w.tcp_mut().sock_mut(sid);
        s.completed.push_back((p.op, want));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knet_simcore::{run_to_quiescence, Scheduler, SimWorld};
    use knet_simos::{Asid, CpuModel, OsLayer, Prot};

    struct W {
        sched: Scheduler<W>,
        os: OsLayer,
        tcp: TcpLayer,
    }
    impl SimWorld for W {
        type Ev = knet_simcore::BoxEvent<Self>;
        fn sched(&self) -> &Scheduler<Self> {
            &self.sched
        }
        fn sched_mut(&mut self) -> &mut Scheduler<Self> {
            &mut self.sched
        }
    }
    impl OsWorld for W {
        fn os(&self) -> &OsLayer {
            &self.os
        }
        fn os_mut(&mut self) -> &mut OsLayer {
            &mut self.os
        }
    }
    impl TcpWorld for W {
        fn tcp(&self) -> &TcpLayer {
            &self.tcp
        }
        fn tcp_mut(&mut self) -> &mut TcpLayer {
            &mut self.tcp
        }
    }

    fn world() -> (W, NodeId, NodeId) {
        let mut w = W {
            sched: Scheduler::new(),
            os: OsLayer::new(),
            tcp: TcpLayer::default(),
        };
        let a = w.os.add_node(CpuModel::xeon_2600(), 1024);
        let b = w.os.add_node(CpuModel::xeon_2600(), 1024);
        (w, a, b)
    }

    #[test]
    fn stream_roundtrip_with_partial_reads() {
        let (mut w, a, b) = world();
        let asid = w.os.node_mut(a).create_process();
        let addr = w.os.node_mut(a).map_anon(asid, 65536, Prot::RW).unwrap();
        let basid = w.os.node_mut(b).create_process();
        let baddr = w.os.node_mut(b).map_anon(basid, 65536, Prot::RW).unwrap();
        let (sa, sb) = tcp_pair(&mut w, a, b);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        w.os.node_mut(a).write_virt(asid, addr, &data).unwrap();
        tcp_send(&mut w, sa, MemRef::user(asid, addr, 10_000));
        run_to_quiescence(&mut w);
        // Two partial reads drain the stream.
        let r1 = tcp_recv(&mut w, sb, MemRef::user(basid, baddr, 4_000));
        let r2 = tcp_recv(&mut w, sb, MemRef::user(basid, baddr.add(4_000), 6_000));
        run_to_quiescence(&mut w);
        let done: Vec<_> = w.tcp.sock(sb).completed.iter().cloned().collect();
        assert!(done.contains(&(r1, 4_000)));
        assert!(done.contains(&(r2, 6_000)));
        let mut back = vec![0u8; 10_000];
        w.os.node(b).read_virt(basid, baddr, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn latency_is_commodity_class() {
        let (mut w, a, b) = world();
        let ka = w.os.node_mut(a).kalloc(4096).unwrap();
        let kb = w.os.node_mut(b).kalloc(4096).unwrap();
        let (sa, sb) = tcp_pair(&mut w, a, b);
        let r = tcp_recv(&mut w, sb, MemRef::kernel(kb, 1));
        let t0 = knet_simcore::now(&w);
        w.os.node_mut(a).write_virt(Asid::KERNEL, ka, b"x").unwrap();
        tcp_send(&mut w, sa, MemRef::kernel(ka, 1));
        run_to_quiescence(&mut w);
        assert!(w.tcp.sock(sb).completed.iter().any(|(o, _)| *o == r));
        let one_way = knet_simcore::now(&w) - t0;
        // Tens of microseconds — an order of magnitude above Sockets-MX.
        assert!(
            (18.0..=60.0).contains(&one_way.micros()),
            "GigE one-way = {one_way}"
        );
    }

    #[test]
    fn wire_serializes_per_direction() {
        let (mut w, a, b) = world();
        let ka = w.os.node_mut(a).kalloc(1 << 20).unwrap();
        let kb = w.os.node_mut(b).kalloc(1 << 20).unwrap();
        let (sa, sb) = tcp_pair(&mut w, a, b);
        let t0 = knet_simcore::now(&w);
        tcp_send(&mut w, sa, MemRef::kernel(ka, 1 << 20));
        tcp_send(&mut w, sa, MemRef::kernel(ka, 1 << 20));
        let r1 = tcp_recv(&mut w, sb, MemRef::kernel(kb, 1 << 20));
        let r2 = tcp_recv(&mut w, sb, MemRef::kernel(kb, 1 << 20));
        run_to_quiescence(&mut w);
        assert!(w.tcp.sock(sb).completed.iter().any(|(o, _)| *o == r1));
        assert!(w.tcp.sock(sb).completed.iter().any(|(o, _)| *o == r2));
        let elapsed = knet_simcore::now(&w) - t0;
        // Two 1 MB messages over a 125 MB/s wire: at least ~17 ms of wire
        // time — the shared wire must serialize them.
        assert!(elapsed.millis() >= 16.0, "wire must serialize: {elapsed}");
    }
}

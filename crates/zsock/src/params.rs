//! Socket-layer cost parameters (§5.3).
//!
//! Anchors:
//! * SOCKETS-MX one-way latency ≈ 5 µs — "only a 1 µs overhead over raw MX
//!   latency … since a system call is involved (about 400 ns)";
//! * SOCKETS-GM ≈ 15 µs — GM kernel latency plus the extra *dispatching
//!   kernel thread* its limited completion notification requires;
//! * TCP/IP "is known to use 50 % of the overall transaction cost".

use knet_simcore::{Bandwidth, SimTime};

/// Costs of the zero-copy socket layers.
#[derive(Clone, Copy, Debug)]
pub struct ZsockParams {
    /// Socket-layer bookkeeping per call (after the syscall itself).
    pub sock_layer: SimTime,
    /// Per-incoming-message cost of the SOCKETS-GM dispatcher thread: a
    /// wake-up and a context switch in, then one back out.
    pub gm_dispatch_switches: u32,
    /// Per-event interrupt cost on SOCKETS-GM (its completion notification
    /// is interrupt-driven through the dispatcher thread).
    pub gm_interrupt: SimTime,
    /// Stream header bytes (seq + len).
    pub header_len: u64,
    /// Payloads up to this size ride inline behind the header on MX
    /// (one message instead of two).
    pub inline_max_mx: u64,
    /// Inline threshold for GM.
    pub inline_max_gm: u64,
    /// Flow-control window: bytes in flight per socket.
    pub window: u64,
}

impl Default for ZsockParams {
    fn default() -> Self {
        ZsockParams {
            sock_layer: SimTime::from_nanos(250),
            gm_dispatch_switches: 2,
            gm_interrupt: SimTime::from_micros_f64(2.2),
            header_len: 16,
            inline_max_mx: 4096,
            inline_max_gm: 1024,
            window: 1 << 20,
        }
    }
}

/// The TCP/IP-over-Gigabit-Ethernet baseline model.
#[derive(Clone, Copy, Debug)]
pub struct TcpParams {
    /// Wire rate of the GigE link.
    pub wire_bw: Bandwidth,
    /// MTU (standard Ethernet).
    pub mtu: u64,
    /// One-way wire + switch latency.
    pub wire_latency: SimTime,
    /// Host protocol cost per packet (IP/TCP processing, interrupt share).
    pub per_packet_host: SimTime,
    /// Checksum computation bandwidth (touches every byte).
    pub checksum_bw: Bandwidth,
    /// Fixed per-send and per-receive host cost (syscall + socket).
    pub per_call_host: SimTime,
}

impl Default for TcpParams {
    fn default() -> Self {
        TcpParams {
            wire_bw: Bandwidth::mb_per_sec(125),
            mtu: 1500,
            wire_latency: SimTime::from_micros_f64(12.0),
            per_packet_host: SimTime::from_micros_f64(4.0),
            checksum_bw: Bandwidth::gb_per_sec_f64(0.8),
            per_call_host: SimTime::from_micros_f64(2.0),
        }
    }
}

impl TcpParams {
    /// Host CPU time to push or accept `bytes` through the TCP/IP stack
    /// (fragmentation + checksum + per-packet processing), one side.
    pub fn host_cost(&self, bytes: u64) -> SimTime {
        let packets = bytes.div_ceil(self.mtu).max(1);
        self.per_call_host + self.per_packet_host * packets + self.checksum_bw.transfer_time(bytes)
    }

    /// Wire occupancy of `bytes` (with per-packet framing of 58 bytes).
    pub fn wire_cost(&self, bytes: u64) -> SimTime {
        let packets = bytes.div_ceil(self.mtu).max(1);
        self.wire_bw.transfer_time(bytes + packets * 58)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_host_cost_is_about_half_the_transaction() {
        // §5.3 cites [Sum00]: TCP/IP ≈ 50 % of the overall transaction cost.
        // For a 64 kB transfer: host (both sides) vs wire time.
        let p = TcpParams::default();
        let host = p.host_cost(65536).micros() * 2.0;
        let total = host + p.wire_cost(65536).micros() + p.wire_latency.micros();
        let share = host / total;
        assert!(
            (0.35..=0.6).contains(&share),
            "TCP host share = {share:.2} (paper: ≈0.5)"
        );
    }

    #[test]
    fn tcp_small_message_latency_is_tens_of_microseconds() {
        let p = TcpParams::default();
        let one_way = p.host_cost(1) + p.wire_cost(1) + p.wire_latency + p.host_cost(1);
        assert!(
            (20.0..=60.0).contains(&one_way.micros()),
            "GigE 1-byte one-way = {one_way}"
        );
    }

    #[test]
    fn gige_wire_is_eight_times_slower_than_myrinet_xe() {
        let p = TcpParams::default();
        assert_eq!(p.wire_bw.raw() * 4, 500_000_000);
    }
}

//! Property tests on the memory substrate: address spaces never leak
//! frames, translation is consistent with data access, and the page
//! utilities tile ranges exactly.

use knet_simos::{page_slices, pages_spanned, CpuModel, NodeId, NodeOs, Prot, VirtAddr, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #[test]
    fn page_slices_tile_any_range(addr in 0u64..1 << 30, len in 0u64..1 << 20) {
        let slices: Vec<_> = page_slices(VirtAddr::new(addr), len).collect();
        let total: u64 = slices.iter().map(|s| s.2).sum();
        prop_assert_eq!(total, len);
        prop_assert_eq!(slices.len() as u64, pages_spanned(VirtAddr::new(addr), len));
        // Slices are contiguous and in order.
        let mut cursor = addr;
        for (page, off, n) in slices {
            prop_assert_eq!(page.raw() + off, cursor);
            prop_assert!(off < PAGE_SIZE);
            prop_assert!(n <= PAGE_SIZE - off);
            cursor += n;
        }
        prop_assert_eq!(cursor, addr + len);
    }

    #[test]
    fn map_write_read_unmap_never_leaks(
        sizes in prop::collection::vec(1u64..40 * PAGE_SIZE, 1..10),
        touch in prop::collection::vec((0.0f64..1.0, 1usize..5000), 1..20),
    ) {
        let mut node = NodeOs::new(NodeId(0), CpuModel::xeon_2600(), 4096);
        let asid = node.create_process();
        let mut maps = Vec::new();
        for len in sizes {
            let addr = node.map_anon(asid, len, Prot::RW).unwrap();
            maps.push((addr, len.div_ceil(PAGE_SIZE) * PAGE_SIZE));
        }
        // Random writes/reads inside random mappings round-trip.
        for (frac, len) in touch {
            let (base, mlen) = maps[(frac * maps.len() as f64) as usize % maps.len()];
            let off = ((frac * mlen as f64) as u64).min(mlen - 1);
            let n = (len as u64).min(mlen - off);
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            node.write_virt(asid, base.add(off), &data).unwrap();
            let mut back = vec![0u8; n as usize];
            node.read_virt(asid, base.add(off), &mut back).unwrap();
            prop_assert_eq!(back, data);
        }
        // Translation agrees with contents: write through the space, read
        // through the physical address.
        let (base, _) = maps[0];
        node.write_virt(asid, base, b"xlate").unwrap();
        let segs = node.translate_range(asid, base, 5).unwrap();
        let mut out = Vec::new();
        node.mem.gather(&segs, &mut out).unwrap();
        prop_assert_eq!(&out, b"xlate");
        // Tear everything down: all frames come back.
        for (addr, mlen) in maps {
            let space = node.space_mut(asid).unwrap();
            let mut s = std::mem::take(space);
            s.unmap(&mut node.mem, addr, mlen).unwrap();
            *node.space_mut(asid).unwrap() = s;
        }
        prop_assert_eq!(node.mem.allocated_frames(), 0);
    }

    #[test]
    fn pin_unpin_balances(count in 1u64..30) {
        let mut node = NodeOs::new(NodeId(0), CpuModel::xeon_2600(), 1024);
        let asid = node.create_process();
        let addr = node.map_anon(asid, count * PAGE_SIZE, Prot::RW).unwrap();
        let frames = node.pin_range(asid, addr, count * PAGE_SIZE).unwrap();
        prop_assert_eq!(frames.len() as u64, count);
        // Double pin then release both.
        let frames2 = node.pin_range(asid, addr, count * PAGE_SIZE).unwrap();
        node.unpin_frames(&frames).unwrap();
        for &f in &frames2 {
            prop_assert_eq!(node.mem.pin_count(f), 1);
        }
        node.unpin_frames(&frames2).unwrap();
        for &f in &frames2 {
            prop_assert_eq!(node.mem.pin_count(f), 0);
        }
    }

    /// Fork isolation: child writes never appear in the parent, at any
    /// offset.
    #[test]
    fn fork_isolation(off in 0u64..8 * PAGE_SIZE, val in any::<u8>()) {
        let mut node = NodeOs::new(NodeId(0), CpuModel::xeon_2600(), 1024);
        let asid = node.create_process();
        let len = 8 * PAGE_SIZE + PAGE_SIZE;
        let addr = node.map_anon(asid, len, Prot::RW).unwrap();
        node.write_virt(asid, addr.add(off), &[0xAA]).unwrap();
        // Clone by hand (layer::fork needs a world; NodeOs-level clone).
        let parent_space = std::mem::take(node.space_mut(asid).unwrap());
        let child_space = parent_space.fork_clone(&mut node.mem).unwrap();
        *node.space_mut(asid).unwrap() = parent_space;
        let child = node.create_process();
        *node.space_mut(child).unwrap() = child_space;
        node.write_virt(child, addr.add(off), &[val]).unwrap();
        let mut got = [0u8; 1];
        node.read_virt(asid, addr.add(off), &mut got).unwrap();
        prop_assert_eq!(got[0], 0xAA, "parent unchanged");
        node.read_virt(child, addr.add(off), &mut got).unwrap();
        prop_assert_eq!(got[0], val, "child sees its write");
    }
}

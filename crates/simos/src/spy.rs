//! VMA SPY — the address-space-modification notifier infrastructure.
//!
//! The paper (§3.2) observes that a registration cache in the kernel must
//! learn about `munmap`/`mprotect`/`fork`/exit, but that Linux offered no
//! tracing hook for kernel code; the authors built "a generic infrastructure
//! called VMA SPY allowing any external module to ask for notification of
//! address space modifications". This module is that infrastructure: the
//! mutation entry points in [`crate::layer`] emit a [`VmaEvent`] through the
//! `OsWorld::vma_event` hook after every change, and any interested module
//! (in this repo: the GMKRC registration cache in `knet-core`) subscribes by
//! routing that hook.

use crate::addr::{Asid, VirtAddr};

/// What changed in an address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmaChange {
    /// `[start, start+len)` was unmapped. Cached translations for these pages
    /// are now stale and must be dropped.
    Unmap { start: VirtAddr, len: u64 },
    /// Protection of `[start, start+len)` changed. Cached translations
    /// survive, but write registrations over read-only pages must be dropped.
    Protect { start: VirtAddr, len: u64 },
    /// The space was duplicated into `child`. The child's identical virtual
    /// addresses point at *different* physical pages — the collision hazard
    /// GMKRC's ASID tagging solves.
    Fork { child: Asid },
    /// The process exited; every translation for this space is stale.
    Exit,
}

/// An address-space modification notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmaEvent {
    /// The address space that changed.
    pub asid: Asid,
    pub change: VmaChange,
}

impl VmaEvent {
    pub fn unmap(asid: Asid, start: VirtAddr, len: u64) -> Self {
        VmaEvent {
            asid,
            change: VmaChange::Unmap { start, len },
        }
    }

    pub fn protect(asid: Asid, start: VirtAddr, len: u64) -> Self {
        VmaEvent {
            asid,
            change: VmaChange::Protect { start, len },
        }
    }

    pub fn fork(asid: Asid, child: Asid) -> Self {
        VmaEvent {
            asid,
            change: VmaChange::Fork { child },
        }
    }

    pub fn exit(asid: Asid) -> Self {
        VmaEvent {
            asid,
            change: VmaChange::Exit,
        }
    }

    /// Does this event overlap the byte range `[start, start+len)`?
    /// (`Fork` and `Exit` affect the whole space and always overlap.)
    pub fn overlaps(&self, start: VirtAddr, len: u64) -> bool {
        match self.change {
            VmaChange::Unmap { start: s, len: l } | VmaChange::Protect { start: s, len: l } => {
                let (a0, a1) = (s.raw(), s.raw() + l);
                let (b0, b1) = (start.raw(), start.raw() + len);
                a0 < b1 && b0 < a1
            }
            VmaChange::Fork { .. } | VmaChange::Exit => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_logic() {
        let ev = VmaEvent::unmap(Asid(1), VirtAddr::new(0x1000), 0x1000);
        assert!(ev.overlaps(VirtAddr::new(0x1800), 0x100));
        assert!(ev.overlaps(VirtAddr::new(0x0), 0x1001));
        assert!(!ev.overlaps(VirtAddr::new(0x2000), 0x1000));
        assert!(!ev.overlaps(VirtAddr::new(0x0), 0x1000));
    }

    #[test]
    fn whole_space_events_always_overlap() {
        let f = VmaEvent::fork(Asid(1), Asid(2));
        let e = VmaEvent::exit(Asid(1));
        assert!(f.overlaps(VirtAddr::new(0xdead_0000), 1));
        assert!(e.overlaps(VirtAddr::new(0), 1));
    }
}

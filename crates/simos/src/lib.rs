//! # knet-simos — the simulated host substrate
//!
//! Models the parts of a 2005 Linux node that the paper's argument depends
//! on, functionally (real bytes) plus a calibrated cost model:
//!
//! * **CPU** — memcpy/syscall/pin/context-switch costs ([`cpu::CpuModel`],
//!   three presets matching the paper's machines), serialized through a
//!   per-node busy resource;
//! * **physical memory** — frames with contents, pinning, deferred free
//!   ([`phys::PhysMem`]);
//! * **address spaces** — page tables and VMAs with `mmap`/`munmap`/
//!   `mprotect`/`fork` ([`space::AddressSpace`]);
//! * **page-cache** — pinned, unmapped file pages with dirty tracking
//!   ([`pagecache::PageCache`]);
//! * **VMA SPY** — the address-space-modification notifier the paper adds to
//!   the kernel ([`spy`]), emitted by every mutation entry point in
//!   [`layer`].
//!
//! The kernel uses a direct physical map ([`addr::KERNEL_BASE`]), so
//! kernel-virtual addresses translate by subtraction — the property the MX
//! kernel API's `KernelVirtual` address class exploits.

pub mod addr;
pub mod cpu;
pub mod error;
pub mod layer;
pub mod pagecache;
pub mod phys;
pub mod space;
pub mod spy;

pub use addr::{
    page_slices, pages_spanned, Asid, NodeId, PhysAddr, PhysSeg, VirtAddr, KERNEL_BASE, PAGE_SHIFT,
    PAGE_SIZE, USER_MMAP_BASE,
};
pub use cpu::{Cpu, CpuModel};
pub use error::OsError;
pub use layer::{
    cpu_charge, cpu_run, exit_process, fork, mmap_anon, mprotect, munmap, NodeOs, OsLayer, OsWorld,
    DEFAULT_MEM_FRAMES,
};
pub use pagecache::{CachedPage, PageCache, PageCacheStats, PageKey};
pub use phys::{FrameIdx, FrameState, PhysMem};
pub use space::{AddressSpace, Prot, Vma};
pub use spy::{VmaChange, VmaEvent};

//! Per-process address spaces: page tables and VMAs.
//!
//! User buffers handed to the network live here. The paper's central
//! observation is that the *registration* model (pin + translate + cache in
//! the NIC) was designed for exactly this kind of memory, and fits poorly
//! with everything else an in-kernel client manipulates. The model therefore
//! implements the full life cycle that makes registration hard: mappings can
//! disappear (`munmap`), change protection, or be duplicated by `fork` while
//! the NIC still holds their translations.

use std::collections::BTreeMap;

use crate::addr::{pages_spanned, PhysAddr, PhysSeg, VirtAddr, PAGE_SIZE, USER_MMAP_BASE};
use crate::error::OsError;
use crate::phys::{FrameIdx, FrameState, PhysMem};

/// Page protection bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Prot {
    pub read: bool,
    pub write: bool,
}

impl Prot {
    pub const RW: Prot = Prot {
        read: true,
        write: true,
    };
    pub const RO: Prot = Prot {
        read: true,
        write: false,
    };
}

/// A virtual memory area: a contiguous mapped range with one protection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Vma {
    pub start: VirtAddr,
    pub len: u64,
    pub prot: Prot,
}

impl Vma {
    pub fn end(&self) -> u64 {
        self.start.raw() + self.len
    }

    pub fn contains(&self, a: VirtAddr) -> bool {
        (self.start.raw()..self.end()).contains(&a.raw())
    }
}

#[derive(Clone, Copy, Debug)]
struct Pte {
    frame: FrameIdx,
    prot: Prot,
}

/// A user address space (page table + VMA list).
pub struct AddressSpace {
    table: BTreeMap<u64, Pte>,
    vmas: BTreeMap<u64, Vma>,
    mmap_cursor: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    pub fn new() -> Self {
        AddressSpace {
            table: BTreeMap::new(),
            vmas: BTreeMap::new(),
            mmap_cursor: USER_MMAP_BASE,
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// The VMAs, in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// The VMA containing `addr`, if any.
    pub fn vma_at(&self, addr: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=addr.raw())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(addr))
    }

    /// Map `len` bytes (page-rounded) of fresh anonymous memory; returns the
    /// chosen base address. Frames are allocated eagerly (the model has no
    /// demand paging — the paper's workloads touch everything they map).
    pub fn map_anon(
        &mut self,
        mem: &mut PhysMem,
        len: u64,
        prot: Prot,
    ) -> Result<VirtAddr, OsError> {
        if len == 0 {
            return Err(OsError::BadRange);
        }
        let pages = len.div_ceil(PAGE_SIZE);
        let base = VirtAddr::new(self.mmap_cursor);
        // Keep a guard page between mappings so off-by-one accesses fault.
        self.mmap_cursor += (pages + 1) * PAGE_SIZE;
        for i in 0..pages {
            let frame = mem.alloc(FrameState::Anon)?;
            self.table.insert(base.vpn() + i, Pte { frame, prot });
        }
        self.vmas.insert(
            base.raw(),
            Vma {
                start: base,
                len: pages * PAGE_SIZE,
                prot,
            },
        );
        Ok(base)
    }

    /// Unmap `[start, start+len)` (must be page-aligned). Frames whose pin
    /// count is zero are freed immediately; pinned frames (e.g. still
    /// registered with the NIC) are released when the last pin drops — the
    /// Linux `get_user_pages` life cycle that makes stale NIC translations
    /// dangerous rather than crashing.
    pub fn unmap(&mut self, mem: &mut PhysMem, start: VirtAddr, len: u64) -> Result<(), OsError> {
        if start.page_offset() != 0 || len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(OsError::BadRange);
        }
        let first = start.vpn();
        let last = first + len / PAGE_SIZE - 1;
        // Every page in the range must be mapped (simplification: Linux
        // tolerates holes; our clients never unmap holes).
        for vpn in first..=last {
            if !self.table.contains_key(&vpn) {
                return Err(OsError::Fault);
            }
        }
        for vpn in first..=last {
            let pte = self.table.remove(&vpn).expect("checked above");
            if mem.pin_count(pte.frame) == 0 {
                mem.free(pte.frame)?;
            } else {
                mem.mark_release_on_unpin(pte.frame);
            }
        }
        self.punch_vma_hole(start.raw(), start.raw() + len);
        Ok(())
    }

    /// Remove `[lo, hi)` from the VMA list, splitting areas as needed.
    fn punch_vma_hole(&mut self, lo: u64, hi: u64) {
        let affected: Vec<Vma> = self
            .vmas
            .range(..hi)
            .map(|(_, v)| *v)
            .filter(|v| v.end() > lo)
            .collect();
        for v in affected {
            self.vmas.remove(&v.start.raw());
            if v.start.raw() < lo {
                self.vmas.insert(
                    v.start.raw(),
                    Vma {
                        start: v.start,
                        len: lo - v.start.raw(),
                        prot: v.prot,
                    },
                );
            }
            if v.end() > hi {
                self.vmas.insert(
                    hi,
                    Vma {
                        start: VirtAddr::new(hi),
                        len: v.end() - hi,
                        prot: v.prot,
                    },
                );
            }
        }
    }

    /// Change protection on `[start, start+len)` (page-aligned).
    pub fn protect(&mut self, start: VirtAddr, len: u64, prot: Prot) -> Result<(), OsError> {
        if start.page_offset() != 0 || len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(OsError::BadRange);
        }
        let first = start.vpn();
        let last = first + len / PAGE_SIZE - 1;
        for vpn in first..=last {
            if !self.table.contains_key(&vpn) {
                return Err(OsError::Fault);
            }
        }
        for vpn in first..=last {
            self.table.get_mut(&vpn).expect("checked").prot = prot;
        }
        self.punch_vma_hole(start.raw(), start.raw() + len);
        self.vmas.insert(start.raw(), Vma { start, len, prot });
        Ok(())
    }

    /// Translate one virtual address.
    pub fn translate(&self, addr: VirtAddr) -> Result<PhysAddr, OsError> {
        let pte = self.table.get(&addr.vpn()).ok_or(OsError::Fault)?;
        Ok(pte.frame.base().add(addr.page_offset()))
    }

    /// Translate a byte range into physically contiguous segments (merged).
    pub fn translate_range(&self, addr: VirtAddr, len: u64) -> Result<Vec<PhysSeg>, OsError> {
        let mut segs = Vec::with_capacity(pages_spanned(addr, len) as usize);
        for (page, off, n) in crate::addr::page_slices(addr, len) {
            let pte = self.table.get(&page.vpn()).ok_or(OsError::Fault)?;
            PhysSeg::push_merged(&mut segs, PhysSeg::new(pte.frame.base().add(off), n));
        }
        Ok(segs)
    }

    /// The frame backing the page containing `addr`.
    pub fn frame_of(&self, addr: VirtAddr) -> Result<FrameIdx, OsError> {
        Ok(self.table.get(&addr.vpn()).ok_or(OsError::Fault)?.frame)
    }

    /// Copy bytes out of the space (checks read protection).
    pub fn read(&self, mem: &PhysMem, addr: VirtAddr, buf: &mut [u8]) -> Result<(), OsError> {
        let mut done = 0usize;
        for (page, off, n) in crate::addr::page_slices(addr, buf.len() as u64) {
            let pte = self.table.get(&page.vpn()).ok_or(OsError::Fault)?;
            if !pte.prot.read {
                return Err(OsError::ProtectionViolation);
            }
            mem.read(pte.frame.base().add(off), &mut buf[done..done + n as usize])?;
            done += n as usize;
        }
        Ok(())
    }

    /// Copy bytes into the space (checks write protection).
    pub fn write(&self, mem: &mut PhysMem, addr: VirtAddr, data: &[u8]) -> Result<(), OsError> {
        let mut done = 0usize;
        for (page, off, n) in crate::addr::page_slices(addr, data.len() as u64) {
            let pte = self.table.get(&page.vpn()).ok_or(OsError::Fault)?;
            if !pte.prot.write {
                return Err(OsError::ProtectionViolation);
            }
            mem.write(pte.frame.base().add(off), &data[done..done + n as usize])?;
            done += n as usize;
        }
        Ok(())
    }

    /// Duplicate this space for a forked child: same virtual layout, fresh
    /// frames, contents copied (the model does eager copy instead of COW;
    /// the paper's fork hazard is about *translations*, not copy timing).
    pub fn fork_clone(&self, mem: &mut PhysMem) -> Result<AddressSpace, OsError> {
        let mut child = AddressSpace::new();
        child.mmap_cursor = self.mmap_cursor;
        child.vmas = self.vmas.clone();
        let mut page = vec![0u8; PAGE_SIZE as usize];
        for (&vpn, pte) in &self.table {
            let frame = mem.alloc(FrameState::Anon)?;
            mem.read(pte.frame.base(), &mut page)?;
            mem.write(frame.base(), &page)?;
            child.table.insert(
                vpn,
                Pte {
                    frame,
                    prot: pte.prot,
                },
            );
        }
        Ok(child)
    }

    /// Release everything (process exit).
    pub fn clear(&mut self, mem: &mut PhysMem) {
        for (_, pte) in std::mem::take(&mut self.table) {
            if mem.pin_count(pte.frame) == 0 {
                let _ = mem.free(pte.frame);
            } else {
                mem.mark_release_on_unpin(pte.frame);
            }
        }
        self.vmas.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, AddressSpace) {
        (PhysMem::new(256), AddressSpace::new())
    }

    #[test]
    fn map_translate_roundtrip() {
        let (mut mem, mut sp) = setup();
        let base = sp.map_anon(&mut mem, 3 * PAGE_SIZE, Prot::RW).unwrap();
        assert_eq!(sp.mapped_pages(), 3);
        let p0 = sp.translate(base).unwrap();
        let p1 = sp.translate(base.add(PAGE_SIZE)).unwrap();
        assert_eq!(p0.page_offset(), 0);
        assert_ne!(p0.pfn(), p1.pfn());
        let pmid = sp.translate(base.add(123)).unwrap();
        assert_eq!(pmid.raw(), p0.raw() + 123);
    }

    #[test]
    fn len_rounds_up_to_pages() {
        let (mut mem, mut sp) = setup();
        sp.map_anon(&mut mem, 1, Prot::RW).unwrap();
        assert_eq!(sp.mapped_pages(), 1);
        assert_eq!(sp.vmas().next().unwrap().len, PAGE_SIZE);
    }

    #[test]
    fn rw_through_space() {
        let (mut mem, mut sp) = setup();
        let base = sp.map_anon(&mut mem, 2 * PAGE_SIZE, Prot::RW).unwrap();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        sp.write(&mut mem, base.add(PAGE_SIZE - 100), &data)
            .unwrap();
        let mut back = vec![0u8; 200];
        sp.read(&mem, base.add(PAGE_SIZE - 100), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn protection_is_enforced() {
        let (mut mem, mut sp) = setup();
        let base = sp.map_anon(&mut mem, PAGE_SIZE, Prot::RO).unwrap();
        let mut buf = [0u8; 4];
        assert!(sp.read(&mem, base, &mut buf).is_ok());
        assert_eq!(
            sp.write(&mut mem, base, &buf),
            Err(OsError::ProtectionViolation)
        );
        sp.protect(base, PAGE_SIZE, Prot::RW).unwrap();
        assert!(sp.write(&mut mem, base, &buf).is_ok());
    }

    #[test]
    fn unmap_frees_frames() {
        let (mut mem, mut sp) = setup();
        let base = sp.map_anon(&mut mem, 4 * PAGE_SIZE, Prot::RW).unwrap();
        let before = mem.allocated_frames();
        sp.unmap(&mut mem, base.add(PAGE_SIZE), 2 * PAGE_SIZE)
            .unwrap();
        assert_eq!(mem.allocated_frames(), before - 2);
        assert_eq!(sp.translate(base.add(PAGE_SIZE)), Err(OsError::Fault));
        assert!(sp.translate(base).is_ok());
        assert!(sp.translate(base.add(3 * PAGE_SIZE)).is_ok());
        // VMA was split in two.
        assert_eq!(sp.vmas().count(), 2);
    }

    #[test]
    fn unmap_of_pinned_page_defers_free() {
        let (mut mem, mut sp) = setup();
        let base = sp.map_anon(&mut mem, PAGE_SIZE, Prot::RW).unwrap();
        let frame = sp.frame_of(base).unwrap();
        mem.pin(frame).unwrap();
        let before = mem.allocated_frames();
        sp.unmap(&mut mem, base, PAGE_SIZE).unwrap();
        // Still allocated: the NIC (pinner) keeps it alive.
        assert_eq!(mem.allocated_frames(), before);
        mem.unpin(frame).unwrap();
        // Last pin dropped: now it is gone.
        assert_eq!(mem.allocated_frames(), before - 1);
    }

    #[test]
    fn unmap_unaligned_is_rejected() {
        let (mut mem, mut sp) = setup();
        let base = sp.map_anon(&mut mem, PAGE_SIZE, Prot::RW).unwrap();
        assert_eq!(
            sp.unmap(&mut mem, base.add(1), PAGE_SIZE),
            Err(OsError::BadRange)
        );
        assert_eq!(sp.unmap(&mut mem, base, 100), Err(OsError::BadRange));
    }

    #[test]
    fn translate_range_merges_contiguous_frames() {
        let (mut mem, mut sp) = setup();
        // Fresh allocations from the watermark are physically consecutive.
        let base = sp.map_anon(&mut mem, 4 * PAGE_SIZE, Prot::RW).unwrap();
        let segs = sp.translate_range(base, 4 * PAGE_SIZE).unwrap();
        assert_eq!(segs.len(), 1, "consecutive frames merge into one segment");
        assert_eq!(PhysSeg::total_len(&segs), 4 * PAGE_SIZE);
    }

    #[test]
    fn translate_range_splits_noncontiguous_frames() {
        let (mut mem, mut sp) = setup();
        let a = sp.map_anon(&mut mem, PAGE_SIZE, Prot::RW).unwrap();
        // Burn a frame so the next mapping is not physically adjacent.
        let _hole = mem.alloc(FrameState::Kernel).unwrap();
        let b = sp.map_anon(&mut mem, PAGE_SIZE, Prot::RW).unwrap();
        assert_eq!(b.raw() - a.raw(), 2 * PAGE_SIZE, "guard page in between");
        // A range over both mappings is invalid (guard page faults).
        assert_eq!(
            sp.translate_range(a, 3 * PAGE_SIZE).map(|_| ()),
            Err(OsError::Fault)
        );
        let sa = sp.translate_range(a, PAGE_SIZE).unwrap();
        let sb = sp.translate_range(b, PAGE_SIZE).unwrap();
        assert_ne!(sa[0].addr.pfn() + 1, sb[0].addr.pfn());
    }

    #[test]
    fn fork_clone_copies_contents_to_fresh_frames() {
        let (mut mem, mut sp) = setup();
        let base = sp.map_anon(&mut mem, 2 * PAGE_SIZE, Prot::RW).unwrap();
        sp.write(&mut mem, base, b"parent data").unwrap();
        let child = sp.fork_clone(&mut mem).unwrap();
        // Same virtual address, different physical frame.
        assert_ne!(
            sp.translate(base).unwrap().pfn(),
            child.translate(base).unwrap().pfn()
        );
        let mut buf = [0u8; 11];
        child.read(&mem, base, &mut buf).unwrap();
        assert_eq!(&buf, b"parent data");
        // Writes to the child do not affect the parent.
        child.write(&mut mem, base, b"child  data").unwrap();
        sp.read(&mem, base, &mut buf).unwrap();
        assert_eq!(&buf, b"parent data");
    }

    #[test]
    fn clear_releases_all_frames() {
        let (mut mem, mut sp) = setup();
        sp.map_anon(&mut mem, 8 * PAGE_SIZE, Prot::RW).unwrap();
        sp.clear(&mut mem);
        assert_eq!(mem.allocated_frames(), 0);
        assert_eq!(sp.mapped_pages(), 0);
    }

    #[test]
    fn vma_lookup() {
        let (mut mem, mut sp) = setup();
        let base = sp.map_anon(&mut mem, 2 * PAGE_SIZE, Prot::RW).unwrap();
        assert!(sp.vma_at(base).is_some());
        assert!(sp.vma_at(base.add(2 * PAGE_SIZE - 1)).is_some());
        assert!(sp.vma_at(base.add(2 * PAGE_SIZE)).is_none());
    }
}

//! Address arithmetic: nodes, address spaces, virtual/physical addresses.
//!
//! The model follows the paper's (and 2005 Linux's) memory layout closely:
//!
//! * pages are 4 kB (IA32, as in the paper's testbed);
//! * kernel virtual memory is a *direct map* of physical memory at
//!   [`KERNEL_BASE`] (Linux lowmem), so kernel-virtual → physical translation
//!   is a subtraction — exactly the property the MX kernel API exploits for
//!   the `KernelVirtual` address class;
//! * user virtual memory lives below [`KERNEL_BASE`] and is per-address-space,
//!   so identical user virtual addresses in different processes name different
//!   physical pages — the collision problem GMKRC solves with the 64-bit
//!   pointer/ASID trick (§3.2 of the paper).

use std::fmt;

/// Size of a page in bytes (IA32: 4 kB).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Base of the kernel direct map. Everything at or above this address is
/// kernel-virtual; `kvaddr - KERNEL_BASE` is the physical address.
pub const KERNEL_BASE: u64 = 0xFFFF_8000_0000_0000;

/// Base of the user mmap area in every address space.
pub const USER_MMAP_BASE: u64 = 0x0000_2000_0000_0000;

/// A compute node of the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// An address-space identifier, unique per node. ASID 0 is the kernel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Asid(pub u32);

impl Asid {
    pub const KERNEL: Asid = Asid(0);

    #[inline]
    pub fn is_kernel(self) -> bool {
        self.0 == 0
    }
}

/// A virtual address (user or kernel, disambiguated by [`VirtAddr::is_kernel`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl VirtAddr {
    #[inline]
    pub const fn new(a: u64) -> Self {
        VirtAddr(a)
    }

    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Virtual page number.
    #[inline]
    pub const fn vpn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Whether this address lies in the kernel direct map.
    #[inline]
    pub const fn is_kernel(self) -> bool {
        self.0 >= KERNEL_BASE
    }

    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, delta: u64) -> VirtAddr {
        VirtAddr(self.0 + delta)
    }

    /// Round down to the containing page boundary.
    #[inline]
    pub const fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }
}

impl PhysAddr {
    #[inline]
    pub const fn new(a: u64) -> Self {
        PhysAddr(a)
    }

    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Physical frame number.
    #[inline]
    pub const fn pfn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, delta: u64) -> PhysAddr {
        PhysAddr(self.0 + delta)
    }

    /// The kernel-virtual alias of this physical address (direct map).
    #[inline]
    pub const fn to_kernel_virt(self) -> VirtAddr {
        VirtAddr(self.0 + KERNEL_BASE)
    }
}

impl VirtAddr {
    /// The physical address aliased by a kernel direct-map virtual address.
    /// Returns `None` for user addresses — those need a page-table walk.
    #[inline]
    pub const fn kernel_to_phys(self) -> Option<PhysAddr> {
        if self.is_kernel() {
            Some(PhysAddr(self.0 - KERNEL_BASE))
        } else {
            None
        }
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{:#x}", self.0)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

/// A physically contiguous byte range — the unit the DMA engine consumes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhysSeg {
    pub addr: PhysAddr,
    pub len: u64,
}

impl PhysSeg {
    pub fn new(addr: PhysAddr, len: u64) -> Self {
        PhysSeg { addr, len }
    }

    /// Total bytes across a segment list.
    pub fn total_len(segs: &[PhysSeg]) -> u64 {
        segs.iter().map(|s| s.len).sum()
    }

    /// Append `seg`, merging with the tail when physically contiguous.
    /// Keeping segment lists merged is what lets a single-page or physically
    /// contiguous transfer use one DMA descriptor.
    pub fn push_merged(segs: &mut Vec<PhysSeg>, seg: PhysSeg) {
        if seg.len == 0 {
            return;
        }
        if let Some(last) = segs.last_mut() {
            if last.addr.raw() + last.len == seg.addr.raw() {
                last.len += seg.len;
                return;
            }
        }
        segs.push(seg);
    }
}

/// Iterate the page-aligned slices of `[addr, addr+len)`: yields
/// `(page_base_vaddr, offset_in_page, bytes_in_this_page)`.
pub fn page_slices(addr: VirtAddr, len: u64) -> impl Iterator<Item = (VirtAddr, u64, u64)> {
    let mut cur = addr.raw();
    let end = addr.raw() + len;
    std::iter::from_fn(move || {
        if cur >= end {
            return None;
        }
        let base = cur & !(PAGE_SIZE - 1);
        let off = cur - base;
        let n = (PAGE_SIZE - off).min(end - cur);
        cur += n;
        Some((VirtAddr(base), off, n))
    })
}

/// Number of pages spanned by `[addr, addr+len)`.
pub fn pages_spanned(addr: VirtAddr, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = addr.vpn();
    let last = VirtAddr(addr.raw() + len - 1).vpn();
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let a = VirtAddr::new(0x12345);
        assert_eq!(a.vpn(), 0x12);
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(a.page_base(), VirtAddr::new(0x12000));
    }

    #[test]
    fn kernel_direct_map_roundtrip() {
        let p = PhysAddr::new(0x42_1000);
        let v = p.to_kernel_virt();
        assert!(v.is_kernel());
        assert_eq!(v.kernel_to_phys(), Some(p));
        assert_eq!(VirtAddr::new(0x1000).kernel_to_phys(), None);
    }

    #[test]
    fn page_slices_cover_range_exactly() {
        let addr = VirtAddr::new(PAGE_SIZE - 100);
        let slices: Vec<_> = page_slices(addr, 300).collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0], (VirtAddr::new(0), PAGE_SIZE - 100, 100));
        assert_eq!(slices[1], (VirtAddr::new(PAGE_SIZE), 0, 200));
        let total: u64 = slices.iter().map(|s| s.2).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn page_slices_empty_range() {
        assert_eq!(page_slices(VirtAddr::new(123), 0).count(), 0);
    }

    #[test]
    fn pages_spanned_counts_straddles() {
        assert_eq!(pages_spanned(VirtAddr::new(0), 1), 1);
        assert_eq!(pages_spanned(VirtAddr::new(0), PAGE_SIZE), 1);
        assert_eq!(pages_spanned(VirtAddr::new(0), PAGE_SIZE + 1), 2);
        assert_eq!(pages_spanned(VirtAddr::new(PAGE_SIZE - 1), 2), 2);
        assert_eq!(pages_spanned(VirtAddr::new(4), 0), 0);
    }

    #[test]
    fn phys_segments_merge_when_contiguous() {
        let mut segs = Vec::new();
        PhysSeg::push_merged(&mut segs, PhysSeg::new(PhysAddr::new(0x1000), 0x1000));
        PhysSeg::push_merged(&mut segs, PhysSeg::new(PhysAddr::new(0x2000), 0x1000));
        PhysSeg::push_merged(&mut segs, PhysSeg::new(PhysAddr::new(0x9000), 0x100));
        PhysSeg::push_merged(&mut segs, PhysSeg::new(PhysAddr::new(0xA000), 0));
        assert_eq!(
            segs,
            vec![
                PhysSeg::new(PhysAddr::new(0x1000), 0x2000),
                PhysSeg::new(PhysAddr::new(0x9000), 0x100),
            ]
        );
        assert_eq!(PhysSeg::total_len(&segs), 0x2100);
    }
}

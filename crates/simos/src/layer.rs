//! The per-node OS state and the `OsWorld` capability trait.
//!
//! [`NodeOs`] bundles one node's CPU, physical memory, address spaces and
//! page-cache. [`OsLayer`] holds all nodes. Address-space mutations go
//! through the free functions at the bottom of this module so that every
//! change emits a VMA SPY notification through [`OsWorld::vma_event`].

use std::collections::BTreeMap;

use knet_simcore::{SimTime, SimWorld};

use crate::addr::{Asid, NodeId, PhysSeg, VirtAddr, PAGE_SIZE};
use crate::cpu::{Cpu, CpuModel};
use crate::error::OsError;
use crate::pagecache::PageCache;
use crate::phys::{FrameIdx, FrameState, PhysMem};
use crate::space::{AddressSpace, Prot};
use crate::spy::VmaEvent;

/// Default installed memory: 64k frames = 256 MB (contents are lazy, so this
/// is cheap; the paper's nodes had 2 GB).
pub const DEFAULT_MEM_FRAMES: u32 = 65_536;

/// One node's operating system state.
pub struct NodeOs {
    pub node: NodeId,
    pub cpu: Cpu,
    pub mem: PhysMem,
    pub page_cache: PageCache,
    spaces: BTreeMap<u32, AddressSpace>,
    next_asid: u32,
}

impl NodeOs {
    pub fn new(node: NodeId, model: CpuModel, mem_frames: u32) -> Self {
        NodeOs {
            node,
            cpu: Cpu::new(model),
            mem: PhysMem::new(mem_frames),
            page_cache: PageCache::new(),
            spaces: BTreeMap::new(),
            next_asid: 1, // ASID 0 is the kernel
        }
    }

    /// Create a user process (a fresh address space); returns its ASID.
    pub fn create_process(&mut self) -> Asid {
        let asid = Asid(self.next_asid);
        self.next_asid += 1;
        self.spaces.insert(asid.0, AddressSpace::new());
        asid
    }

    pub fn space(&self, asid: Asid) -> Result<&AddressSpace, OsError> {
        self.spaces.get(&asid.0).ok_or(OsError::NoSuchSpace)
    }

    pub fn space_mut(&mut self, asid: Asid) -> Result<&mut AddressSpace, OsError> {
        self.spaces.get_mut(&asid.0).ok_or(OsError::NoSuchSpace)
    }

    pub fn live_processes(&self) -> usize {
        self.spaces.len()
    }

    /// Allocate `len` bytes of physically contiguous, implicitly pinned
    /// kernel memory; returns its kernel-virtual (direct map) address.
    pub fn kalloc(&mut self, len: u64) -> Result<VirtAddr, OsError> {
        let pages = len.div_ceil(PAGE_SIZE).max(1) as u32;
        let first = self.mem.alloc_contig(pages, FrameState::Kernel)?;
        Ok(first.base().to_kernel_virt())
    }

    /// Free kernel memory allocated with [`NodeOs::kalloc`].
    pub fn kfree(&mut self, addr: VirtAddr, len: u64) -> Result<(), OsError> {
        let phys = addr.kernel_to_phys().ok_or(OsError::WrongAddressClass)?;
        if phys.page_offset() != 0 {
            return Err(OsError::BadRange);
        }
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        for i in 0..pages {
            self.mem
                .free(FrameIdx::from_phys(phys.add(i * PAGE_SIZE)))?;
        }
        Ok(())
    }

    /// Translate a virtual range into physical segments. Kernel addresses use
    /// the direct map (one contiguous segment); user addresses walk the page
    /// table of `asid`.
    pub fn translate_range(
        &self,
        asid: Asid,
        addr: VirtAddr,
        len: u64,
    ) -> Result<Vec<PhysSeg>, OsError> {
        if addr.is_kernel() {
            let p = addr.kernel_to_phys().expect("checked kernel");
            Ok(vec![PhysSeg::new(p, len)])
        } else if asid.is_kernel() {
            Err(OsError::WrongAddressClass)
        } else {
            self.space(asid)?.translate_range(addr, len)
        }
    }

    /// Read from a virtual range (kernel direct map or user space).
    pub fn read_virt(&self, asid: Asid, addr: VirtAddr, buf: &mut [u8]) -> Result<(), OsError> {
        if addr.is_kernel() {
            let p = addr.kernel_to_phys().expect("checked kernel");
            self.mem.read(p, buf)
        } else {
            self.space(asid)?.read(&self.mem, addr, buf)
        }
    }

    /// Write to a virtual range (kernel direct map or user space).
    pub fn write_virt(&mut self, asid: Asid, addr: VirtAddr, data: &[u8]) -> Result<(), OsError> {
        if addr.is_kernel() {
            let p = addr.kernel_to_phys().expect("checked kernel");
            self.mem.write(p, data)
        } else {
            let space = self.spaces.get(&asid.0).ok_or(OsError::NoSuchSpace)?;
            space.write(&mut self.mem, addr, data)
        }
    }

    /// Pin the user pages backing `[addr, addr+len)`; returns their frames.
    /// Kernel direct-map memory needs no pinning and returns an empty list.
    pub fn pin_range(
        &mut self,
        asid: Asid,
        addr: VirtAddr,
        len: u64,
    ) -> Result<Vec<FrameIdx>, OsError> {
        if addr.is_kernel() {
            return Ok(Vec::new());
        }
        let space = self.spaces.get(&asid.0).ok_or(OsError::NoSuchSpace)?;
        let mut frames = Vec::new();
        for (page, _, _) in crate::addr::page_slices(addr, len) {
            frames.push(space.frame_of(page)?);
        }
        for &f in &frames {
            self.mem.pin(f)?;
        }
        Ok(frames)
    }

    /// Unpin previously pinned frames.
    pub fn unpin_frames(&mut self, frames: &[FrameIdx]) -> Result<(), OsError> {
        for &f in frames {
            self.mem.unpin(f)?;
        }
        Ok(())
    }

    /// `mmap` anonymous memory without emitting a VMA SPY event. Mapping
    /// *creation* never invalidates cached translations, so no notification
    /// is needed — this is also why the world-level [`mmap_anon`] exists
    /// only for symmetry with the notifying mutators.
    pub fn map_anon(&mut self, asid: Asid, len: u64, prot: Prot) -> Result<VirtAddr, OsError> {
        let mut space = std::mem::take(self.space_mut(asid)?);
        let r = space.map_anon(&mut self.mem, len, prot);
        *self.space_mut(asid)? = space;
        r
    }
}

/// All nodes' OS state.
#[derive(Default)]
pub struct OsLayer {
    nodes: Vec<NodeOs>,
}

impl OsLayer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, model: CpuModel, mem_frames: u32) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeOs::new(id, model, mem_frames));
        id
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn node(&self, id: NodeId) -> &NodeOs {
        &self.nodes[id.0 as usize]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeOs {
        &mut self.nodes[id.0 as usize]
    }

    pub fn try_node(&self, id: NodeId) -> Result<&NodeOs, OsError> {
        self.nodes.get(id.0 as usize).ok_or(OsError::NoSuchNode)
    }
}

/// Capability trait: a world containing the OS layer.
///
/// `vma_event` is the VMA SPY notifier chain; the default implementation
/// drops notifications (fine for worlds without registration caches — the
/// composed `ClusterWorld` routes them to every subscribed cache).
pub trait OsWorld: SimWorld {
    fn os(&self) -> &OsLayer;
    fn os_mut(&mut self) -> &mut OsLayer;

    /// VMA SPY hook: called after every address-space modification.
    fn vma_event(&mut self, _node: NodeId, _ev: VmaEvent) {}
}

/// Reserve `dur` of CPU time on `node` starting now; returns the instant the
/// work completes. Concurrent host work on one node serializes through this.
pub fn cpu_charge<W: OsWorld>(w: &mut W, node: NodeId, dur: SimTime) -> SimTime {
    let now = knet_simcore::now(w);
    let (_, end) = w.os_mut().node_mut(node).cpu.busy.acquire(now, dur);
    end
}

/// Reserve CPU time, then run `f` when it completes. The continuation is a
/// node-local event on `node` — it executes on whichever shard owns it.
pub fn cpu_run<W: OsWorld>(
    w: &mut W,
    node: NodeId,
    dur: SimTime,
    f: impl FnOnce(&mut W) + Send + 'static,
) {
    let end = cpu_charge(w, node, dur);
    knet_simcore::call_at(w, node.0, end, f);
}

/// `mmap` anonymous memory in a process.
pub fn mmap_anon<W: OsWorld>(
    w: &mut W,
    node: NodeId,
    asid: Asid,
    len: u64,
) -> Result<VirtAddr, OsError> {
    w.os_mut().node_mut(node).map_anon(asid, len, Prot::RW)
}

/// `munmap`: unmap and notify the VMA SPY chain.
pub fn munmap<W: OsWorld>(
    w: &mut W,
    node: NodeId,
    asid: Asid,
    start: VirtAddr,
    len: u64,
) -> Result<(), OsError> {
    {
        let os = w.os_mut().node_mut(node);
        let mut space = std::mem::take(os.space_mut(asid)?);
        let r = space.unmap(&mut os.mem, start, len);
        *os.space_mut(asid)? = space;
        r?;
    }
    w.vma_event(node, VmaEvent::unmap(asid, start, len));
    Ok(())
}

/// `mprotect`: change protection and notify the VMA SPY chain.
pub fn mprotect<W: OsWorld>(
    w: &mut W,
    node: NodeId,
    asid: Asid,
    start: VirtAddr,
    len: u64,
    prot: Prot,
) -> Result<(), OsError> {
    w.os_mut()
        .node_mut(node)
        .space_mut(asid)?
        .protect(start, len, prot)?;
    w.vma_event(node, VmaEvent::protect(asid, start, len));
    Ok(())
}

/// `fork`: duplicate the address space; returns the child's ASID and
/// notifies the VMA SPY chain.
pub fn fork<W: OsWorld>(w: &mut W, node: NodeId, asid: Asid) -> Result<Asid, OsError> {
    let child = {
        let os = w.os_mut().node_mut(node);
        let space = std::mem::take(os.space_mut(asid)?);
        let cloned = space.fork_clone(&mut os.mem);
        *os.space_mut(asid)? = space;
        let cloned = cloned?;
        let child = os.create_process();
        *os.space_mut(child)? = cloned;
        child
    };
    w.vma_event(node, VmaEvent::fork(asid, child));
    Ok(child)
}

/// Process exit: release the address space and notify the VMA SPY chain.
pub fn exit_process<W: OsWorld>(w: &mut W, node: NodeId, asid: Asid) -> Result<(), OsError> {
    {
        let os = w.os_mut().node_mut(node);
        let mut space = std::mem::take(os.space_mut(asid)?);
        space.clear(&mut os.mem);
        os.spaces.remove(&asid.0);
    }
    w.vma_event(node, VmaEvent::exit(asid));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use knet_simcore::Scheduler;

    struct TestWorld {
        sched: Scheduler<TestWorld>,
        os: OsLayer,
        spied: Vec<(NodeId, VmaEvent)>,
    }

    impl SimWorld for TestWorld {
        type Ev = knet_simcore::BoxEvent<Self>;
        fn sched(&self) -> &Scheduler<Self> {
            &self.sched
        }
        fn sched_mut(&mut self) -> &mut Scheduler<Self> {
            &mut self.sched
        }
    }

    impl OsWorld for TestWorld {
        fn os(&self) -> &OsLayer {
            &self.os
        }
        fn os_mut(&mut self) -> &mut OsLayer {
            &mut self.os
        }
        fn vma_event(&mut self, node: NodeId, ev: VmaEvent) {
            self.spied.push((node, ev));
        }
    }

    fn world() -> (TestWorld, NodeId) {
        let mut w = TestWorld {
            sched: Scheduler::new(),
            os: OsLayer::new(),
            spied: Vec::new(),
        };
        let n = w.os.add_node(CpuModel::xeon_2600(), 1024);
        (w, n)
    }

    #[test]
    fn kalloc_is_direct_mapped_and_contiguous() {
        let (mut w, n) = world();
        let va = w.os.node_mut(n).kalloc(3 * PAGE_SIZE).unwrap();
        assert!(va.is_kernel());
        let segs =
            w.os.node(n)
                .translate_range(Asid::KERNEL, va, 3 * PAGE_SIZE)
                .unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 3 * PAGE_SIZE);
        w.os.node_mut(n).kfree(va, 3 * PAGE_SIZE).unwrap();
        assert_eq!(w.os.node(n).mem.allocated_frames(), 0);
    }

    #[test]
    fn kernel_rw_through_direct_map() {
        let (mut w, n) = world();
        let va = w.os.node_mut(n).kalloc(PAGE_SIZE).unwrap();
        w.os.node_mut(n)
            .write_virt(Asid::KERNEL, va.add(100), b"kernel bytes")
            .unwrap();
        let mut buf = [0u8; 12];
        w.os.node(n)
            .read_virt(Asid::KERNEL, va.add(100), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"kernel bytes");
    }

    #[test]
    fn user_rw_through_layer() {
        let (mut w, n) = world();
        let asid = w.os.node_mut(n).create_process();
        let va = mmap_anon(&mut w, n, asid, 2 * PAGE_SIZE).unwrap();
        w.os.node_mut(n)
            .write_virt(asid, va.add(10), b"user bytes")
            .unwrap();
        let mut buf = [0u8; 10];
        w.os.node(n).read_virt(asid, va.add(10), &mut buf).unwrap();
        assert_eq!(&buf, b"user bytes");
    }

    #[test]
    fn munmap_emits_spy_event() {
        let (mut w, n) = world();
        let asid = w.os.node_mut(n).create_process();
        let va = mmap_anon(&mut w, n, asid, PAGE_SIZE).unwrap();
        munmap(&mut w, n, asid, va, PAGE_SIZE).unwrap();
        assert_eq!(w.spied.len(), 1);
        assert_eq!(w.spied[0].1, VmaEvent::unmap(asid, va, PAGE_SIZE));
    }

    #[test]
    fn failed_munmap_emits_nothing() {
        let (mut w, n) = world();
        let asid = w.os.node_mut(n).create_process();
        let r = munmap(&mut w, n, asid, VirtAddr::new(0x5000), PAGE_SIZE);
        assert_eq!(r, Err(OsError::Fault));
        assert!(w.spied.is_empty());
    }

    #[test]
    fn fork_emits_spy_event_and_creates_space() {
        let (mut w, n) = world();
        let asid = w.os.node_mut(n).create_process();
        let va = mmap_anon(&mut w, n, asid, PAGE_SIZE).unwrap();
        w.os.node_mut(n).write_virt(asid, va, b"abc").unwrap();
        let child = fork(&mut w, n, asid).unwrap();
        assert_ne!(child, asid);
        assert_eq!(w.spied.last().unwrap().1, VmaEvent::fork(asid, child));
        let mut buf = [0u8; 3];
        w.os.node(n).read_virt(child, va, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        // Same virtual address, different physical page.
        let pp = w.os.node(n).space(asid).unwrap().translate(va).unwrap();
        let cp = w.os.node(n).space(child).unwrap().translate(va).unwrap();
        assert_ne!(pp.pfn(), cp.pfn());
    }

    #[test]
    fn exit_releases_memory_and_notifies() {
        let (mut w, n) = world();
        let asid = w.os.node_mut(n).create_process();
        mmap_anon(&mut w, n, asid, 4 * PAGE_SIZE).unwrap();
        exit_process(&mut w, n, asid).unwrap();
        assert_eq!(w.os.node(n).mem.allocated_frames(), 0);
        assert_eq!(w.spied.last().unwrap().1, VmaEvent::exit(asid));
        assert!(w.os.node(n).space(asid).is_err());
    }

    #[test]
    fn cpu_charges_serialize() {
        let (mut w, n) = world();
        let t1 = cpu_charge(&mut w, n, SimTime::from_micros(10));
        let t2 = cpu_charge(&mut w, n, SimTime::from_micros(5));
        assert_eq!(t1, SimTime::from_micros(10));
        assert_eq!(t2, SimTime::from_micros(15));
    }

    #[test]
    fn pin_range_pins_each_page() {
        let (mut w, n) = world();
        let asid = w.os.node_mut(n).create_process();
        let va = mmap_anon(&mut w, n, asid, 3 * PAGE_SIZE).unwrap();
        let frames =
            w.os.node_mut(n)
                .pin_range(asid, va.add(100), 2 * PAGE_SIZE)
                .unwrap();
        assert_eq!(frames.len(), 3, "unaligned 2-page range spans 3 pages");
        for &f in &frames {
            assert_eq!(w.os.node(n).mem.pin_count(f), 1);
        }
        w.os.node_mut(n).unpin_frames(&frames).unwrap();
        assert_eq!(w.os.node(n).mem.pin_count(frames[0]), 0);
    }

    #[test]
    fn kernel_addresses_need_no_pin() {
        let (mut w, n) = world();
        let va = w.os.node_mut(n).kalloc(PAGE_SIZE).unwrap();
        let frames =
            w.os.node_mut(n)
                .pin_range(Asid::KERNEL, va, PAGE_SIZE)
                .unwrap();
        assert!(frames.is_empty());
    }

    #[test]
    fn translate_range_rejects_kernel_asid_for_user_addr() {
        let (w, n) = world();
        let r =
            w.os.node(n)
                .translate_range(Asid::KERNEL, VirtAddr::new(0x1000), 16);
        assert_eq!(r.map(|_| ()), Err(OsError::WrongAddressClass));
    }
}

//! OS-substrate error type.

use std::fmt;

/// Errors surfaced by the simulated memory subsystem.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OsError {
    /// No free physical frames.
    OutOfMemory,
    /// Physical address outside installed memory.
    BadPhysAddr,
    /// Access to a frame that is not allocated.
    UseAfterFree,
    /// Freeing a frame twice.
    DoubleFree,
    /// Freeing a frame that is pinned.
    FramePinned,
    /// Unpinning a frame that is not pinned.
    NotPinned,
    /// Virtual address not mapped in the address space.
    Fault,
    /// Unknown address space.
    NoSuchSpace,
    /// Unknown node.
    NoSuchNode,
    /// Address range overflows or is malformed.
    BadRange,
    /// Operation requires a user address but got a kernel one (or vice versa).
    WrongAddressClass,
    /// Write to a read-only mapping.
    ProtectionViolation,
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OsError::OutOfMemory => "out of physical memory",
            OsError::BadPhysAddr => "physical address out of range",
            OsError::UseAfterFree => "access to freed frame",
            OsError::DoubleFree => "frame freed twice",
            OsError::FramePinned => "frame is pinned",
            OsError::NotPinned => "frame is not pinned",
            OsError::Fault => "page fault: address not mapped",
            OsError::NoSuchSpace => "unknown address space",
            OsError::NoSuchNode => "unknown node",
            OsError::BadRange => "malformed address range",
            OsError::WrongAddressClass => "wrong address class",
            OsError::ProtectionViolation => "write to read-only mapping",
        };
        f.write_str(s)
    }
}

impl std::error::Error for OsError {}

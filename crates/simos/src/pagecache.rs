//! The page-cache: cached copies of file pages in host memory.
//!
//! As §2.3.1 of the paper explains, page-cache pages are the memory an
//! in-kernel file-system client actually hands to the network: they are
//! *already pinned*, generally *not mapped* into any virtual address space,
//! and their *physical* address is trivially available to kernel code. This
//! is the mismatch with registration-based network APIs that motivates the
//! physical-address primitives.

use std::collections::BTreeMap;

use crate::error::OsError;
use crate::phys::{FrameIdx, FrameState, PhysMem};

/// Identity of a cached file page: `(mount, inode, page index)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PageKey {
    pub mount: u32,
    pub inode: u32,
    pub index: u64,
}

/// One cached page.
#[derive(Clone, Copy, Debug)]
pub struct CachedPage {
    pub frame: FrameIdx,
    /// Contains data newer than the backing store.
    pub dirty: bool,
    /// Contains valid data (false while a read is in flight).
    pub uptodate: bool,
}

/// Statistics the figure harness and tests read.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserted: u64,
    pub evicted: u64,
}

/// A node's page-cache. Deterministic iteration order (BTreeMap) keeps the
/// simulation reproducible when flushing dirty pages.
#[derive(Default)]
pub struct PageCache {
    pages: BTreeMap<PageKey, CachedPage>,
    pub stats: PageCacheStats,
}

impl PageCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Look a page up, counting a hit or miss.
    pub fn lookup(&mut self, key: PageKey) -> Option<CachedPage> {
        match self.pages.get(&key) {
            Some(p) => {
                self.stats.hits += 1;
                Some(*p)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look a page up without touching statistics.
    pub fn peek(&self, key: PageKey) -> Option<CachedPage> {
        self.pages.get(&key).copied()
    }

    /// Allocate and insert a page for `key`. The frame is pinned: page-cache
    /// pages are locked in physical memory (paper §2.3.1).
    pub fn insert(&mut self, mem: &mut PhysMem, key: PageKey) -> Result<CachedPage, OsError> {
        debug_assert!(!self.pages.contains_key(&key), "page already cached");
        let frame = mem.alloc(FrameState::PageCache(key.mount, key.inode, key.index))?;
        mem.pin(frame)?;
        let page = CachedPage {
            frame,
            dirty: false,
            uptodate: false,
        };
        self.pages.insert(key, page);
        self.stats.inserted += 1;
        Ok(page)
    }

    /// Mark a page up-to-date (read completed).
    pub fn mark_uptodate(&mut self, key: PageKey) {
        if let Some(p) = self.pages.get_mut(&key) {
            p.uptodate = true;
        }
    }

    /// Mark a page dirty (buffered write touched it).
    pub fn mark_dirty(&mut self, key: PageKey) {
        if let Some(p) = self.pages.get_mut(&key) {
            p.dirty = true;
            p.uptodate = true;
        }
    }

    /// Clear the dirty bit (write-back completed).
    pub fn clear_dirty(&mut self, key: PageKey) {
        if let Some(p) = self.pages.get_mut(&key) {
            p.dirty = false;
        }
    }

    /// Evict a page, unpinning and freeing its frame. Dirty pages must be
    /// written back first.
    pub fn evict(&mut self, mem: &mut PhysMem, key: PageKey) -> Result<(), OsError> {
        let page = self.pages.remove(&key).ok_or(OsError::Fault)?;
        debug_assert!(!page.dirty, "evicting a dirty page loses data");
        mem.unpin(page.frame)?;
        mem.free(page.frame)?;
        self.stats.evicted += 1;
        Ok(())
    }

    /// Evict every page of a file (e.g. on O_DIRECT open or unlink).
    pub fn evict_file(
        &mut self,
        mem: &mut PhysMem,
        mount: u32,
        inode: u32,
    ) -> Result<u64, OsError> {
        let keys: Vec<PageKey> = self
            .pages
            .range(
                PageKey {
                    mount,
                    inode,
                    index: 0,
                }..=PageKey {
                    mount,
                    inode,
                    index: u64::MAX,
                },
            )
            .map(|(k, _)| *k)
            .collect();
        let mut n = 0;
        for k in keys {
            if let Some(p) = self.pages.get_mut(&k) {
                p.dirty = false; // caller is responsible for write-back
            }
            self.evict(mem, k)?;
            n += 1;
        }
        Ok(n)
    }

    /// The dirty pages of a file, in index order.
    pub fn dirty_pages(&self, mount: u32, inode: u32) -> Vec<(PageKey, FrameIdx)> {
        self.pages
            .range(
                PageKey {
                    mount,
                    inode,
                    index: 0,
                }..=PageKey {
                    mount,
                    inode,
                    index: u64::MAX,
                },
            )
            .filter(|(_, p)| p.dirty)
            .map(|(k, p)| (*k, p.frame))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey {
            mount: 1,
            inode: 7,
            index: i,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut mem = PhysMem::new(16);
        let mut pc = PageCache::new();
        assert!(pc.lookup(key(0)).is_none());
        pc.insert(&mut mem, key(0)).unwrap();
        assert!(pc.lookup(key(0)).is_some());
        assert_eq!(pc.stats.misses, 1);
        assert_eq!(pc.stats.hits, 1);
    }

    #[test]
    fn pages_are_pinned_on_insert() {
        let mut mem = PhysMem::new(16);
        let mut pc = PageCache::new();
        let p = pc.insert(&mut mem, key(3)).unwrap();
        assert_eq!(mem.pin_count(p.frame), 1);
        assert!(matches!(
            mem.state_of(p.frame),
            FrameState::PageCache(1, 7, 3)
        ));
        // Pinned: a stray free must fail.
        assert_eq!(mem.free(p.frame), Err(OsError::FramePinned));
    }

    #[test]
    fn dirty_tracking() {
        let mut mem = PhysMem::new(16);
        let mut pc = PageCache::new();
        pc.insert(&mut mem, key(0)).unwrap();
        pc.insert(&mut mem, key(2)).unwrap();
        pc.insert(&mut mem, key(1)).unwrap();
        pc.mark_dirty(key(2));
        pc.mark_dirty(key(0));
        let dirty = pc.dirty_pages(1, 7);
        assert_eq!(dirty.len(), 2);
        assert_eq!(dirty[0].0.index, 0, "deterministic index order");
        assert_eq!(dirty[1].0.index, 2);
        pc.clear_dirty(key(0));
        assert_eq!(pc.dirty_pages(1, 7).len(), 1);
    }

    #[test]
    fn dirty_pages_scopes_by_file() {
        let mut mem = PhysMem::new(16);
        let mut pc = PageCache::new();
        pc.insert(&mut mem, key(0)).unwrap();
        let other = PageKey {
            mount: 1,
            inode: 8,
            index: 0,
        };
        pc.insert(&mut mem, other).unwrap();
        pc.mark_dirty(key(0));
        pc.mark_dirty(other);
        assert_eq!(pc.dirty_pages(1, 7).len(), 1);
        assert_eq!(pc.dirty_pages(1, 8).len(), 1);
        assert_eq!(pc.dirty_pages(2, 7).len(), 0);
    }

    #[test]
    fn evict_releases_frame() {
        let mut mem = PhysMem::new(16);
        let mut pc = PageCache::new();
        let p = pc.insert(&mut mem, key(0)).unwrap();
        pc.evict(&mut mem, key(0)).unwrap();
        assert_eq!(mem.allocated_frames(), 0);
        assert_eq!(mem.pin_count(p.frame), 0);
        assert_eq!(pc.stats.evicted, 1);
    }

    #[test]
    fn evict_file_clears_every_page() {
        let mut mem = PhysMem::new(64);
        let mut pc = PageCache::new();
        for i in 0..10 {
            pc.insert(&mut mem, key(i)).unwrap();
        }
        pc.mark_dirty(key(4));
        let n = pc.evict_file(&mut mem, 1, 7).unwrap();
        assert_eq!(n, 10);
        assert!(pc.is_empty());
        assert_eq!(mem.allocated_frames(), 0);
    }

    #[test]
    fn uptodate_transitions() {
        let mut mem = PhysMem::new(16);
        let mut pc = PageCache::new();
        let p = pc.insert(&mut mem, key(0)).unwrap();
        assert!(!p.uptodate);
        pc.mark_uptodate(key(0));
        assert!(pc.peek(key(0)).unwrap().uptodate);
    }
}

//! Host CPU cost models.
//!
//! Every host-side cost in the reproduction is derived from one of these
//! parameters; they are calibrated against the numbers the paper reports
//! (Figure 1b for memcpy, §5.3 for the syscall cost, etc.). The three presets
//! correspond to the machines the paper mentions: the dual-Xeon testbed nodes
//! and the two CPUs of the Figure 1b copy comparison.

use knet_simcore::{Bandwidth, Busy, SimTime};

/// A host CPU's cost parameters.
#[derive(Clone, Debug)]
pub struct CpuModel {
    /// Human-readable name (appears in figure legends).
    pub name: &'static str,
    /// Large-copy bandwidth for cache-warm application copies (Figure 1b).
    pub memcpy_bw: Bandwidth,
    /// Fixed startup of a memcpy call (call + loop setup).
    pub memcpy_startup: SimTime,
    /// Copy bandwidth to/from DMA rings: cache-cold, write-combined memory,
    /// measurably slower than a warm application copy on 2005 hardware.
    pub ring_copy_bw: Bandwidth,
    /// Cost of entering and leaving the kernel (the paper quotes ≈400 ns).
    pub syscall: SimTime,
    /// Pinning one page (`get_user_pages`-equivalent).
    pub pin_page: SimTime,
    /// Unpinning one page.
    pub unpin_page: SimTime,
    /// Walking the VFS layers for one file-system call (ORFS pays this,
    /// user-space ORFA does not — §3.2).
    pub vfs_call: SimTime,
    /// Waking and switching to another kernel thread (the SOCKETS-GM
    /// dispatcher thread pays two of these per message — §5.3).
    pub ctx_switch: SimTime,
    /// One programmed-I/O word write to the NIC (doorbells, tiny payloads).
    pub pio_write: SimTime,
    /// Page-table walk to translate one user page in software.
    pub soft_translate_page: SimTime,
}

impl CpuModel {
    /// 2.6 GHz Xeon — the paper's testbed node CPU.
    pub fn xeon_2600() -> Self {
        CpuModel {
            name: "Xeon 2.6GHz",
            memcpy_bw: Bandwidth::gb_per_sec_f64(2.6),
            memcpy_startup: SimTime::from_nanos(80),
            ring_copy_bw: Bandwidth::gb_per_sec_f64(1.4),
            syscall: SimTime::from_nanos(400),
            pin_page: SimTime::from_nanos(350),
            unpin_page: SimTime::from_nanos(200),
            vfs_call: SimTime::from_nanos(900),
            ctx_switch: SimTime::from_micros_f64(2.5),
            pio_write: SimTime::from_nanos(60),
            soft_translate_page: SimTime::from_nanos(150),
        }
    }

    /// 2.6 GHz Pentium 4 — the faster copy curve of Figure 1b.
    pub fn p4_2600() -> Self {
        CpuModel {
            name: "P4 2.6GHz",
            ..Self::xeon_2600()
        }
    }

    /// 1.2 GHz Pentium III — the slower copy curve of Figure 1b.
    pub fn p3_1200() -> Self {
        CpuModel {
            name: "P3 1.2GHz",
            memcpy_bw: Bandwidth::gb_per_sec_f64(1.05),
            memcpy_startup: SimTime::from_nanos(150),
            ring_copy_bw: Bandwidth::gb_per_sec_f64(0.7),
            syscall: SimTime::from_nanos(700),
            pin_page: SimTime::from_nanos(600),
            unpin_page: SimTime::from_nanos(350),
            vfs_call: SimTime::from_micros_f64(1.6),
            ctx_switch: SimTime::from_micros_f64(4.5),
            pio_write: SimTime::from_nanos(110),
            soft_translate_page: SimTime::from_nanos(260),
        }
    }

    /// Cost of a cache-warm memcpy of `bytes` (Figure 1b "Copy" curves).
    pub fn memcpy_cost(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.memcpy_startup + self.memcpy_bw.transfer_time(bytes)
    }

    /// Cost of copying `bytes` to or from a NIC DMA ring.
    pub fn ring_copy_cost(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.memcpy_startup + self.ring_copy_bw.transfer_time(bytes)
    }

    /// Cost of pinning `pages` pages of user memory.
    pub fn pin_cost(&self, pages: u64) -> SimTime {
        self.pin_page * pages
    }

    /// Cost of unpinning `pages` pages.
    pub fn unpin_cost(&self, pages: u64) -> SimTime {
        self.unpin_page * pages
    }
}

/// A host CPU: a cost model plus a serially-reusable execution resource.
///
/// All host-side work (copies, syscall service, protocol handlers) reserves
/// time on the CPU, so concurrent activities on one node contend realistically.
#[derive(Clone, Debug)]
pub struct Cpu {
    pub model: CpuModel,
    pub busy: Busy,
}

impl Cpu {
    pub fn new(model: CpuModel) -> Self {
        Cpu {
            model,
            busy: Busy::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_cost_matches_figure_1b_anchors() {
        // Figure 1b: a 256 kB copy costs ≈100 µs on the P4 2.6 GHz and
        // ≈250 µs on the P3 1.2 GHz.
        let p4 = CpuModel::p4_2600().memcpy_cost(256 * 1024);
        let p3 = CpuModel::p3_1200().memcpy_cost(256 * 1024);
        assert!(
            (90.0..=115.0).contains(&p4.micros()),
            "P4 256kB copy = {p4}"
        );
        assert!(
            (230.0..=270.0).contains(&p3.micros()),
            "P3 256kB copy = {p3}"
        );
        assert!(p3 > p4 * 2, "P3 is less than half the speed of the P4");
    }

    #[test]
    fn zero_byte_copies_are_free() {
        let m = CpuModel::xeon_2600();
        assert_eq!(m.memcpy_cost(0), SimTime::ZERO);
        assert_eq!(m.ring_copy_cost(0), SimTime::ZERO);
    }

    #[test]
    fn ring_copies_are_slower_than_warm_copies() {
        let m = CpuModel::xeon_2600();
        assert!(m.ring_copy_cost(32 * 1024) > m.memcpy_cost(32 * 1024));
    }

    #[test]
    fn pin_costs_scale_with_pages() {
        let m = CpuModel::xeon_2600();
        assert_eq!(m.pin_cost(10), m.pin_page * 10);
        assert_eq!(m.unpin_cost(0), SimTime::ZERO);
    }

    #[test]
    fn syscall_cost_matches_paper() {
        // §5.3: "a system call is involved (about 400 ns)".
        assert_eq!(CpuModel::xeon_2600().syscall.nanos(), 400);
    }
}

//! Physical memory: frames holding real bytes.
//!
//! The simulation is functional — every payload byte that crosses the network
//! is read from and written to these frames, so zero-copy paths can be
//! verified end-to-end as data-integrity properties.

use crate::addr::{PhysAddr, PhysSeg, PAGE_SIZE};
use crate::error::OsError;

/// Index of a physical frame; the frame's physical address is
/// `idx * PAGE_SIZE` (i.e. the index is the PFN).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FrameIdx(pub u32);

impl FrameIdx {
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 as u64 * PAGE_SIZE)
    }

    #[inline]
    pub fn from_phys(p: PhysAddr) -> FrameIdx {
        FrameIdx(p.pfn() as u32)
    }
}

/// What a frame is currently used for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FrameState {
    #[default]
    Free,
    /// Anonymous memory of a user address space.
    Anon,
    /// Kernel memory (direct-mapped, implicitly pinned).
    Kernel,
    /// A page-cache page: `(mount, inode, page index)`.
    PageCache(u32, u32, u64),
}

struct Frame {
    /// Lazily allocated contents; `None` reads as zeroes until first write.
    data: Option<Box<[u8; PAGE_SIZE as usize]>>,
    pin: u32,
    state: FrameState,
    /// Set when the owning mapping disappeared while the frame was pinned
    /// (e.g. `munmap` of a NIC-registered buffer): the frame is freed when
    /// the last pin drops, mirroring `put_page` semantics.
    release_on_unpin: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            data: None,
            pin: 0,
            state: FrameState::Free,
            release_on_unpin: false,
        }
    }
}

/// A node's physical memory.
pub struct PhysMem {
    frames: Vec<Frame>,
    /// Recycled single frames.
    free: Vec<FrameIdx>,
    /// Watermark for never-yet-allocated frames (supports contiguous runs).
    watermark: u32,
    allocated: u32,
}

impl PhysMem {
    /// A memory of `frames` page frames (contents are lazily materialized, so
    /// a large memory costs nothing until touched).
    pub fn new(frames: u32) -> Self {
        let mut v = Vec::with_capacity(frames as usize);
        v.resize_with(frames as usize, Frame::empty);
        PhysMem {
            frames: v,
            free: Vec::new(),
            watermark: 0,
            allocated: 0,
        }
    }

    /// Total frames.
    pub fn total_frames(&self) -> u32 {
        self.frames.len() as u32
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u32 {
        self.allocated
    }

    /// Allocate one frame.
    pub fn alloc(&mut self, state: FrameState) -> Result<FrameIdx, OsError> {
        debug_assert!(state != FrameState::Free);
        let idx = if let Some(idx) = self.free.pop() {
            idx
        } else if (self.watermark as usize) < self.frames.len() {
            let idx = FrameIdx(self.watermark);
            self.watermark += 1;
            idx
        } else {
            return Err(OsError::OutOfMemory);
        };
        let f = &mut self.frames[idx.0 as usize];
        f.state = state;
        f.pin = 0;
        f.data = None;
        f.release_on_unpin = false;
        self.allocated += 1;
        Ok(idx)
    }

    /// Allocate `n` physically contiguous frames (kernel buffers, DMA rings).
    pub fn alloc_contig(&mut self, n: u32, state: FrameState) -> Result<FrameIdx, OsError> {
        debug_assert!(state != FrameState::Free && n > 0);
        if self.watermark as usize + n as usize > self.frames.len() {
            return Err(OsError::OutOfMemory);
        }
        let first = FrameIdx(self.watermark);
        for i in 0..n {
            let f = &mut self.frames[(self.watermark + i) as usize];
            f.state = state;
            f.pin = 0;
            f.data = None;
        }
        self.watermark += n;
        self.allocated += n;
        Ok(first)
    }

    /// Free a frame. Pinned frames cannot be freed.
    pub fn free(&mut self, idx: FrameIdx) -> Result<(), OsError> {
        let f = self
            .frames
            .get_mut(idx.0 as usize)
            .ok_or(OsError::BadPhysAddr)?;
        if f.state == FrameState::Free {
            return Err(OsError::DoubleFree);
        }
        if f.pin > 0 {
            return Err(OsError::FramePinned);
        }
        f.state = FrameState::Free;
        f.data = None;
        self.allocated -= 1;
        self.free.push(idx);
        Ok(())
    }

    pub fn state_of(&self, idx: FrameIdx) -> FrameState {
        self.frames
            .get(idx.0 as usize)
            .map(|f| f.state)
            .unwrap_or(FrameState::Free)
    }

    pub fn pin_count(&self, idx: FrameIdx) -> u32 {
        self.frames.get(idx.0 as usize).map(|f| f.pin).unwrap_or(0)
    }

    /// Pin a frame in memory (it cannot be freed while pinned).
    pub fn pin(&mut self, idx: FrameIdx) -> Result<(), OsError> {
        let f = self
            .frames
            .get_mut(idx.0 as usize)
            .ok_or(OsError::BadPhysAddr)?;
        if f.state == FrameState::Free {
            return Err(OsError::UseAfterFree);
        }
        f.pin += 1;
        Ok(())
    }

    /// Release one pin. If the mapping that owned the frame is already gone
    /// (see [`PhysMem::mark_release_on_unpin`]) and this was the last pin,
    /// the frame is freed.
    pub fn unpin(&mut self, idx: FrameIdx) -> Result<(), OsError> {
        let f = self
            .frames
            .get_mut(idx.0 as usize)
            .ok_or(OsError::BadPhysAddr)?;
        if f.pin == 0 {
            return Err(OsError::NotPinned);
        }
        f.pin -= 1;
        if f.pin == 0 && f.release_on_unpin {
            f.release_on_unpin = false;
            self.free(idx)?;
        }
        Ok(())
    }

    /// Mark a pinned frame for release when its last pin drops. Used by
    /// `munmap`/process exit when the NIC still holds a registration on the
    /// page — the Linux `get_user_pages`/`put_page` life cycle.
    pub fn mark_release_on_unpin(&mut self, idx: FrameIdx) {
        if let Some(f) = self.frames.get_mut(idx.0 as usize) {
            debug_assert!(f.pin > 0, "only pinned frames can defer their free");
            f.release_on_unpin = true;
        }
    }

    fn check_span(&self, addr: PhysAddr, len: u64) -> Result<(), OsError> {
        if len == 0 {
            return Ok(());
        }
        let first = addr.pfn();
        let last = PhysAddr::new(addr.raw() + len - 1).pfn();
        for pfn in first..=last {
            let f = self.frames.get(pfn as usize).ok_or(OsError::BadPhysAddr)?;
            if f.state == FrameState::Free {
                return Err(OsError::UseAfterFree);
            }
        }
        Ok(())
    }

    /// Read bytes at a physical address (may span contiguous frames).
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), OsError> {
        self.check_span(addr, buf.len() as u64)?;
        let mut cur = addr.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let pfn = (cur >> 12) as usize;
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - done);
            match &self.frames[pfn].data {
                Some(d) => buf[done..done + n].copy_from_slice(&d[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    /// Write bytes at a physical address (may span contiguous frames).
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) -> Result<(), OsError> {
        self.check_span(addr, data.len() as u64)?;
        let mut cur = addr.raw();
        let mut done = 0usize;
        while done < data.len() {
            let pfn = (cur >> 12) as usize;
            let off = (cur & (PAGE_SIZE - 1)) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(data.len() - done);
            let frame = &mut self.frames[pfn];
            let d = frame
                .data
                .get_or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            d[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    /// Gather bytes described by a segment list into `out`.
    pub fn gather(&self, segs: &[PhysSeg], out: &mut Vec<u8>) -> Result<(), OsError> {
        for s in segs {
            let start = out.len();
            out.resize(start + s.len as usize, 0);
            self.read(s.addr, &mut out[start..])?;
        }
        Ok(())
    }

    /// Scatter `data` into the byte ranges described by `segs`.
    /// Returns the number of bytes written (min of data and segment space).
    pub fn scatter(&mut self, segs: &[PhysSeg], data: &[u8]) -> Result<u64, OsError> {
        let mut done = 0usize;
        for s in segs {
            if done >= data.len() {
                break;
            }
            let n = (s.len as usize).min(data.len() - done);
            self.write(s.addr, &data[done..done + n])?;
            done += n;
        }
        Ok(done as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = PhysMem::new(4);
        let a = m.alloc(FrameState::Kernel).unwrap();
        let b = m.alloc(FrameState::Anon).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.allocated_frames(), 2);
        m.free(a).unwrap();
        assert_eq!(m.allocated_frames(), 1);
        // Recycled frame comes back.
        let c = m.alloc(FrameState::Kernel).unwrap();
        assert_eq!(c, a);
        assert_eq!(m.state_of(c), FrameState::Kernel);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut m = PhysMem::new(1);
        m.alloc(FrameState::Kernel).unwrap();
        assert_eq!(m.alloc(FrameState::Kernel), Err(OsError::OutOfMemory));
    }

    #[test]
    fn double_free_rejected() {
        let mut m = PhysMem::new(2);
        let a = m.alloc(FrameState::Anon).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.free(a), Err(OsError::DoubleFree));
    }

    #[test]
    fn pinned_frames_cannot_be_freed() {
        let mut m = PhysMem::new(2);
        let a = m.alloc(FrameState::Anon).unwrap();
        m.pin(a).unwrap();
        assert_eq!(m.free(a), Err(OsError::FramePinned));
        m.unpin(a).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.unpin(a), Err(OsError::NotPinned));
    }

    #[test]
    fn contiguous_allocation_is_contiguous() {
        let mut m = PhysMem::new(8);
        let first = m.alloc_contig(4, FrameState::Kernel).unwrap();
        for i in 0..4 {
            assert_eq!(m.state_of(FrameIdx(first.0 + i)), FrameState::Kernel);
        }
        // Writing across the whole run works (it is physically contiguous).
        let data = vec![0xAB; 3 * PAGE_SIZE as usize];
        m.write(first.base(), &data).unwrap();
        let mut back = vec![0; data.len()];
        m.read(first.base(), &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn reads_of_untouched_frames_are_zero() {
        let mut m = PhysMem::new(2);
        let a = m.alloc(FrameState::Anon).unwrap();
        let mut buf = [0xFFu8; 64];
        m.read(a.base(), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn rw_roundtrip_with_offset() {
        let mut m = PhysMem::new(2);
        let a = m.alloc_contig(2, FrameState::Kernel).unwrap();
        let addr = a.base().add(PAGE_SIZE - 5); // straddles both frames
        m.write(addr, b"0123456789").unwrap();
        let mut buf = [0u8; 10];
        m.read(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"0123456789");
    }

    #[test]
    fn access_to_free_frames_is_rejected() {
        let mut m = PhysMem::new(2);
        let a = m.alloc(FrameState::Anon).unwrap();
        m.free(a).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(m.read(a.base(), &mut buf), Err(OsError::UseAfterFree));
        assert_eq!(m.write(a.base(), &buf), Err(OsError::UseAfterFree));
        assert_eq!(m.pin(a), Err(OsError::UseAfterFree));
    }

    #[test]
    fn out_of_range_addresses_are_rejected() {
        let m = PhysMem::new(1);
        let mut buf = [0u8; 4];
        assert_eq!(
            m.read(PhysAddr::new(16 * PAGE_SIZE), &mut buf),
            Err(OsError::BadPhysAddr)
        );
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut m = PhysMem::new(4);
        let a = m.alloc(FrameState::Kernel).unwrap();
        let b = m.alloc(FrameState::Kernel).unwrap();
        let segs = [
            PhysSeg::new(a.base().add(10), 20),
            PhysSeg::new(b.base(), 30),
        ];
        let data: Vec<u8> = (0..50u8).collect();
        assert_eq!(m.scatter(&segs, &data).unwrap(), 50);
        let mut out = Vec::new();
        m.gather(&segs, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn scatter_truncates_to_segments() {
        let mut m = PhysMem::new(2);
        let a = m.alloc(FrameState::Kernel).unwrap();
        let segs = [PhysSeg::new(a.base(), 8)];
        let written = m.scatter(&segs, &[1u8; 100]).unwrap();
        assert_eq!(written, 8);
    }
}

//! # knet-bench — the figure and table regenerators
//!
//! Each `cargo bench` target rebuilds one of the paper's evaluation
//! artifacts on the simulated testbed and prints the measured series (text
//! table + CSV). All numbers are *virtual-time* measurements — deterministic
//! and reproducible. `micro_simulator` additionally benchmarks the
//! simulator's own wall-clock performance with Criterion.

/// Print a figure in both human and CSV form.
pub fn emit(fig: &knet::figures::Figure) {
    println!("{}", knet::report::render_figure(fig));
    println!("--- CSV ---\n{}", knet::report::render_csv(fig));
}

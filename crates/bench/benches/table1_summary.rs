//! Table 1: summary of the MX vs GM in-kernel performance comparison.
fn main() {
    let rows = knet::figures::table1();
    println!("{}", knet::report::render_table1(&rows));
}

//! Figure 6: measured impact of removing the medium-message copies.
fn main() {
    knet_bench::emit(&knet::figures::fig6());
}

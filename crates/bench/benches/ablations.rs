//! Ablations of the paper's design choices, beyond the published figures:
//!
//! 1. **Vectorial page-combining** (§3.3: per-page requests "should
//!    disappear with Linux 2.6 … would require vectorial communication
//!    primitives, that is something GM does not provide") — ORFS/MX
//!    buffered reads with and without combining runs of missing pages into
//!    one vectorial request.
//! 2. **The GM notification thread** (§5.2) — ORFS/GM buffered with and
//!    without the blocking-notify wakeup, isolating how much of the
//!    GM-vs-MX file-access gap is event-notification inflexibility.
//! 3. **GMKRC eviction batching** — the deregistration-amortization batch
//!    size, the knob that decides how much of the 200 µs base each miss
//!    pays.

use knet::figures::{fs_fixture, FsOpts};
use knet::harness::{fsops, seq_read_mb};
use knet::prelude::*;

fn buffered_mb(kind: TransportKind, combine: bool, record: u64) -> f64 {
    let total = 2 << 20;
    let mut fx = fs_fixture(FsOpts {
        kind,
        combine_pages: combine,
        file_len: total + record,
        ..FsOpts::default()
    });
    let fd = fsops::open(&mut fx.w, fx.cid, "/data", false).unwrap();
    let user = fx.user;
    seq_read_mb(&mut fx.w, fx.cid, fd, record, total, move |_w, _i| {
        user.memref(record)
    })
}

fn main() {
    println!("== Ablation 1: vectorial page-combining (ORFS/MX buffered) ==");
    println!("   (the Linux 2.6 behaviour of §3.3; GM cannot do this at all)\n");
    println!(
        "{:>12} {:>16} {:>16} {:>8}",
        "record", "per-page MB/s", "combined MB/s", "gain"
    );
    for record in [16 * 1024u64, 65536, 256 * 1024] {
        let per_page = buffered_mb(TransportKind::Mx, false, record);
        let combined = buffered_mb(TransportKind::Mx, true, record);
        println!(
            "{:>12} {:>16.1} {:>16.1} {:>7.0}%",
            record,
            per_page,
            combined,
            (combined / per_page - 1.0) * 100.0
        );
    }

    println!("\n== Ablation 2: the GM notification thread (§5.2) ==\n");
    // With the thread (the real ORFS/GM), vs a hypothetical GM whose kernel
    // clients could poll (blocking_notify off).
    let with_thread = buffered_mb(TransportKind::Gm, false, 65536);
    let without = {
        let total = 2 << 20;
        let mut fx = fs_fixture(FsOpts {
            kind: TransportKind::Gm,
            file_len: total + 65536,
            ..FsOpts::default()
        });
        // Strip the notify cost post-hoc by re-opening the client port
        // without the flag: rebuild the fixture via gm params.
        let mut p = fx.w.gm.params;
        p.blocking_notify = knet_simcore::SimTime::ZERO;
        fx.w.gm.params = p;
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", false).unwrap();
        let user = fx.user;
        seq_read_mb(&mut fx.w, fx.cid, fd, 65536, total, move |_w, _i| {
            user.memref(65536)
        })
    };
    let mx = buffered_mb(TransportKind::Mx, false, 65536);
    println!("ORFS/GM buffered, notification thread on : {with_thread:6.1} MB/s");
    println!("ORFS/GM buffered, hypothetical polling   : {without:6.1} MB/s");
    println!("ORFS/MX buffered (flexible completions)  : {mx:6.1} MB/s");
    println!(
        "→ the thread explains {:.0}% of the GM-vs-MX buffered gap",
        (without - with_thread) / (mx - with_thread) * 100.0
    );

    println!("\n== Ablation 3: GMKRC eviction batch size ==\n");
    println!("   0% hit-rate direct reads (64 kB records, 128-page cache);");
    println!("   bigger batches amortize the 200 us deregistration base.\n");
    // The batch divisor is a compile-time constant; emulate its effect by
    // varying cache capacity (batch = capacity/2).
    println!("{:>16} {:>12}", "cache (pages)", "MB/s");
    for cache in [64usize, 128, 512, 2048] {
        let record = 65536u64;
        let total = 2 << 20;
        let mut fx = fs_fixture(FsOpts {
            kind: TransportKind::Gm,
            regcache_pages: Some(cache),
            file_len: total + record,
            ..FsOpts::default()
        });
        let fd = fsops::open(&mut fx.w, fx.cid, "/data", true).unwrap();
        let user = fx.user;
        let pool = user.len;
        let mb = seq_read_mb(&mut fx.w, fx.cid, fd, record, total, move |_w, i| {
            let off = (i * record) % (pool - record).max(1);
            user.memref_at(off & !(PAGE_SIZE - 1), record)
        });
        println!("{:>16} {:>12.1}", cache, mb);
    }
}

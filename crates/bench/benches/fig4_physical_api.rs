//! Figure 4a: kernel latency with registered vs physical addressing.
//! Figure 4b: ORFS/GM direct vs buffered access through the page-cache.
fn main() {
    knet_bench::emit(&knet::figures::fig4a());
    knet_bench::emit(&knet::figures::fig4b());
}

//! Figure 1b: comparison between copy and memory registration cost in GM.
fn main() {
    knet_bench::emit(&knet::figures::fig1b());
}

//! Cluster-scale engine benchmark: the sequential event loop vs the
//! sharded conservative-lookahead engine on the same workload, emitted as
//! `BENCH_cluster.json`.
//!
//! The workload is ring traffic — every node sends one message to its
//! successor each round, so **every** message crosses a shard boundary
//! under `node % shards` ownership (the worst case for the parallel
//! engine: maximal cross-shard mailbox traffic, epochs bounded by the NIC
//! wire latency). Reported per node count:
//!
//! * events executed and wall-clock seconds → **events/sec**,
//! * **wall-clock per virtual second** (how expensive simulated time is),
//! * the sharded engine's epoch/mailbox counters,
//! * steady-state arena growth (must be 0: the typed event path recycles
//!   its slab arena; `tests/hotpath_alloc.rs` asserts the same with a
//!   counting allocator).
//!
//! Scale knobs (env): `CLUSTER_NODES` (default "10,100,1000"),
//! `CLUSTER_ROUNDS` (3), `CLUSTER_SHARDS` (4), `CLUSTER_MSG_BYTES`
//! (4096), `CLUSTER_OUT` (output path).

use std::time::Instant;

use knet::build::ClusterBuilder;
use knet::harness::kbuf;
use knet::prelude::*;
use knet::ShardedCluster;
use knet_core::api::{channel_connect, channel_send, ChannelId};
use knet_core::Endpoint;
use knet_simos::Asid;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn builder(n: usize) -> ClusterBuilder {
    ClusterBuilder::new()
        .nodes(n, CpuModel::xeon_2600())
        .mem_frames(32_768.max(n as u32 * 64))
}

// ---------------------------------------------------------------- driver

enum Driver {
    Seq(Box<ClusterWorld>),
    Sharded(ShardedCluster),
}

struct Mesh {
    eps: Vec<Endpoint>,
    bufs: Vec<knet::harness::KBuf>,
    chans: Vec<ChannelId>,
}

impl Driver {
    fn new(n: usize, shards: usize) -> Self {
        if shards <= 1 {
            Driver::Seq(Box::new(builder(n).build()))
        } else {
            Driver::Sharded(builder(n).build_sharded(shards))
        }
    }

    fn setup(&mut self, n: usize, msg_bytes: u64) -> Mesh {
        let f = |w: &mut ClusterWorld| {
            let mut eps = Vec::new();
            let mut bufs = Vec::new();
            let mut cqs = Vec::new();
            for i in 0..n {
                let node = NodeId(i as u32);
                let cq = w.new_cq();
                let ep = w.open_mx_cq(node, MxEndpointConfig::kernel(), cq).unwrap();
                let buf = kbuf(w, node, msg_bytes.max(4096));
                let data: Vec<u8> = (0..msg_bytes).map(|j| (i as u64 * 131 + j) as u8).collect();
                w.os.node_mut(node)
                    .write_virt(Asid::KERNEL, buf.addr, &data)
                    .unwrap();
                eps.push(ep);
                bufs.push(buf);
                cqs.push(cq);
            }
            let chans: Vec<ChannelId> = (0..n)
                .map(|i| channel_connect(w, eps[i], eps[(i + 1) % n], cqs[i]))
                .collect();
            (eps, bufs, chans)
        };
        let (eps, bufs, chans) = match self {
            Driver::Seq(w) => f(w),
            Driver::Sharded(s) => s.setup(f),
        };
        Mesh { eps, bufs, chans }
    }

    fn round(&mut self, mesh: &Mesh, n: usize, round: u64, msg_bytes: u64) {
        // Every node owns a staging kbuf written at setup; re-send it with a
        // fresh tag each round.
        for i in 0..n {
            let ch = mesh.chans[i];
            let buf = mesh.bufs[i];
            let send = move |w: &mut ClusterWorld| {
                let _ = channel_send(w, ch, round * 1_000_000 + i as u64, buf.iov(msg_bytes));
            };
            match self {
                Driver::Seq(w) => send(w),
                Driver::Sharded(s) => s.on(i as u32, send),
            }
        }
        match self {
            Driver::Seq(w) => {
                knet_simcore::run_to_quiescence(&mut **w);
            }
            Driver::Sharded(s) => {
                s.run_to_quiescence();
            }
        }
        // Drain completion queues so they stay at their high-water marks.
        for i in 0..n {
            let ep = mesh.eps[i];
            let drain = |w: &mut ClusterWorld| while w.take_event(ep).is_some() {};
            match self {
                Driver::Seq(w) => drain(w),
                Driver::Sharded(s) => s.on(i as u32, drain),
            }
        }
    }

    fn executed(&self) -> u64 {
        match self {
            Driver::Seq(w) => w.sched.executed(),
            Driver::Sharded(s) => s.executed(),
        }
    }

    fn now_secs(&self) -> f64 {
        let ns = match self {
            Driver::Seq(w) => w.sched.now().nanos(),
            Driver::Sharded(s) => s.world(0).sched.now().nanos(),
        };
        ns as f64 / 1e9
    }

    fn engine(&self) -> knet_simcore::EngineStats {
        match self {
            Driver::Seq(w) => w.engine_stats(),
            Driver::Sharded(s) => s.engine_stats().0,
        }
    }
}

// ---------------------------------------------------------------- measure

struct CaseResult {
    nodes: usize,
    shards: usize,
    events: u64,
    secs: f64,
    virt_secs: f64,
    epochs: u64,
    mailbox_injected: u64,
    arena_grows_steady: u64,
}

impl CaseResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-9)
    }
    fn wall_per_virt(&self) -> f64 {
        self.secs / self.virt_secs.max(1e-12)
    }
}

fn run_case(n: usize, shards: usize, rounds: u64, msg_bytes: u64) -> CaseResult {
    let mut d = Driver::new(n, shards);
    let mesh = d.setup(n, msg_bytes);

    // Warm-up: one round grows every pool (arenas, heaps, windows, CQs) to
    // its high-water mark.
    d.round(&mesh, n, 0, msg_bytes);
    let events0 = d.executed();
    let grows0 = d.engine().arena_grows;
    let virt0 = d.now_secs();

    let start = Instant::now();
    for r in 1..=rounds {
        d.round(&mesh, n, r, msg_bytes);
    }
    let secs = start.elapsed().as_secs_f64();
    let e = d.engine();

    CaseResult {
        nodes: n,
        shards,
        events: d.executed() - events0,
        secs,
        virt_secs: d.now_secs() - virt0,
        epochs: e.epochs,
        mailbox_injected: e.mailbox_injected,
        arena_grows_steady: e.arena_grows - grows0,
    }
}

// ---------------------------------------------------------------- main

fn main() {
    let nodes: Vec<usize> = std::env::var("CLUSTER_NODES")
        .unwrap_or_else(|_| "10,100,1000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let rounds = env_u64("CLUSTER_ROUNDS", 3);
    let shards = env_u64("CLUSTER_SHARDS", 4) as usize;
    let msg_bytes = env_u64("CLUSTER_MSG_BYTES", 4096);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "cluster: nodes={nodes:?} rounds={rounds} shards={shards} msg_bytes={msg_bytes} host_cpus={host_cpus}"
    );

    let mut rows = Vec::new();
    for &n in &nodes {
        let seq = run_case(n, 1, rounds, msg_bytes);
        eprintln!(
            "n={n:5} sequential: {} events in {:.3}s = {:.0} ev/s, {:.1} wall-s/virt-s",
            seq.events,
            seq.secs,
            seq.events_per_sec(),
            seq.wall_per_virt()
        );
        let sh = run_case(n, shards, rounds, msg_bytes);
        eprintln!(
            "n={n:5} sharded({shards}): {} events in {:.3}s = {:.0} ev/s, {:.1} wall-s/virt-s, {} epochs, {} mailbox msgs, speedup {:.2}x",
            sh.events,
            sh.secs,
            sh.events_per_sec(),
            sh.wall_per_virt(),
            sh.epochs,
            sh.mailbox_injected,
            seq.secs / sh.secs.max(1e-9)
        );
        assert_eq!(
            seq.events, sh.events,
            "sharded engine must execute the identical event set"
        );
        assert_eq!(
            sh.arena_grows_steady, 0,
            "steady-state rounds must not grow the event arena"
        );
        rows.push((seq, sh));
    }

    // ---- JSON emit (hand-rolled; the workspace is offline) ----
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"cluster\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"rounds\": {rounds}, \"shards\": {shards}, \"msg_bytes\": {msg_bytes}, \"host_cpus\": {host_cpus}, \"workload\": \"ring (every message crosses a shard boundary)\"}},\n"
    ));
    json.push_str(
        "  \"note\": \"speedup = sequential wall / sharded wall on the same host; \
         with host_cpus=1 the shard threads serialize and speedup is bounded by 1.0 — \
         the trend across node counts shows the epoch/mailbox overhead amortizing\",\n",
    );
    json.push_str("  \"cases\": [\n");
    let cases: Vec<String> = rows
        .iter()
        .map(|(seq, sh)| {
            format!(
                "    {{\"nodes\": {}, \"events\": {},\n     \"sequential\": {{\"events_per_sec\": {:.0}, \"wall_secs_per_virtual_sec\": {:.2}}},\n     \"sharded\": {{\"shards\": {}, \"events_per_sec\": {:.0}, \"wall_secs_per_virtual_sec\": {:.2}, \"epochs\": {}, \"mailbox_injected\": {}, \"arena_grows_steady_state\": {}}},\n     \"speedup\": {:.2}}}",
                seq.nodes,
                seq.events,
                seq.events_per_sec(),
                seq.wall_per_virt(),
                sh.shards,
                sh.events_per_sec(),
                sh.wall_per_virt(),
                sh.epochs,
                sh.mailbox_injected,
                sh.arena_grows_steady,
                seq.secs / sh.secs.max(1e-9)
            )
        })
        .collect();
    json.push_str(&cases.join(",\n"));
    json.push_str("\n  ]\n}\n");

    // Relative paths resolve against the *workspace* root (cargo runs
    // benches with the package directory as cwd).
    let out = std::env::var("CLUSTER_OUT").unwrap_or_else(|_| "BENCH_cluster.json".to_string());
    let out = if std::path::Path::new(&out).is_absolute() {
        std::path::PathBuf::from(out)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(out)
    };
    std::fs::write(&out, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("wrote {}", out.display());
}

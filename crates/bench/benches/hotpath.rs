//! The hot-path wall-clock benchmark: how fast does the *simulator's own*
//! steady-state send/recv machinery run on the host?
//!
//! The paper's argument (§3.2, Fig. 1/3) is that registration caching and
//! copy avoidance make the per-message API cost tiny; this benchmark holds
//! our Rust implementation to the same standard. Two phases:
//!
//! * **channels** — N endpoints (N/2 GM channel pairs across two nodes)
//!   exchange M rounds of messages through the application-facing channel
//!   API, with completions drained from shared per-node completion queues.
//!   One *op* is one message moved end to end (submit → wire → completion
//!   popped).
//! * **regcache** — one GMKRC instance at translation-table scale
//!   (default 1M pages) driven with a hit-heavy working set plus a trickle
//!   of fresh pages, each of which forces a capacity eviction, plus
//!   periodic VMA-style range invalidations. One *op* is one
//!   `plan_range`/invalidate call.
//!
//! Wall-clock time and heap allocations (counting global allocator) are
//! measured per phase and emitted as `BENCH_hotpath.json`, together with
//! the pre-PR baseline measured on the same workload before the O(1)
//! hot-path rework (commit b225c3f), so the file carries its own
//! before/after trajectory.
//!
//! Scale knobs (env): `HOTPATH_ENDPOINTS` (default 10000),
//! `HOTPATH_ROUNDS` (4), `HOTPATH_PAGES` (1000000), `HOTPATH_REG_OPS`
//! (60000), `HOTPATH_FRESH_EVERY` (600), `HOTPATH_OUT` (output path).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use knet::build::ClusterBuilder;
use knet::harness::kbuf;
use knet::prelude::MxEndpointConfig;
use knet::world::ClusterWorld;
use knet_core::api::{
    channel_connect, channel_post_recv, channel_send, channel_set_send_queue_cap,
};
use knet_core::{RegCache, RegKey, TransportEvent};
use knet_gm::GmPortConfig;
use knet_simnic::{FaultPlan, NicModel, RelParams};
use knet_simos::{Asid, CpuModel, FrameIdx, NodeId, VirtAddr, VmaEvent, PAGE_SIZE};

// ---------------------------------------------------------------- allocator

/// Counts every heap allocation so the benchmark can report allocations per
/// op alongside ops/sec (the "allocation-free hot path" claim is measured,
/// not asserted, here; `tests/hotpath_alloc.rs` asserts it).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------- config

struct Config {
    endpoints: usize,
    rounds: u64,
    pages: usize,
    reg_ops: u64,
    fresh_every: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Config {
    fn from_env() -> Self {
        Config {
            endpoints: env_u64("HOTPATH_ENDPOINTS", 10_000) as usize,
            rounds: env_u64("HOTPATH_ROUNDS", 4),
            pages: env_u64("HOTPATH_PAGES", 1_000_000) as usize,
            reg_ops: env_u64("HOTPATH_REG_OPS", 60_000),
            fresh_every: env_u64("HOTPATH_FRESH_EVERY", 600),
        }
    }
}

struct PhaseResult {
    ops: u64,
    secs: f64,
    allocs: u64,
}

impl PhaseResult {
    fn ops_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.ops as f64 / self.secs
        } else {
            0.0
        }
    }
}

// ---------------------------------------------------------------- phases

/// N/2 channel pairs exchange `rounds` messages of 1 kB kernel payloads.
fn phase_channels(cfg: &Config) -> PhaseResult {
    let pairs = (cfg.endpoints / 2).max(1);
    let mut w = ClusterBuilder::new()
        .nodes(2, CpuModel::xeon_2600())
        .mem_frames(262_144)
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let cq0 = w.new_cq();
    let cq1 = w.new_cq();
    let mut eps = Vec::with_capacity(pairs);
    let mut chans = Vec::with_capacity(pairs);
    let mut bufs = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let cfg_port = GmPortConfig::kernel().with_physical_api();
        let a = w.open_gm_cq(n0, cfg_port.clone(), cq0).expect("gm port a");
        let b = w.open_gm_cq(n1, cfg_port, cq1).expect("gm port b");
        let ka = kbuf(&mut w, n0, 1024);
        let kb = kbuf(&mut w, n1, 1024);
        let ch_a = channel_connect(&mut w, a, b, cq0);
        let ch_b = channel_connect(&mut w, b, a, cq1);
        eps.push((a, b));
        chans.push((ch_a, ch_b));
        bufs.push((ka, kb));
    }

    // Warm-up round (registrations, scheduler warm structures).
    let mut batch = Vec::new();
    run_round(&mut w, &eps, &chans, &bufs, 0, &mut batch);

    let a0 = allocs();
    let t0 = Instant::now();
    for r in 1..=cfg.rounds {
        run_round(&mut w, &eps, &chans, &bufs, r, &mut batch);
    }
    let secs = t0.elapsed().as_secs_f64();
    PhaseResult {
        ops: pairs as u64 * cfg.rounds,
        secs,
        allocs: allocs() - a0,
    }
}

fn run_round(
    w: &mut ClusterWorld,
    eps: &[(knet_core::Endpoint, knet_core::Endpoint)],
    chans: &[(knet_core::ChannelId, knet_core::ChannelId)],
    bufs: &[(knet::harness::KBuf, knet::harness::KBuf)],
    round: u64,
    batch: &mut Vec<knet_core::CqEntry>,
) {
    let tag = round + 1;
    for (i, (ch_a, _ch_b)) in chans.iter().enumerate() {
        let (ka, kb) = bufs[i];
        channel_post_recv(w, chans[i].1, tag, kb.iov(1024)).expect("post recv");
        channel_send(w, *ch_a, tag, ka.iov(1024)).expect("send");
    }
    knet_simcore::run_to_quiescence(w);
    // Drain all completions (SendDone on the a side, RecvDone on the b
    // side) through the batched per-endpoint drain.
    let mut delivered = 0usize;
    for (a, b) in eps {
        w.take_events(*a, usize::MAX, batch);
        w.take_events(*b, usize::MAX, batch);
        delivered += batch
            .iter()
            .filter(|e| matches!(e.event, TransportEvent::RecvDone { .. }))
            .count();
    }
    assert_eq!(delivered, eps.len(), "every message must land");
}

/// GMKRC at `pages` capacity: hit-heavy plan_range stream with a trickle of
/// fresh pages (each one forces a capacity eviction) and periodic range
/// invalidations — exactly the driver's steady-state usage.
fn phase_regcache(cfg: &Config) -> PhaseResult {
    let asid = Asid(1);
    let mut cache = RegCache::new(cfg.pages);
    // Fill to capacity.
    for i in 0..cfg.pages as u64 {
        cache.commit(RegKey { asid, vpn: i }, FrameIdx((i & 0xFFFF_FFFF) as u32));
    }
    let hot = 1024u64.min(cfg.pages as u64); // hot working set (pure hits)
    let mut fresh_vpn = cfg.pages as u64; // first never-seen page
    let mut ops = 0u64;

    // Warm-up: touch the hot set once so the measured loop is steady state.
    for i in 0..hot {
        let addr = VirtAddr::new((cfg.pages as u64 - hot + i) << 12);
        let _ = cache.plan_range(asid, addr, PAGE_SIZE);
    }

    let a0 = allocs();
    let t0 = Instant::now();
    for i in 0..cfg.reg_ops {
        if cfg.fresh_every > 0 && i % cfg.fresh_every == cfg.fresh_every - 1 {
            // A brand-new page: miss, capacity pressure, LRU eviction —
            // the path the paper's GMKRC pays on translation-table
            // pressure.
            let addr = VirtAddr::new(fresh_vpn << 12);
            fresh_vpn += 1;
            let plan = cache.plan_range(asid, addr, PAGE_SIZE);
            let over = cache.pressure(plan.missing.len());
            if over > 0 {
                let evicted = cache.evict_lru(over);
                assert_eq!(evicted.len(), over);
            }
            for page in &plan.missing {
                cache.commit(RegKey::of(asid, *page), FrameIdx(0));
            }
        } else if i % 10_000 == 5_000 {
            // VMA SPY coherence: unmap a small cold range.
            let base = (i / 10_000) * 16 % (cfg.pages as u64 / 2);
            let ev = VmaEvent::unmap(asid, VirtAddr::new(base << 12), 16 * PAGE_SIZE);
            let dropped = cache.invalidate(&ev);
            for (k, f) in dropped {
                cache.commit(k, f); // re-register so occupancy stays stable
            }
        } else {
            // Steady state: a hit in the hot set.
            let vpn = cfg.pages as u64 - hot + (i % hot);
            let plan = cache.plan_range(asid, VirtAddr::new(vpn << 12), PAGE_SIZE);
            assert_eq!(plan.hit_pages, 1);
        }
        ops += 1;
    }
    let secs = t0.elapsed().as_secs_f64();
    PhaseResult {
        ops,
        secs,
        allocs: allocs() - a0,
    }
}

// ---------------------------------------------------------------- loss sweep

/// One point of the goodput-vs-loss sweep.
struct SweepPoint {
    loss_pct: u64,
    /// Goodput in MB/s of *virtual* time: bytes delivered end-to-end divided
    /// by the simulated duration from first send to last RecvDone. Virtual
    /// time makes the number deterministic for a fixed seed — the sweep is a
    /// protocol property, not a host-speed property.
    goodput_mbps: f64,
    retransmits: u64,
    timeouts: u64,
    sack_repairs: u64,
    spurious_rtos: u64,
}

/// Goodput vs loss: one GM channel pair streams `HOTPATH_SWEEP_MSGS` 4 kB
/// messages through the default 64-deep reliability window while the fabric
/// drops packets at each sweep rate. Measured in virtual time, so the curve
/// is a deterministic property of the retransmission protocol — this is the
/// number that moved when go-back-N became selective repeat.
fn phase_loss_sweep(losses: &[u64], msgs: u64) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &loss in losses {
        let mut w = ClusterBuilder::new().build();
        if loss > 0 {
            w.set_fault_plan(FaultPlan::new(0xD1CE + loss).with_drop(loss as f64 / 100.0));
        }
        let (n0, n1) = (NodeId(0), NodeId(1));
        let cq0 = w.new_cq();
        let cq1 = w.new_cq();
        let cfg = GmPortConfig::kernel().with_physical_api();
        let a = w.open_gm_cq(n0, cfg.clone(), cq0).expect("gm port a");
        let b = w.open_gm_cq(n1, cfg, cq1).expect("gm port b");
        let ka = kbuf(&mut w, n0, 4096);
        let kb = kbuf(&mut w, n1, 4096);
        let ch_a = channel_connect(&mut w, a, b, cq0);
        let _ch_b = channel_connect(&mut w, b, a, cq1);
        channel_set_send_queue_cap(&mut w, ch_a, msgs as usize + 8);
        for tag in 1..=msgs {
            channel_post_recv(&mut w, _ch_b, tag, kb.iov(4096)).expect("post recv");
        }
        let t0 = knet_simcore::now(&w);
        for tag in 1..=msgs {
            channel_send(&mut w, ch_a, tag, ka.iov(4096)).expect("send");
        }
        // Drain completions as they land; stop at the last RecvDone so the
        // elapsed virtual time measures delivery, not trailing retransmit
        // timers firing idle.
        let mut batch = Vec::new();
        let mut delivered = 0u64;
        while delivered < msgs {
            let outcome = knet_simcore::run_until(&mut w, |w: &ClusterWorld| w.has_event(b));
            if outcome != knet_simcore::RunOutcome::Satisfied {
                panic!("loss sweep at {loss}%: stalled with {delivered}/{msgs} delivered");
            }
            w.take_events(b, usize::MAX, &mut batch);
            delivered += batch
                .iter()
                .filter(|e| matches!(e.event, TransportEvent::RecvDone { .. }))
                .count() as u64;
        }
        let elapsed = (knet_simcore::now(&w) - t0).secs();
        // Goodput is bounded at the last delivery, but the protocol
        // counters must cover the whole run — the final window's lost acks
        // can trigger recovery rounds after the last RecvDone, so snapshot
        // the stats only once everything has settled.
        knet_simcore::run_to_quiescence(&mut w);
        let rel = w.nics.rel.stats;
        points.push(SweepPoint {
            loss_pct: loss,
            goodput_mbps: (msgs * 4096) as f64 / elapsed.max(1e-12) / 1e6,
            retransmits: rel.retransmits,
            timeouts: rel.timeouts,
            sack_repairs: rel.sack_repairs,
            spurious_rtos: rel.spurious_rtos,
        });
    }
    points
}

/// Recorded goodput of the go-back-N window (the pre-selective-repeat
/// reliability protocol, repo at commit 1236018) on this exact workload:
/// default scale (400 messages x 4 kB, window 64, PCI-XD), seeds
/// `0xD1CE + loss`. Kept so `BENCH_hotpath.json` always carries the
/// before/after curve.
const GBN_BASELINE: &[(u64, f64)] = &[
    (0, 247.89),
    (2, 154.71),
    (5, 128.33),
    (10, 91.51),
    (15, 81.11),
    (20, 82.05),
];

// ---------------------------------------------------------------- incast

/// One measured incast configuration: goodput plus the tail of the
/// per-message completion-latency distribution, both in virtual time.
struct IncastRun {
    goodput_mbps: f64,
    p99_us: f64,
    rx_drops: u64,
    retransmits: u64,
}

/// One sender count, measured twice on identical traffic: once with the
/// congestion control loop (default `RelParams`: NACK-driven repair, AIMD
/// windows, SACK fast retransmit) and once with the pre-control-loop
/// fixed-window sender, whose only repair for fan-in tail drops is the RTO.
struct IncastPoint {
    senders: usize,
    cc: IncastRun,
    fixed: IncastRun,
}

/// Barrier-synchronized fan-in (the classic incast shape, same workload as
/// `tests/incast.rs`): every sender answers the round's request with one
/// 32 kB message at once; the next round starts when the fan-in drains.
/// On PCI-XE the 16-way burst genuinely overflows the 128 kB rx FIFO, so
/// the loss here is self-inflicted and deterministic — no fault dice.
fn incast_run(n_senders: usize, rounds: u64, rel: RelParams) -> IncastRun {
    const MSG: u64 = 32 * 1024;
    let mut w = ClusterBuilder::new()
        .nodes(n_senders + 1, CpuModel::xeon_2600())
        .nic(NicModel::pci_xe())
        .rel_params(rel)
        .build();
    let rcq = w.new_cq();
    let recv_ep = w
        .open_mx_cq(NodeId(0), MxEndpointConfig::kernel(), rcq)
        .expect("mx recv ep");
    let mut senders = Vec::new();
    for i in 1..=n_senders {
        let node = NodeId(i as u32);
        let cq = w.new_cq();
        let ep = w
            .open_mx_cq(node, MxEndpointConfig::kernel(), cq)
            .expect("mx sender ep");
        let ch = channel_connect(&mut w, ep, recv_ep, cq);
        senders.push((ch, kbuf(&mut w, node, MSG)));
    }

    let mut lat_us: Vec<f64> = Vec::with_capacity((rounds as usize) * n_senders);
    let t0 = knet_simcore::now(&w);
    for round in 0..rounds {
        let start = knet_simcore::now(&w);
        for (i, (ch, buf)) in senders.iter().enumerate() {
            channel_send(&mut w, *ch, round * 100 + i as u64 + 1, buf.iov(MSG)).expect("send");
        }
        let mut landed = 0usize;
        while landed < n_senders {
            let outcome = knet_simcore::run_until(&mut w, |w: &ClusterWorld| w.has_event(recv_ep));
            if outcome != knet_simcore::RunOutcome::Satisfied {
                panic!("incast {n_senders}x: stalled at {landed}/{n_senders} in round {round}");
            }
            let now = knet_simcore::now(&w);
            while let Some(ev) = w.take_event(recv_ep) {
                if matches!(ev, TransportEvent::Unexpected { .. }) {
                    landed += 1;
                    lat_us.push((now - start).nanos() as f64 / 1e3);
                }
            }
        }
        // Settle trailing retransmit timers so each round starts from an
        // idle fabric — the barrier between rounds.
        knet_simcore::run_to_quiescence(&mut w);
    }
    let elapsed = (knet_simcore::now(&w) - t0).secs();

    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p99_idx = ((lat_us.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
    IncastRun {
        goodput_mbps: (rounds * n_senders as u64 * MSG) as f64 / elapsed.max(1e-12) / 1e6,
        p99_us: lat_us[p99_idx],
        rx_drops: w.nics.congestion_drops(),
        retransmits: w.nics.rel.stats.retransmits,
    }
}

fn phase_incast(rounds: u64) -> Vec<IncastPoint> {
    [2usize, 4, 8, 16]
        .iter()
        .map(|&n| IncastPoint {
            senders: n,
            cc: incast_run(n, rounds, RelParams::default()),
            fixed: incast_run(n, rounds, RelParams::fixed_window()),
        })
        .collect()
}

// ---------------------------------------------------------------- striping

/// One point of the dual-link striping curve: a single lossless flow at a
/// fixed message size, measured on a PCI-XE card with both links and again
/// with the same card constrained to one link.
struct StripePoint {
    msg_bytes: u64,
    msgs: u64,
    single_link_mbps: f64,
    dual_link_mbps: f64,
}

impl StripePoint {
    fn speedup(&self) -> f64 {
        self.dual_link_mbps / self.single_link_mbps.max(1e-9)
    }
}

/// Goodput of one GM channel streaming `msgs` messages of `msg_bytes` over
/// a lossless fabric. The deficit lane selector stripes the MTU chunks of
/// even a single flow across every link, so the dual-link number should
/// approach 2x once the transfer is bandwidth-dominated.
fn striping_goodput(links: usize, msg_bytes: u64, msgs: u64) -> f64 {
    let mut w = ClusterBuilder::new()
        .nodes(2, CpuModel::xeon_2600())
        .nic(NicModel::pci_xe().with_links(links))
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let cq0 = w.new_cq();
    let cq1 = w.new_cq();
    let cfg = GmPortConfig::kernel().with_physical_api();
    let a = w.open_gm_cq(n0, cfg.clone(), cq0).expect("gm port a");
    let b = w.open_gm_cq(n1, cfg, cq1).expect("gm port b");
    let ka = kbuf(&mut w, n0, msg_bytes);
    let kb = kbuf(&mut w, n1, msg_bytes);
    let ch_a = channel_connect(&mut w, a, b, cq0);
    let ch_b = channel_connect(&mut w, b, a, cq1);
    channel_set_send_queue_cap(&mut w, ch_a, msgs as usize + 8);
    for tag in 1..=msgs {
        channel_post_recv(&mut w, ch_b, tag, kb.iov(msg_bytes)).expect("post recv");
    }
    let t0 = knet_simcore::now(&w);
    for tag in 1..=msgs {
        channel_send(&mut w, ch_a, tag, ka.iov(msg_bytes)).expect("send");
    }
    let mut batch = Vec::new();
    let mut delivered = 0u64;
    while delivered < msgs {
        let outcome = knet_simcore::run_until(&mut w, |w: &ClusterWorld| w.has_event(b));
        if outcome != knet_simcore::RunOutcome::Satisfied {
            panic!("striping at {links} links: stalled with {delivered}/{msgs} delivered");
        }
        w.take_events(b, usize::MAX, &mut batch);
        delivered += batch
            .iter()
            .filter(|e| matches!(e.event, TransportEvent::RecvDone { .. }))
            .count() as u64;
    }
    let elapsed = (knet_simcore::now(&w) - t0).secs();
    (msgs * msg_bytes) as f64 / elapsed.max(1e-12) / 1e6
}

fn phase_striping(total_bytes: u64) -> Vec<StripePoint> {
    [64 * 1024u64, 256 * 1024, 1024 * 1024]
        .iter()
        .map(|&msg_bytes| {
            let msgs = (total_bytes / msg_bytes).max(1);
            StripePoint {
                msg_bytes,
                msgs,
                single_link_mbps: striping_goodput(1, msg_bytes, msgs),
                dual_link_mbps: striping_goodput(2, msg_bytes, msgs),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- probes

/// Pure-hit probe: exact allocation count of 10k cache-hit plans (the
/// steady-state send path's registration lookup). Zero after the O(1)
/// rework.
fn probe_hit_allocs(cache_pages: usize) -> u64 {
    let asid = Asid(7);
    let mut cache = RegCache::new(cache_pages.min(65_536));
    for i in 0..1024u64 {
        cache.commit(RegKey { asid, vpn: i }, FrameIdx(i as u32));
    }
    let _ = cache.plan_range(asid, VirtAddr::new(0), PAGE_SIZE);
    let a0 = allocs();
    for i in 0..10_000u64 {
        let vpn = i % 1024;
        let _ = cache.plan_range(asid, VirtAddr::new(vpn << 12), PAGE_SIZE);
    }
    allocs() - a0
}

// ---------------------------------------------------------------- baseline

/// Measured on this workload *before* the O(1) hot-path rework (repo at
/// commit b225c3f: BTreeMap GMKRC whose `evict_lru` collects and sorts every
/// entry, BTreeMap CQs, per-op allocations throughout), at the default
/// scale: 10_000 endpoints × 4 rounds, 1_000_000 pages, 60_000 regcache
/// ops. Recorded here so `BENCH_hotpath.json` always carries the trajectory
/// start.
struct Baseline {
    channel_ops_per_sec: f64,
    regcache_ops_per_sec: f64,
    total_ops_per_sec: f64,
    channel_allocs_per_op: f64,
    regcache_allocs_per_op: f64,
}

const BASELINE: Option<Baseline> = Some(Baseline {
    channel_ops_per_sec: 236_375.2,
    regcache_ops_per_sec: 17_696.2,
    total_ops_per_sec: 23_020.5,
    channel_allocs_per_op: 16.666,
    regcache_allocs_per_op: 0.005,
});

// ---------------------------------------------------------------- main

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "hotpath: endpoints={} rounds={} pages={} reg_ops={} fresh_every={}",
        cfg.endpoints, cfg.rounds, cfg.pages, cfg.reg_ops, cfg.fresh_every
    );

    let ch = phase_channels(&cfg);
    eprintln!(
        "channels: {} msgs in {:.3}s = {:.0} msgs/s ({} allocs, {:.1}/msg)",
        ch.ops,
        ch.secs,
        ch.ops_per_sec(),
        ch.allocs,
        ch.allocs as f64 / ch.ops.max(1) as f64
    );

    let rc = phase_regcache(&cfg);
    eprintln!(
        "regcache: {} ops in {:.3}s = {:.0} ops/s ({} allocs, {:.1}/op)",
        rc.ops,
        rc.secs,
        rc.ops_per_sec(),
        rc.allocs,
        rc.allocs as f64 / rc.ops.max(1) as f64
    );

    let hit_allocs = probe_hit_allocs(cfg.pages);
    eprintln!("hit-probe: {hit_allocs} allocs over 10k pure-hit plans");

    let sweep_msgs = env_u64("HOTPATH_SWEEP_MSGS", 400);
    let sweep = phase_loss_sweep(&[0, 2, 5, 10, 15, 20], sweep_msgs);
    for p in &sweep {
        eprintln!(
            "loss-sweep: {:2}% loss -> {:.2} MB/s (retx {}, timeouts {}, sack-repairs {}, spurious-rtos {})",
            p.loss_pct, p.goodput_mbps, p.retransmits, p.timeouts, p.sack_repairs, p.spurious_rtos
        );
    }

    let incast_rounds = env_u64("HOTPATH_INCAST_ROUNDS", 6);
    let incast = phase_incast(incast_rounds);
    for p in &incast {
        eprintln!(
            "incast: {:2} senders -> cc {:.1} MB/s p99 {:.0}us (drops {}, retx {}) | fixed {:.1} MB/s p99 {:.0}us (drops {}, retx {})",
            p.senders,
            p.cc.goodput_mbps,
            p.cc.p99_us,
            p.cc.rx_drops,
            p.cc.retransmits,
            p.fixed.goodput_mbps,
            p.fixed.p99_us,
            p.fixed.rx_drops,
            p.fixed.retransmits
        );
    }
    // The acceptance bar for the control loop: at the 16-way point the
    // AIMD+NACK sender must beat the fixed-window one on both goodput and
    // tail latency. Virtual time makes this deterministic, so a failure
    // here is a protocol regression, not noise.
    if let Some(p16) = incast.iter().find(|p| p.senders == 16) {
        assert!(
            p16.cc.goodput_mbps >= p16.fixed.goodput_mbps * 1.5,
            "16-way incast: control loop buys only {:.2}x goodput",
            p16.cc.goodput_mbps / p16.fixed.goodput_mbps
        );
        assert!(
            p16.cc.p99_us < p16.fixed.p99_us,
            "16-way incast: control loop worsens p99 ({:.0}us vs {:.0}us)",
            p16.cc.p99_us,
            p16.fixed.p99_us
        );
    }

    let stripe_total = env_u64("HOTPATH_STRIPE_BYTES", 4 * 1024 * 1024);
    let striping = phase_striping(stripe_total);
    for p in &striping {
        eprintln!(
            "striping: {:4} kB x {:3} msgs -> 1 link {:.1} MB/s, 2 links {:.1} MB/s ({:.2}x)",
            p.msg_bytes / 1024,
            p.msgs,
            p.single_link_mbps,
            p.dual_link_mbps,
            p.speedup()
        );
    }
    let best_stripe = striping
        .iter()
        .map(StripePoint::speedup)
        .fold(0.0f64, f64::max);
    assert!(
        best_stripe >= 1.8,
        "dual-link striping peaks at {best_stripe:.2}x over one link (want >= 1.8x)"
    );

    let total_ops = ch.ops + rc.ops;
    let total_secs = ch.secs + rc.secs;
    let total_ops_per_sec = total_ops as f64 / total_secs.max(1e-9);
    eprintln!("total: {total_ops} ops in {total_secs:.3}s = {total_ops_per_sec:.0} ops/s");

    // ---- JSON emit (hand-rolled; the workspace is offline) ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"hotpath\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"endpoints\": {}, \"rounds\": {}, \"pages\": {}, \"reg_ops\": {}, \"fresh_every\": {}}},\n",
        cfg.endpoints, cfg.rounds, cfg.pages, cfg.reg_ops, cfg.fresh_every
    ));
    json.push_str(&format!(
        "  \"current\": {{\n    \"channel_ops_per_sec\": {:.1},\n    \"regcache_ops_per_sec\": {:.1},\n    \"total_ops_per_sec\": {:.1},\n    \"channel_allocs_per_op\": {:.3},\n    \"regcache_allocs_per_op\": {:.3},\n    \"steady_state_hit_allocs_per_10k\": {}\n  }},\n",
        ch.ops_per_sec(),
        rc.ops_per_sec(),
        total_ops_per_sec,
        ch.allocs as f64 / ch.ops.max(1) as f64,
        rc.allocs as f64 / rc.ops.max(1) as f64,
        hit_allocs
    ));
    match BASELINE {
        Some(b) => {
            json.push_str(&format!(
                "  \"baseline\": {{\n    \"recorded_at\": \"pre-PR commit b225c3f, same workload at default scale\",\n    \"channel_ops_per_sec\": {:.1},\n    \"regcache_ops_per_sec\": {:.1},\n    \"total_ops_per_sec\": {:.1},\n    \"channel_allocs_per_op\": {:.3},\n    \"regcache_allocs_per_op\": {:.3}\n  }},\n",
                b.channel_ops_per_sec,
                b.regcache_ops_per_sec,
                b.total_ops_per_sec,
                b.channel_allocs_per_op,
                b.regcache_allocs_per_op
            ));
            json.push_str(&format!(
                "  \"speedup\": {{\n    \"channel\": {:.2},\n    \"regcache\": {:.2},\n    \"total\": {:.2}\n  }}\n",
                ch.ops_per_sec() / b.channel_ops_per_sec,
                rc.ops_per_sec() / b.regcache_ops_per_sec,
                total_ops_per_sec / b.total_ops_per_sec
            ));
        }
        None => {
            json.push_str("  \"baseline\": null,\n  \"speedup\": null\n");
        }
    }
    // Goodput-vs-loss curve: current protocol vs the recorded go-back-N
    // baseline (only losses present in both appear in the speedup map).
    json.push_str(",  \"loss_sweep\": {\n");
    json.push_str(&format!("    \"messages\": {sweep_msgs},\n"));
    json.push_str(&format!(
        "    \"message_bytes\": 4096,\n    \"window\": 64,\n    \"points\": [\n{}\n    ],\n",
        sweep
            .iter()
            .map(|p| format!(
                "      {{\"loss_pct\": {}, \"goodput_mbps\": {:.2}, \"retransmits\": {}, \"timeouts\": {}, \"sack_repairs\": {}, \"spurious_rtos\": {}}}",
                p.loss_pct, p.goodput_mbps, p.retransmits, p.timeouts, p.sack_repairs, p.spurious_rtos
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    ));
    json.push_str(&format!(
        "    \"go_back_n_baseline\": [\n{}\n    ],\n",
        GBN_BASELINE
            .iter()
            .map(|(l, g)| format!("      {{\"loss_pct\": {l}, \"goodput_mbps\": {g:.2}}}"))
            .collect::<Vec<_>>()
            .join(",\n")
    ));
    json.push_str(&format!(
        "    \"speedup_vs_go_back_n\": [\n{}\n    ]\n  }},\n",
        sweep
            .iter()
            .filter_map(|p| {
                GBN_BASELINE
                    .iter()
                    .find(|(l, _)| *l == p.loss_pct)
                    .map(|(l, g)| {
                        format!(
                            "      {{\"loss_pct\": {}, \"speedup\": {:.2}}}",
                            l,
                            p.goodput_mbps / g.max(1e-9)
                        )
                    })
            })
            .collect::<Vec<_>>()
            .join(",\n")
    ));
    // Incast: congestion control vs the fixed-window sender on identical
    // barrier-synchronized fan-in traffic (virtual time, deterministic).
    json.push_str(&format!(
        "  \"incast\": {{\n    \"message_bytes\": 32768,\n    \"rounds\": {incast_rounds},\n    \"points\": [\n{}\n    ]\n  }},\n",
        incast
            .iter()
            .map(|p| format!(
                "      {{\"senders\": {}, \"cc\": {{\"goodput_mbps\": {:.2}, \"p99_us\": {:.1}, \"rx_drops\": {}, \"retransmits\": {}}}, \"fixed_window\": {{\"goodput_mbps\": {:.2}, \"p99_us\": {:.1}, \"rx_drops\": {}, \"retransmits\": {}}}, \"goodput_speedup\": {:.2}}}",
                p.senders,
                p.cc.goodput_mbps,
                p.cc.p99_us,
                p.cc.rx_drops,
                p.cc.retransmits,
                p.fixed.goodput_mbps,
                p.fixed.p99_us,
                p.fixed.rx_drops,
                p.fixed.retransmits,
                p.cc.goodput_mbps / p.fixed.goodput_mbps.max(1e-9)
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    ));
    // Dual-link striping: one lossless flow, PCI-XE with both links vs the
    // same card held to one link.
    json.push_str(&format!(
        "  \"striping\": {{\n    \"total_bytes\": {stripe_total},\n    \"points\": [\n{}\n    ]\n  }}\n",
        striping
            .iter()
            .map(|p| format!(
                "      {{\"msg_bytes\": {}, \"msgs\": {}, \"single_link_mbps\": {:.2}, \"dual_link_mbps\": {:.2}, \"speedup\": {:.2}}}",
                p.msg_bytes,
                p.msgs,
                p.single_link_mbps,
                p.dual_link_mbps,
                p.speedup()
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    ));
    json.push_str("}\n");

    // Relative paths resolve against the *workspace* root (cargo runs
    // benches with the package directory as cwd).
    let out = std::env::var("HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".to_string());
    let out = if std::path::Path::new(&out).is_absolute() {
        std::path::PathBuf::from(out)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(out)
    };
    std::fs::write(&out, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("wrote {}", out.display());
}

//! Figure 3b: ORFS direct access with and without the registration cache,
//! against raw GM and user-space ORFA.
fn main() {
    knet_bench::emit(&knet::figures::fig3b());
}

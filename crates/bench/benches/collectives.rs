//! NIC-resident collectives vs the host-staged loop, measured.
//!
//! The paper's thesis is that moving communication machinery *down* —
//! into the kernel, and here one step further into NIC firmware — removes
//! per-operation host costs that serialize at scale. This benchmark holds
//! the collective subsystem to that claim: for broadcast, barrier and
//! allreduce it measures the **virtual-time completion latency** of
//!
//! * the **NIC tree** path (`knet_coll` groups over the `knet_simnic`
//!   fan-out/fan-in engine: frames forwarded NIC-to-NIC without
//!   re-entering the host driver, acks and partial reductions aggregated
//!   on the way up), and
//! * the **host-staged loop** baseline (the only thing the point-to-point
//!   API offers: the root posts N-1 channel sends one by one, gathers N-1
//!   replies, and pays the full host→NIC submission cost per member —
//!   allreduce even combines on the host, which virtual time charges
//!   *nothing* for, so the comparison is conservative in the loop's
//!   favor),
//!
//! at each rung of a node ladder. Virtual time makes every number a
//! deterministic property of the cost model, not of the machine running
//! the benchmark. Results go to `BENCH_collectives.json` with the
//! host/tree speedup per rung; the acceptance gate is that the tree wins
//! every op from 64 nodes up.
//!
//! Scale knobs (env): `COLL_MAX_NODES` (default 256), `COLL_FANOUT` (4),
//! `COLL_BCAST_BYTES` (4096), `COLL_LANES` (8), `COLL_ROUNDS` (3),
//! `COLL_OUT` (output path).

use knet::build::ClusterBuilder;
use knet::figures::{coll_fixture, CollFixture};
use knet::harness::{kbuf, KBuf};
use knet::world::ClusterWorld;
use knet_core::api::{
    channel_accept, channel_connect, channel_post_recv, channel_send, channel_send_to,
    channel_set_send_queue_cap,
};
use knet_core::{ChannelId, Endpoint, TransportKind};
use knet_gm::GmPortConfig;
use knet_simcore::{now, run_until, RunOutcome, SimTime};
use knet_simnic::ReduceOp;
use knet_simos::{Asid, CpuModel, NodeId};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Config {
    max_nodes: usize,
    fanout: usize,
    bcast_bytes: u64,
    lanes: usize,
    rounds: u64,
}

impl Config {
    fn from_env() -> Self {
        Config {
            max_nodes: env_u64("COLL_MAX_NODES", 256) as usize,
            fanout: (env_u64("COLL_FANOUT", 4) as usize).max(1),
            bcast_bytes: env_u64("COLL_BCAST_BYTES", 4096),
            lanes: (env_u64("COLL_LANES", 8) as usize).max(1),
            rounds: env_u64("COLL_ROUNDS", 3).max(1),
        }
    }
}

/// One rung of the ladder: average completion latency (µs of virtual
/// time) for each op on each path.
struct Rung {
    nodes: usize,
    tree_bcast_us: f64,
    tree_barrier_us: f64,
    tree_allreduce_us: f64,
    host_bcast_us: f64,
    host_barrier_us: f64,
    host_allreduce_us: f64,
}

fn micros(dt: SimTime) -> f64 {
    dt.secs() * 1e6
}

fn drain_all(w: &mut ClusterWorld, eps: &[Endpoint]) {
    let mut batch = Vec::new();
    for &ep in eps {
        w.take_events(ep, usize::MAX, &mut batch);
        batch.clear();
    }
}

fn await_all(w: &mut ClusterWorld, eps: &[Endpoint], what: &str) {
    let out = run_until(w, |w: &ClusterWorld| eps.iter().all(|&e| w.has_event(e)));
    assert_eq!(out, RunOutcome::Satisfied, "{what} stalled");
}

/// Wait until every endpoint in `eps` observed a `RecvDone` — the strict
/// form for scatter phases, where a member's queue may already hold its own
/// `SendDone` from the preceding gather (which `has_event` can't tell
/// apart). Consumes everything it pops.
fn await_recv_each(w: &mut ClusterWorld, eps: &[Endpoint], what: &str) {
    let mut batch = Vec::new();
    for &ep in eps {
        let mut got = false;
        while !got {
            let out = run_until(w, |w: &ClusterWorld| w.has_event(ep));
            assert_eq!(out, RunOutcome::Satisfied, "{what} stalled at {ep:?}");
            w.take_events(ep, usize::MAX, &mut batch);
            got = batch
                .iter()
                .any(|e| matches!(e.event, knet_core::TransportEvent::RecvDone { .. }));
        }
    }
}

// ---------------------------------------------------------------- NIC tree

/// Average per-round latency of the three collectives on the NIC tree.
fn tree_phase(cfg: &Config, n: usize) -> (f64, f64, f64) {
    use knet::prelude::{channel_barrier, channel_bcast, channel_reduce};
    let CollFixture {
        mut w,
        group,
        eps,
        bufs,
    } = coll_fixture(TransportKind::Gm, n, cfg.fanout);
    let payload: Vec<u8> = (0..cfg.bcast_bytes).map(|i| (i % 251) as u8).collect();
    w.os.node_mut(NodeId(0))
        .write_virt(Asid::KERNEL, bufs[0].addr, &payload)
        .unwrap();
    let lanes: Vec<u64> = (0..cfg.lanes as u64).collect();
    let (mut bc, mut ba, mut ar) = (0.0, 0.0, 0.0);
    // Round 0 is warm-up (link states, pools); measured rounds follow.
    for r in 0..=cfg.rounds {
        // Broadcast: complete when the root's aggregated ack arrives —
        // i.e. when every member's NIC acked its subtree.
        let t0 = now(&w);
        channel_bcast(&mut w, group, r, &bufs[0].iov(cfg.bcast_bytes)).unwrap();
        await_all(&mut w, &eps[..1], "tree bcast");
        let dt = now(&w) - t0;
        drain_all(&mut w, &eps);
        if r > 0 {
            bc += micros(dt);
        }

        // Barrier: complete when the release wave reached every member.
        let t0 = now(&w);
        for &ep in &eps {
            channel_barrier(&mut w, group, ep).unwrap();
        }
        await_all(&mut w, &eps, "tree barrier");
        let dt = now(&w) - t0;
        drain_all(&mut w, &eps);
        if r > 0 {
            ba += micros(dt);
        }

        // Allreduce: in-NIC fan-in reduce to the root, then the root
        // broadcasts the combined vector back down the same tree.
        let t0 = now(&w);
        for &ep in &eps {
            channel_reduce(&mut w, group, ep, ReduceOp::Sum, &lanes).unwrap();
        }
        await_all(&mut w, &eps[..1], "tree reduce");
        drain_all(&mut w, &eps);
        let result = vec![0xAAu8; cfg.lanes * 8];
        w.os.node_mut(NodeId(0))
            .write_virt(Asid::KERNEL, bufs[0].addr, &result)
            .unwrap();
        channel_bcast(
            &mut w,
            group,
            1_000_000 + r,
            &bufs[0].iov(result.len() as u64),
        )
        .unwrap();
        await_all(&mut w, &eps[..1], "tree allreduce bcast");
        let dt = now(&w) - t0;
        drain_all(&mut w, &eps);
        if r > 0 {
            ar += micros(dt);
        }
        // Restore the bcast payload for the next round.
        w.os.node_mut(NodeId(0))
            .write_virt(Asid::KERNEL, bufs[0].addr, &payload)
            .unwrap();
    }
    let rounds = cfg.rounds as f64;
    (bc / rounds, ba / rounds, ar / rounds)
}

// ---------------------------------------------------------------- host loop

struct HostWorld {
    w: ClusterWorld,
    /// One passive server-shaped channel at the root (scatter goes out via
    /// `channel_send_to`, gather recvs are posted on it), one connected
    /// channel per member, a payload buffer per member, and small
    /// root-side gather buffers.
    eps: Vec<Endpoint>,
    root_ep: Endpoint,
    root_ch: ChannelId,
    up: Vec<ChannelId>,
    member_bufs: Vec<KBuf>,
    gather_bufs: Vec<KBuf>,
    root_buf: KBuf,
}

fn host_world(cfg: &Config, n: usize) -> HostWorld {
    let mut w = ClusterBuilder::new()
        .nodes(n, CpuModel::xeon_2600())
        .mem_frames(32_768u32.max(n as u32 * 512))
        .build();
    let port = GmPortConfig::kernel().with_physical_api();
    let root_cq = w.new_cq();
    let root_ep = w.open_gm_cq(NodeId(0), port.clone(), root_cq).unwrap();
    let root_ch = channel_accept(&mut w, root_ep, root_cq);
    channel_set_send_queue_cap(&mut w, root_ch, n + 8);
    let root_buf = kbuf(&mut w, NodeId(0), cfg.bcast_bytes.max(cfg.lanes as u64 * 8));
    let (mut eps, mut up, mut member_bufs, mut gather_bufs) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for i in 1..n as u32 {
        let cq = w.new_cq();
        let ep = w.open_gm_cq(NodeId(i), port.clone(), cq).unwrap();
        up.push(channel_connect(&mut w, ep, root_ep, cq));
        member_bufs.push(kbuf(
            &mut w,
            NodeId(i),
            cfg.bcast_bytes.max(cfg.lanes as u64 * 8),
        ));
        gather_bufs.push(kbuf(&mut w, NodeId(0), cfg.lanes as u64 * 8));
        eps.push(ep);
    }
    HostWorld {
        w,
        eps,
        root_ep,
        root_ch,
        up,
        member_bufs,
        gather_bufs,
        root_buf,
    }
}

/// Average per-round latency of the three collectives staged by the host:
/// the root (or every member, toward the root) drives N-1 point-to-point
/// channel operations per collective step.
fn host_phase(cfg: &Config, n: usize) -> (f64, f64, f64) {
    let mut hw = host_world(cfg, n);
    let payload: Vec<u8> = (0..cfg.bcast_bytes).map(|i| (i % 251) as u8).collect();
    hw.w.os
        .node_mut(NodeId(0))
        .write_virt(Asid::KERNEL, hw.root_buf.addr, &payload)
        .unwrap();
    let (mut bc, mut ba, mut ar) = (0.0, 0.0, 0.0);
    let members = hw.eps.clone();
    let all_eps: Vec<Endpoint> = std::iter::once(hw.root_ep)
        .chain(members.iter().copied())
        .collect();
    // Count RecvDones at the root so gather phases wait for *all* N-1
    // arrivals, not just the first event on the root CQ.
    let gather_done = |w: &mut ClusterWorld,
                       root_ep: Endpoint,
                       want: usize,
                       batch: &mut Vec<knet_core::CqEntry>,
                       what: &str| {
        let mut got = 0usize;
        while got < want {
            let out = run_until(w, |w: &ClusterWorld| w.has_event(root_ep));
            assert_eq!(out, RunOutcome::Satisfied, "{what} stalled at {got}/{want}");
            batch.clear();
            w.take_events(root_ep, usize::MAX, batch);
            got += batch
                .iter()
                .filter(|e| matches!(e.event, knet_core::TransportEvent::RecvDone { .. }))
                .count();
        }
    };
    let mut batch = Vec::new();
    for r in 0..=cfg.rounds {
        let tag = 10 * r;
        // Host-staged broadcast: N-1 serial sends from the root.
        let t0 = now(&hw.w);
        for (i, &ep) in members.iter().enumerate() {
            channel_post_recv(
                &mut hw.w,
                hw.up[i],
                tag,
                hw.member_bufs[i].iov(cfg.bcast_bytes),
            )
            .unwrap();
            channel_send_to(
                &mut hw.w,
                hw.root_ch,
                ep,
                tag,
                hw.root_buf.iov(cfg.bcast_bytes),
            )
            .unwrap();
        }
        await_recv_each(&mut hw.w, &members, "host bcast");
        let dt = now(&hw.w) - t0;
        drain_all(&mut hw.w, &all_eps);
        if r > 0 {
            bc += micros(dt);
        }

        // Host-staged barrier: gather N-1 notifications at the root, then
        // scatter N-1 releases.
        let t0 = now(&hw.w);
        for (i, &ch) in hw.up.iter().enumerate() {
            channel_post_recv(&mut hw.w, hw.root_ch, tag + 1, hw.gather_bufs[i].iov(8)).unwrap();
            channel_send(&mut hw.w, ch, tag + 1, hw.member_bufs[i].iov(8)).unwrap();
        }
        gather_done(
            &mut hw.w,
            hw.root_ep,
            members.len(),
            &mut batch,
            "host barrier gather",
        );
        // The root observed every arrival; scatter the release.
        for (i, &ep) in members.iter().enumerate() {
            channel_post_recv(&mut hw.w, hw.up[i], tag + 2, hw.member_bufs[i].iov(8)).unwrap();
            channel_send_to(&mut hw.w, hw.root_ch, ep, tag + 2, hw.root_buf.iov(8)).unwrap();
        }
        await_recv_each(&mut hw.w, &members, "host barrier release");
        let dt = now(&hw.w) - t0;
        drain_all(&mut hw.w, &all_eps);
        if r > 0 {
            ba += micros(dt);
        }

        // Host-staged allreduce: gather N-1 lane vectors, combine at the
        // root (free in virtual time — conservative), scatter the result.
        let lane_bytes = cfg.lanes as u64 * 8;
        let t0 = now(&hw.w);
        for (i, &ch) in hw.up.iter().enumerate() {
            channel_post_recv(
                &mut hw.w,
                hw.root_ch,
                tag + 3,
                hw.gather_bufs[i].iov(lane_bytes),
            )
            .unwrap();
            channel_send(&mut hw.w, ch, tag + 3, hw.member_bufs[i].iov(lane_bytes)).unwrap();
        }
        gather_done(
            &mut hw.w,
            hw.root_ep,
            members.len(),
            &mut batch,
            "host allreduce gather",
        );
        for (i, &ep) in members.iter().enumerate() {
            channel_post_recv(
                &mut hw.w,
                hw.up[i],
                tag + 4,
                hw.member_bufs[i].iov(lane_bytes),
            )
            .unwrap();
            channel_send_to(
                &mut hw.w,
                hw.root_ch,
                ep,
                tag + 4,
                hw.root_buf.iov(lane_bytes),
            )
            .unwrap();
        }
        await_recv_each(&mut hw.w, &members, "host allreduce scatter");
        let dt = now(&hw.w) - t0;
        drain_all(&mut hw.w, &all_eps);
        if r > 0 {
            ar += micros(dt);
        }
    }
    let rounds = cfg.rounds as f64;
    (bc / rounds, ba / rounds, ar / rounds)
}

// ---------------------------------------------------------------- main

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "collectives: max_nodes={} fanout={} bcast_bytes={} lanes={} rounds={}",
        cfg.max_nodes, cfg.fanout, cfg.bcast_bytes, cfg.lanes, cfg.rounds
    );

    let ladder: Vec<usize> = [8usize, 16, 32, 64, 128, 256]
        .into_iter()
        .filter(|&n| n <= cfg.max_nodes)
        .collect();
    let mut rungs = Vec::new();
    for &n in &ladder {
        let (tb, tba, tar) = tree_phase(&cfg, n);
        let (hb, hba, har) = host_phase(&cfg, n);
        eprintln!(
            "n={n:3}: bcast {tb:8.1} vs {hb:8.1} µs ({:.2}x) | barrier {tba:8.1} vs {hba:8.1} µs ({:.2}x) | allreduce {tar:8.1} vs {har:8.1} µs ({:.2}x)",
            hb / tb, hba / tba, har / tar
        );
        rungs.push(Rung {
            nodes: n,
            tree_bcast_us: tb,
            tree_barrier_us: tba,
            tree_allreduce_us: tar,
            host_bcast_us: hb,
            host_barrier_us: hba,
            host_allreduce_us: har,
        });
    }

    // The acceptance gate: from 64 nodes up, the NIC tree wins all three.
    let mut wins_at_64_plus = true;
    for r in rungs.iter().filter(|r| r.nodes >= 64) {
        wins_at_64_plus &= r.tree_bcast_us < r.host_bcast_us
            && r.tree_barrier_us < r.host_barrier_us
            && r.tree_allreduce_us < r.host_allreduce_us;
    }
    if rungs.iter().any(|r| r.nodes >= 64) {
        assert!(
            wins_at_64_plus,
            "the NIC tree must beat the host-staged loop on every op at >= 64 nodes"
        );
    }

    // ---- JSON emit (hand-rolled; the workspace is offline) ----
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"collectives\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"fanout\": {}, \"bcast_bytes\": {}, \"lanes\": {}, \"rounds\": {}, \"transport\": \"gm\"}},\n",
        cfg.fanout, cfg.bcast_bytes, cfg.lanes, cfg.rounds
    ));
    json.push_str(
        "  \"unit\": \"virtual-time microseconds per collective, averaged over rounds\",\n",
    );
    json.push_str("  \"paths\": {\"tree\": \"NIC-resident k-ary tree (knet_coll over knet_simnic::coll)\", \"host\": \"root-driven point-to-point channel loop\"},\n");
    json.push_str("  \"points\": [\n");
    let body: Vec<String> = rungs
        .iter()
        .map(|r| {
            format!(
                "    {{\"nodes\": {}, \"bcast\": {{\"tree_us\": {:.2}, \"host_us\": {:.2}, \"speedup\": {:.2}}}, \"barrier\": {{\"tree_us\": {:.2}, \"host_us\": {:.2}, \"speedup\": {:.2}}}, \"allreduce\": {{\"tree_us\": {:.2}, \"host_us\": {:.2}, \"speedup\": {:.2}}}}}",
                r.nodes,
                r.tree_bcast_us, r.host_bcast_us, r.host_bcast_us / r.tree_bcast_us,
                r.tree_barrier_us, r.host_barrier_us, r.host_barrier_us / r.tree_barrier_us,
                r.tree_allreduce_us, r.host_allreduce_us, r.host_allreduce_us / r.tree_allreduce_us,
            )
        })
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"nic_tree_wins_at_64_plus\": {wins_at_64_plus}\n}}\n"
    ));

    let out = std::env::var("COLL_OUT").unwrap_or_else(|_| "BENCH_collectives.json".to_string());
    let out = if std::path::Path::new(&out).is_absolute() {
        std::path::PathBuf::from(out)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(out)
    };
    std::fs::write(&out, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("wrote {}", out.display());
}

//! Figure 7a/7b: ORFS on GM vs MX, direct and buffered file access.
fn main() {
    knet_bench::emit(&knet::figures::fig7(true));
    knet_bench::emit(&knet::figures::fig7(false));
}

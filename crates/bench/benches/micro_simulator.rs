//! Criterion microbenchmarks of the simulator itself (wall-clock): how fast
//! the engine executes events, how expensive the hot data structures are,
//! and the end-to-end cost of simulating one ping-pong. These guard the
//! figure regenerators against performance regressions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use knet::harness::{kbuf, transport_pingpong_us};
use knet::prelude::*;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.bench_function("schedule_and_run_10k_events", |b| {
        b.iter_batched(
            || (),
            |()| {
                // A self-contained world: chain 10 000 typed (arena,
                // allocation-free) events — the steady-state hot path.
                struct W {
                    sched: knet_simcore::Scheduler<W>,
                    n: u64,
                }
                enum Ev {
                    Tick,
                }
                impl knet_simcore::SimEvent<W> for Ev {
                    fn from_call(_f: Box<dyn FnOnce(&mut W) + Send>) -> Self {
                        unimplemented!("micro bench world has no boxed cold path")
                    }
                    fn run(self, w: &mut W) {
                        w.n += 1;
                    }
                }
                impl knet_simcore::SimWorld for W {
                    type Ev = Ev;
                    fn sched(&self) -> &knet_simcore::Scheduler<Self> {
                        &self.sched
                    }
                    fn sched_mut(&mut self) -> &mut knet_simcore::Scheduler<Self> {
                        &mut self.sched
                    }
                }
                let mut w = W {
                    sched: knet_simcore::Scheduler::new(),
                    n: 0,
                };
                for i in 0..10_000u64 {
                    knet_simcore::emit_at(&mut w, 0, SimTime::from_nanos(i), Ev::Tick);
                }
                knet_simcore::run_to_quiescence(&mut w);
                assert_eq!(w.n, 10_000);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("mx_pingpong_4k_x10", |b| {
        b.iter_batched(
            || {
                let (mut w, n0, n1) = two_nodes();
                let cq = w.new_cq();
                let a = w.open_mx_cq(n0, MxEndpointConfig::kernel(), cq).unwrap();
                let bb = w.open_mx_cq(n1, MxEndpointConfig::kernel(), cq).unwrap();
                let ka = kbuf(&mut w, n0, 4096);
                let kb = kbuf(&mut w, n1, 4096);
                (w, a, bb, ka, kb)
            },
            |(mut w, a, b2, ka, kb)| {
                let us = transport_pingpong_us(&mut w, a, b2, ka.iov(4096), kb.iov(4096), 10);
                assert!(us > 0.0);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("structures");
    g.sample_size(20);
    g.bench_function("ttable_insert_lookup_4k", |b| {
        use knet_simnic::{TransKey, TransTable};
        use knet_simos::{Asid, PhysAddr, VirtAddr};
        b.iter(|| {
            let mut t = TransTable::new(8192);
            for vpn in 0..4096u64 {
                t.insert(TransKey { asid: Asid(1), vpn }, PhysAddr::new(vpn << 12))
                    .unwrap();
            }
            let mut acc = 0u64;
            for vpn in 0..4096u64 {
                acc += t.lookup(Asid(1), VirtAddr::new(vpn << 12)).unwrap().raw();
            }
            acc
        })
    });
    g.bench_function("regcache_plan_commit_1k_pages", |b| {
        use knet_core::{RegCache, RegKey};
        use knet_simos::{Asid, FrameIdx, VirtAddr, PAGE_SIZE};
        b.iter(|| {
            let mut c = RegCache::new(2048);
            let plan = c.plan_range(Asid(1), VirtAddr::new(0), 1024 * PAGE_SIZE);
            for (i, p) in plan.missing.iter().enumerate() {
                c.commit(RegKey::of(Asid(1), *p), FrameIdx(i as u32));
            }
            // All hits the second time.
            let plan2 = c.plan_range(Asid(1), VirtAddr::new(0), 1024 * PAGE_SIZE);
            assert_eq!(plan2.hit_pages, 1024);
        })
    });
    g.bench_function("simfs_write_read_1mb", |b| {
        use knet_simfs::SimFs;
        let data = vec![0xA5u8; 1 << 20];
        b.iter(|| {
            let mut fs = SimFs::with_defaults();
            let ino = fs.create("/f", 0o644, SimTime::ZERO).unwrap();
            fs.write(ino, 0, &data, SimTime::ZERO).unwrap();
            let mut back = vec![0u8; 1 << 20];
            fs.read(ino, 0, &mut back, SimTime::ZERO).unwrap();
            back[0]
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_pingpong, bench_structures);
criterion_main!(benches);

//! Figure 8a/8b: SOCKETS-MX vs SOCKETS-GM on PCI-XE cards, plus the
//! TCP/IP-over-GigE baseline the paper references.
fn main() {
    knet_bench::emit(&knet::figures::fig8a());
    knet_bench::emit(&knet::figures::fig8b());
    knet_bench::emit(&knet::figures::tcp_baseline());
}

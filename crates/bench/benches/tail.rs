//! Tail-latency traffic benchmark: the multi-tenant send path under an
//! open-loop, heavy-tailed load.
//!
//! Two phases, both driven by `knet::workload` (tens of thousands of
//! logical clients with Pareto virtual-time arrivals, request→reply echo
//! latency per tenant):
//!
//! * **mixed** — four service-shaped tenant classes (zsock-sized chatter,
//!   ORFS-sized 4 kB ops, NBD-sized 32 kB bulk under a token bucket, and a
//!   light latency-sensitive RPC class) run concurrently; per-tenant
//!   p50/p99/p999 land in `BENCH_tail.json`.
//! * **isolation** — the noisy-neighbor experiment: the victim class runs
//!   alone (baseline), then next to a blast tenant offering **10× its
//!   token rate**. The report carries the victim's p99 inflation factor;
//!   the documented bound (5×, asserted by `tests/tenant_isolation.rs` and
//!   the CI smoke job) is emitted alongside so the JSON is self-checking.
//!
//! Everything is virtual-time deterministic per seed; wall-clock only
//! affects how long the bench takes, never the numbers.
//!
//! Scale knobs (env): `TAIL_SCALE_PCT` (client population percentage,
//! default 100 ⇒ ~20 000 clients), `TAIL_HORIZON_MS` (arrival window,
//! default 400), `TAIL_SEED` (default 0x7A11), `TAIL_SHARDS` (default 1:
//! sequential; >1 runs the sharded engine — same numbers, different
//! wall-clock), `TAIL_OUT` (output path, default `BENCH_tail.json`).

use knet::build::ClusterBuilder;
use knet::workload::{run_sharded, run_solo, ClassReport, ClassSpec, WorkloadSpec};
use knet_simcore::SimTime;
use knet_simos::{CpuModel, NodeId};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Config {
    scale_pct: u64,
    horizon_ms: u64,
    seed: u64,
    shards: usize,
}

impl Config {
    fn from_env() -> Self {
        Config {
            scale_pct: env_u64("TAIL_SCALE_PCT", 100).max(1),
            horizon_ms: env_u64("TAIL_HORIZON_MS", 400).max(10),
            seed: env_u64("TAIL_SEED", 0x7A11),
            shards: env_u64("TAIL_SHARDS", 1).max(1) as usize,
        }
    }

    fn clients(&self, base: u32) -> u32 {
        ((u64::from(base) * self.scale_pct) / 100).max(1) as u32
    }
}

fn builder() -> ClusterBuilder {
    ClusterBuilder::new()
        .nodes(3, CpuModel::xeon_2600())
        .mem_frames(65_536)
}

fn spec(cfg: &Config, classes: Vec<ClassSpec>) -> WorkloadSpec {
    WorkloadSpec {
        seed: cfg.seed,
        horizon: SimTime::from_millis(cfg.horizon_ms),
        server_node: NodeId(0),
        client_nodes: vec![NodeId(1), NodeId(2)],
        classes,
    }
}

/// The four service-shaped tenant classes of the mixed phase.
fn mixed_classes(cfg: &Config) -> Vec<ClassSpec> {
    vec![
        // zsock-style chatter: many clients, tiny messages, heavy tail.
        ClassSpec {
            name: "zsock-small".into(),
            weight: 4,
            rate_bytes_per_sec: 0,
            burst_bytes: 0,
            msg_bytes: 256,
            clients: cfg.clients(12_000),
            mean_gap: SimTime::from_millis(150),
            alpha_milli: 1300,
        },
        // ORFS-style metadata/IO ops: 4 kB payloads.
        ClassSpec {
            name: "orfs-4k".into(),
            weight: 4,
            rate_bytes_per_sec: 0,
            burst_bytes: 0,
            msg_bytes: 4096,
            clients: cfg.clients(3_000),
            mean_gap: SimTime::from_millis(300),
            alpha_milli: 1500,
        },
        // NBD-style bulk: 32 kB (MX medium ceiling) under a token bucket.
        ClassSpec {
            name: "nbd-32k".into(),
            weight: 2,
            rate_bytes_per_sec: 40_000_000,
            burst_bytes: 262_144,
            msg_bytes: 32_768,
            clients: cfg.clients(1_000),
            mean_gap: SimTime::from_millis(600),
            alpha_milli: 1900,
        },
        // The latency-sensitive class the isolation story protects.
        ClassSpec {
            name: "rpc-victim".into(),
            weight: 8,
            rate_bytes_per_sec: 0,
            burst_bytes: 0,
            msg_bytes: 512,
            clients: cfg.clients(4_000),
            mean_gap: SimTime::from_millis(400),
            alpha_milli: 1400,
        },
    ]
}

fn victim_class(cfg: &Config) -> ClassSpec {
    ClassSpec {
        name: "victim".into(),
        weight: 8,
        rate_bytes_per_sec: 0,
        burst_bytes: 0,
        msg_bytes: 512,
        clients: cfg.clients(256),
        mean_gap: SimTime::from_millis(40),
        alpha_milli: 1400,
    }
}

/// Token rate 4 MB/s; offered load ~40 MB/s — 10× the admitted rate.
fn blast_class(cfg: &Config) -> ClassSpec {
    ClassSpec {
        name: "blast".into(),
        weight: 1,
        rate_bytes_per_sec: 4_000_000,
        burst_bytes: 65_536,
        msg_bytes: 4096,
        clients: cfg.clients(512),
        mean_gap: SimTime::from_millis(52),
        alpha_milli: 1500,
    }
}

fn run(cfg: &Config, spec: &WorkloadSpec) -> Vec<ClassReport> {
    if cfg.shards > 1 {
        let mut shards = builder().build_sharded(cfg.shards);
        run_sharded(&mut shards, spec)
    } else {
        let mut w = builder().build();
        run_solo(&mut w, spec)
    }
}

fn report_json(r: &ClassReport, cls: &ClassSpec) -> String {
    format!(
        "{{\"name\": \"{}\", \"weight\": {}, \"clients\": {}, \"msg_bytes\": {}, \"rate_bytes_per_sec\": {}, \"sent\": {}, \"completed\": {}, \"shed\": {}, \"queue_full\": {}, \"failed\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"mean_us\": {:.1}, \"max_us\": {:.1}}}",
        r.name,
        cls.weight,
        r.clients,
        cls.msg_bytes,
        cls.rate_bytes_per_sec,
        r.sent,
        r.completed,
        r.shed,
        r.queue_full,
        r.failed,
        r.p50_us,
        r.p99_us,
        r.p999_us,
        r.mean_us,
        r.max_us
    )
}

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "tail: scale={}% horizon={}ms seed={:#x} shards={}",
        cfg.scale_pct, cfg.horizon_ms, cfg.seed, cfg.shards
    );

    // ---- mixed phase ----
    let mixed = mixed_classes(&cfg);
    let mixed_spec = spec(&cfg, mixed.clone());
    let mixed_reports = run(&cfg, &mixed_spec);
    for r in &mixed_reports {
        eprintln!(
            "mixed/{:<12} sent {:>6} done {:>6} shed {:>5}  p50 {:>9.1}us  p99 {:>9.1}us  p999 {:>9.1}us",
            r.name, r.sent, r.completed, r.shed, r.p50_us, r.p99_us, r.p999_us
        );
    }

    // ---- isolation phase ----
    let victim = victim_class(&cfg);
    let blast = blast_class(&cfg);
    let base_reports = run(&cfg, &spec(&cfg, vec![victim.clone()]));
    let cont_reports = run(&cfg, &spec(&cfg, vec![victim.clone(), blast.clone()]));
    let base_v = &base_reports[0];
    let cont_v = &cont_reports[0];
    let cont_b = &cont_reports[1];
    let inflation = if base_v.p99_us > 0.0 {
        cont_v.p99_us / base_v.p99_us
    } else {
        0.0
    };
    eprintln!(
        "isolation: victim p99 {:.1}us -> {:.1}us under blast ({:.2}x, bound 5.0x); blast shed {} of {}",
        base_v.p99_us, cont_v.p99_us, inflation, cont_b.shed, cont_b.sent
    );
    // Self-checking: the CI smoke job relies on this panic, and a full-scale
    // regeneration that breaches the documented bound should never commit.
    assert!(
        inflation <= 5.0,
        "victim p99 inflated {inflation:.2}x under the blast — beyond the documented 5.0x bound"
    );

    // ---- JSON emit (hand-rolled; the workspace is offline) ----
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"tail\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale_pct\": {}, \"horizon_ms\": {}, \"seed\": {}, \"shards\": {}}},\n",
        cfg.scale_pct, cfg.horizon_ms, cfg.seed, cfg.shards
    ));
    json.push_str("  \"mixed\": {\n    \"tenants\": [\n");
    let rows: Vec<String> = mixed_reports
        .iter()
        .zip(&mixed)
        .map(|(r, c)| format!("      {}", report_json(r, c)))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    ]\n  },\n");
    json.push_str("  \"isolation\": {\n");
    json.push_str(&format!(
        "    \"victim_baseline\": {},\n",
        report_json(base_v, &victim)
    ));
    json.push_str(&format!(
        "    \"victim_contended\": {},\n",
        report_json(cont_v, &victim)
    ));
    json.push_str(&format!(
        "    \"blast\": {},\n",
        report_json(cont_b, &blast)
    ));
    json.push_str(&format!(
        "    \"p99_inflation\": {inflation:.3},\n    \"documented_bound\": 5.0\n  }}\n}}\n"
    ));

    let out = std::env::var("TAIL_OUT").unwrap_or_else(|_| "BENCH_tail.json".to_string());
    let out = if std::path::Path::new(&out).is_absolute() {
        std::path::PathBuf::from(out)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(out)
    };
    std::fs::write(&out, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("wrote {}", out.display());
}

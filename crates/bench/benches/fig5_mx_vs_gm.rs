//! Figure 5a/5b: MX vs GM latency and bandwidth, user and kernel.
fn main() {
    knet_bench::emit(&knet::figures::fig5a());
    knet_bench::emit(&knet::figures::fig5b());
}

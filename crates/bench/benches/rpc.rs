//! The typed RPC layer and its tentpole consumer, measured.
//!
//! Two claims get numbers here, both in deterministic virtual time:
//!
//! * **Echo latency** — p50/p99 round-trip latency of `rpc_call` over MX
//!   for payloads across the eager window (small, medium, and just under
//!   the rendezvous cutoff), across a packet-loss ladder. The
//!   retry machinery is part of the measurement: at every surveyed loss
//!   rate each call must still *resolve successfully*, so the p99 column
//!   is exactly the price of the recovery schedule (attempt timers,
//!   backoff), not of abandoned calls.
//! * **Failover blackout** — the replicated KV store's write-availability
//!   gap when the primary's node is killed mid-workload: virtual time
//!   from the kill instant to (a) the backup's promotion and (b) the
//!   first write acked by the promoted primary, per loss rate. The
//!   chaos-suite invariants (every op resolves typed, linearizability
//!   check clean, zero engine errors) gate every rung.
//!
//! Results go to `BENCH_rpc.json`. Scale knobs (env): `RPC_CALLS`
//! (default 400 echo calls per point), `RPC_KV_PUTS` (default 120 writes
//! per failover rung), `RPC_OUT` (output path — CI's smoke job points it
//! at `BENCH_rpc.smoke.json` with the counts turned down).

use std::sync::{Arc, Mutex};

use knet::prelude::*;
use knet::ClusterEv;
use knet_simnic::FaultPlan;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Config {
    calls: usize,
    kv_puts: usize,
}

impl Config {
    fn from_env() -> Self {
        Config {
            calls: env_u64("RPC_CALLS", 400).max(32) as usize,
            kv_puts: env_u64("RPC_KV_PUTS", 120).max(40) as usize,
        }
    }
}

/// Payload sizes across the MX eager window: small (<128 B), medium, and
/// just under the 32 kB rendezvous cutoff. Requests ride the unexpected-
/// message (eager) path into the server, so the cutoff is also the RPC
/// request envelope — the large-message rendezvous protocol stays a
/// channel-layer affair.
const SIZES: &[u64] = &[64, 1024, 32_000];
const LOSS_PCTS: &[u64] = &[0, 1, 5, 10];

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

// ---------------------------------------------------------------- echo

struct EchoPoint {
    payload: u64,
    loss_pct: u64,
    calls: usize,
    pace_us: u64,
    p50_us: f64,
    p99_us: f64,
    retries: u64,
}

/// One (payload, loss) point: paced calls against an MX echo server, every
/// completion stamped in the sink (quiescence keeps draining stale timers
/// past the last resolution, so final `now()` is useless for latency).
fn echo_point(cfg: &Config, payload: u64, loss_pct: u64, seed: u64) -> EchoPoint {
    let mut w = ClusterBuilder::new()
        .nodes(2, CpuModel::xeon_2600())
        .mem_frames(32_768)
        .fault_plan(FaultPlan::new(seed).with_drop(loss_pct as f64 / 100.0))
        .build();
    let (n0, n1) = (NodeId(0), NodeId(1));
    let sep = w.open_mx(n1, MxEndpointConfig::kernel()).unwrap();
    let cep = w.open_mx(n0, MxEndpointConfig::kernel()).unwrap();
    rpc_server_create(
        &mut w,
        sep,
        "echo",
        RpcServerConfig::default(),
        |_w, _req, payload, resp| {
            resp.extend_from_slice(payload);
            RpcOutcome::Reply
        },
        |_w, _node| {},
    )
    .unwrap();

    // Completions stamped and collected in the sink so the 64-slot window
    // recycles under the paced load.
    type DoneRec = Arc<Mutex<Vec<(RpcCall, u64, bool)>>>;
    let done: DoneRec = Default::default();
    let sink = {
        let d = done.clone();
        RpcSink::Handler(Arc::new(
            move |w: &mut ClusterWorld, comp: RpcCompletion| {
                let t = now(w).nanos();
                let ok = comp.result.is_ok();
                if ok {
                    let mut scratch = Vec::new();
                    rpc_collect(w, comp.client, comp.call, &mut scratch);
                }
                d.lock().unwrap().push((comp.call, t, ok));
            },
        ))
    };
    let ccfg = RpcClientConfig {
        req_cap: payload + 128,
        resp_cap: payload + 128,
        policy: RetryPolicy {
            max_attempts: 6,
            attempt_timeout: SimTime::from_millis(2),
            ..Default::default()
        },
        ..Default::default()
    };
    let cid = rpc_client_create(&mut w, cep, sep, "bench", sink, ccfg).unwrap();

    // Pace calls below the window's service rate: ~16 ns/byte of eager
    // serialization means a 32 kB echo takes ~0.5 ms, so the inter-call
    // gap scales with the payload. Latency stays a property of one call,
    // not of a queue the bench itself built.
    let pace_us = 50 + payload / 50;
    let submits: Arc<Mutex<Vec<(RpcCall, u64)>>> = Default::default();
    let body: Vec<u8> = (0..payload).map(|i| (i % 251) as u8).collect();
    for i in 0..cfg.calls {
        let t = SimTime::from_micros(pace_us * (i as u64 + 1));
        let s = submits.clone();
        let body = body.clone();
        knet_simcore::emit_at(
            &mut w,
            0,
            t,
            ClusterEv::Call(Box::new(move |w: &mut ClusterWorld| {
                let at = now(w).nanos();
                if let Ok(call) = rpc_call(w, cid, 1, &body, RpcCallOpts::default()) {
                    s.lock().unwrap().push((call, at));
                }
            })),
        );
    }
    run_to_quiescence(&mut w);

    let submits = submits.lock().unwrap().clone();
    let done = done.lock().unwrap().clone();
    assert_eq!(
        submits.len(),
        cfg.calls,
        "payload={payload} loss={loss_pct}%: every paced call must submit"
    );
    assert_eq!(done.len(), cfg.calls, "every call resolves exactly once");
    assert!(
        done.iter().all(|&(_, _, ok)| ok),
        "payload={payload} loss={loss_pct}%: survivable loss must not fail calls"
    );
    assert_eq!(w.stats_snapshot().engine_errors, 0);

    let mut lat_ns: Vec<u64> = done
        .iter()
        .map(|&(call, t_done, _)| {
            let t_sub = submits
                .iter()
                .find(|&&(c, _)| c == call)
                .map(|&(_, t)| t)
                .expect("completion for an unknown call");
            t_done - t_sub
        })
        .collect();
    lat_ns.sort_unstable();
    EchoPoint {
        payload,
        loss_pct,
        calls: cfg.calls,
        pace_us,
        p50_us: percentile_us(&lat_ns, 0.50),
        p99_us: percentile_us(&lat_ns, 0.99),
        retries: rpc_client_stats(&w, cid).retries,
    }
}

// ---------------------------------------------------------------- failover

struct FailoverPoint {
    loss_pct: u64,
    puts: usize,
    promotion_us: f64,
    blackout_us: f64,
    acks: u64,
    failures: u64,
    reissues: u64,
}

/// One failover rung: the kv_chaos fixture (replica A on node 0, B on
/// node 1, client on node 2), primary killed at 1 ms into a paced write
/// workload. The run_until predicate samples the KV counters at every
/// event boundary to stamp the promotion and the first post-kill ack.
fn failover_point(cfg: &Config, loss_pct: u64, seed: u64) -> FailoverPoint {
    let kill_at = SimTime::from_millis(1);
    let plan = FaultPlan::new(seed)
        .with_drop(loss_pct as f64 / 100.0)
        .with_kill(NodeId(0), kill_at);
    let mut w = ClusterBuilder::new()
        .nodes(3, CpuModel::xeon_2600())
        .fault_plan(plan)
        .build();
    let (n0, n1, n2) = (NodeId(0), NodeId(1), NodeId(2));
    let ep = |w: &mut ClusterWorld, n| w.open_mx(n, MxEndpointConfig::kernel()).unwrap();

    let a_srv = ep(&mut w, n0);
    let b_srv = ep(&mut w, n1);
    let r0 = kv_replica_create(&mut w, a_srv, RpcServerConfig::default());
    let r1 = kv_replica_create(&mut w, b_srv, RpcServerConfig::default());
    let rpc_cfg = RpcClientConfig {
        policy: RetryPolicy {
            max_attempts: 4,
            attempt_timeout: SimTime::from_millis(2),
            ..Default::default()
        },
        ..Default::default()
    };
    let a_repl = ep(&mut w, n0);
    let b_repl = ep(&mut w, n1);
    kv_pair(&mut w, r0, a_repl, r1, b_repl, rpc_cfg);
    kv_add_shards(&mut w, 4, r0, Some(r1));
    let c0 = ep(&mut w, n2);
    let c1 = ep(&mut w, n2);
    let client = kv_client_create(&mut w, &[c0, c1], rpc_cfg);

    // Paced writes, every value unique, one each 50 µs.
    for i in 0..cfg.kv_puts {
        let t = SimTime::from_micros(50 * (i as u64 + 1));
        let key = format!("key-{}", i % 8).into_bytes();
        let val = format!("val-{i:04}").into_bytes();
        knet_simcore::emit_at(
            &mut w,
            2,
            t,
            ClusterEv::Call(Box::new(move |w: &mut ClusterWorld| {
                kv_put(w, client, &key, &val, None);
            })),
        );
    }

    // Track the blackout edges at every event boundary.
    let (mut acks_at_kill, mut promoted_at, mut first_ack_after) =
        (None::<u64>, None::<SimTime>, None::<SimTime>);
    let _ = run_until(&mut w, |w: &ClusterWorld| {
        let st = w.kv.stats;
        if acks_at_kill.is_none() && now(w) >= kill_at {
            acks_at_kill = Some(st.acks);
        }
        if promoted_at.is_none() && st.promotions >= 1 {
            promoted_at = Some(now(w));
        }
        if let (Some(base), Some(_), None) = (acks_at_kill, promoted_at, first_ack_after) {
            if st.acks > base {
                first_ack_after = Some(now(w));
            }
        }
        false
    });

    // The chaos-suite invariants gate the measurement.
    let label = format!("failover loss={loss_pct}%");
    assert_eq!(w.kv.outstanding_ops(), 0, "{label}: nothing hangs");
    let violations = kv_check(&w);
    assert!(
        violations.is_empty(),
        "{label}: linearizability-lite violations:\n{}",
        violations.join("\n")
    );
    assert_eq!(
        w.stats_snapshot().engine_errors,
        0,
        "{label}: engine errors"
    );
    assert!(w.kv.stats.promotions >= 1, "{label}: backup must promote");
    let promoted_at = promoted_at.expect("promotion observed");
    let first_ack_after = first_ack_after
        .unwrap_or_else(|| panic!("{label}: no write ever acked by the promoted primary"));

    FailoverPoint {
        loss_pct,
        puts: cfg.kv_puts,
        promotion_us: (promoted_at - kill_at).secs() * 1e6,
        blackout_us: (first_ack_after - kill_at).secs() * 1e6,
        acks: w.kv.stats.acks,
        failures: w.kv.stats.failures,
        reissues: w.kv.stats.reissues,
    }
}

// ---------------------------------------------------------------- main

fn main() {
    let cfg = Config::from_env();
    eprintln!("rpc: calls={} kv_puts={}", cfg.calls, cfg.kv_puts);

    let mut echo = Vec::new();
    for &payload in SIZES {
        for &loss in LOSS_PCTS {
            let p = echo_point(&cfg, payload, loss, 0xEC40 ^ (payload << 8) ^ loss);
            eprintln!(
                "echo payload={:6} loss={:2}%: p50 {:8.1} µs  p99 {:8.1} µs  retries {}",
                p.payload, p.loss_pct, p.p50_us, p.p99_us, p.retries
            );
            echo.push(p);
        }
    }

    let mut failover = Vec::new();
    for &loss in LOSS_PCTS {
        let p = failover_point(&cfg, loss, 0xFA11 ^ (loss << 4));
        eprintln!(
            "failover loss={:2}%: promotion {:8.1} µs  blackout {:8.1} µs  acks {}  failures {}  reissues {}",
            p.loss_pct, p.promotion_us, p.blackout_us, p.acks, p.failures, p.reissues
        );
        failover.push(p);
    }

    // Sanity on the headline shape: lossless p99 must sit far below the
    // first retry timer (a clean fabric never waits on the recovery
    // schedule), and every blackout is bounded by the retry budget the
    // client runs on (4 attempts × 2 ms, plus reissue delay).
    let clean_p99 = echo
        .iter()
        .filter(|p| p.loss_pct == 0)
        .map(|p| p.p99_us)
        .fold(0.0f64, f64::max);
    assert!(
        clean_p99 < 2_000.0,
        "lossless p99 ({clean_p99} µs) crossed the 2 ms attempt timer — \
         clean-fabric calls must never ride the retry schedule"
    );
    for p in &failover {
        assert!(
            p.blackout_us < 60_000.0,
            "blackout at loss={}% ({} µs) exceeds the failover budget",
            p.loss_pct,
            p.blackout_us
        );
    }

    // ---- JSON emit (hand-rolled; the workspace is offline) ----
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"rpc\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"calls\": {}, \"kv_puts\": {}, \"transport\": \"mx\", \"retry\": {{\"max_attempts\": 6, \"attempt_timeout_ms\": 2}}}},\n",
        cfg.calls, cfg.kv_puts
    ));
    json.push_str("  \"unit\": \"virtual-time microseconds\",\n");
    json.push_str("  \"echo\": [\n");
    let body: Vec<String> = echo
        .iter()
        .map(|p| {
            format!(
                "    {{\"payload\": {}, \"loss_pct\": {}, \"calls\": {}, \"pace_us\": {}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"retries\": {}}}",
                p.payload, p.loss_pct, p.calls, p.pace_us, p.p50_us, p.p99_us, p.retries
            )
        })
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"failover\": [\n");
    let body: Vec<String> = failover
        .iter()
        .map(|p| {
            format!(
                "    {{\"loss_pct\": {}, \"puts\": {}, \"kill_ms\": 1, \"promotion_us\": {:.2}, \"blackout_us\": {:.2}, \"acks\": {}, \"failures\": {}, \"reissues\": {}}}",
                p.loss_pct, p.puts, p.promotion_us, p.blackout_us, p.acks, p.failures, p.reissues
            )
        })
        .collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = std::env::var("RPC_OUT").unwrap_or_else(|_| "BENCH_rpc.json".to_string());
    let out = if std::path::Path::new(&out).is_absolute() {
        std::path::PathBuf::from(out)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(out)
    };
    std::fs::write(&out, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("wrote {}", out.display());
}

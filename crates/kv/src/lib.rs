//! # knet-kv — a replicated in-memory KV store, built only on `knet-rpc`
//!
//! The proof-of-API consumer for the typed RPC layer: a sharded
//! primary/backup key-value store that survives node kills.
//!
//! * **Writes go through the shard's primary**, which applies locally and
//!   replicates **synchronously** to the backup over a second, deferred
//!   RPC (`REPL`) before acknowledging the client — the caller's deadline
//!   propagates through both hops.
//! * **Reads go to any replica** of the shard (spread deterministically
//!   across primary and backup; a failed read retries on the other side).
//! * **Epoch-numbered failover**: the shard map (modelling an external
//!   configuration service) carries an epoch per shard; every request
//!   carries the client's believed epoch, and replicas answer
//!   `WRONG_EPOCH` when it is stale. When a primary's node is killed, the
//!   backup promotes (epoch bump), clients re-resolve the map and reissue
//!   with the **same idempotency key**, so a write that already executed
//!   is answered from the reply cache instead of applied twice.
//! * **Typed failure handling end to end**: every client operation
//!   resolves with a value or a typed error; `PeerUnreachable` feeds the
//!   failure detector, `Overload`/`WRONG_EPOCH` reissue with bounded
//!   attempts, `Deadline`/`Cancelled` are terminal.
//!
//! The crate never touches `channel_send`/`channel_post_recv` directly —
//! that is the point (and CI greps for it): the RPC layer is a sufficient
//! substrate for a replicated service.
//!
//! [`kv_check`] implements a linearizability-lite audit over the recorded
//! history: acked writes must be readable from the surviving primary at
//! their acked sequence number or later, and no unacked write may
//! resurrect over a later acked one.

use std::collections::BTreeMap;
use std::sync::Arc;

use knet_core::{Endpoint, RpcError};
use knet_rpc::{
    rpc_call, rpc_client_create, rpc_collect, rpc_server_create, rpc_server_reply, RpcCall,
    RpcCallOpts, RpcClientConfig, RpcClientId, RpcCompletion, RpcOutcome, RpcRequest,
    RpcServerConfig, RpcServerId, RpcSink, RpcWorld,
};
use knet_simcore::{emit_after, now, SimEvent, SimTime};
use knet_simos::NodeId;

/// KV method numbers on the RPC wire.
pub const METHOD_GET: u16 = 1;
pub const METHOD_PUT: u16 = 2;
/// Primary→backup replication (internal).
pub const METHOD_REPL: u16 = 3;

/// KV-level reply status (first payload byte of every KV response).
pub const KV_OK: u8 = 0;
pub const KV_NOT_FOUND: u8 = 1;
/// The request carried a stale epoch, or reached a replica that no longer
/// holds the role the client assumed: re-resolve the shard map and retry.
pub const KV_WRONG_EPOCH: u8 = 2;

// --------------------------------------------------------------- identifiers

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KvReplicaId(pub u32);

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KvClientId(pub u32);

/// Globally monotonic operation id (issue order — the history axis).
pub type KvOpId = u64;

// -------------------------------------------------------------- typed events

/// KV-layer typed engine events, lifted by the composed world like RPC's.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KvEv {
    /// Reissue a waiting operation (failure-triggered, paced by
    /// [`KvConfig::retry_delay`] so a dead primary is not hot-looped).
    Reissue { client: u32, op: u32 },
}

/// Execute one KV-layer event.
pub fn run_kv_ev<W: KvWorld>(w: &mut W, ev: KvEv) {
    match ev {
        KvEv::Reissue { client, op } => {
            let waiting = {
                let kv = w.kv();
                matches!(
                    kv.clients
                        .get(client as usize)
                        .and_then(|c| c.ops.get(op as usize)),
                    Some(o) if o.state == OpState::Waiting
                )
            };
            let node = w.kv().clients[client as usize].node;
            if waiting && !host_dead(w, node) {
                issue(w, client, op);
            }
        }
    }
}

/// World capability: hosts the KV layer (on top of the RPC layer).
pub trait KvWorld: RpcWorld {
    fn kv(&self) -> &KvLayer;
    fn kv_mut(&mut self) -> &mut KvLayer;

    /// Wrap a KV event into the world's typed event enum; the composed
    /// world overrides the boxing default with an enum variant.
    fn lift_kv(ev: KvEv) -> <Self as knet_simcore::SimWorld>::Ev {
        SimEvent::from_call(Box::new(move |w: &mut Self| run_kv_ev(w, ev)))
    }
}

// -------------------------------------------------------------------- layer

/// One shard's entry in the epoch-numbered map. The map lives in the
/// layer, modelling the external configuration service every party can
/// consult; `epoch` fences deposed roles — a request or replication
/// carrying a stale epoch is rejected, never silently applied.
#[derive(Clone, Copy, Debug)]
pub struct Shard {
    pub epoch: u64,
    pub primary: u32,
    pub backup: Option<u32>,
    /// Next write sequence number. Only the current primary assigns from
    /// it, and it survives failovers, so a promoted backup's writes
    /// always order after everything the old primary handed out.
    pub next_seq: u64,
}

struct PendingRepl {
    token: u64,
    seq: u64,
}

struct Replica {
    node: NodeId,
    server: RpcServerId,
    server_ep: Endpoint,
    /// The one replica this one replicates to / receives from.
    partner: Option<u32>,
    repl_client: Option<RpcClientId>,
    store: BTreeMap<Vec<u8>, (u64, Vec<u8>)>,
    /// In-flight REPL call → the deferred client-reply token it answers.
    pending_repl: BTreeMap<RpcCall, PendingRepl>,
    alive: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OpKind {
    Get,
    Put,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OpState {
    InFlight,
    Waiting,
    Done,
}

struct KvOp {
    id: KvOpId,
    kind: OpKind,
    key: Vec<u8>,
    val: Vec<u8>,
    idem: u64,
    deadline: Option<SimTime>,
    attempts: u32,
    state: OpState,
}

struct KvClient {
    node: NodeId,
    /// One RPC client per replica (reads go to any of them).
    rpc: Vec<RpcClientId>,
    /// (replica, rpc call) → op slot.
    inflight: BTreeMap<(u32, RpcCall), u32>,
    ops: Vec<KvOp>,
}

/// A finished client operation, in completion order.
#[derive(Clone, Debug)]
pub struct KvOutcome {
    pub client: KvClientId,
    pub op: KvOpId,
    pub key: Vec<u8>,
    pub result: Result<KvResult, RpcError>,
}

#[derive(Clone, Debug)]
pub enum KvResult {
    Get { found: bool, seq: u64, val: Vec<u8> },
    Put { seq: u64 },
}

#[derive(Clone, Copy, Debug, Default)]
pub struct KvStats {
    pub puts: u64,
    pub gets: u64,
    pub acks: u64,
    pub failures: u64,
    pub reissues: u64,
    pub wrong_epoch: u64,
    pub promotions: u64,
    pub solo_demotions: u64,
    pub repl_applied: u64,
    pub repl_rejected: u64,
}

#[derive(Clone, Copy, Debug)]
pub struct KvConfig {
    /// Reissue budget per operation (on top of the RPC layer's own
    /// retransmissions).
    pub op_retries: u32,
    /// Pause before reissuing a failed operation, so failover has time to
    /// converge and a dead primary is not hot-looped.
    pub retry_delay: SimTime,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            op_retries: 8,
            retry_delay: SimTime::from_millis(1),
        }
    }
}

/// All KV state in a world.
pub struct KvLayer {
    pub cfg: KvConfig,
    pub shards: Vec<Shard>,
    replicas: Vec<Replica>,
    clients: Vec<KvClient>,
    /// Completed operations, in completion order (the history record).
    pub outcomes: Vec<KvOutcome>,
    /// Every issued put: (op, key, value) in issue order.
    pub issued_puts: Vec<(KvOpId, Vec<u8>, Vec<u8>)>,
    pub stats: KvStats,
    next_op: u64,
    next_idem: u64,
    scratch: Vec<u8>,
    collect_buf: Vec<u8>,
}

impl Default for KvLayer {
    fn default() -> Self {
        KvLayer {
            cfg: KvConfig::default(),
            shards: Vec::new(),
            replicas: Vec::new(),
            clients: Vec::new(),
            outcomes: Vec::new(),
            issued_puts: Vec::new(),
            stats: KvStats::default(),
            next_op: 0,
            next_idem: 1,
            scratch: Vec::new(),
            collect_buf: Vec::new(),
        }
    }
}

impl KvLayer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    fn shard_of(&self, key: &[u8]) -> u32 {
        (fnv1a(key) % self.shards.len() as u64) as u32
    }

    pub fn replica_alive(&self, r: KvReplicaId) -> bool {
        self.replicas[r.0 as usize].alive
    }

    /// The RPC server a replica answers on (for stats drill-down).
    pub fn replica_server(&self, r: KvReplicaId) -> RpcServerId {
        self.replicas[r.0 as usize].server
    }

    /// A replica's current store contents (key, seq, value), sorted by
    /// key — deterministic, for dumps and fingerprints.
    pub fn store_dump(&self, r: KvReplicaId) -> Vec<(Vec<u8>, u64, Vec<u8>)> {
        self.replicas[r.0 as usize]
            .store
            .iter()
            .map(|(k, (s, v))| (k.clone(), *s, v.clone()))
            .collect()
    }

    /// Ops not yet resolved across all clients.
    pub fn outstanding_ops(&self) -> usize {
        self.clients
            .iter()
            .flat_map(|c| c.ops.iter())
            .filter(|o| o.state != OpState::Done)
            .count()
    }
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// -------------------------------------------------------------- wire codecs
//
// KV payloads ride inside RPC payloads; all little-endian, hand-rolled
// like the RPC codec itself.
//
//   get  req : epoch u64 | klen u16 | key
//   put  req : epoch u64 | klen u16 | vlen u32 | key | val
//   repl req : epoch u64 | seq u64 | klen u16 | vlen u32 | key | val
//   get  resp: status u8 | seq u64 | vlen u32 | val
//   put/repl resp: status u8 | seq u64

fn enc_get(out: &mut Vec<u8>, epoch: u64, key: &[u8]) {
    out.clear();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
}

fn dec_get(buf: &[u8]) -> Option<(u64, &[u8])> {
    if buf.len() < 10 {
        return None;
    }
    let epoch = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let klen = u16::from_le_bytes(buf[8..10].try_into().ok()?) as usize;
    Some((epoch, buf.get(10..10 + klen)?))
}

fn enc_put(out: &mut Vec<u8>, epoch: u64, key: &[u8], val: &[u8]) {
    out.clear();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&(val.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(val);
}

fn dec_put(buf: &[u8]) -> Option<(u64, &[u8], &[u8])> {
    if buf.len() < 14 {
        return None;
    }
    let epoch = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let klen = u16::from_le_bytes(buf[8..10].try_into().ok()?) as usize;
    let vlen = u32::from_le_bytes(buf[10..14].try_into().ok()?) as usize;
    let key = buf.get(14..14 + klen)?;
    let val = buf.get(14 + klen..14 + klen + vlen)?;
    Some((epoch, key, val))
}

fn enc_repl(out: &mut Vec<u8>, epoch: u64, seq: u64, key: &[u8], val: &[u8]) {
    out.clear();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&(val.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(val);
}

fn dec_repl(buf: &[u8]) -> Option<(u64, u64, &[u8], &[u8])> {
    if buf.len() < 22 {
        return None;
    }
    let epoch = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let seq = u64::from_le_bytes(buf[8..16].try_into().ok()?);
    let klen = u16::from_le_bytes(buf[16..18].try_into().ok()?) as usize;
    let vlen = u32::from_le_bytes(buf[18..22].try_into().ok()?) as usize;
    let key = buf.get(22..22 + klen)?;
    let val = buf.get(22 + klen..22 + klen + vlen)?;
    Some((epoch, seq, key, val))
}

fn enc_status_seq(out: &mut Vec<u8>, status: u8, seq: u64) {
    out.clear();
    out.push(status);
    out.extend_from_slice(&seq.to_le_bytes());
}

fn dec_status_seq(buf: &[u8]) -> Option<(u8, u64)> {
    if buf.len() < 9 {
        return None;
    }
    Some((buf[0], u64::from_le_bytes(buf[1..9].try_into().ok()?)))
}

fn enc_get_resp(out: &mut Vec<u8>, status: u8, seq: u64, val: &[u8]) {
    out.clear();
    out.push(status);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(val.len() as u32).to_le_bytes());
    out.extend_from_slice(val);
}

fn dec_get_resp(buf: &[u8]) -> Option<(u8, u64, &[u8])> {
    if buf.len() < 13 {
        return None;
    }
    let status = buf[0];
    let seq = u64::from_le_bytes(buf[1..9].try_into().ok()?);
    let vlen = u32::from_le_bytes(buf[9..13].try_into().ok()?) as usize;
    Some((status, seq, buf.get(13..13 + vlen)?))
}

// -------------------------------------------------------------------- setup

/// Create a replica: one RPC server on `server_ep` running the KV
/// service. Pair it with its replication partner via [`kv_pair`] before
/// assigning shards that use a backup.
pub fn kv_replica_create<W: KvWorld>(
    w: &mut W,
    server_ep: Endpoint,
    server_cfg: RpcServerConfig,
) -> KvReplicaId {
    let rid = KvReplicaId(w.kv().replicas.len() as u32);
    let r = rid.0;
    let server = rpc_server_create(
        w,
        server_ep,
        &format!("kv-replica-{}", r),
        server_cfg,
        move |w, req, payload, resp| kv_service(w, r, req, payload, resp),
        move |w, node| {
            // Observations from a killed host are void: its reliability
            // timers still fire locally, but dead hosts don't vote.
            let me = w.kv().replicas[r as usize].node;
            if !host_dead(w, me) {
                kv_on_node_down(w, node);
            }
        },
    )
    .expect("kv replica server");
    w.kv_mut().replicas.push(Replica {
        node: server_ep.node,
        server,
        server_ep,
        partner: None,
        repl_client: None,
        store: BTreeMap::new(),
        pending_repl: BTreeMap::new(),
        alive: true,
    });
    rid
}

/// Make `a` and `b` replication partners: each gets an RPC client (on its
/// own `repl_ep`) toward the other's server, used for `REPL` traffic.
pub fn kv_pair<W: KvWorld>(
    w: &mut W,
    a: KvReplicaId,
    a_repl_ep: Endpoint,
    b: KvReplicaId,
    b_repl_ep: Endpoint,
    rpc_cfg: RpcClientConfig,
) {
    for (me, my_ep, other) in [(a, a_repl_ep, b), (b, b_repl_ep, a)] {
        let other_server = w.kv().replicas[other.0 as usize].server_ep;
        let rid = me.0;
        let sink = RpcSink::Handler(Arc::new(move |w: &mut W, comp: RpcCompletion| {
            kv_on_repl_done(w, rid, comp)
        }));
        let rc = rpc_client_create(
            w,
            my_ep,
            other_server,
            &format!("kv-repl-{}-to-{}", me.0, other.0),
            sink,
            rpc_cfg,
        )
        .expect("kv repl client");
        let kv = w.kv_mut();
        kv.replicas[me.0 as usize].partner = Some(other.0);
        kv.replicas[me.0 as usize].repl_client = Some(rc);
    }
}

/// Append `count` shards, all primaried on `primary` with `backup` as the
/// synchronous replica.
pub fn kv_add_shards<W: KvWorld>(
    w: &mut W,
    count: u32,
    primary: KvReplicaId,
    backup: Option<KvReplicaId>,
) {
    let kv = w.kv_mut();
    for _ in 0..count {
        kv.shards.push(Shard {
            epoch: 1,
            primary: primary.0,
            backup: backup.map(|b| b.0),
            next_seq: 1,
        });
    }
}

/// Create a KV client. `eps[i]` is the client-local endpoint used for the
/// RPC client toward replica `i`; one entry per existing replica.
pub fn kv_client_create<W: KvWorld>(
    w: &mut W,
    eps: &[Endpoint],
    rpc_cfg: RpcClientConfig,
) -> KvClientId {
    assert_eq!(
        eps.len(),
        w.kv().replicas.len(),
        "one client endpoint per replica"
    );
    let cid = KvClientId(w.kv().clients.len() as u32);
    w.kv_mut().clients.push(KvClient {
        node: eps[0].node,
        rpc: Vec::new(),
        inflight: BTreeMap::new(),
        ops: Vec::new(),
    });
    for (i, &ep) in eps.iter().enumerate() {
        let server_ep = w.kv().replicas[i].server_ep;
        let (c, r) = (cid.0, i as u32);
        let sink = RpcSink::Handler(Arc::new(move |w: &mut W, comp: RpcCompletion| {
            kv_on_rpc_done(w, c, r, comp)
        }));
        let rc = rpc_client_create(
            w,
            ep,
            server_ep,
            &format!("kv-cli-{}-r{}", cid.0, i),
            sink,
            rpc_cfg,
        )
        .expect("kv client rpc");
        w.kv_mut().clients[cid.0 as usize].rpc.push(rc);
    }
    cid
}

// ---------------------------------------------------------------- client ops

/// Issue a write. Resolution arrives later as a [`KvOutcome`]; acked
/// writes carry the primary-assigned sequence number.
pub fn kv_put<W: KvWorld>(
    w: &mut W,
    cid: KvClientId,
    key: &[u8],
    val: &[u8],
    deadline: Option<SimTime>,
) -> KvOpId {
    let (op_id, op_slot) = {
        let kv = w.kv_mut();
        let op_id = kv.next_op;
        kv.next_op += 1;
        let idem = kv.next_idem;
        kv.next_idem += 1;
        kv.stats.puts += 1;
        kv.issued_puts.push((op_id, key.to_vec(), val.to_vec()));
        let c = &mut kv.clients[cid.0 as usize];
        let slot = c.ops.len() as u32;
        c.ops.push(KvOp {
            id: op_id,
            kind: OpKind::Put,
            key: key.to_vec(),
            val: val.to_vec(),
            idem,
            deadline,
            attempts: 0,
            state: OpState::Waiting,
        });
        (op_id, slot)
    };
    issue(w, cid.0, op_slot);
    op_id
}

/// Issue a read; served by any live replica of the key's shard.
pub fn kv_get<W: KvWorld>(
    w: &mut W,
    cid: KvClientId,
    key: &[u8],
    deadline: Option<SimTime>,
) -> KvOpId {
    let (op_id, op_slot) = {
        let kv = w.kv_mut();
        let op_id = kv.next_op;
        kv.next_op += 1;
        kv.stats.gets += 1;
        let c = &mut kv.clients[cid.0 as usize];
        let slot = c.ops.len() as u32;
        c.ops.push(KvOp {
            id: op_id,
            kind: OpKind::Get,
            key: key.to_vec(),
            val: Vec::new(),
            idem: 0,
            deadline,
            attempts: 0,
            state: OpState::Waiting,
        });
        (op_id, slot)
    };
    issue(w, cid.0, op_slot);
    op_id
}

/// Route and submit one operation attempt through the RPC layer.
fn issue<W: KvWorld>(w: &mut W, cid: u32, op_slot: u32) {
    let routed = {
        let kv = w.kv_mut();
        let mut scratch = std::mem::take(&mut kv.scratch);
        let c = &kv.clients[cid as usize];
        let o = &c.ops[op_slot as usize];
        let shard = kv.shard_of(&o.key);
        let sh = kv.shards[shard as usize];
        // Writes go through the primary; reads spread deterministically
        // over the shard's replicas (op id + attempt picks the side, so a
        // failed read retries on the other replica).
        let replica = match o.kind {
            OpKind::Put => sh.primary,
            OpKind::Get => match sh.backup {
                Some(b) if (o.id + o.attempts as u64) % 2 == 1 => b,
                _ => sh.primary,
            },
        };
        if !kv.replicas[replica as usize].alive {
            kv.scratch = scratch;
            None
        } else {
            let method = match o.kind {
                OpKind::Get => {
                    enc_get(&mut scratch, sh.epoch, &o.key);
                    METHOD_GET
                }
                OpKind::Put => {
                    enc_put(&mut scratch, sh.epoch, &o.key, &o.val);
                    METHOD_PUT
                }
            };
            let rpc_cid = c.rpc[replica as usize];
            let opts = RpcCallOpts {
                deadline: o.deadline,
                idem: o.idem,
            };
            Some((replica, rpc_cid, method, scratch, opts))
        }
    };
    let Some((replica, rpc_cid, method, scratch, opts)) = routed else {
        // The routed replica is known-dead and no promotion has filled
        // the role yet: count the attempt and wait for the map to
        // converge (or the budget to run out).
        retry_or_fail(w, cid, op_slot, RpcError::PeerUnreachable);
        return;
    };
    let res = rpc_call(w, rpc_cid, method, &scratch, opts);
    w.kv_mut().scratch = scratch;
    match res {
        Ok(call) => {
            let c = &mut w.kv_mut().clients[cid as usize];
            c.ops[op_slot as usize].state = OpState::InFlight;
            c.inflight.insert((replica, call), op_slot);
        }
        Err(e) => retry_or_fail(w, cid, op_slot, e),
    }
}

fn finish<W: KvWorld>(w: &mut W, cid: u32, op_slot: u32, result: Result<KvResult, RpcError>) {
    let kv = w.kv_mut();
    match &result {
        Ok(KvResult::Put { .. }) => kv.stats.acks += 1,
        Ok(KvResult::Get { .. }) => {}
        Err(_) => kv.stats.failures += 1,
    }
    let c = &mut kv.clients[cid as usize];
    let o = &mut c.ops[op_slot as usize];
    o.state = OpState::Done;
    let outcome = KvOutcome {
        client: KvClientId(cid),
        op: o.id,
        key: o.key.clone(),
        result,
    };
    kv.outcomes.push(outcome);
}

fn retry_or_fail<W: KvWorld>(w: &mut W, cid: u32, op_slot: u32, e: RpcError) {
    let decision = {
        let kv = w.kv_mut();
        let retries = kv.cfg.op_retries;
        let delay = kv.cfg.retry_delay;
        let c = &mut kv.clients[cid as usize];
        let node = c.node;
        let o = &mut c.ops[op_slot as usize];
        o.attempts += 1;
        if o.attempts > retries {
            None
        } else {
            o.state = OpState::Waiting;
            kv.stats.reissues += 1;
            Some((node, delay))
        }
    };
    match decision {
        Some((node, delay)) => emit_after(
            w,
            node.0,
            delay,
            W::lift_kv(KvEv::Reissue {
                client: cid,
                op: op_slot,
            }),
        ),
        None => finish(w, cid, op_slot, Err(e)),
    }
}

/// An RPC toward a replica resolved — map it back onto the KV operation.
fn kv_on_rpc_done<W: KvWorld>(w: &mut W, cid: u32, replica: u32, comp: RpcCompletion) {
    let client_node = w.kv().clients[cid as usize].node;
    if host_dead(w, client_node) {
        w.kv_mut().clients[cid as usize]
            .inflight
            .remove(&(replica, comp.call));
        return;
    }
    let Some(op_slot) = w
        .kv_mut()
        .clients
        .get_mut(cid as usize)
        .and_then(|c| c.inflight.remove(&(replica, comp.call)))
    else {
        return;
    };
    match comp.result {
        Ok(_len) => {
            let mut buf = std::mem::take(&mut w.kv_mut().collect_buf);
            rpc_collect(w, comp.client, comp.call, &mut buf);
            let kind = w.kv().clients[cid as usize].ops[op_slot as usize].kind;
            let parsed = match kind {
                OpKind::Put => {
                    dec_status_seq(&buf).map(|(status, seq)| (status, KvResult::Put { seq }))
                }
                OpKind::Get => dec_get_resp(&buf).map(|(status, seq, val)| {
                    (
                        status,
                        KvResult::Get {
                            found: status == KV_OK,
                            seq,
                            val: val.to_vec(),
                        },
                    )
                }),
            };
            w.kv_mut().collect_buf = buf;
            match parsed {
                Some((KV_WRONG_EPOCH, _)) => {
                    // Stale routing: the map moved under us. Re-resolve
                    // and reissue (same idempotency key — an already
                    // executed write is answered from the reply cache).
                    w.kv_mut().stats.wrong_epoch += 1;
                    retry_or_fail(w, cid, op_slot, RpcError::PeerUnreachable);
                }
                Some((_, r)) => finish(w, cid, op_slot, Ok(r)),
                None => finish(w, cid, op_slot, Err(RpcError::VersionMismatch)),
            }
        }
        Err(RpcError::PeerUnreachable) => {
            // Feed the failure detector (models the config service
            // learning of the death), then reissue against the new map.
            kv_report_dead(w, replica);
            retry_or_fail(w, cid, op_slot, RpcError::PeerUnreachable);
        }
        Err(RpcError::Overload) => retry_or_fail(w, cid, op_slot, RpcError::Overload),
        // Deadline and Cancelled are terminal by contract;
        // VersionMismatch means a broken deployment — surface it.
        Err(e) => finish(w, cid, op_slot, Err(e)),
    }
}

// ------------------------------------------------------------- replica side

/// The KV service function, dispatched by the replica's RPC server.
fn kv_service<W: KvWorld>(
    w: &mut W,
    rid: u32,
    req: RpcRequest,
    payload: &[u8],
    resp: &mut Vec<u8>,
) -> RpcOutcome {
    match req.method {
        METHOD_GET => {
            let Some((epoch, key)) = dec_get(payload) else {
                return RpcOutcome::Err(RpcError::VersionMismatch);
            };
            let kv = w.kv_mut();
            let shard = kv.shard_of(key);
            let sh = kv.shards[shard as usize];
            if epoch != sh.epoch || (sh.primary != rid && sh.backup != Some(rid)) {
                enc_get_resp(resp, KV_WRONG_EPOCH, 0, &[]);
                return RpcOutcome::Reply;
            }
            match kv.replicas[rid as usize].store.get(key) {
                Some((seq, val)) => enc_get_resp(resp, KV_OK, *seq, val),
                None => enc_get_resp(resp, KV_NOT_FOUND, 0, &[]),
            }
            RpcOutcome::Reply
        }
        METHOD_PUT => {
            let Some((epoch, key, val)) = dec_put(payload) else {
                return RpcOutcome::Err(RpcError::VersionMismatch);
            };
            let (seq, backup) = {
                let kv = w.kv_mut();
                let shard = kv.shard_of(key);
                let sh = &mut kv.shards[shard as usize];
                if epoch != sh.epoch || sh.primary != rid {
                    enc_status_seq(resp, KV_WRONG_EPOCH, 0);
                    return RpcOutcome::Reply;
                }
                let seq = sh.next_seq;
                sh.next_seq += 1;
                let backup = sh.backup;
                // Apply locally first; the write is durable here whether
                // or not the backup survives the next instant.
                kv.replicas[rid as usize]
                    .store
                    .insert(key.to_vec(), (seq, val.to_vec()));
                (seq, backup)
            };
            match backup {
                None => {
                    enc_status_seq(resp, KV_OK, seq);
                    RpcOutcome::Reply
                }
                Some(b) => {
                    // Synchronous replication: defer the client's reply
                    // until the backup acknowledges, propagating the
                    // client's remaining deadline through the second hop.
                    let (repl_cid, epoch_now) = {
                        let kv = w.kv();
                        (
                            kv.replicas[rid as usize].repl_client,
                            kv.shards[kv.shard_of(key) as usize].epoch,
                        )
                    };
                    let Some(repl_cid) = repl_cid else {
                        enc_status_seq(resp, KV_OK, seq);
                        return RpcOutcome::Reply;
                    };
                    let mut frame = std::mem::take(&mut w.kv_mut().scratch);
                    enc_repl(&mut frame, epoch_now, seq, key, val);
                    let deadline = (req.deadline != SimTime::NEVER).then_some(req.deadline);
                    let res = rpc_call(
                        w,
                        repl_cid,
                        METHOD_REPL,
                        &frame,
                        RpcCallOpts { deadline, idem: 0 },
                    );
                    w.kv_mut().scratch = frame;
                    match res {
                        Ok(call) => {
                            w.kv_mut().replicas[rid as usize].pending_repl.insert(
                                call,
                                PendingRepl {
                                    token: req.token,
                                    seq,
                                },
                            );
                            RpcOutcome::Defer
                        }
                        Err(_) => {
                            // The backup is unreachable before we even
                            // queued: demote to solo and ack from here.
                            kv_report_dead(w, b);
                            enc_status_seq(resp, KV_OK, seq);
                            RpcOutcome::Reply
                        }
                    }
                }
            }
        }
        METHOD_REPL => {
            let Some((epoch, seq, key, val)) = dec_repl(payload) else {
                return RpcOutcome::Err(RpcError::VersionMismatch);
            };
            let kv = w.kv_mut();
            let shard = kv.shard_of(key);
            let sh = kv.shards[shard as usize];
            // Epoch fencing: replication from a deposed primary must not
            // land after promotion (that would resurrect unacked writes).
            if epoch != sh.epoch || sh.backup != Some(rid) {
                kv.stats.repl_rejected += 1;
                enc_status_seq(resp, KV_WRONG_EPOCH, seq);
                return RpcOutcome::Reply;
            }
            let entry = kv.replicas[rid as usize]
                .store
                .entry(key.to_vec())
                .or_insert((0, Vec::new()));
            if seq >= entry.0 {
                *entry = (seq, val.to_vec());
            }
            kv.stats.repl_applied += 1;
            enc_status_seq(resp, KV_OK, seq);
            RpcOutcome::Reply
        }
        _ => RpcOutcome::Err(RpcError::VersionMismatch),
    }
}

/// Dead hosts don't run software: a replica (or client) whose node the
/// fault plan has killed must take no actions — in particular a deposed
/// primary's timed-out replication RPC must not report the *live* backup
/// dead (that split-brain would demote the only promotion candidate).
fn host_dead<W: KvWorld>(w: &W, node: NodeId) -> bool {
    w.nics().node_dead(node, now(w))
}

/// A replication RPC resolved: answer the deferred client PUT.
fn kv_on_repl_done<W: KvWorld>(w: &mut W, rid: u32, comp: RpcCompletion) {
    let me = w.kv().replicas[rid as usize].node;
    if host_dead(w, me) {
        // Zombie completion on a killed node: drop it on the floor. The
        // deferred client reply can never leave this host anyway.
        w.kv_mut().replicas[rid as usize]
            .pending_repl
            .remove(&comp.call);
        return;
    }
    let Some(pr) = w.kv_mut().replicas[rid as usize]
        .pending_repl
        .remove(&comp.call)
    else {
        return;
    };
    let server = w.kv().replicas[rid as usize].server;
    match comp.result {
        Ok(_len) => {
            let mut buf = std::mem::take(&mut w.kv_mut().collect_buf);
            rpc_collect(w, comp.client, comp.call, &mut buf);
            let status = dec_status_seq(&buf).map(|(s, _)| s);
            w.kv_mut().collect_buf = buf;
            if status == Some(KV_OK) {
                let mut resp = std::mem::take(&mut w.kv_mut().scratch);
                enc_status_seq(&mut resp, KV_OK, pr.seq);
                rpc_server_reply(w, server, pr.token, Ok(&resp));
                w.kv_mut().scratch = resp;
            } else {
                // WRONG_EPOCH from the backup: we were deposed while the
                // write was in flight. The client must not treat this
                // write as durable under the old regime.
                rpc_server_reply(w, server, pr.token, Err(RpcError::PeerUnreachable));
            }
        }
        Err(RpcError::PeerUnreachable) => {
            // The backup died. The write is applied locally; demote to
            // solo and ack — durability is single-copy from here on,
            // which is the contract once the replica pair degrades.
            let partner = w.kv().replicas[rid as usize].partner;
            if let Some(p) = partner {
                kv_report_dead(w, p);
            }
            let mut resp = std::mem::take(&mut w.kv_mut().scratch);
            enc_status_seq(&mut resp, KV_OK, pr.seq);
            rpc_server_reply(w, server, pr.token, Ok(&resp));
            w.kv_mut().scratch = resp;
        }
        Err(e) => {
            // Deadline (propagated and expired) or overload on the
            // replication path: fail the client PUT typed; the reply is
            // suppressed anyway if the client's deadline already passed.
            rpc_server_reply(w, server, pr.token, Err(e));
        }
    }
}

// ----------------------------------------------------------------- failover

/// The failure detector's input: `node` was declared dead (reliability
/// layer / kill plan). Promote backups of every shard primaried there.
pub fn kv_on_node_down<W: KvWorld>(w: &mut W, node: NodeId) {
    let dead: Vec<u32> = w
        .kv()
        .replicas
        .iter()
        .enumerate()
        .filter(|(_, r)| r.node == node && r.alive)
        .map(|(i, _)| i as u32)
        .collect();
    for d in dead {
        kv_report_dead(w, d);
    }
}

/// Mark a replica dead and run the epoch-numbered failover over the shard
/// map: backups promote (epoch bump), primaries that lost their backup go
/// solo (epoch bump too, so stale-routed reads re-resolve). Idempotent.
pub fn kv_report_dead<W: KvWorld>(w: &mut W, dead: u32) {
    let kv = w.kv_mut();
    if !kv.replicas[dead as usize].alive {
        return;
    }
    kv.replicas[dead as usize].alive = false;
    for s in 0..kv.shards.len() {
        let (primary, backup) = {
            let sh = &kv.shards[s];
            (sh.primary, sh.backup)
        };
        if primary == dead {
            if let Some(b) = backup.filter(|&b| kv.replicas[b as usize].alive) {
                let sh = &mut kv.shards[s];
                sh.epoch += 1;
                sh.primary = b;
                sh.backup = None;
                kv.stats.promotions += 1;
            }
            // No live backup: the shard is lost; ops exhaust their
            // retries and fail typed.
        } else if backup == Some(dead) {
            let sh = &mut kv.shards[s];
            sh.epoch += 1;
            sh.backup = None;
            kv.stats.solo_demotions += 1;
        }
    }
}

// ------------------------------------------------------------------ checker

/// Linearizability-lite audit over the recorded history and the surviving
/// stores. For every key with at least one acked write:
///
/// 1. **Acked writes survive**: the current primary of the key's shard
///    must hold the key at a sequence number ≥ the highest acked one; if
///    equal, the value must be the acked value.
/// 2. **No foreign values**: whatever the store holds must be the value
///    of some issued put for that key (nothing invented, nothing
///    corrupted); together with rule 1 this also forbids an unacked
///    write resurrecting over a later acked one.
///
/// Returns human-readable violations (empty = pass).
pub fn kv_check<W: KvWorld>(w: &W) -> Vec<String> {
    let kv = w.kv();
    let mut violations = Vec::new();
    let mut put_vals: BTreeMap<&[u8], Vec<&[u8]>> = BTreeMap::new();
    let mut val_of_op: BTreeMap<KvOpId, &[u8]> = BTreeMap::new();
    for (op, key, val) in &kv.issued_puts {
        put_vals.entry(key).or_default().push(val);
        val_of_op.insert(*op, val);
    }
    // Highest acked put per key.
    let mut acked: BTreeMap<&[u8], (u64, &[u8])> = BTreeMap::new();
    for o in &kv.outcomes {
        if let Ok(KvResult::Put { seq }) = &o.result {
            let val = val_of_op.get(&o.op).copied().unwrap_or(&[]);
            let e = acked.entry(&o.key).or_insert((0, &[]));
            if *seq > e.0 {
                *e = (*seq, val);
            }
        }
    }
    for (key, (ack_seq, ack_val)) in &acked {
        let shard = kv.shard_of(key);
        let sh = &kv.shards[shard as usize];
        if !kv.replicas[sh.primary as usize].alive {
            // Shard lost every replica: nothing left to audit against.
            continue;
        }
        let store = &kv.replicas[sh.primary as usize].store;
        match store.get(*key) {
            None => violations.push(format!(
                "acked write lost: key {:?} absent from primary r{} (acked seq {})",
                String::from_utf8_lossy(key),
                sh.primary,
                ack_seq
            )),
            Some((seq, val)) => {
                if seq < ack_seq {
                    violations.push(format!(
                        "acked write rolled back: key {:?} at seq {} < acked {}",
                        String::from_utf8_lossy(key),
                        seq,
                        ack_seq
                    ));
                } else if seq == ack_seq && val.as_slice() != *ack_val {
                    violations.push(format!(
                        "acked value mismatch at seq {}: key {:?}",
                        seq,
                        String::from_utf8_lossy(key)
                    ));
                }
                let known = put_vals
                    .get(*key)
                    .map(|vs| vs.contains(&val.as_slice()))
                    .unwrap_or(false);
                if !known {
                    violations.push(format!(
                        "foreign value surfaced for key {:?} (seq {}): not among issued puts",
                        String::from_utf8_lossy(key),
                        seq
                    ));
                }
            }
        }
    }
    violations
}

/// Deterministic digest of the whole KV state: stores, shard map, outcome
/// record. Equal seeds must yield equal fingerprints run over run.
pub fn kv_fingerprint<W: KvWorld>(w: &W) -> u64 {
    let kv = w.kv();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in &kv.replicas {
        mix(&[r.alive as u8]);
        for (k, (seq, v)) in &r.store {
            mix(k);
            mix(&seq.to_le_bytes());
            mix(v);
        }
    }
    for sh in &kv.shards {
        mix(&sh.epoch.to_le_bytes());
        mix(&sh.primary.to_le_bytes());
        mix(&sh.next_seq.to_le_bytes());
    }
    for o in &kv.outcomes {
        mix(&o.op.to_le_bytes());
        mix(&o.key);
        match &o.result {
            Ok(KvResult::Put { seq }) => {
                mix(b"P");
                mix(&seq.to_le_bytes());
            }
            Ok(KvResult::Get { found, seq, val }) => {
                mix(b"G");
                mix(&[*found as u8]);
                mix(&seq.to_le_bytes());
                mix(val);
            }
            Err(e) => {
                mix(b"E");
                mix(format!("{:?}", e).as_bytes());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_codecs_roundtrip() {
        let mut b = Vec::new();
        enc_get(&mut b, 7, b"key");
        assert_eq!(dec_get(&b), Some((7, &b"key"[..])));
        enc_put(&mut b, 9, b"key", b"value");
        assert_eq!(dec_put(&b), Some((9, &b"key"[..], &b"value"[..])));
        enc_repl(&mut b, 3, 42, b"k", b"v");
        assert_eq!(dec_repl(&b), Some((3, 42, &b"k"[..], &b"v"[..])));
        enc_status_seq(&mut b, KV_OK, 11);
        assert_eq!(dec_status_seq(&b), Some((KV_OK, 11)));
        enc_get_resp(&mut b, KV_OK, 5, b"val");
        assert_eq!(dec_get_resp(&b), Some((KV_OK, 5, &b"val"[..])));
        enc_get_resp(&mut b, KV_NOT_FOUND, 0, b"");
        assert_eq!(dec_get_resp(&b), Some((KV_NOT_FOUND, 0, &b""[..])));
    }

    #[test]
    fn truncated_payloads_rejected() {
        assert!(dec_get(&[0u8; 9]).is_none());
        assert!(dec_put(&[0u8; 13]).is_none());
        assert!(dec_repl(&[0u8; 21]).is_none());
        assert!(dec_status_seq(&[0u8; 8]).is_none());
        assert!(dec_get_resp(&[0u8; 12]).is_none());
    }

    #[test]
    fn fnv_spreads_shards() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64u32 {
            seen.insert(fnv1a(format!("key-{}", i).as_bytes()) % 8);
        }
        assert!(seen.len() >= 6, "fnv should cover most of 8 shards");
    }
}

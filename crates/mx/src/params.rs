//! MX cost parameters, calibrated to the paper's measurements.
//!
//! Anchors:
//! * 1-byte one-way latency ≈ 4.2 µs, identical from user space and from the
//!   kernel (§5.1: "latency and bandwidth do not differ between user and
//!   kernel communications");
//! * medium messages (128 B – 32 kB) are copied on both sides through
//!   pre-pinned rings; small messages use programmed I/O; large messages
//!   rendezvous and are pinned internally (§5.1);
//! * removing the send-side copy buys ≈17 % at 32 kB and ≈9 % for a single
//!   page; removing both copies is predicted to buy another ≈15 % (§5.1).

use knet_simcore::SimTime;

/// Host- and firmware-side costs of the MX driver. Plain scalars — `Copy`,
/// so the hot path reads it by value instead of cloning per operation.
#[derive(Clone, Copy, Debug)]
pub struct MxParams {
    /// Host cost to post a send or receive (identical user/kernel — the
    /// "very generic core infrastructure" of §5.1).
    pub host_post: SimTime,
    /// Host cost to consume a completion event.
    pub host_event: SimTime,
    /// Firmware processing of a send command (MX's firmware is the reason
    /// its latency beats GM's).
    pub fw_send: SimTime,
    /// Firmware processing of an incoming message (match + completion).
    pub fw_recv: SimTime,
    /// Firmware handling per additional MTU chunk.
    pub fw_chunk: SimTime,
    /// Firmware handling of a rendezvous control packet (RTS/CTS).
    pub fw_rndv: SimTime,
    /// PIO startup for inlining a small message into the command queue.
    pub pio_base: SimTime,
    /// PIO cost per byte of inlined payload.
    pub pio_per_byte_ns: u64,
    /// Messages strictly smaller than this are *small* (inlined): 128 B.
    pub small_max: u64,
    /// Messages up to this size are *medium* (two-sided copy): 32 kB.
    pub medium_max: u64,
    /// On-wire header bytes per packet.
    pub header_bytes: u64,
}

impl Default for MxParams {
    fn default() -> Self {
        MxParams {
            host_post: SimTime::from_nanos(450),
            host_event: SimTime::from_nanos(450),
            fw_send: SimTime::from_micros_f64(1.0),
            fw_recv: SimTime::from_micros_f64(1.0),
            fw_chunk: SimTime::from_nanos(300),
            fw_rndv: SimTime::from_nanos(800),
            pio_base: SimTime::from_nanos(80),
            pio_per_byte_ns: 2,
            small_max: 128,
            medium_max: 32 * 1024,
            header_bytes: 32,
        }
    }
}

/// Which protocol a message of `len` bytes uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MxProtocol {
    /// `< 128 B`: payload inlined by PIO.
    Small,
    /// `128 B ..= 32 kB`: copied through pre-pinned rings on both sides.
    Medium,
    /// `> 32 kB`: rendezvous, internally pinned, zero-copy DMA.
    Large,
}

impl MxParams {
    pub fn protocol_for(&self, len: u64) -> MxProtocol {
        if len < self.small_max {
            MxProtocol::Small
        } else if len <= self.medium_max {
            MxProtocol::Medium
        } else {
            MxProtocol::Large
        }
    }

    /// Host PIO cost to inline `len` bytes.
    pub fn pio_cost(&self, len: u64) -> SimTime {
        self.pio_base + SimTime::from_nanos(len * self.pio_per_byte_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_boundaries_match_the_paper() {
        let p = MxParams::default();
        // "medium side messages (from 128 bytes to 32 kB)" (§5.1).
        assert_eq!(p.protocol_for(0), MxProtocol::Small);
        assert_eq!(p.protocol_for(127), MxProtocol::Small);
        assert_eq!(p.protocol_for(128), MxProtocol::Medium);
        assert_eq!(p.protocol_for(32 * 1024), MxProtocol::Medium);
        assert_eq!(p.protocol_for(32 * 1024 + 1), MxProtocol::Large);
    }

    #[test]
    fn pio_scales_with_bytes() {
        let p = MxParams::default();
        assert!(p.pio_cost(127) > p.pio_cost(1));
        assert_eq!(p.pio_cost(0), p.pio_base);
    }
}

//! # knet-mx — the MX driver (Myrinet Express)
//!
//! The paper's primary vehicle: an interface that "almost provides an MPI
//! interface at the network level" (§4.2), whose **kernel API the authors
//! designed and contributed** — with native support for the three memory
//! address classes, vectorial buffers, no explicit registration, and a
//! completion interface flexible enough for in-kernel clients (§5.2).
//!
//! Protocol engine (§5.1):
//! * **small** (< 128 B): PIO-inlined;
//! * **medium** (128 B – 32 kB): copied through pre-pinned rings on both
//!   sides — including the paper's send-copy-removal optimization and the
//!   *predicted* receive-copy removal as a simulated "future MX";
//! * **large** (> 32 kB): rendezvous (RTS/CTS), internally pinned,
//!   zero-copy DMA on both ends.

pub mod layer;
pub mod params;

#[cfg(test)]
mod tests;

pub use layer::{
    mx_cancel_recv, mx_close_endpoint, mx_coll_post, mx_irecv, mx_isend, mx_isend_t, mx_next_event,
    mx_on_packet, mx_open_endpoint, mx_pace_drain, run_mx_ev, MxEndpoint, MxEndpointConfig,
    MxEndpointId, MxEv, MxEvent, MxLayer, MxMode, MxOpts, MxStats, MxWorld, PacedMxSend,
    MX_ANY_TAG,
};
pub use params::{MxParams, MxProtocol};

//! The MX driver: endpoints, tag matching, and the three-protocol engine.
//!
//! What makes MX the paper's vehicle for an efficient in-kernel API:
//!
//! * the host interface is the *same* from user space and from the kernel —
//!   latency does not change (§5.1);
//! * the application tells MX what kind of memory it passes (user virtual /
//!   kernel virtual / physical, §4.2) and MX does the right thing: pin and
//!   translate, translate only, or nothing;
//! * buffers are **vectorial** (§4.1);
//! * no explicit registration: small messages are inlined by PIO, medium
//!   messages (128 B–32 kB) are copied through pre-pinned rings on both
//!   sides, large messages rendezvous and are pinned internally (§5.1);
//! * the paper's send-copy-removal optimization (`no_send_copy`) DMAs
//!   physically contiguous medium messages straight from the source, and the
//!   *predicted* receive-side removal (`no_recv_copy`) is implemented as the
//!   "future MX" whose receive processing lives in the NIC (§5.1).

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use knet_core::{
    next_chunk, read_iovec_into, resolve_iovec, resolve_iovec_into, seg_window_into, write_iovec,
    AddrClass, ChunkCursor, IoVec, NetError, TenantId, WdrrLanes,
};
use knet_simcore::SimTime;
use knet_simnic::{
    coll_inject, coll_on_packet, dma_charge, dma_gather, dma_scatter, fw_charge, is_coll_frame,
    rel_on_packet, rel_send, Admission, CollCmd, NicId, NicWorld, Packet, Proto, RelVerdict,
};
use knet_simos::{Asid, FrameIdx, NodeId, PhysSeg};

use crate::params::{MxParams, MxProtocol};

/// Global identifier of an open MX endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MxEndpointId(pub u32);

/// Match-any tag for receives.
pub const MX_ANY_TAG: u64 = u64::MAX;

/// Endpoint mode: which space the application lives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MxMode {
    /// User-space endpoint bound to a process.
    User(Asid),
    /// In-kernel endpoint (ORFS, SOCKETS-MX, NBD, …).
    Kernel,
}

/// The copy-removal switches of §5.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MxOpts {
    /// Skip the send-side medium copy for physically contiguous kernel
    /// buffers (implemented in the paper: +17 % at 32 kB).
    pub no_send_copy: bool,
    /// Skip the receive-side medium copy (the paper's *prediction*, possible
    /// once receive processing moves into the NIC: another +15 %).
    pub no_recv_copy: bool,
}

/// Endpoint configuration.
#[derive(Clone, Copy, Debug)]
pub struct MxEndpointConfig {
    pub mode: MxMode,
    pub opts: MxOpts,
    /// Deliver unmatched eager messages as [`MxEvent::Unexpected`] (transport
    /// glue) instead of queueing them for a later `mx_irecv` (MPI style).
    pub deliver_unexpected: bool,
}

impl MxEndpointConfig {
    pub fn user(asid: Asid) -> Self {
        MxEndpointConfig {
            mode: MxMode::User(asid),
            opts: MxOpts::default(),
            deliver_unexpected: false,
        }
    }

    pub fn kernel() -> Self {
        MxEndpointConfig {
            mode: MxMode::Kernel,
            opts: MxOpts::default(),
            deliver_unexpected: false,
        }
    }

    pub fn with_opts(mut self, opts: MxOpts) -> Self {
        self.opts = opts;
        self
    }

    pub fn with_unexpected_delivery(mut self) -> Self {
        self.deliver_unexpected = true;
        self
    }
}

/// Completion events in an endpoint's queue.
#[derive(Clone, Debug)]
pub enum MxEvent {
    SendDone {
        ctx: u64,
    },
    RecvDone {
        ctx: u64,
        tag: u64,
        len: u64,
        from: MxEndpointId,
    },
    /// An unmatched eager message, delivered inline (endpoint configured
    /// with `deliver_unexpected`).
    Unexpected {
        tag: u64,
        data: Bytes,
        from: MxEndpointId,
    },
    /// A send the driver had parked in a tenant pacing lane failed at
    /// drain time (peer died, endpoint closed, policy shed it): no bytes
    /// left the node and no `SendDone` will arrive for `ctx`.
    SendFailed {
        ctx: u64,
        error: NetError,
    },
}

/// Per-endpoint counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MxStats {
    pub sends: u64,
    pub recvs: u64,
    pub unexpected: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub send_copies_avoided: u64,
    pub recv_copies_avoided: u64,
    pub rndv_started: u64,
    pub pages_pinned: u64,
}

struct PostedRecv {
    tag: u64,
    iov: IoVec,
    /// Pre-resolved segments (pinned for large user buffers at post time).
    segs: Vec<PhysSeg>,
    pinned: Vec<FrameIdx>,
    capacity: u64,
    ctx: u64,
}

enum UnexpectedMsg {
    Eager {
        tag: u64,
        data: Bytes,
        from: MxEndpointId,
    },
    Rndv {
        tag: u64,
        total: u64,
        from: MxEndpointId,
        msg_id: u64,
        src_nic: NicId,
    },
}

/// Receive-side reassembly of an in-flight eager message.
struct EagerAssembly {
    from: MxEndpointId,
    tag: u64,
    total: u64,
    received: u64,
    /// Matched posted receive (taken from the queue at first chunk).
    matched: Option<PostedRecv>,
    /// True when chunks are DMA'd straight into the posted buffer
    /// (`no_recv_copy`); otherwise data accumulates in the ring.
    direct: bool,
    ring: Vec<u8>,
    last_dma_done: SimTime,
}

/// Sender-side state of a rendezvous awaiting CTS.
struct RndvSend {
    from_ep: MxEndpointId,
    segs: Vec<PhysSeg>,
    pinned: Vec<FrameIdx>,
    total: u64,
    tag: u64,
    ctx: u64,
    dst_ep: MxEndpointId,
    /// Sending tenant, stamped onto the streamed data packets.
    tenant: TenantId,
}

/// Receiver-side state of an accepted rendezvous.
struct RndvRecv {
    posted: PostedRecv,
    from: MxEndpointId,
    total: u64,
    received: u64,
    last_dma_done: SimTime,
}

/// One open MX endpoint.
pub struct MxEndpoint {
    pub id: MxEndpointId,
    pub node: NodeId,
    pub nic: NicId,
    pub mode: MxMode,
    pub opts: MxOpts,
    pub deliver_unexpected: bool,
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<UnexpectedMsg>,
    pub events: VecDeque<MxEvent>,
    pub stats: MxStats,
    open: bool,
}

impl MxEndpoint {
    pub fn posted_recvs(&self) -> usize {
        self.posted.len()
    }

    pub fn unexpected_queued(&self) -> usize {
        self.unexpected.len()
    }
}

/// Reusable hot-path scratch (see `GmScratch` in `knet-gm` for the
/// pattern): per-operation buffers recycled across sends and receives so
/// the steady-state data path stops allocating once each buffer reaches
/// its high-water capacity.
#[derive(Default)]
pub struct MxScratch {
    /// Gathered payload bytes of the send being posted.
    pub(crate) payload: Vec<u8>,
    /// Send-side address resolution (the copy-avoidance check).
    pub(crate) resolution: knet_core::Resolution,
    /// Receive-side scatter window of one inbound chunk.
    pub(crate) window: Vec<PhysSeg>,
    /// The MTU chunk currently streaming out of a rendezvous source.
    pub(crate) chunk: Vec<PhysSeg>,
    pub stats: MxScratchStats,
}

/// Scratch-pool observability: steady state shows `uses` growing while
/// `grows` stays flat.
#[derive(Clone, Copy, Debug, Default)]
pub struct MxScratchStats {
    /// Operations that borrowed scratch buffers.
    pub uses: u64,
    /// Borrows that had to grow a buffer (warm-up only, in steady state).
    pub grows: u64,
}

impl MxScratch {
    pub(crate) fn note(&mut self, before: usize, after: usize) {
        self.stats.uses += 1;
        if after > before {
            self.stats.grows += 1;
        }
    }
}

/// A send parked in a NIC's per-tenant pacing lane, re-issued verbatim
/// once the tenant's token bucket refills.
pub struct PacedMxSend {
    from: MxEndpointId,
    dest: MxEndpointId,
    tag: u64,
    iov: IoVec,
    ctx: u64,
    bytes: u64,
}

/// All MX state in the world.
pub struct MxLayer {
    pub params: MxParams,
    endpoints: Vec<MxEndpoint>,
    /// In-flight reassemblies keyed `(dst endpoint, src endpoint, msg id)`.
    /// `msg_id` alone is only unique per *sending* world — under sharded
    /// execution every shard mints its own sequence, so two senders
    /// converging on one receiver can collide on it. The source endpoint
    /// (carried in the wire meta) disambiguates.
    eager: BTreeMap<(u32, u32, u64), EagerAssembly>,
    rndv_send: BTreeMap<u64, RndvSend>,
    rndv_recv: BTreeMap<(u32, u32, u64), RndvRecv>,
    next_msg_id: u64,
    /// Recycled per-operation buffers (see [`MxScratch`]).
    pub scratch: MxScratch,
    /// Per-NIC pacing lanes: sends the token bucket deferred, one WDRR
    /// lane per tenant, drained on pace-timer fire.
    paced: BTreeMap<NicId, WdrrLanes<PacedMxSend>>,
    /// Earliest armed pace timer per NIC.
    pace_armed: BTreeMap<NicId, SimTime>,
    /// WDRR weights indexed by tenant id (missing → 1), installed by the
    /// composed world from the registry's tenant table.
    pub tenant_weights: Vec<u64>,
}

impl MxLayer {
    pub fn new(params: MxParams) -> Self {
        MxLayer {
            params,
            endpoints: Vec::new(),
            eager: BTreeMap::new(),
            rndv_send: BTreeMap::new(),
            rndv_recv: BTreeMap::new(),
            next_msg_id: 1,
            scratch: MxScratch::default(),
            paced: BTreeMap::new(),
            pace_armed: BTreeMap::new(),
            tenant_weights: Vec::new(),
        }
    }

    pub fn ep(&self, id: MxEndpointId) -> Result<&MxEndpoint, NetError> {
        self.endpoints
            .get(id.0 as usize)
            .filter(|e| e.open)
            .ok_or(NetError::BadEndpoint)
    }

    pub fn ep_mut(&mut self, id: MxEndpointId) -> Result<&mut MxEndpoint, NetError> {
        self.endpoints
            .get_mut(id.0 as usize)
            .filter(|e| e.open)
            .ok_or(NetError::BadEndpoint)
    }

    pub fn open_endpoints(&self) -> usize {
        self.endpoints.iter().filter(|e| e.open).count()
    }

    /// Sends parked in `nic`'s pacing lanes (all tenants).
    pub fn paced_backlog(&self, nic: NicId) -> usize {
        self.paced.get(&nic).map(|l| l.len()).unwrap_or(0)
    }

    /// Heap-growth events across all pacing lanes (flat in steady state).
    pub fn paced_grows(&self) -> u64 {
        self.paced.values().map(|l| l.grows()).sum()
    }

    /// Fold pacing-lane scheduler state into a fingerprint accumulator.
    pub fn paced_fingerprint(&self, mut mix: impl FnMut(u64)) {
        for (nic, lanes) in &self.paced {
            mix(nic.0 as u64);
            lanes.fingerprint(&mut mix);
        }
    }

    /// [`Self::paced_fingerprint`] restricted to one NIC — the
    /// shard-invariant slice (a NIC's pacing lanes are only touched by the
    /// shard owning its node).
    pub fn paced_fingerprint_nic(&self, nic: NicId, mut mix: impl FnMut(u64)) {
        if let Some(lanes) = self.paced.get(&nic) {
            lanes.fingerprint(&mut mix);
        }
    }
}

impl Default for MxLayer {
    fn default() -> Self {
        Self::new(MxParams::default())
    }
}

/// Capability trait: a world running the MX driver.
/// Typed engine events for the MX layer: host-side completions that fire
/// once DMA and host processing settle. Composed worlds embed these in
/// their event enum via [`MxWorld::lift_mx`].
#[derive(Debug)]
pub enum MxEv {
    /// Optionally release pinned frames, then push a completion onto the
    /// endpoint's event queue (charging the matching stats) and dispatch.
    Complete {
        ep: MxEndpointId,
        ev: MxEvent,
        /// Frames to unpin on a node before the completion posts
        /// (rendezvous paths defer the unpin to completion time).
        unpin: Option<(NodeId, Vec<FrameIdx>)>,
        /// Count the receive as zero-copy (`recv_copies_avoided`).
        direct: bool,
    },
    /// A tenant pace timer fired: drain `nic`'s pacing lanes against the
    /// (now refilled) token buckets.
    Pace { nic: NicId },
}

/// Execute one MX-layer event.
pub fn run_mx_ev<W: MxWorld>(w: &mut W, ev: MxEv) {
    match ev {
        MxEv::Complete {
            ep,
            ev,
            unpin,
            direct,
        } => {
            if let Some((node, pinned)) = unpin {
                release_pins(w, node, &pinned);
            }
            if let Ok(e) = w.mx_mut().ep_mut(ep) {
                match &ev {
                    MxEvent::SendDone { .. } => {}
                    MxEvent::RecvDone { len, .. } => {
                        e.stats.recvs += 1;
                        e.stats.bytes_received += *len;
                        if direct {
                            e.stats.recv_copies_avoided += 1;
                        }
                    }
                    MxEvent::Unexpected { data, .. } => {
                        e.stats.unexpected += 1;
                        e.stats.bytes_received += data.len() as u64;
                    }
                    MxEvent::SendFailed { .. } => {}
                }
                e.events.push_back(ev);
            }
            w.mx_dispatch(ep);
        }
        MxEv::Pace { nic } => {
            let now = knet_simcore::now(w);
            if w.mx().pace_armed.get(&nic).is_some_and(|t| *t <= now) {
                w.mx_mut().pace_armed.remove(&nic);
            }
            mx_pace_drain(w, nic);
        }
    }
}

pub trait MxWorld: NicWorld {
    fn mx(&self) -> &MxLayer;
    fn mx_mut(&mut self) -> &mut MxLayer;

    /// Called whenever an event lands in an endpoint queue; the composed
    /// world routes it to the endpoint's owner (default: polled).
    fn mx_dispatch(&mut self, _ep: MxEndpointId) {}

    /// Wrap an MX event into the world's typed event enum. The default
    /// boxes (fine for tests); the composed cluster world overrides it with
    /// a zero-allocation enum variant.
    fn lift_mx(ev: MxEv) -> <Self as knet_simcore::SimWorld>::Ev {
        knet_simcore::SimEvent::from_call(Box::new(move |w: &mut Self| run_mx_ev(w, ev)))
    }
}

/// Open an endpoint on `node`.
pub fn mx_open_endpoint<W: MxWorld>(
    w: &mut W,
    node: NodeId,
    cfg: MxEndpointConfig,
) -> Result<MxEndpointId, NetError> {
    let nic = w.nics().nic_of_node(node).ok_or(NetError::BadEndpoint)?;
    let id = MxEndpointId(w.mx().endpoints.len() as u32);
    w.mx_mut().endpoints.push(MxEndpoint {
        id,
        node,
        nic,
        mode: cfg.mode,
        opts: cfg.opts,
        deliver_unexpected: cfg.deliver_unexpected,
        posted: VecDeque::new(),
        unexpected: VecDeque::new(),
        events: VecDeque::new(),
        stats: MxStats::default(),
        open: true,
    });
    Ok(id)
}

fn check_classes(ep: &MxEndpoint, iov: &IoVec) -> Result<(), NetError> {
    for seg in iov.segs() {
        match (seg.class(), ep.mode) {
            // User endpoints only speak user virtual addresses of their
            // own process.
            (AddrClass::UserVirtual, MxMode::User(asid)) => {
                if let knet_core::MemRef::UserVirtual { asid: a, .. } = seg {
                    if *a != asid {
                        return Err(NetError::BadAddressClass);
                    }
                }
            }
            (_, MxMode::User(_)) => return Err(NetError::BadAddressClass),
            // The kernel interface accepts all three classes (§4.2).
            (_, MxMode::Kernel) => {}
        }
    }
    Ok(())
}

const KIND_EAGER: u8 = 0;
const KIND_RTS: u8 = 1;
const KIND_CTS: u8 = 2;
const KIND_LARGE: u8 = 3;

fn pack_meta(
    dst: MxEndpointId,
    src: MxEndpointId,
    tag: u64,
    msg_id: u64,
    offset: u64,
    total: u64,
) -> [u64; 4] {
    [
        (dst.0 as u64) | ((src.0 as u64) << 32),
        tag,
        msg_id,
        (offset << 32) | (total & 0xFFFF_FFFF),
    ]
}

struct WireMeta {
    dst: MxEndpointId,
    src: MxEndpointId,
    tag: u64,
    msg_id: u64,
    offset: u64,
    total: u64,
}

fn unpack_meta(meta: &[u64; 4]) -> WireMeta {
    WireMeta {
        dst: MxEndpointId((meta[0] & 0xFFFF_FFFF) as u32),
        src: MxEndpointId((meta[0] >> 32) as u32),
        tag: meta[1],
        msg_id: meta[2],
        offset: meta[3] >> 32,
        total: meta[3] & 0xFFFF_FFFF,
    }
}

/// Gather an io-vector's bytes into a `Bytes` payload through the layer's
/// recycled scratch buffer: one copy, one allocation (the `Bytes` itself),
/// no intermediate `Vec` per send.
fn gather_payload<W: MxWorld>(w: &mut W, node: NodeId, iov: &IoVec) -> Result<Bytes, NetError> {
    let mut payload = std::mem::take(&mut w.mx_mut().scratch.payload);
    let cap_before = payload.capacity();
    let r = read_iovec_into(w.os().node(node), iov, &mut payload);
    let data = r.map(|()| Bytes::copy_from_slice(&payload));
    let cap_after = payload.capacity();
    let scratch = &mut w.mx_mut().scratch;
    scratch.payload = payload;
    scratch.note(cap_before, cap_after);
    data
}

/// Can the send-side copy be elided for this resolution? (§5.1: possible for
/// physically contiguous buffers whose residency the kernel guarantees —
/// kernel virtual or physical address classes.)
fn send_copy_avoidable(ep: &MxEndpoint, iov: &IoVec, segs: &[PhysSeg]) -> bool {
    ep.opts.no_send_copy
        && segs.len() == 1
        && matches!(
            iov.uniform_class(),
            Some(AddrClass::KernelVirtual) | Some(AddrClass::Physical)
        )
}

/// `mx_isend`: send the (possibly vectorial) `iov` to `dest` with `tag`.
/// Always asynchronous; completion surfaces as [`MxEvent::SendDone`].
/// Untenanted entry point: attributes the send to [`TenantId::DEFAULT`],
/// which has no QoS policy unless one was explicitly installed — behaviour
/// is then identical to pre-tenant MX.
pub fn mx_isend<W: MxWorld>(
    w: &mut W,
    from: MxEndpointId,
    dest: MxEndpointId,
    tag: u64,
    iov: &IoVec,
    ctx: u64,
) -> Result<(), NetError> {
    mx_isend_t(w, from, dest, tag, iov, ctx, TenantId::DEFAULT)
}

/// Tenant-attributed send: consults the tenant's token bucket at the NIC
/// admission point before committing any copy, pin or DMA.
///
/// * **Admit** — proceeds synchronously exactly like [`mx_isend`].
/// * **Defer** — parks the send in the NIC's per-tenant pacing lane and
///   arms a pace timer for the refill instant; returns `Ok(())` (the
///   completion arrives later). FIFO order within a tenant is preserved:
///   while the lane is non-empty new sends park behind it.
/// * **Shed** — fails synchronously with [`NetError::Overload`].
pub fn mx_isend_t<W: MxWorld>(
    w: &mut W,
    from: MxEndpointId,
    dest: MxEndpointId,
    tag: u64,
    iov: &IoVec,
    ctx: u64,
    tenant: TenantId,
) -> Result<(), NetError> {
    // Fail fast on the errors that would also fail at drain time, so a
    // doomed send is never parked.
    let nic = {
        let e = w.mx().ep(from)?;
        check_classes(e, iov)?;
        e.nic
    };
    let dst_nic = w.mx().ep(dest)?.nic;
    if w.nics().rel.link_dead(Proto::Mx, nic, dst_nic) {
        return Err(NetError::PeerUnreachable);
    }
    let bytes = iov.total_len();
    let lane_busy = w
        .mx()
        .paced
        .get(&nic)
        .map(|l| l.lane_len(tenant) > 0)
        .unwrap_or(false);
    if !lane_busy {
        let now = knet_simcore::now(w);
        match w.nics_mut().qos.admit(nic, tenant.0, bytes, now) {
            Admission::Admit => {
                let r = mx_isend_admitted(w, from, dest, tag, iov, ctx, tenant);
                if r.is_err() {
                    w.nics_mut().qos.refund(nic, tenant.0, bytes);
                }
                return r;
            }
            Admission::Shed => return Err(NetError::Overload),
            Admission::Defer { until } => {
                mx_pace_park(w, nic, tenant, from, dest, tag, iov, ctx)?;
                mx_pace_arm(w, nic, until);
                return Ok(());
            }
        }
    }
    mx_pace_park(w, nic, tenant, from, dest, tag, iov, ctx)
}

/// Park one send in `nic`'s pacing lane for `tenant`, shedding if the lane
/// is at the policy's cap.
#[allow(clippy::too_many_arguments)]
fn mx_pace_park<W: MxWorld>(
    w: &mut W,
    nic: NicId,
    tenant: TenantId,
    from: MxEndpointId,
    dest: MxEndpointId,
    tag: u64,
    iov: &IoVec,
    ctx: u64,
) -> Result<(), NetError> {
    let cap = w
        .nics()
        .qos
        .policy(tenant.0)
        .map(|p| p.pace_queue_cap)
        .unwrap_or(usize::MAX);
    let lanes = w.mx_mut().paced.entry(nic).or_default();
    if lanes.lane_len(tenant) >= cap {
        w.nics_mut().qos.note_shed(tenant.0);
        return Err(NetError::Overload);
    }
    let bytes = iov.total_len();
    w.mx_mut().paced.entry(nic).or_default().push(
        tenant,
        PacedMxSend {
            from,
            dest,
            tag,
            iov: iov.clone(),
            ctx,
            bytes,
        },
    );
    Ok(())
}

/// Arm (or tighten) `nic`'s pace timer to fire at `until`.
fn mx_pace_arm<W: MxWorld>(w: &mut W, nic: NicId, until: SimTime) {
    if w.mx().pace_armed.get(&nic).is_some_and(|t| *t <= until) {
        return;
    }
    w.mx_mut().pace_armed.insert(nic, until);
    let node = w.nics().get(nic).node.0;
    let ev = W::lift_mx(MxEv::Pace { nic });
    knet_simcore::emit_at(w, node, until, ev);
}

/// Complete a parked send as failed (typed, terminal). Dropped silently if
/// the sending endpoint has since closed.
fn mx_fail_parked<W: MxWorld>(w: &mut W, ep: MxEndpointId, ctx: u64, error: NetError) {
    let Ok(e) = w.mx().ep(ep) else { return };
    let node = e.node.0;
    let now = knet_simcore::now(w);
    let ev = W::lift_mx(MxEv::Complete {
        ep,
        ev: MxEvent::SendFailed { ctx, error },
        unpin: None,
        direct: false,
    });
    knet_simcore::emit_at(w, node, now, ev);
}

/// Drain `nic`'s pacing lanes in WDRR order against the token buckets.
/// Blocked tenants (bucket still dry) are skipped without head-of-line
/// blocking the rest; the timer is re-armed for the earliest refill.
pub fn mx_pace_drain<W: MxWorld>(w: &mut W, nic: NicId) {
    let Some(mut lanes) = w.mx_mut().paced.remove(&nic) else {
        return;
    };
    let weights = std::mem::take(&mut w.mx_mut().tenant_weights);
    let now = knet_simcore::now(w);
    let mut blocked: Vec<u32> = Vec::new();
    let mut min_defer: Option<SimTime> = None;
    loop {
        let popped = lanes.pop_next_eligible(
            |t| weights.get(t.0 as usize).copied().unwrap_or(1),
            |ps| ps.bytes,
            |t, _| !blocked.contains(&t.0),
        );
        let Some((t, ps)) = popped else { break };
        match w.nics_mut().qos.admit(nic, t.0, ps.bytes, now) {
            Admission::Admit => {
                match mx_isend_admitted(w, ps.from, ps.dest, ps.tag, &ps.iov, ps.ctx, t) {
                    Ok(()) => {}
                    Err(e) => mx_fail_parked(w, ps.from, ps.ctx, e),
                }
            }
            Admission::Defer { until } => {
                let cost = ps.bytes;
                lanes.requeue_front(t, ps, cost);
                blocked.push(t.0);
                min_defer = Some(min_defer.map_or(until, |m| m.min(until)));
            }
            Admission::Shed => mx_fail_parked(w, ps.from, ps.ctx, NetError::Overload),
        }
    }
    w.mx_mut().tenant_weights = weights;
    // Keep the (possibly empty) lanes: slab and ring capacities are the
    // steady-state allocation the hot path relies on.
    w.mx_mut().paced.insert(nic, lanes);
    if let Some(until) = min_defer {
        mx_pace_arm(w, nic, until);
    }
}

/// The admitted send pipeline (post token-bucket): protocol selection,
/// copies/pins, host/firmware charges, wire submission.
fn mx_isend_admitted<W: MxWorld>(
    w: &mut W,
    from: MxEndpointId,
    dest: MxEndpointId,
    tag: u64,
    iov: &IoVec,
    ctx: u64,
    tenant: TenantId,
) -> Result<(), NetError> {
    let params = w.mx().params;
    let (node, nic) = {
        let e = w.mx().ep(from)?;
        check_classes(e, iov)?;
        (e.node, e.nic)
    };
    let dst_nic = w.mx().ep(dest)?.nic;
    // A peer whose reliability window died is unreachable: fail before any
    // copies, pins or DMA are committed.
    if w.nics().rel.link_dead(Proto::Mx, nic, dst_nic) {
        return Err(NetError::PeerUnreachable);
    }
    let total = iov.total_len();
    {
        let e = w.mx_mut().ep_mut(from)?;
        e.stats.sends += 1;
        e.stats.bytes_sent += total;
    }
    let msg_id = {
        let l = w.mx_mut();
        l.next_msg_id += 1;
        l.next_msg_id
    };

    match params.protocol_for(total) {
        MxProtocol::Small => {
            // Host inlines the payload by PIO; the buffer is immediately
            // reusable. Gather through the recycled payload scratch.
            let data = gather_payload(w, node, iov)?;
            let host_cost = params.host_post + params.pio_cost(total);
            let host_done = knet_simos::cpu_charge(w, node, host_cost);
            let fw_done = fw_charge(w, nic, host_done, params.fw_send);
            let meta = pack_meta(dest, from, tag, msg_id, 0, total);
            let mut pkt = Packet::new(
                nic,
                dst_nic,
                Proto::Mx,
                KIND_EAGER,
                meta,
                data,
                params.header_bytes,
            );
            pkt.tenant = tenant.0;
            rel_send(w, pkt, fw_done);
            let ev = W::lift_mx(MxEv::Complete {
                ep: from,
                ev: MxEvent::SendDone { ctx },
                unpin: None,
                direct: false,
            });
            knet_simcore::emit_at(w, node.0, host_done, ev);
        }
        MxProtocol::Medium => {
            let avoidable = {
                // Resolve without pinning: kernel/physical classes resolve
                // freely; user memory is read through the copy path anyway.
                // The resolution lives in the layer's recycled scratch.
                let mut resolution = std::mem::take(&mut w.mx_mut().scratch.resolution);
                resolution.clear();
                if iov.uniform_class() == Some(AddrClass::KernelVirtual)
                    || iov.uniform_class() == Some(AddrClass::Physical)
                {
                    if let Err(e) =
                        resolve_iovec_into(w.os_mut().node_mut(node), iov, false, &mut resolution)
                    {
                        w.mx_mut().scratch.resolution = resolution;
                        return Err(e);
                    }
                }
                let avoidable = {
                    let e = w.mx().ep(from)?;
                    send_copy_avoidable(e, iov, &resolution.segs)
                };
                w.mx_mut().scratch.resolution = resolution;
                avoidable
            };
            let data = gather_payload(w, node, iov)?;
            let host_cost = if avoidable {
                // No copy: just the doorbell. (The paper's optimization.)
                w.mx_mut().ep_mut(from)?.stats.send_copies_avoided += 1;
                params.host_post
            } else {
                params.host_post + w.os().node(node).cpu.model.ring_copy_cost(total)
            };
            let host_done = knet_simos::cpu_charge(w, node, host_cost);
            let fw_done = fw_charge(w, nic, host_done, params.fw_send);
            // Chunks stream from the ring (or directly from the source when
            // the copy was elided — same DMA cost, the ring copy is what
            // disappears).
            let mtu = w.nics().get(nic).model.mtu;
            let mut ready = fw_done;
            let mut offset = 0u64;
            let n_chunks = total.div_ceil(mtu).max(1);
            for i in 0..n_chunks {
                let chunk_len = mtu.min(total - offset);
                let chunk = data.slice(offset as usize..(offset + chunk_len) as usize);
                let dma_done = dma_charge(w, nic, ready, chunk_len);
                let fw_ready = if i == 0 {
                    dma_done
                } else {
                    fw_charge(w, nic, dma_done, params.fw_chunk)
                };
                let meta = pack_meta(dest, from, tag, msg_id, offset, total);
                let mut pkt = Packet::new(
                    nic,
                    dst_nic,
                    Proto::Mx,
                    KIND_EAGER,
                    meta,
                    chunk,
                    params.header_bytes,
                );
                pkt.tenant = tenant.0;
                rel_send(w, pkt, fw_ready);
                ready = dma_done;
                offset += chunk_len;
            }
            // Buffer reusable once the host copy (or for the zero-copy path,
            // the last DMA fetch) is done.
            let complete_at = if avoidable { ready } else { host_done };
            let ev = W::lift_mx(MxEv::Complete {
                ep: from,
                ev: MxEvent::SendDone { ctx },
                unpin: None,
                direct: false,
            });
            knet_simcore::emit_at(w, node.0, complete_at, ev);
        }
        MxProtocol::Large => {
            // Rendezvous: pin/resolve now, send RTS, stream on CTS.
            let r = resolve_iovec(w.os_mut().node_mut(node), iov, true)?;
            let pin_pages = r.user_pages;
            let host_cost = params.host_post + w.os().node(node).cpu.model.pin_cost(pin_pages);
            let host_done = knet_simos::cpu_charge(w, node, host_cost);
            {
                let e = w.mx_mut().ep_mut(from)?;
                e.stats.rndv_started += 1;
                e.stats.pages_pinned += pin_pages;
            }
            w.mx_mut().rndv_send.insert(
                msg_id,
                RndvSend {
                    from_ep: from,
                    segs: r.segs,
                    pinned: r.pinned,
                    total,
                    tag,
                    ctx,
                    dst_ep: dest,
                    tenant,
                },
            );
            let fw_done = fw_charge(w, nic, host_done, params.fw_send);
            let meta = pack_meta(dest, from, tag, msg_id, 0, total);
            let mut pkt = Packet::new(
                nic,
                dst_nic,
                Proto::Mx,
                KIND_RTS,
                meta,
                Bytes::new(),
                params.header_bytes,
            );
            pkt.tenant = tenant.0;
            rel_send(w, pkt, fw_done);
        }
    }
    Ok(())
}

/// `mx_irecv`: post a tagged receive. Matches the unexpected queue first
/// (standard MX semantics).
pub fn mx_irecv<W: MxWorld>(
    w: &mut W,
    ep_id: MxEndpointId,
    tag: u64,
    iov: &IoVec,
    ctx: u64,
) -> Result<(), NetError> {
    let params = w.mx().params;
    let (node, _nic) = {
        let e = w.mx().ep(ep_id)?;
        check_classes(e, iov)?;
        (e.node, e.nic)
    };
    // Resolve (and pin user memory) up front: MX needs the translation for
    // direct DMA of large/no-recv-copy messages, and pinning at post time is
    // what "page locking overhead is lower [in the kernel]" refers to.
    let r = resolve_iovec(w.os_mut().node_mut(node), iov, true)?;
    let pin_pages = r.user_pages;
    let host_cost = params.host_post + w.os().node(node).cpu.model.pin_cost(pin_pages);
    knet_simos::cpu_charge(w, node, host_cost);
    w.mx_mut().ep_mut(ep_id)?.stats.pages_pinned += pin_pages;
    let posted = PostedRecv {
        tag,
        iov: iov.clone(),
        capacity: PhysSeg::total_len(&r.segs),
        segs: r.segs,
        pinned: r.pinned,
        ctx,
    };

    // Check the unexpected queue.
    let matched = {
        let e = w.mx_mut().ep_mut(ep_id)?;
        let pos = e.unexpected.iter().position(|u| match u {
            UnexpectedMsg::Eager { tag: t, .. } | UnexpectedMsg::Rndv { tag: t, .. } => {
                tag == MX_ANY_TAG || *t == tag
            }
        });
        pos.map(|i| e.unexpected.remove(i).expect("position valid"))
    };
    match matched {
        None => {
            w.mx_mut().ep_mut(ep_id)?.posted.push_back(posted);
        }
        Some(UnexpectedMsg::Eager { tag: t, data, from }) => {
            // Copy out of the ring into the posted buffer.
            let len = (data.len() as u64).min(posted.capacity);
            let copy = w.os().node(node).cpu.model.ring_copy_cost(len);
            let done = knet_simos::cpu_charge(w, node, copy + params.host_event);
            write_iovec(w.os_mut().node_mut(node), &posted.iov, &data)?;
            release_pins(w, node, &posted.pinned);
            let pctx = posted.ctx;
            let ev = W::lift_mx(MxEv::Complete {
                ep: ep_id,
                ev: MxEvent::RecvDone {
                    ctx: pctx,
                    tag: t,
                    len,
                    from,
                },
                unpin: None,
                direct: false,
            });
            knet_simcore::emit_at(w, node.0, done, ev);
        }
        Some(UnexpectedMsg::Rndv {
            tag: t,
            total,
            from,
            msg_id,
            src_nic,
        }) => {
            accept_rendezvous(w, ep_id, posted, t, total, from, msg_id, src_nic)?;
        }
    }
    Ok(())
}

fn release_pins<W: MxWorld>(w: &mut W, node: NodeId, pinned: &[FrameIdx]) {
    for &f in pinned {
        w.os_mut().node_mut(node).mem.unpin(f).ok();
    }
}

/// Receiver accepts a rendezvous: record state and fire CTS back.
#[allow(clippy::too_many_arguments)]
fn accept_rendezvous<W: MxWorld>(
    w: &mut W,
    ep_id: MxEndpointId,
    posted: PostedRecv,
    tag: u64,
    total: u64,
    from: MxEndpointId,
    msg_id: u64,
    src_nic: NicId,
) -> Result<(), NetError> {
    let params = w.mx().params;
    let nic = w.mx().ep(ep_id)?.nic;
    w.mx_mut().rndv_recv.insert(
        (ep_id.0, from.0, msg_id),
        RndvRecv {
            posted,
            from,
            total,
            received: 0,
            last_dma_done: SimTime::ZERO,
        },
    );
    let now = knet_simcore::now(w);
    let fw_done = fw_charge(w, nic, now, params.fw_rndv);
    let meta = pack_meta(from, ep_id, tag, msg_id, 0, total);
    let pkt = Packet::new(
        nic,
        src_nic,
        Proto::Mx,
        KIND_CTS,
        meta,
        Bytes::new(),
        params.header_bytes,
    );
    rel_send(w, pkt, fw_done);
    Ok(())
}

/// Post a collective descriptor through an MX endpoint: the host pays one
/// post, the firmware picks the descriptor up, and the collective then
/// progresses NIC-to-NIC ([`coll_inject`]) without further host involvement
/// until the completion event comes back up. Same cost from user space and
/// from the kernel — the MX property the paper is about.
pub fn mx_coll_post<W: MxWorld>(
    w: &mut W,
    ep_id: MxEndpointId,
    cmd: CollCmd,
) -> Result<(), NetError> {
    let params = w.mx().params;
    let (node, nic) = {
        let e = w.mx().ep(ep_id)?;
        (e.node, e.nic)
    };
    let host_done = knet_simos::cpu_charge(w, node, params.host_post);
    let fw_done = fw_charge(w, nic, host_done, params.fw_send);
    coll_inject(w, Proto::Mx, nic, cmd, fw_done);
    Ok(())
}

/// Firmware receive path for `Proto::Mx` packets.
pub fn mx_on_packet<W: MxWorld>(w: &mut W, nic: NicId, pkt: Packet) {
    debug_assert_eq!(pkt.proto, Proto::Mx);
    // NIC-level reliability first: acks and duplicates never reach the
    // protocol logic; fresh packets are acked with the cumulative point
    // plus the SACK bitmap of everything received beyond it, echoing the
    // packet's wire-departure timestamp for the sender's RTT estimator.
    if rel_on_packet(w, &pkt) == RelVerdict::Consumed {
        return;
    }
    // Collective frames (reserved kind range) belong to the NIC-resident
    // tree engine: forward/combine/ack without re-entering the MX logic.
    if is_coll_frame(pkt.kind) {
        return coll_on_packet(w, nic, pkt);
    }
    match pkt.kind {
        KIND_EAGER => eager_rx(w, nic, pkt),
        KIND_RTS => rts_rx(w, nic, pkt),
        KIND_CTS => cts_rx(w, nic, pkt),
        KIND_LARGE => large_rx(w, nic, pkt),
        k => debug_assert!(false, "unknown MX packet kind {k}"),
    }
}

fn eager_rx<W: MxWorld>(w: &mut W, nic: NicId, pkt: Packet) {
    let m = unpack_meta(&pkt.meta);
    let params = w.mx().params;
    let now = knet_simcore::now(w);
    let Ok(_) = w.mx().ep(m.dst) else { return };

    let akey = (m.dst.0, m.src.0, m.msg_id);
    let first = !w.mx().eager.contains_key(&akey);
    let fw_done;
    if first {
        // Match posted receives at first chunk.
        let matched = {
            let e = w.mx_mut().ep_mut(m.dst).expect("checked");
            let pos = e
                .posted
                .iter()
                .position(|p| (p.tag == MX_ANY_TAG || p.tag == m.tag) && p.capacity >= m.total);
            pos.map(|i| e.posted.remove(i).expect("position valid"))
        };
        let direct = matched.is_some()
            && w.mx()
                .ep(m.dst)
                .map(|e| e.opts.no_recv_copy)
                .unwrap_or(false);
        fw_done = fw_charge(w, nic, now, params.fw_recv);
        w.mx_mut().eager.insert(
            akey,
            EagerAssembly {
                from: m.src,
                tag: m.tag,
                total: m.total,
                received: 0,
                matched,
                direct,
                ring: Vec::new(),
                last_dma_done: fw_done,
            },
        );
    } else {
        fw_done = fw_charge(w, nic, now, params.fw_chunk);
    }

    let payload_len = pkt.payload.len() as u64;
    // Land the chunk: directly into the posted buffer (no_recv_copy), or
    // into the receive ring. The scatter window is recycled scratch.
    let mut window = std::mem::take(&mut w.mx_mut().scratch.window);
    let direct = {
        let a = w.mx().eager.get(&akey).expect("assembly");
        match (&a.matched, a.direct) {
            (Some(p), true) => {
                seg_window_into(&p.segs, m.offset, payload_len, &mut window);
                true
            }
            _ => false,
        }
    };
    let dma_done = if direct {
        dma_scatter(w, nic, fw_done, &window, &pkt.payload).unwrap_or(fw_done)
    } else {
        let t = dma_charge(w, nic, fw_done, payload_len);
        let a = w.mx_mut().eager.get_mut(&akey).expect("assembly");
        let off = m.offset as usize;
        if a.ring.len() < off + payload_len as usize {
            a.ring.resize(off + payload_len as usize, 0);
        }
        a.ring[off..off + payload_len as usize].copy_from_slice(&pkt.payload);
        t
    };
    w.mx_mut().scratch.window = window;

    let complete = {
        let a = w.mx_mut().eager.get_mut(&akey).expect("assembly");
        a.received += payload_len;
        a.last_dma_done = a.last_dma_done.max(dma_done);
        a.received >= a.total
    };
    if !complete {
        return;
    }

    let a = w.mx_mut().eager.remove(&akey).expect("assembly");
    let Ok(node) = w.mx().ep(m.dst).map(|e| e.node) else {
        return;
    };
    let ev_dma = dma_charge(w, nic, a.last_dma_done, 64);
    match a.matched {
        Some(posted) => {
            let len = a.total.min(posted.capacity);
            let (host_cost, copied) = if a.direct {
                // Future-MX: no receive copy.
                (params.host_event, false)
            } else {
                (
                    params.host_event + w.os().node(node).cpu.model.ring_copy_cost(len),
                    true,
                )
            };
            if copied {
                write_iovec(w.os_mut().node_mut(node), &posted.iov, &a.ring).ok();
            }
            release_pins(w, node, &posted.pinned);
            let start = ev_dma.max(knet_simcore::now(w));
            let (_, done) = w.os_mut().node_mut(node).cpu.busy.acquire(start, host_cost);
            let (ep_id, tag, from, pctx) = (m.dst, a.tag, a.from, posted.ctx);
            let ev = W::lift_mx(MxEv::Complete {
                ep: ep_id,
                ev: MxEvent::RecvDone {
                    ctx: pctx,
                    tag,
                    len,
                    from,
                },
                unpin: None,
                direct: a.direct,
            });
            knet_simcore::emit_at(w, node.0, done, ev);
        }
        None => {
            let deliver = w
                .mx()
                .ep(m.dst)
                .map(|e| e.deliver_unexpected)
                .unwrap_or(false);
            let data = Bytes::from(a.ring);
            if deliver {
                // Transport-glue mode: hand the payload up with the copy
                // charged.
                let copy = w.os().node(node).cpu.model.ring_copy_cost(a.total);
                let start = ev_dma.max(knet_simcore::now(w));
                let (_, done) = w
                    .os_mut()
                    .node_mut(node)
                    .cpu
                    .busy
                    .acquire(start, params.host_event + copy);
                let (ep_id, tag, from, _total) = (m.dst, a.tag, a.from, a.total);
                let ev = W::lift_mx(MxEv::Complete {
                    ep: ep_id,
                    ev: MxEvent::Unexpected { tag, data, from },
                    unpin: None,
                    direct: false,
                });
                knet_simcore::emit_at(w, node.0, done, ev);
            } else {
                // MPI mode: park in the unexpected queue for a later irecv.
                if let Ok(e) = w.mx_mut().ep_mut(m.dst) {
                    e.stats.unexpected += 1;
                    e.unexpected.push_back(UnexpectedMsg::Eager {
                        tag: a.tag,
                        data,
                        from: a.from,
                    });
                }
            }
        }
    }
}

fn rts_rx<W: MxWorld>(w: &mut W, nic: NicId, pkt: Packet) {
    let m = unpack_meta(&pkt.meta);
    let params = w.mx().params;
    let now = knet_simcore::now(w);
    let Ok(_) = w.mx().ep(m.dst) else { return };
    fw_charge(w, nic, now, params.fw_rndv);
    // Match a posted receive.
    let matched = {
        let e = w.mx_mut().ep_mut(m.dst).expect("checked");
        let pos = e
            .posted
            .iter()
            .position(|p| (p.tag == MX_ANY_TAG || p.tag == m.tag) && p.capacity >= m.total);
        pos.map(|i| e.posted.remove(i).expect("position valid"))
    };
    match matched {
        Some(posted) => {
            accept_rendezvous(w, m.dst, posted, m.tag, m.total, m.src, m.msg_id, pkt.src).ok();
        }
        None => {
            if let Ok(e) = w.mx_mut().ep_mut(m.dst) {
                e.unexpected.push_back(UnexpectedMsg::Rndv {
                    tag: m.tag,
                    total: m.total,
                    from: m.src,
                    msg_id: m.msg_id,
                    src_nic: pkt.src,
                });
            }
        }
    }
}

fn cts_rx<W: MxWorld>(w: &mut W, nic: NicId, pkt: Packet) {
    let m = unpack_meta(&pkt.meta);
    let params = w.mx().params;
    let now = knet_simcore::now(w);
    let Some(r) = w.mx_mut().rndv_send.remove(&m.msg_id) else {
        return;
    };
    let dst_nic = pkt.src;
    let fw_done = fw_charge(w, nic, now, params.fw_rndv);
    // Stream the message, zero-copy from the pinned source segments,
    // chunk by chunk through the recycled scratch (no chunk lists).
    let mtu = w.nics().get(nic).model.mtu;
    let mut chunk = std::mem::take(&mut w.mx_mut().scratch.chunk);
    let mut cursor = ChunkCursor::default();
    let mut ready = fw_done;
    let mut offset = 0u64;
    let mut first = true;
    while next_chunk(&r.segs, &mut cursor, mtu, &mut chunk) {
        let chunk_len = PhysSeg::total_len(&chunk);
        let Ok((data, dma_done)) = dma_gather(w, nic, ready, &chunk) else {
            break;
        };
        let fw_ready = if first {
            dma_done
        } else {
            fw_charge(w, nic, dma_done, params.fw_chunk)
        };
        first = false;
        let meta = pack_meta(r.dst_ep, r.from_ep, r.tag, m.msg_id, offset, r.total);
        let mut pkt = Packet::new(
            nic,
            dst_nic,
            Proto::Mx,
            KIND_LARGE,
            meta,
            data,
            params.header_bytes,
        );
        pkt.tenant = r.tenant.0;
        rel_send(w, pkt, fw_ready);
        ready = dma_done;
        offset += chunk_len;
        if offset >= r.total {
            // Source drained: unpin and complete the send.
            let node = w.mx().ep(r.from_ep).map(|e| e.node).ok();
            let pinned = r.pinned.clone();
            let (from_ep, ctx) = (r.from_ep, r.ctx);
            let unpin_cost = node
                .map(|nd| w.os().node(nd).cpu.model.unpin_cost(pinned.len() as u64))
                .unwrap_or(SimTime::ZERO);
            if let Some(nd) = node {
                let start = dma_done.max(knet_simcore::now(w));
                let (_, done) = w
                    .os_mut()
                    .node_mut(nd)
                    .cpu
                    .busy
                    .acquire(start, params.host_event + unpin_cost);
                let ev = W::lift_mx(MxEv::Complete {
                    ep: from_ep,
                    ev: MxEvent::SendDone { ctx },
                    unpin: Some((nd, pinned)),
                    direct: false,
                });
                knet_simcore::emit_at(w, nd.0, done, ev);
            }
        }
    }
    chunk.clear();
    w.mx_mut().scratch.chunk = chunk;
}

fn large_rx<W: MxWorld>(w: &mut W, nic: NicId, pkt: Packet) {
    let m = unpack_meta(&pkt.meta);
    let params = w.mx().params;
    let now = knet_simcore::now(w);
    let key = (m.dst.0, m.src.0, m.msg_id);
    if !w.mx().rndv_recv.contains_key(&key) {
        return;
    }
    let fw_done = fw_charge(w, nic, now, params.fw_chunk);
    let payload_len = pkt.payload.len() as u64;
    let mut window = std::mem::take(&mut w.mx_mut().scratch.window);
    {
        let r = w.mx().rndv_recv.get(&key).expect("checked");
        seg_window_into(&r.posted.segs, m.offset, payload_len, &mut window);
    }
    let dma_done = dma_scatter(w, nic, fw_done, &window, &pkt.payload).unwrap_or(fw_done);
    w.mx_mut().scratch.window = window;
    let complete = {
        let r = w.mx_mut().rndv_recv.get_mut(&key).expect("checked");
        r.received += payload_len;
        r.last_dma_done = r.last_dma_done.max(dma_done);
        r.received >= r.total
    };
    if !complete {
        return;
    }
    let r = w.mx_mut().rndv_recv.remove(&key).expect("checked");
    let Ok(node) = w.mx().ep(m.dst).map(|e| e.node) else {
        return;
    };
    let ev_dma = dma_charge(w, nic, r.last_dma_done, 64);
    let unpin_cost = w
        .os()
        .node(node)
        .cpu
        .model
        .unpin_cost(r.posted.pinned.len() as u64);
    let start = ev_dma.max(knet_simcore::now(w));
    let (_, done) = w
        .os_mut()
        .node_mut(node)
        .cpu
        .busy
        .acquire(start, params.host_event + unpin_cost);
    let (ep_id, tag, from, total, pctx) = (m.dst, r.posted.tag, r.from, r.total, r.posted.ctx);
    let tag = if tag == MX_ANY_TAG { m.tag } else { tag };
    let pinned = r.posted.pinned.clone();
    let ev = W::lift_mx(MxEv::Complete {
        ep: ep_id,
        ev: MxEvent::RecvDone {
            ctx: pctx,
            tag,
            len: total,
            from,
        },
        unpin: Some((node, pinned)),
        direct: false,
    });
    knet_simcore::emit_at(w, node.0, done, ev);
}

/// Pop the next pending event (host polling; `mx_wait_any` in MX parlance —
/// the flexible completion interface §5.2 praises).
pub fn mx_next_event<W: MxWorld>(w: &mut W, ep: MxEndpointId) -> Option<MxEvent> {
    w.mx_mut().ep_mut(ep).ok()?.events.pop_front()
}

/// Close an endpoint: release every posted receive's pins and drop queued
/// state. In-flight rendezvous in which this endpoint participates are
/// abandoned (their peers' pins are released on their own completion path).
pub fn mx_close_endpoint<W: MxWorld>(w: &mut W, ep_id: MxEndpointId) -> Result<(), NetError> {
    let (node, posted) = {
        let e = w.mx_mut().ep_mut(ep_id)?;
        let posted: Vec<PostedRecv> = e.posted.drain(..).collect();
        e.unexpected.clear();
        e.events.clear();
        e.open = false;
        (e.node, posted)
    };
    for p in posted {
        release_pins(w, node, &p.pinned);
    }
    Ok(())
}

/// Cancel the first posted receive with exactly this tag (releasing its
/// pins). Returns whether one was cancelled. Needed by layered protocols
/// whose data can race ahead of the descriptor (e.g. the zero-copy socket
/// header/payload pattern).
pub fn mx_cancel_recv<W: MxWorld>(w: &mut W, ep_id: MxEndpointId, tag: u64) -> bool {
    let (node, cancelled) = {
        let Ok(e) = w.mx_mut().ep_mut(ep_id) else {
            return false;
        };
        let node = e.node;
        let pos = e.posted.iter().position(|p| p.tag == tag);
        (
            node,
            pos.map(|i| e.posted.remove(i).expect("position valid")),
        )
    };
    match cancelled {
        Some(p) => {
            release_pins(w, node, &p.pinned);
            true
        }
        None => false,
    }
}

//! End-to-end MX driver tests, including the §5.1 calibration checks
//! (4.2 µs latency, kernel ≡ user, copy-removal gains).

use bytes::Bytes;
use knet_core::{IoVec, MemRef, NetError};
use knet_simcore::{run_to_quiescence, run_until, RunOutcome, Scheduler, SimTime, SimWorld};
use knet_simnic::{NicId, NicLayer, NicModel, NicWorld, Packet, Proto};
use knet_simos::{Asid, CpuModel, NodeId, OsLayer, OsWorld, Prot, PAGE_SIZE};

use crate::layer::{
    mx_irecv, mx_isend, mx_next_event, mx_on_packet, mx_open_endpoint, MxEndpointConfig,
    MxEndpointId, MxEvent, MxLayer, MxOpts, MxWorld, MX_ANY_TAG,
};
use crate::params::MxParams;

struct World {
    sched: Scheduler<World>,
    os: OsLayer,
    nics: NicLayer,
    mx: MxLayer,
}

impl SimWorld for World {
    type Ev = knet_simcore::BoxEvent<Self>;
    fn sched(&self) -> &Scheduler<Self> {
        &self.sched
    }
    fn sched_mut(&mut self) -> &mut Scheduler<Self> {
        &mut self.sched
    }
}
impl OsWorld for World {
    fn os(&self) -> &OsLayer {
        &self.os
    }
    fn os_mut(&mut self) -> &mut OsLayer {
        &mut self.os
    }
}
impl NicWorld for World {
    fn nics(&self) -> &NicLayer {
        &self.nics
    }
    fn nics_mut(&mut self) -> &mut NicLayer {
        &mut self.nics
    }
    fn nic_rx(&mut self, nic: NicId, pkt: Packet) {
        if pkt.proto == Proto::Mx {
            mx_on_packet(self, nic, pkt);
        }
    }
}
impl MxWorld for World {
    fn mx(&self) -> &MxLayer {
        &self.mx
    }
    fn mx_mut(&mut self) -> &mut MxLayer {
        &mut self.mx
    }
}

fn world() -> (World, NodeId, NodeId) {
    let mut w = World {
        sched: Scheduler::new(),
        os: OsLayer::new(),
        nics: NicLayer::new(),
        mx: MxLayer::new(MxParams::default()),
    };
    let n0 = w.os.add_node(CpuModel::xeon_2600(), 8192);
    let n1 = w.os.add_node(CpuModel::xeon_2600(), 8192);
    w.nics.add_nic(n0, NicModel::pci_xd());
    w.nics.add_nic(n1, NicModel::pci_xd());
    (w, n0, n1)
}

fn has_recv(w: &World, ep: MxEndpointId) -> bool {
    w.mx.ep(ep)
        .map(|e| {
            e.events
                .iter()
                .any(|e| matches!(e, MxEvent::RecvDone { .. }))
        })
        .unwrap_or(false)
}

fn pop_recv(w: &mut World, ep: MxEndpointId) -> MxEvent {
    loop {
        match mx_next_event(w, ep) {
            Some(ev @ MxEvent::RecvDone { .. }) => return ev,
            Some(_) => continue,
            None => panic!("no receive event pending"),
        }
    }
}

/// A kernel buffer (physically contiguous) as an IoVec of the given class.
enum Class {
    Kernel,
    Physical,
    User,
}

struct Buf {
    iov: IoVec,
    addr: knet_simos::VirtAddr,
    asid: Asid,
}

fn make_buf(w: &mut World, node: NodeId, len: u64, class: Class) -> Buf {
    let alloc = len.max(1).next_multiple_of(PAGE_SIZE);
    match class {
        Class::Kernel => {
            let addr = w.os.node_mut(node).kalloc(alloc).unwrap();
            Buf {
                iov: IoVec::single(MemRef::kernel(addr, len)),
                addr,
                asid: Asid::KERNEL,
            }
        }
        Class::Physical => {
            let addr = w.os.node_mut(node).kalloc(alloc).unwrap();
            let p = addr.kernel_to_phys().unwrap();
            Buf {
                iov: IoVec::single(MemRef::physical(p, len)),
                addr,
                asid: Asid::KERNEL,
            }
        }
        Class::User => {
            let asid = w.os.node_mut(node).create_process();
            let addr = w.os.node_mut(node).map_anon(asid, alloc, Prot::RW).unwrap();
            Buf {
                iov: IoVec::single(MemRef::user(asid, addr, len)),
                addr,
                asid,
            }
        }
    }
}

/// One-way ping-pong latency over `iters` round trips after warm-up.
fn pingpong_latency(
    w: &mut World,
    ea: MxEndpointId,
    eb: MxEndpointId,
    ba: &Buf,
    bb: &Buf,
    iters: u32,
) -> f64 {
    let measure = |w: &mut World| {
        mx_irecv(w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
        mx_isend(w, ea, eb, 1, &ba.iov, 0).unwrap();
        assert_eq!(run_until(w, |w| has_recv(w, eb)), RunOutcome::Satisfied);
        pop_recv(w, eb);
        mx_irecv(w, ea, MX_ANY_TAG, &ba.iov, 0).unwrap();
        mx_isend(w, eb, ea, 1, &bb.iov, 0).unwrap();
        assert_eq!(run_until(w, |w| has_recv(w, ea)), RunOutcome::Satisfied);
        pop_recv(w, ea);
    };
    measure(w);
    let t0 = knet_simcore::now(w);
    for _ in 0..iters {
        measure(w);
    }
    (knet_simcore::now(w) - t0).micros() / (2.0 * iters as f64)
}

fn latency_with(class_a: Class, class_b: Class, size: u64, cfg: MxEndpointConfig) -> f64 {
    let (mut w, n0, n1) = world();
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let ba = make_buf(&mut w, n0, size, class_a);
    let bb = make_buf(&mut w, n1, size, class_b);
    pingpong_latency(&mut w, ea, eb, &ba, &bb, 10)
}

#[test]
fn one_byte_latency_matches_paper() {
    // §5.1: 4.2 µs for a 1-byte message.
    let lat = latency_with(Class::User, Class::User, 1, user_cfg());
    assert!(
        (3.7..=4.7).contains(&lat),
        "MX user 1-byte one-way latency = {lat:.2} µs (paper: 4.2)"
    );
}

fn user_cfg() -> MxEndpointConfig {
    // Endpoint config resolved per-world in latency_with (needs the asid);
    // we cheat by making the config in make_buf order: user buffers carry
    // their own asid, and check_classes validates against the endpoint's.
    // So here we build a kernel config for kernel tests and patch user
    // configs inside latency_with_user below.
    MxEndpointConfig::kernel()
}

/// User-mode latency needs the endpoint bound to the buffer's process, so
/// build the world by hand.
fn user_latency(size: u64) -> f64 {
    let (mut w, n0, n1) = world();
    let ba = make_buf(&mut w, n0, size, Class::User);
    let bb = make_buf(&mut w, n1, size, Class::User);
    let ea = mx_open_endpoint(&mut w, n0, MxEndpointConfig::user(ba.asid)).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, MxEndpointConfig::user(bb.asid)).unwrap();
    pingpong_latency(&mut w, ea, eb, &ba, &bb, 10)
}

fn kernel_latency(size: u64, opts: MxOpts) -> f64 {
    latency_with(
        Class::Kernel,
        Class::Kernel,
        size,
        MxEndpointConfig::kernel().with_opts(opts),
    )
}

#[test]
fn user_one_byte_latency_is_4_2us() {
    let lat = user_latency(1);
    assert!(
        (3.7..=4.7).contains(&lat),
        "MX user 1-byte latency = {lat:.2} µs (paper: 4.2)"
    );
}

#[test]
fn kernel_latency_equals_user_latency() {
    // §5.1: "latency and bandwidth do not differ between user and kernel
    // communications."
    for size in [1u64, 64, 1024, 4096] {
        let u = user_latency(size);
        let k = kernel_latency(size, MxOpts::default());
        let diff = (u - k).abs();
        assert!(
            diff <= 0.40,
            "size {size}: user {u:.2} vs kernel {k:.2} µs differ by {diff:.2}"
        );
    }
}

/// One-way transfer time of a single message (send → RecvDone), after a
/// warm-up round trip.
fn one_way_time(size: u64, opts: MxOpts) -> SimTime {
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel().with_opts(opts);
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let ba = make_buf(&mut w, n0, size, Class::Kernel);
    let bb = make_buf(&mut w, n1, size, Class::Kernel);
    // Warm-up.
    mx_irecv(&mut w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
    mx_isend(&mut w, ea, eb, 1, &ba.iov, 0).unwrap();
    run_to_quiescence(&mut w);
    pop_recv(&mut w, eb);
    // Measure.
    mx_irecv(&mut w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
    let t0 = knet_simcore::now(&w);
    mx_isend(&mut w, ea, eb, 1, &ba.iov, 0).unwrap();
    assert_eq!(
        run_until(&mut w, |w| has_recv(w, eb)),
        RunOutcome::Satisfied
    );
    knet_simcore::now(&w) - t0
}

#[test]
fn send_copy_removal_gains_match_figure_6() {
    // §5.1: removing the send-side copy buys ≈17 % at 32 kB...
    let size = 32 * 1024;
    let std = one_way_time(size, MxOpts::default());
    let nosend = one_way_time(
        size,
        MxOpts {
            no_send_copy: true,
            no_recv_copy: false,
        },
    );
    let gain = (std.micros() - nosend.micros()) / nosend.micros();
    assert!(
        (0.10..=0.24).contains(&gain),
        "no-send-copy gain at 32 kB = {:.1} % (paper: 17 %)",
        gain * 100.0
    );
    // ...and removing both is predicted to buy another ≈15 %.
    let nocopy = one_way_time(
        size,
        MxOpts {
            no_send_copy: true,
            no_recv_copy: true,
        },
    );
    let gain2 = (nosend.micros() - nocopy.micros()) / nocopy.micros();
    assert!(
        (0.08..=0.24).contains(&gain2),
        "predicted no-copy extra gain = {:.1} % (paper: 15 %)",
        gain2 * 100.0
    );
}

#[test]
fn single_page_copy_removal_gains_about_nine_percent() {
    // §5.1: "The most common case would be a single-page transfer. In this
    // case, our optimization gives a 9 % improvement."
    let std = one_way_time(PAGE_SIZE, MxOpts::default());
    let nosend = one_way_time(
        PAGE_SIZE,
        MxOpts {
            no_send_copy: true,
            no_recv_copy: false,
        },
    );
    let gain = (std.micros() - nosend.micros()) / nosend.micros();
    assert!(
        (0.05..=0.15).contains(&gain),
        "single-page no-send-copy gain = {:.1} % (paper: 9 %)",
        gain * 100.0
    );
}

#[test]
fn small_medium_large_payloads_arrive_intact() {
    for &size in &[1u64, 100, 128, 4096, 32 * 1024, 100 * 1024] {
        let (mut w, n0, n1) = world();
        let cfg = MxEndpointConfig::kernel();
        let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
        let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
        let ba = make_buf(&mut w, n0, size, Class::Kernel);
        let bb = make_buf(&mut w, n1, size, Class::Kernel);
        let data: Vec<u8> = (0..size).map(|i| (i * 13 % 251) as u8).collect();
        w.os.node_mut(n0)
            .write_virt(Asid::KERNEL, ba.addr, &data)
            .unwrap();
        mx_irecv(&mut w, eb, 5, &bb.iov, 77).unwrap();
        mx_isend(&mut w, ea, eb, 5, &ba.iov, 88).unwrap();
        run_to_quiescence(&mut w);
        match pop_recv(&mut w, eb) {
            MxEvent::RecvDone {
                ctx,
                tag,
                len,
                from,
            } => {
                assert_eq!((ctx, tag, len, from), (77, 5, size, ea), "size {size}");
            }
            _ => unreachable!(),
        }
        let mut back = vec![0u8; size as usize];
        w.os.node(n1)
            .read_virt(Asid::KERNEL, bb.addr, &mut back)
            .unwrap();
        assert_eq!(back, data, "payload mismatch at size {size}");
        // Sender completion arrived too.
        let mut send_done = false;
        while let Some(ev) = mx_next_event(&mut w, ea) {
            if matches!(ev, MxEvent::SendDone { ctx: 88 }) {
                send_done = true;
            }
        }
        assert!(send_done, "send completion missing at size {size}");
    }
}

#[test]
fn vectorial_send_gathers_and_scatters() {
    // §4.1: vectorial primitives move several non-contiguous segments at
    // once — here three scattered kernel pages into two destination pieces.
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel();
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let mut srcs = Vec::new();
    let mut iov = IoVec::new();
    for i in 0..3u64 {
        let k = w.os.node_mut(n0).kalloc(PAGE_SIZE).unwrap();
        let chunk: Vec<u8> = (0..100).map(|j| (i * 100 + j) as u8).collect();
        w.os.node_mut(n0)
            .write_virt(Asid::KERNEL, k, &chunk)
            .unwrap();
        // Burn a page so source segments are physically discontiguous.
        let _ = w.os.node_mut(n0).kalloc(PAGE_SIZE).unwrap();
        iov.push(MemRef::kernel(k, 100));
        srcs.push(chunk);
    }
    let d0 = w.os.node_mut(n1).kalloc(PAGE_SIZE).unwrap();
    let d1 = w.os.node_mut(n1).kalloc(PAGE_SIZE).unwrap();
    let dst = IoVec::from_segs(vec![MemRef::kernel(d0, 120), MemRef::kernel(d1, 180)]);
    mx_irecv(&mut w, eb, MX_ANY_TAG, &dst, 0).unwrap();
    mx_isend(&mut w, ea, eb, 9, &iov, 0).unwrap();
    run_to_quiescence(&mut w);
    pop_recv(&mut w, eb);
    let flat: Vec<u8> = srcs.concat();
    let mut got = vec![0u8; 300];
    w.os.node(n1)
        .read_virt(Asid::KERNEL, d0, &mut got[..120])
        .unwrap();
    w.os.node(n1)
        .read_virt(Asid::KERNEL, d1, &mut got[120..])
        .unwrap();
    assert_eq!(got, flat);
}

#[test]
fn unexpected_eager_queues_for_later_irecv() {
    // MPI-style matching: the message parks in the unexpected queue and a
    // later irecv completes with a ring copy.
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel();
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let ba = make_buf(&mut w, n0, 256, Class::Kernel);
    w.os.node_mut(n0)
        .write_virt(Asid::KERNEL, ba.addr, &[0xEE; 256])
        .unwrap();
    mx_isend(&mut w, ea, eb, 3, &ba.iov, 0).unwrap();
    run_to_quiescence(&mut w);
    assert_eq!(w.mx.ep(eb).unwrap().unexpected_queued(), 1);
    let bb = make_buf(&mut w, n1, 256, Class::Kernel);
    mx_irecv(&mut w, eb, 3, &bb.iov, 4).unwrap();
    run_to_quiescence(&mut w);
    match pop_recv(&mut w, eb) {
        MxEvent::RecvDone { ctx, tag, len, .. } => {
            assert_eq!((ctx, tag, len), (4, 3, 256));
        }
        _ => unreachable!(),
    }
    let mut back = [0u8; 256];
    w.os.node(n1)
        .read_virt(Asid::KERNEL, bb.addr, &mut back)
        .unwrap();
    assert!(back.iter().all(|&b| b == 0xEE));
}

#[test]
fn unexpected_delivery_mode_emits_events() {
    // Transport-glue mode: unmatched messages surface as events with the
    // payload inline.
    let (mut w, n0, n1) = world();
    let ea = mx_open_endpoint(&mut w, n0, MxEndpointConfig::kernel()).unwrap();
    let eb = mx_open_endpoint(
        &mut w,
        n1,
        MxEndpointConfig::kernel().with_unexpected_delivery(),
    )
    .unwrap();
    let ba = make_buf(&mut w, n0, 64, Class::Kernel);
    w.os.node_mut(n0)
        .write_virt(Asid::KERNEL, ba.addr, b"rpc-request-bytes")
        .unwrap();
    mx_isend(&mut w, ea, eb, 11, &ba.iov, 0).unwrap();
    run_to_quiescence(&mut w);
    match mx_next_event(&mut w, eb) {
        Some(MxEvent::Unexpected { tag, data, from }) => {
            assert_eq!(tag, 11);
            assert_eq!(from, ea);
            assert_eq!(&data[..17], b"rpc-request-bytes");
        }
        other => panic!("expected Unexpected, got {other:?}"),
    }
    assert_eq!(w.mx.ep(eb).unwrap().unexpected_queued(), 0);
}

#[test]
fn rendezvous_waits_for_matching_receive() {
    // A large send to an endpoint with no posted receive must not move the
    // payload until the receive is posted (RTS parks in the unexpected
    // queue; CTS fires on irecv).
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel();
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let size = 64 * 1024u64;
    let ba = make_buf(&mut w, n0, size, Class::Kernel);
    mx_isend(&mut w, ea, eb, 8, &ba.iov, 5).unwrap();
    run_to_quiescence(&mut w);
    // Only the RTS crossed the wire.
    let bytes_before = w.nics.get(w.nics.nic_of_node(n1).unwrap()).stats.rx_bytes;
    assert!(bytes_before < 1024, "payload must not flow yet");
    assert_eq!(w.mx.ep(eb).unwrap().unexpected_queued(), 1);
    let bb = make_buf(&mut w, n1, size, Class::Kernel);
    mx_irecv(&mut w, eb, 8, &bb.iov, 6).unwrap();
    run_to_quiescence(&mut w);
    match pop_recv(&mut w, eb) {
        MxEvent::RecvDone { ctx, len, .. } => assert_eq!((ctx, len), (6, size)),
        _ => unreachable!(),
    }
}

#[test]
fn large_user_transfers_pin_and_unpin() {
    let (mut w, n0, n1) = world();
    let size = 128 * 1024u64;
    let ba = make_buf(&mut w, n0, size, Class::User);
    let bb = make_buf(&mut w, n1, size, Class::User);
    let ea = mx_open_endpoint(&mut w, n0, MxEndpointConfig::user(ba.asid)).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, MxEndpointConfig::user(bb.asid)).unwrap();
    mx_irecv(&mut w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
    mx_isend(&mut w, ea, eb, 1, &ba.iov, 0).unwrap();
    run_to_quiescence(&mut w);
    pop_recv(&mut w, eb);
    // All pins released after completion on both sides.
    for (node, buf) in [(n0, &ba), (n1, &bb)] {
        let frame =
            w.os.node(node)
                .space(buf.asid)
                .unwrap()
                .frame_of(buf.addr)
                .unwrap();
        assert_eq!(w.os.node(node).mem.pin_count(frame), 0, "pin leaked");
    }
    assert!(w.mx.ep(ea).unwrap().stats.pages_pinned >= 32);
}

#[test]
fn kernel_physical_large_transfer_avoids_pinning() {
    // §5.1: "The large message bandwidth is even higher with the kernel
    // interface since the page locking overhead is lower."
    let user = {
        let (mut w, n0, n1) = world();
        let size = 512 * 1024u64;
        let ba = make_buf(&mut w, n0, size, Class::User);
        let bb = make_buf(&mut w, n1, size, Class::User);
        let ea = mx_open_endpoint(&mut w, n0, MxEndpointConfig::user(ba.asid)).unwrap();
        let eb = mx_open_endpoint(&mut w, n1, MxEndpointConfig::user(bb.asid)).unwrap();
        pingpong_latency(&mut w, ea, eb, &ba, &bb, 4)
    };
    let phys = {
        let (mut w, n0, n1) = world();
        let size = 512 * 1024u64;
        let ba = make_buf(&mut w, n0, size, Class::Physical);
        let bb = make_buf(&mut w, n1, size, Class::Physical);
        let cfg = MxEndpointConfig::kernel();
        let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
        let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
        pingpong_latency(&mut w, ea, eb, &ba, &bb, 4)
    };
    assert!(
        phys < user,
        "kernel-physical ({phys:.1} µs) must beat user ({user:.1} µs)"
    );
    // The gap is the pinning cost: 128 pages on each side of each transfer.
    let gap = user - phys;
    assert!(
        (20.0..=150.0).contains(&gap),
        "pin-overhead gap = {gap:.1} µs"
    );
}

#[test]
fn user_endpoint_rejects_kernel_memory() {
    let (mut w, n0, n1) = world();
    let asid = w.os.node_mut(n0).create_process();
    let ea = mx_open_endpoint(&mut w, n0, MxEndpointConfig::user(asid)).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, MxEndpointConfig::kernel()).unwrap();
    let k = w.os.node_mut(n0).kalloc(PAGE_SIZE).unwrap();
    let iov = IoVec::single(MemRef::kernel(k, 64));
    assert_eq!(
        mx_isend(&mut w, ea, eb, 0, &iov, 0),
        Err(NetError::BadAddressClass)
    );
    let other = w.os.node_mut(n0).create_process();
    let va =
        w.os.node_mut(n0)
            .map_anon(other, PAGE_SIZE, Prot::RW)
            .unwrap();
    assert_eq!(
        mx_isend(
            &mut w,
            ea,
            eb,
            0,
            &IoVec::single(MemRef::user(other, va, 8)),
            0
        ),
        Err(NetError::BadAddressClass)
    );
}

#[test]
fn copy_avoidance_counters_track_usage() {
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel().with_opts(MxOpts {
        no_send_copy: true,
        no_recv_copy: true,
    });
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let ba = make_buf(&mut w, n0, 8 * 1024, Class::Kernel);
    let bb = make_buf(&mut w, n1, 8 * 1024, Class::Kernel);
    mx_irecv(&mut w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
    mx_isend(&mut w, ea, eb, 1, &ba.iov, 0).unwrap();
    run_to_quiescence(&mut w);
    pop_recv(&mut w, eb);
    assert_eq!(w.mx.ep(ea).unwrap().stats.send_copies_avoided, 1);
    assert_eq!(w.mx.ep(eb).unwrap().stats.recv_copies_avoided, 1);
    // A *vectorial* (non-contiguous) medium send cannot avoid the copy.
    let mut iov = IoVec::new();
    let k1 = w.os.node_mut(n0).kalloc(PAGE_SIZE).unwrap();
    let _gap = w.os.node_mut(n0).kalloc(PAGE_SIZE).unwrap();
    let k2 = w.os.node_mut(n0).kalloc(PAGE_SIZE).unwrap();
    iov.push(MemRef::kernel(k1, 1024));
    iov.push(MemRef::kernel(k2, 1024));
    mx_irecv(&mut w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
    mx_isend(&mut w, ea, eb, 1, &iov, 0).unwrap();
    run_to_quiescence(&mut w);
    assert_eq!(
        w.mx.ep(ea).unwrap().stats.send_copies_avoided,
        1,
        "non-contiguous send must take the copy path"
    );
}

#[test]
fn small_message_send_completes_before_the_wire() {
    // Small sends are PIO-inlined: SendDone is host-local and nearly
    // immediate, far before the receiver sees the message.
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel();
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let ba = make_buf(&mut w, n0, 64, Class::Kernel);
    let bb = make_buf(&mut w, n1, 64, Class::Kernel);
    mx_irecv(&mut w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
    mx_isend(&mut w, ea, eb, 1, &ba.iov, 0).unwrap();
    let sat = run_until(&mut w, |w| {
        w.mx.ep(ea).map(|e| !e.events.is_empty()).unwrap_or(false)
    });
    assert_eq!(sat, RunOutcome::Satisfied);
    let send_done_at = knet_simcore::now(&w);
    run_to_quiescence(&mut w);
    assert!(has_recv(&w, eb));
    assert!(
        send_done_at < SimTime::from_micros(2),
        "PIO send completion should be ≈1 µs, got {send_done_at}"
    );
}

#[test]
fn medium_data_is_snapshotted_at_send_time() {
    // The medium copy gives snapshot semantics: mutating the source after
    // isend must not change what the receiver gets.
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel();
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let ba = make_buf(&mut w, n0, 1024, Class::Kernel);
    let bb = make_buf(&mut w, n1, 1024, Class::Kernel);
    w.os.node_mut(n0)
        .write_virt(Asid::KERNEL, ba.addr, &[1u8; 1024])
        .unwrap();
    mx_irecv(&mut w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
    mx_isend(&mut w, ea, eb, 1, &ba.iov, 0).unwrap();
    // Clobber the source immediately (before the sim runs).
    w.os.node_mut(n0)
        .write_virt(Asid::KERNEL, ba.addr, &[9u8; 1024])
        .unwrap();
    run_to_quiescence(&mut w);
    pop_recv(&mut w, eb);
    let mut back = [0u8; 1024];
    w.os.node(n1)
        .read_virt(Asid::KERNEL, bb.addr, &mut back)
        .unwrap();
    assert!(
        back.iter().all(|&b| b == 1),
        "receiver must see the snapshot"
    );
}

#[test]
fn truncating_receive_is_rejected_by_matching() {
    // A posted buffer smaller than the incoming message is skipped (MX
    // matches on capacity); the message goes unexpected instead of being
    // silently truncated.
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel();
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let ba = make_buf(&mut w, n0, 2048, Class::Kernel);
    let small = make_buf(&mut w, n1, 128, Class::Kernel);
    mx_irecv(&mut w, eb, MX_ANY_TAG, &small.iov, 0).unwrap();
    mx_isend(&mut w, ea, eb, 1, &ba.iov, 0).unwrap();
    run_to_quiescence(&mut w);
    assert!(!has_recv(&w, eb));
    assert_eq!(w.mx.ep(eb).unwrap().unexpected_queued(), 1);
    assert_eq!(
        w.mx.ep(eb).unwrap().posted_recvs(),
        1,
        "buffer still posted"
    );
}

#[test]
fn payload_bytes_on_wire_match_message_sizes() {
    let (mut w, n0, n1) = world();
    let cfg = MxEndpointConfig::kernel();
    let ea = mx_open_endpoint(&mut w, n0, cfg).unwrap();
    let eb = mx_open_endpoint(&mut w, n1, cfg).unwrap();
    let ba = make_buf(&mut w, n0, 10_000, Class::Kernel);
    let bb = make_buf(&mut w, n1, 10_000, Class::Kernel);
    mx_irecv(&mut w, eb, MX_ANY_TAG, &bb.iov, 0).unwrap();
    mx_isend(&mut w, ea, eb, 1, &ba.iov, 0).unwrap();
    run_to_quiescence(&mut w);
    let sent = w.nics.get(w.nics.nic_of_node(n0).unwrap()).stats.tx_bytes;
    // 3 chunks × 32 B header + 10 000 B payload.
    assert_eq!(sent, 10_000 + 3 * 32);
    let _ = Bytes::new(); // keep the bytes import exercised
}

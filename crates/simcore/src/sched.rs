//! The discrete-event scheduler: typed events, recycled arenas, and
//! shard-aware deterministic ordering.
//!
//! The engine is generic over the *world* type `W`: every layer of the stack
//! (host OS, NIC hardware, GM/MX drivers, file system, socket layer) stores
//! its state inside one world struct composed by the top-level crate. Events
//! are values of the world's associated [`SimEvent`] type — a concrete enum
//! in the composed world, so the steady-state path never boxes — held in a
//! recycled slab arena and ordered by the key `(time, origin, origin_seq)`:
//!
//! * `time` — the virtual instant the event fires at;
//! * `origin` — the *stream* that scheduled it: the node whose event was
//!   executing at schedule time, or the control stream (harness/test code
//!   running between events);
//! * `origin_seq` — a per-origin monotone counter.
//!
//! The per-origin key is what makes sharded execution bit-identical to the
//! sequential order: a node's schedules are totally ordered by its own
//! counter, every event is executed by exactly one shard (the one owning its
//! target node), and cross-shard messages carry their key with them, so the
//! destination heap merges to the same total order no matter how many
//! threads the cluster is split across. Two events are never keyed equally:
//! same-origin events differ in `origin_seq`, different origins differ in
//! `origin`.
//!
//! Sharding itself is cooperative: a scheduler configured as shard `i` of
//! `k` keeps only events targeting nodes it owns (`node % k == i`). Foreign
//! targets either go to the outbox (routed mode — the parallel engine and
//! the sharded harness exchange them into the owning shard's ingress
//! mailbox) or are dropped (mirror mode — identical setup code runs on
//! every shard, so each shard already scheduled its own copy). A solo
//! scheduler (`k == 1`) owns everything and none of this machinery is
//! exercised. See [`crate::engine`] for the conservative-lookahead epoch
//! loop that steps shards on real threads.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

// ---------------------------------------------------------------- events

/// A schedulable event for world `W`.
///
/// Composed worlds implement this with a concrete enum (one variant per
/// event family) so the steady-state path allocates nothing per event; the
/// `from_call` escape hatch wraps an arbitrary boxed closure for cold paths
/// and generic layer-crate test worlds (see [`BoxEvent`]).
pub trait SimEvent<W>: Sized + Send + 'static {
    /// Wrap a boxed closure as an event (the cold/cheap path).
    fn from_call(f: Box<dyn FnOnce(&mut W) + Send>) -> Self;
    /// Execute the event against the world.
    fn run(self, w: &mut W);
}

/// The trivial event type: a boxed closure. Layer crates' generic test
/// worlds use this; the composed cluster world uses a typed enum instead so
/// its hot path never boxes.
pub struct BoxEvent<W>(Box<dyn FnOnce(&mut W) + Send>);

impl<W: 'static> SimEvent<W> for BoxEvent<W> {
    fn from_call(f: Box<dyn FnOnce(&mut W) + Send>) -> Self {
        BoxEvent(f)
    }
    fn run(self, w: &mut W) {
        (self.0)(w)
    }
}

/// A world that embeds a [`Scheduler`] for itself.
///
/// Layer crates bound their generic functions by capability traits whose
/// root is `SimWorld`; the concrete world type is composed once, at the top
/// of the dependency graph.
pub trait SimWorld: Sized + 'static {
    /// The event representation. Composed worlds use a typed enum;
    /// [`BoxEvent`] is the one-line default for generic test worlds.
    type Ev: SimEvent<Self>;
    fn sched(&self) -> &Scheduler<Self>;
    fn sched_mut(&mut self) -> &mut Scheduler<Self>;
}

// ------------------------------------------------------------ event arena

/// Recycled slab of pending events. Heap entries hold a slot index into
/// this arena, so the binary heap stores only `Copy` keys; slots are
/// returned to the free list as events execute, and in steady state neither
/// the slab nor the free list grows.
struct EventArena<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    uses: u64,
    grows: u64,
}

impl<E> EventArena<E> {
    fn new() -> Self {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
            uses: 0,
            grows: 0,
        }
    }

    fn alloc(&mut self, ev: E) -> u32 {
        self.uses += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(ev);
            slot
        } else {
            self.grows += 1;
            self.slots.push(Some(ev));
            (self.slots.len() - 1) as u32
        }
    }

    fn take(&mut self, slot: u32) -> E {
        let ev = self.slots[slot as usize]
            .take()
            .expect("arena slot double-take");
        self.free.push(slot);
        ev
    }
}

// ------------------------------------------------------------- heap entry

/// Origin id of the control stream: harness/test/setup code running
/// *between* events (as opposed to a node's own event cascade).
pub const CONTROL_ORIGIN: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Entry {
    at: SimTime,
    origin: u32,
    seq: u64,
    node: u32,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.origin, self.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest key pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

// -------------------------------------------------------- errors / stats

/// A typed engine invariant violation. Promoted from the old
/// `debug_assert!` so release-mode shard bugs fail loudly (surfaced through
/// `stats_snapshot()` and [`Scheduler::engine_error`]) instead of silently
/// reordering events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// An event popped with a timestamp before the clock — the heap order
    /// was violated (memory corruption or a scheduler bug).
    TimeRegression { at: SimTime, now: SimTime },
    /// A cross-shard message arrived timestamped before the destination
    /// shard's clock — the epoch lookahead was larger than some link's
    /// actual latency, so conservative parallel execution is unsound for
    /// this topology.
    CausalityViolation {
        at: SimTime,
        now: SimTime,
        node: u32,
    },
}

/// Per-shard engine counters, mirrored into the registry snapshot
/// (`stats_snapshot()`) alongside `RelStats` and the collective counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events executed by this shard.
    pub executed: u64,
    /// Events currently pending in this shard's heap.
    pub pending: u64,
    /// Epochs this shard has stepped through under the parallel engine.
    pub epochs: u64,
    /// Cross-shard messages injected into this shard's ingress mailbox.
    pub mailbox_injected: u64,
    /// Largest single mailbox exchange observed (depth high-water mark).
    pub mailbox_high_water: u64,
    /// Events placed in the arena (allocation-free when `arena_grows`
    /// stays flat while this climbs).
    pub arena_uses: u64,
    /// Arena slab expansions — flat in steady state.
    pub arena_grows: u64,
    /// Events dropped in mirror mode (foreign targets scheduled by
    /// mirrored setup code; each shard keeps only its own).
    pub mirror_dropped: u64,
    /// Engine invariant violations recorded (see [`EngineError`]).
    pub errors: u64,
}

// ------------------------------------------------------------- shard mode

/// How a sharded scheduler treats events targeting nodes it does not own.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPhase {
    /// Identical code runs on every shard (mirrored setup): each shard
    /// keeps its own targets and silently drops foreign ones, because the
    /// owning shard scheduled its own copy.
    Mirror,
    /// Code runs on exactly one shard (event execution, or a routed
    /// control op): foreign targets go to the outbox for delivery into the
    /// owning shard's mailbox.
    Routed,
}

/// A cross-shard event in flight: the full ordering key travels with the
/// payload so the destination heap merges deterministically.
pub struct OutMsg<E> {
    pub at: SimTime,
    pub origin: u32,
    pub seq: u64,
    pub node: u32,
    pub ev: E,
}

// -------------------------------------------------------------- scheduler

/// Priority queue of pending events plus the virtual clock, owning one
/// shard's slice of the cluster (everything, when unsharded).
pub struct Scheduler<W: SimWorld> {
    now: SimTime,
    executed: u64,
    heap: BinaryHeap<Entry>,
    arena: EventArena<W::Ev>,
    /// Per-node origin counters (grown on demand) + the control stream's.
    origin_seq: Vec<u64>,
    control_seq: u64,
    /// The stream currently scheduling: the executing event's target node,
    /// or [`CONTROL_ORIGIN`] between events.
    cur_origin: u32,
    shard_id: u32,
    shard_count: u32,
    phase: ShardPhase,
    outbox: Vec<OutMsg<W::Ev>>,
    error: Option<EngineError>,
    stats: EngineStats,
}

impl<W: SimWorld> Default for Scheduler<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: SimWorld> Scheduler<W> {
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            executed: 0,
            heap: BinaryHeap::with_capacity(1024),
            arena: EventArena::new(),
            origin_seq: Vec::new(),
            control_seq: 0,
            cur_origin: CONTROL_ORIGIN,
            shard_id: 0,
            shard_count: 1,
            phase: ShardPhase::Routed,
            outbox: Vec::new(),
            error: None,
            stats: EngineStats::default(),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (a cheap determinism fingerprint).
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// First engine invariant violation recorded, if any.
    #[inline]
    pub fn engine_error(&self) -> Option<EngineError> {
        self.error
    }

    /// This shard's engine counters.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            pending: self.heap.len() as u64,
            executed: self.executed,
            arena_uses: self.arena.uses,
            arena_grows: self.arena.grows,
            ..self.stats
        }
    }

    // ------------------------------------------------------------ sharding

    /// Configure this scheduler as shard `id` of `count` (node `n` is owned
    /// iff `n % count == id`). A fresh scheduler is shard 0 of 1: it owns
    /// every node and behaves exactly like the classic sequential engine.
    pub fn configure_shard(&mut self, id: u32, count: u32) {
        assert!(count >= 1 && id < count, "shard {id} of {count}");
        self.shard_id = id;
        self.shard_count = count;
    }

    /// Switch between mirrored-setup and routed handling of foreign
    /// targets. Irrelevant for a solo scheduler.
    pub fn set_phase(&mut self, phase: ShardPhase) {
        self.phase = phase;
    }

    #[inline]
    pub fn shard_id(&self) -> u32 {
        self.shard_id
    }

    #[inline]
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    #[inline]
    fn owns(&self, node: u32) -> bool {
        self.shard_count == 1 || node % self.shard_count == self.shard_id
    }

    /// Move accumulated cross-shard messages into `sink` (recycling the
    /// internal buffer).
    pub fn drain_outbox(&mut self, sink: &mut Vec<OutMsg<W::Ev>>) {
        sink.append(&mut self.outbox);
    }

    /// Inject one batch of cross-shard messages (the ingress mailbox
    /// exchange). Messages carry their ordering key; a timestamp behind
    /// this shard's clock is a conservative-lookahead violation and is
    /// recorded as a typed [`EngineError`] (the event still runs, clamped,
    /// so the simulation terminates — but the run is flagged unsound).
    pub fn inject(&mut self, batch: &mut Vec<OutMsg<W::Ev>>) {
        let depth = batch.len() as u64;
        self.stats.mailbox_injected += depth;
        self.stats.mailbox_high_water = self.stats.mailbox_high_water.max(depth);
        for msg in batch.drain(..) {
            debug_assert!(self.owns(msg.node), "mailbox message for a foreign node");
            let mut at = msg.at;
            if at < self.now {
                self.record_error(EngineError::CausalityViolation {
                    at,
                    now: self.now,
                    node: msg.node,
                });
                at = self.now;
            }
            let slot = self.arena.alloc(msg.ev);
            self.heap.push(Entry {
                at,
                origin: msg.origin,
                seq: msg.seq,
                node: msg.node,
                slot,
            });
        }
    }

    /// Advance the clock to `t` (never backwards). The sharded harness
    /// aligns all shards to the global maximum at quiescence points so
    /// control ops run at the same virtual instant they would have in a
    /// sequential run.
    pub fn align_now(&mut self, t: SimTime) {
        if t > self.now {
            debug_assert!(
                self.next_at().is_none_or(|n| n >= t),
                "aligning past a pending event"
            );
            self.now = self.now.max(t);
        }
    }

    /// The control stream's sequence counter. The sharded harness threads
    /// one global counter through every shard's control ops so the
    /// cross-shard tie-break order matches the sequential run exactly.
    #[inline]
    pub fn control_seq(&self) -> u64 {
        self.control_seq
    }

    pub fn set_control_seq(&mut self, seq: u64) {
        self.control_seq = seq;
    }

    fn record_error(&mut self, e: EngineError) {
        self.stats.errors += 1;
        if self.error.is_none() {
            self.error = Some(e);
        }
        debug_assert!(false, "engine invariant violated: {e:?}");
    }

    // ---------------------------------------------------------- scheduling

    /// Schedule `ev` at absolute time `t`, targeting `node`. Times in the
    /// past are clamped to "now": the event still runs, after
    /// already-queued events for `now`.
    pub(crate) fn schedule(&mut self, node: u32, t: SimTime, ev: W::Ev) {
        let at = t.max(self.now);
        let origin = self.cur_origin;
        let seq = if origin == CONTROL_ORIGIN {
            let s = self.control_seq;
            self.control_seq += 1;
            s
        } else {
            let idx = origin as usize;
            if idx >= self.origin_seq.len() {
                self.origin_seq.resize(idx + 1, 0);
            }
            let s = self.origin_seq[idx];
            self.origin_seq[idx] += 1;
            s
        };
        if self.owns(node) {
            let slot = self.arena.alloc(ev);
            self.heap.push(Entry {
                at,
                origin,
                seq,
                node,
                slot,
            });
        } else {
            match self.phase {
                ShardPhase::Mirror => self.stats.mirror_dropped += 1,
                ShardPhase::Routed => self.outbox.push(OutMsg {
                    at,
                    origin,
                    seq,
                    node,
                    ev,
                }),
            }
        }
    }

    /// Pop the next event, advancing the clock and switching the origin
    /// stream to the event's target node for the duration of its
    /// execution (callers pair this with [`Scheduler::end_event`]).
    pub(crate) fn pop_next(&mut self) -> Option<W::Ev> {
        let entry = self.heap.pop()?;
        if entry.at < self.now {
            self.record_error(EngineError::TimeRegression {
                at: entry.at,
                now: self.now,
            });
        } else {
            self.now = entry.at;
        }
        self.executed += 1;
        self.cur_origin = entry.node;
        Some(self.arena.take(entry.slot))
    }

    /// Return the origin stream to control (the executing event is done).
    #[inline]
    pub(crate) fn end_event(&mut self) {
        self.cur_origin = CONTROL_ORIGIN;
    }

    pub(crate) fn note_epoch(&mut self) {
        self.stats.epochs += 1;
    }
}

// --------------------------------------------------------- free functions

/// Current virtual time of a world.
#[inline]
pub fn now<W: SimWorld>(w: &W) -> SimTime {
    w.sched().now()
}

/// Schedule the typed event `ev` at absolute time `t`, targeting `node`
/// (the node whose state the event mutates — the shard owning that node
/// executes it).
#[inline]
pub fn emit_at<W: SimWorld>(w: &mut W, node: u32, t: SimTime, ev: W::Ev) {
    w.sched_mut().schedule(node, t, ev);
}

/// Schedule the typed event `ev` after a delay of `d`, targeting `node`.
#[inline]
pub fn emit_after<W: SimWorld>(w: &mut W, node: u32, d: SimTime, ev: W::Ev) {
    let t = w.sched().now() + d;
    w.sched_mut().schedule(node, t, ev);
}

/// Schedule the closure `f` at absolute time `t`, targeting `node`. This is
/// the boxed cold path — steady-state events should be typed enum variants
/// via [`emit_at`] instead.
#[inline]
pub fn call_at<W: SimWorld>(
    w: &mut W,
    node: u32,
    t: SimTime,
    f: impl FnOnce(&mut W) + Send + 'static,
) {
    let ev = W::Ev::from_call(Box::new(f));
    w.sched_mut().schedule(node, t, ev);
}

/// Schedule the closure `f` after a delay of `d`, targeting `node`.
#[inline]
pub fn call_after<W: SimWorld>(
    w: &mut W,
    node: u32,
    d: SimTime,
    f: impl FnOnce(&mut W) + Send + 'static,
) {
    let t = w.sched().now() + d;
    call_at(w, node, t, f);
}

/// Schedule `f` to run at the current instant (after events already queued
/// for this instant), targeting `node`.
#[inline]
pub fn call_now<W: SimWorld>(w: &mut W, node: u32, f: impl FnOnce(&mut W) + Send + 'static) {
    let t = w.sched().now();
    call_at(w, node, t, f);
}

/// Execute the next pending event. Returns `false` when the queue is empty.
pub fn step<W: SimWorld>(w: &mut W) -> bool {
    // Pop first so the event gets exclusive access to the world.
    let Some(ev) = w.sched_mut().pop_next() else {
        return false;
    };
    ev.run(w);
    w.sched_mut().end_event();
    true
}

/// Outcome of a bounded run; see [`run_until`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate became true.
    Satisfied,
    /// The event queue drained without the predicate becoming true.
    Quiescent,
    /// The event budget was exhausted (likely a livelocked model).
    BudgetExhausted,
}

/// Default event budget for [`run_until`] — far above anything a benchmark
/// sweep needs, but finite so that a buggy model fails loudly instead of
/// spinning forever.
pub const DEFAULT_EVENT_BUDGET: u64 = 200_000_000;

/// Run until `pred` holds (checked before each event), the queue drains, or
/// `budget` events have executed.
pub fn run_until_budgeted<W: SimWorld>(
    w: &mut W,
    budget: u64,
    mut pred: impl FnMut(&W) -> bool,
) -> RunOutcome {
    for _ in 0..budget {
        if pred(w) {
            return RunOutcome::Satisfied;
        }
        if !step(w) {
            return RunOutcome::Quiescent;
        }
    }
    if pred(w) {
        RunOutcome::Satisfied
    } else {
        RunOutcome::BudgetExhausted
    }
}

/// [`run_until_budgeted`] with the default budget.
#[inline]
pub fn run_until<W: SimWorld>(w: &mut W, pred: impl FnMut(&W) -> bool) -> RunOutcome {
    run_until_budgeted(w, DEFAULT_EVENT_BUDGET, pred)
}

/// Drain the event queue completely; returns the number of events executed.
pub fn run_to_quiescence<W: SimWorld>(w: &mut W) -> u64 {
    let before = w.sched().executed();
    while step(w) {}
    w.sched().executed() - before
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestWorld {
        sched: Scheduler<TestWorld>,
        log: Vec<u32>,
    }

    impl SimWorld for TestWorld {
        type Ev = BoxEvent<Self>;
        fn sched(&self) -> &Scheduler<Self> {
            &self.sched
        }
        fn sched_mut(&mut self) -> &mut Scheduler<Self> {
            &mut self.sched
        }
    }

    fn world() -> TestWorld {
        TestWorld {
            sched: Scheduler::new(),
            log: Vec::new(),
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut w = world();
        call_at(&mut w, 0, SimTime::from_micros(3), |w: &mut TestWorld| {
            w.log.push(3)
        });
        call_at(&mut w, 0, SimTime::from_micros(1), |w: &mut TestWorld| {
            w.log.push(1)
        });
        call_at(&mut w, 0, SimTime::from_micros(2), |w: &mut TestWorld| {
            w.log.push(2)
        });
        run_to_quiescence(&mut w);
        assert_eq!(w.log, vec![1, 2, 3]);
        assert_eq!(now(&w), SimTime::from_micros(3));
    }

    #[test]
    fn same_time_events_run_in_scheduling_order() {
        let mut w = world();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            call_at(&mut w, 0, t, move |w: &mut TestWorld| w.log.push(i));
        }
        run_to_quiescence(&mut w);
        assert_eq!(w.log, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_time_streams_order_by_origin() {
        // Two nodes schedule follow-ups for the same instant; the key
        // orders node streams before the control stream and lower node ids
        // first — deterministically, independent of scheduling order.
        let mut w = world();
        let t = SimTime::from_micros(1);
        for node in [2u32, 1] {
            call_at(&mut w, node, t, move |w: &mut TestWorld| {
                let t2 = SimTime::from_micros(2);
                call_at(w, node, t2, move |w: &mut TestWorld| w.log.push(node));
            });
        }
        // A control-stream event for the same later instant, scheduled
        // *first*, still runs after both node streams.
        call_at(&mut w, 1, SimTime::from_micros(2), |w: &mut TestWorld| {
            w.log.push(99)
        });
        run_to_quiescence(&mut w);
        assert_eq!(w.log, vec![1, 2, 99]);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut w = world();
        call_at(&mut w, 0, SimTime::from_micros(10), |w: &mut TestWorld| {
            // Scheduling in the past must not rewind the clock.
            call_at(w, 0, SimTime::from_micros(1), |w: &mut TestWorld| {
                w.log.push(2);
            });
            w.log.push(1);
        });
        run_to_quiescence(&mut w);
        assert_eq!(w.log, vec![1, 2]);
        assert_eq!(now(&w), SimTime::from_micros(10));
    }

    #[test]
    fn events_can_cascade() {
        let mut w = world();
        call_after(&mut w, 0, SimTime::from_micros(1), |w: &mut TestWorld| {
            w.log.push(1);
            call_after(w, 0, SimTime::from_micros(1), |w: &mut TestWorld| {
                w.log.push(2);
                call_after(w, 0, SimTime::from_micros(1), |w: &mut TestWorld| {
                    w.log.push(3)
                });
            });
        });
        run_to_quiescence(&mut w);
        assert_eq!(w.log, vec![1, 2, 3]);
        assert_eq!(now(&w), SimTime::from_micros(3));
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut w = world();
        for i in 0..10 {
            call_at(
                &mut w,
                0,
                SimTime::from_micros(i),
                move |w: &mut TestWorld| w.log.push(i as u32),
            );
        }
        let outcome = run_until(&mut w, |w| w.log.len() == 5);
        assert_eq!(outcome, RunOutcome::Satisfied);
        assert_eq!(w.log.len(), 5);
        assert_eq!(w.sched.pending(), 5);
    }

    #[test]
    fn run_until_reports_quiescence() {
        let mut w = world();
        call_after(&mut w, 0, SimTime::from_micros(1), |w: &mut TestWorld| {
            w.log.push(1)
        });
        let outcome = run_until(&mut w, |_| false);
        assert_eq!(outcome, RunOutcome::Quiescent);
    }

    #[test]
    fn run_until_respects_budget() {
        let mut w = world();
        // A self-perpetuating event stream.
        fn tick(w: &mut TestWorld) {
            w.log.push(0);
            call_after(w, 0, SimTime::from_nanos(1), tick);
        }
        call_now(&mut w, 0, tick);
        let outcome = run_until_budgeted(&mut w, 1000, |_| false);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(w.log.len(), 1000);
    }

    #[test]
    fn executed_counts_events() {
        let mut w = world();
        for i in 0..7 {
            call_at(&mut w, 0, SimTime::from_micros(i), |w: &mut TestWorld| {
                w.log.push(0)
            });
        }
        run_to_quiescence(&mut w);
        assert_eq!(w.sched.executed(), 7);
    }

    #[test]
    fn arena_recycles_slots_in_steady_state() {
        let mut w = world();
        // Warm: one batch fills the arena to its high-water mark.
        for _ in 0..100 {
            call_after(&mut w, 0, SimTime::from_nanos(1), |w: &mut TestWorld| {
                w.log.push(0)
            });
        }
        run_to_quiescence(&mut w);
        let warm = w.sched.engine_stats();
        for _ in 0..100 {
            call_after(&mut w, 0, SimTime::from_nanos(1), |w: &mut TestWorld| {
                w.log.push(0)
            });
        }
        run_to_quiescence(&mut w);
        let steady = w.sched.engine_stats();
        assert_eq!(steady.arena_grows, warm.arena_grows, "arena stays flat");
        assert!(steady.arena_uses >= warm.arena_uses + 100);
    }

    #[test]
    fn mirror_phase_drops_foreign_targets() {
        let mut w = world();
        w.sched.configure_shard(0, 2);
        w.sched.set_phase(ShardPhase::Mirror);
        call_now(&mut w, 0, |w: &mut TestWorld| w.log.push(0)); // owned
        call_now(&mut w, 1, |w: &mut TestWorld| w.log.push(1)); // foreign
        run_to_quiescence(&mut w);
        assert_eq!(w.log, vec![0]);
        assert_eq!(w.sched.engine_stats().mirror_dropped, 1);
    }

    #[test]
    fn routed_phase_exports_foreign_targets_with_keys() {
        let mut a = world();
        let mut b = world();
        a.sched.configure_shard(0, 2);
        b.sched.configure_shard(1, 2);
        call_at(&mut a, 1, SimTime::from_micros(2), |w: &mut TestWorld| {
            w.log.push(7)
        });
        assert_eq!(a.sched.pending(), 0);
        let mut mail = Vec::new();
        a.sched.drain_outbox(&mut mail);
        assert_eq!(mail.len(), 1);
        b.sched.inject(&mut mail);
        run_to_quiescence(&mut b);
        assert_eq!(b.log, vec![7]);
        assert_eq!(b.sched.engine_stats().mailbox_injected, 1);
    }

    #[test]
    fn causality_violation_is_a_typed_error() {
        let mut a = world();
        let mut b = world();
        a.sched.configure_shard(0, 2);
        b.sched.configure_shard(1, 2);
        // b's clock is already past the message timestamp.
        call_at(&mut b, 1, SimTime::from_micros(10), |w: &mut TestWorld| {
            w.log.push(1)
        });
        run_to_quiescence(&mut b);
        call_at(&mut a, 1, SimTime::from_micros(2), |w: &mut TestWorld| {
            w.log.push(2)
        });
        let mut mail = Vec::new();
        a.sched.drain_outbox(&mut mail);
        // The inject still delivers (clamped) but records the violation.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.sched.inject(&mut mail);
        }));
        if cfg!(debug_assertions) {
            assert!(panicked.is_err(), "debug builds assert immediately");
        } else {
            assert!(panicked.is_ok());
        }
        assert!(matches!(
            b.sched.engine_error(),
            Some(EngineError::CausalityViolation { .. })
        ));
        assert_eq!(b.sched.engine_stats().errors, 1);
    }
}

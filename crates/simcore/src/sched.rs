//! The discrete-event scheduler.
//!
//! The engine is generic over the *world* type `W`: every layer of the stack
//! (host OS, NIC hardware, GM/MX drivers, file system, socket layer) stores its
//! state inside one world struct composed by the top-level crate, and events
//! are `FnOnce(&mut W)` closures ordered by `(time, sequence)`. The sequence
//! number makes execution fully deterministic: two events scheduled for the
//! same instant run in scheduling order, on every run, on every machine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

type EventFn<W> = Box<dyn FnOnce(&mut W)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Priority queue of pending events plus the virtual clock.
pub struct Scheduler<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<Entry<W>>,
}

impl<W> Default for Scheduler<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Scheduler<W> {
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            heap: BinaryHeap::with_capacity(1024),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (a cheap determinism fingerprint).
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` at absolute time `t`. Times in the past are clamped to
    /// "now": the event still runs, after already-queued events for `now`.
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut W) + 'static) {
        let at = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` after a delay of `d` from now.
    #[inline]
    pub fn after(&mut self, d: SimTime, f: impl FnOnce(&mut W) + 'static) {
        self.at(self.now + d, f);
    }

    /// Schedule `f` to run at the current instant, after events already queued
    /// for this instant.
    #[inline]
    pub fn immediately(&mut self, f: impl FnOnce(&mut W) + 'static) {
        self.at(self.now, f);
    }

    fn pop(&mut self) -> Option<EventFn<W>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "scheduler time went backwards");
        self.now = entry.at;
        self.executed += 1;
        Some(entry.f)
    }
}

/// A world that embeds a [`Scheduler`] for itself.
///
/// Layer crates bound their generic functions by capability traits whose root
/// is `SimWorld`; the concrete world type is composed once, at the top of the
/// dependency graph.
pub trait SimWorld: Sized {
    fn sched(&self) -> &Scheduler<Self>;
    fn sched_mut(&mut self) -> &mut Scheduler<Self>;
}

/// Current virtual time of a world.
#[inline]
pub fn now<W: SimWorld>(w: &W) -> SimTime {
    w.sched().now()
}

/// Schedule `f` after delay `d`.
#[inline]
pub fn after<W: SimWorld>(w: &mut W, d: SimTime, f: impl FnOnce(&mut W) + 'static) {
    w.sched_mut().after(d, f);
}

/// Schedule `f` at absolute time `t`.
#[inline]
pub fn at<W: SimWorld>(w: &mut W, t: SimTime, f: impl FnOnce(&mut W) + 'static) {
    w.sched_mut().at(t, f);
}

/// Execute the next pending event. Returns `false` when the queue is empty.
pub fn step<W: SimWorld>(w: &mut W) -> bool {
    // Pop first so the event closure gets exclusive access to the world.
    let Some(f) = w.sched_mut().pop() else {
        return false;
    };
    f(w);
    true
}

/// Outcome of a bounded run; see [`run_until`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate became true.
    Satisfied,
    /// The event queue drained without the predicate becoming true.
    Quiescent,
    /// The event budget was exhausted (likely a livelocked model).
    BudgetExhausted,
}

/// Default event budget for [`run_until`] — far above anything a benchmark
/// sweep needs, but finite so that a buggy model fails loudly instead of
/// spinning forever.
pub const DEFAULT_EVENT_BUDGET: u64 = 200_000_000;

/// Run until `pred` holds (checked before each event), the queue drains, or
/// `budget` events have executed.
pub fn run_until_budgeted<W: SimWorld>(
    w: &mut W,
    budget: u64,
    mut pred: impl FnMut(&W) -> bool,
) -> RunOutcome {
    for _ in 0..budget {
        if pred(w) {
            return RunOutcome::Satisfied;
        }
        if !step(w) {
            return RunOutcome::Quiescent;
        }
    }
    if pred(w) {
        RunOutcome::Satisfied
    } else {
        RunOutcome::BudgetExhausted
    }
}

/// [`run_until_budgeted`] with the default budget.
#[inline]
pub fn run_until<W: SimWorld>(w: &mut W, pred: impl FnMut(&W) -> bool) -> RunOutcome {
    run_until_budgeted(w, DEFAULT_EVENT_BUDGET, pred)
}

/// Drain the event queue completely; returns the number of events executed.
pub fn run_to_quiescence<W: SimWorld>(w: &mut W) -> u64 {
    let before = w.sched().executed();
    while step(w) {}
    w.sched().executed() - before
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestWorld {
        sched: Scheduler<TestWorld>,
        log: Vec<u32>,
    }

    impl SimWorld for TestWorld {
        fn sched(&self) -> &Scheduler<Self> {
            &self.sched
        }
        fn sched_mut(&mut self) -> &mut Scheduler<Self> {
            &mut self.sched
        }
    }

    fn world() -> TestWorld {
        TestWorld {
            sched: Scheduler::new(),
            log: Vec::new(),
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut w = world();
        w.sched
            .at(SimTime::from_micros(3), |w: &mut TestWorld| w.log.push(3));
        w.sched
            .at(SimTime::from_micros(1), |w: &mut TestWorld| w.log.push(1));
        w.sched
            .at(SimTime::from_micros(2), |w: &mut TestWorld| w.log.push(2));
        run_to_quiescence(&mut w);
        assert_eq!(w.log, vec![1, 2, 3]);
        assert_eq!(now(&w), SimTime::from_micros(3));
    }

    #[test]
    fn same_time_events_run_in_scheduling_order() {
        let mut w = world();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            w.sched.at(t, move |w: &mut TestWorld| w.log.push(i));
        }
        run_to_quiescence(&mut w);
        assert_eq!(w.log, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut w = world();
        w.sched.at(SimTime::from_micros(10), |w: &mut TestWorld| {
            // Scheduling in the past must not rewind the clock.
            w.sched_mut()
                .at(SimTime::from_micros(1), |w: &mut TestWorld| {
                    w.log.push(2);
                });
            w.log.push(1);
        });
        run_to_quiescence(&mut w);
        assert_eq!(w.log, vec![1, 2]);
        assert_eq!(now(&w), SimTime::from_micros(10));
    }

    #[test]
    fn events_can_cascade() {
        let mut w = world();
        w.sched.after(SimTime::from_micros(1), |w: &mut TestWorld| {
            w.log.push(1);
            after(w, SimTime::from_micros(1), |w| {
                w.log.push(2);
                after(w, SimTime::from_micros(1), |w| w.log.push(3));
            });
        });
        run_to_quiescence(&mut w);
        assert_eq!(w.log, vec![1, 2, 3]);
        assert_eq!(now(&w), SimTime::from_micros(3));
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut w = world();
        for i in 0..10 {
            w.sched
                .at(SimTime::from_micros(i), move |w: &mut TestWorld| {
                    w.log.push(i as u32)
                });
        }
        let outcome = run_until(&mut w, |w| w.log.len() == 5);
        assert_eq!(outcome, RunOutcome::Satisfied);
        assert_eq!(w.log.len(), 5);
        assert_eq!(w.sched.pending(), 5);
    }

    #[test]
    fn run_until_reports_quiescence() {
        let mut w = world();
        w.sched
            .after(SimTime::from_micros(1), |w: &mut TestWorld| w.log.push(1));
        let outcome = run_until(&mut w, |_| false);
        assert_eq!(outcome, RunOutcome::Quiescent);
    }

    #[test]
    fn run_until_respects_budget() {
        let mut w = world();
        // A self-perpetuating event stream.
        fn tick(w: &mut TestWorld) {
            w.log.push(0);
            after(w, SimTime::from_nanos(1), tick);
        }
        w.sched.immediately(tick);
        let outcome = run_until_budgeted(&mut w, 1000, |_| false);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(w.log.len(), 1000);
    }

    #[test]
    fn executed_counts_events() {
        let mut w = world();
        for i in 0..7 {
            w.sched
                .at(SimTime::from_micros(i), |w: &mut TestWorld| w.log.push(0));
        }
        run_to_quiescence(&mut w);
        assert_eq!(w.sched.executed(), 7);
    }
}

//! Virtual time and bandwidth arithmetic.
//!
//! The whole simulation runs on a single deterministic nanosecond clock.
//! [`SimTime`] is used both for instants (time since simulation start) and for
//! durations; this mirrors how the cost models are written down in the paper
//! (e.g. "3 µs per page", "200 µs base") and keeps arithmetic trivial.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, or a span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch / the empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// A practically-infinite instant, used as "never".
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from fractional microseconds (handy for paper-quoted costs
    /// such as "6.7 µs"). Negative inputs clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimTime((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) microseconds.
    #[inline]
    pub fn micros(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed in (fractional) milliseconds.
    #[inline]
    pub fn millis(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time expressed in (fractional) seconds.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: the span from `earlier` to `self`, or zero.
    #[inline]
    pub fn saturating_sub(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scale a duration by a dimensionless factor (used by calibration knobs).
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// True when this is the zero duration / epoch instant.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics in debug builds on underflow; prefer [`SimTime::saturating_sub`]
    /// when the ordering is not statically known.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "never")
        } else if self.0 < 10_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 10_000_000 {
            write!(f, "{:.3}us", self.micros())
        } else if self.0 < 10_000_000_000 {
            write!(f, "{:.3}ms", self.millis())
        } else {
            write!(f, "{:.3}s", self.secs())
        }
    }
}

/// A transfer rate in bytes per second.
///
/// The paper quotes link speeds in decimal megabytes (PCI-XD Myrinet sustains
/// 250 MB/s full duplex); we follow that convention: `MB = 10^6 bytes`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Bytes per second.
    #[inline]
    pub const fn bytes_per_sec(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Decimal megabytes per second (`10^6` bytes).
    #[inline]
    pub const fn mb_per_sec(mb: u64) -> Self {
        Bandwidth(mb * 1_000_000)
    }

    /// Decimal gigabytes per second (`10^9` bytes).
    #[inline]
    pub const fn gb_per_sec(gb: u64) -> Self {
        Bandwidth(gb * 1_000_000_000)
    }

    /// Fractional decimal gigabytes per second.
    #[inline]
    pub fn gb_per_sec_f64(gb: f64) -> Self {
        Bandwidth((gb.max(0.0) * 1e9).round() as u64)
    }

    /// Raw bytes per second.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Time to move `bytes` at this rate (rounded up to a whole nanosecond;
    /// zero bytes take zero time).
    #[inline]
    pub fn transfer_time(self, bytes: u64) -> SimTime {
        if bytes == 0 || self.0 == 0 {
            return SimTime::ZERO;
        }
        let ns = (bytes as u128 * 1_000_000_000).div_ceil(self.0 as u128);
        SimTime::from_nanos(ns as u64)
    }

    /// The rate, in decimal MB/s, implied by moving `bytes` in `elapsed`.
    pub fn observed_mb_s(bytes: u64, elapsed: SimTime) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        bytes as f64 / elapsed.secs() / 1e6
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}MB/s", self.0 as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_construction_roundtrips() {
        assert_eq!(SimTime::from_micros(5).nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros_f64(6.7).nanos(), 6_700);
        assert_eq!(SimTime::from_micros_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).micros(), 14.0);
        assert_eq!((a - b).micros(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!((b * 3).micros(), 12.0);
        assert_eq!((a / 2).micros(), 5.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn simtime_scaling() {
        let t = SimTime::from_micros(100);
        assert_eq!(t.scale(0.5).micros(), 50.0);
        assert_eq!(t.scale(-3.0), SimTime::ZERO);
    }

    #[test]
    fn simtime_display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(42)), "42ns");
        assert_eq!(format!("{}", SimTime::from_micros(42)), "42.000us");
        assert_eq!(format!("{}", SimTime::from_millis(42)), "42.000ms");
        assert_eq!(format!("{}", SimTime::NEVER), "never");
    }

    #[test]
    fn simtime_sum() {
        let total: SimTime = (1..=4).map(SimTime::from_micros).sum();
        assert_eq!(total.micros(), 10.0);
    }

    #[test]
    fn bandwidth_transfer_times() {
        let link = Bandwidth::mb_per_sec(250);
        // 250 bytes at 250 MB/s is exactly one microsecond.
        assert_eq!(link.transfer_time(250), SimTime::from_micros(1));
        // Rounds up to whole nanoseconds.
        assert_eq!(link.transfer_time(1).nanos(), 4);
        assert_eq!(link.transfer_time(0), SimTime::ZERO);
    }

    #[test]
    fn bandwidth_observed() {
        let t = SimTime::from_micros(1);
        let mb = Bandwidth::observed_mb_s(250, t);
        assert!((mb - 250.0).abs() < 1e-9, "got {mb}");
        assert_eq!(Bandwidth::observed_mb_s(1, SimTime::ZERO), 0.0);
    }

    #[test]
    fn bandwidth_gb_constructors() {
        assert_eq!(Bandwidth::gb_per_sec(1).raw(), 1_000_000_000);
        assert_eq!(Bandwidth::gb_per_sec_f64(2.6).raw(), 2_600_000_000);
    }
}

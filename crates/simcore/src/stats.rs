//! Small online-statistics helpers used by benchmarks and layer counters.

use std::fmt;

use crate::time::SimTime;

/// Online summary of a stream of samples: count, mean, min, max.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a virtual-time sample in microseconds.
    pub fn push_time(&mut self, t: SimTime) {
        self.push(t.micros());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// One point of a figure series: message size on the x-axis, a measured value
/// (latency in µs or throughput in MB/s) on the y-axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    pub x: u64,
    pub y: f64,
}

/// A named series of measurements, as plotted in the paper's figures.
#[derive(Clone, Debug, Default)]
pub struct Series {
    pub name: String,
    pub points: Vec<SeriesPoint>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: u64, y: f64) {
        self.points.push(SeriesPoint { x, y });
    }

    /// Linear interpolation of `y` at `x` (clamps outside the domain).
    /// Used by shape assertions ("MX beats GM at every size").
    pub fn at(&self, x: u64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if x <= self.points[0].x {
            return Some(self.points[0].y);
        }
        if let Some(last) = self.points.last() {
            if x >= last.x {
                return Some(last.y);
            }
        }
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.x <= x && x <= b.x {
                let f = (x - a.x) as f64 / (b.x - a.x).max(1) as f64;
                return Some(a.y + f * (b.y - a.y));
            }
        }
        None
    }

    /// Maximum y value (e.g. peak bandwidth).
    pub fn peak(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.y)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The y value at the exact x sample, if present.
    pub fn exact(&self, x: u64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }
}

/// The standard message-size sweep used across the paper's figures:
/// powers of two from `lo` to `hi` inclusive, optionally with `1` prepended.
pub fn pow2_sizes(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo >= 1 && lo <= hi, "invalid sweep bounds");
    let mut v = Vec::new();
    let mut s = lo.next_power_of_two();
    if lo == 1 {
        v.push(1);
        s = 2;
    } else if s != lo {
        v.push(lo);
    }
    while s <= hi {
        v.push(s);
        s = s.saturating_mul(2);
    }
    if *v.last().unwrap() != hi {
        v.push(hi);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        for x in [3.0, 1.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.push(1.0);
        let mut b = Summary::new();
        b.push(5.0);
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5.0);
        assert_eq!(a.min(), 1.0);
        a.merge(&Summary::new());
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn series_interpolates() {
        let mut s = Series::new("t");
        s.push(0, 0.0);
        s.push(10, 100.0);
        assert_eq!(s.at(5), Some(50.0));
        assert_eq!(s.at(0), Some(0.0));
        assert_eq!(s.at(100), Some(100.0)); // clamp right
        assert_eq!(s.exact(10), Some(100.0));
        assert_eq!(s.exact(5), None);
        assert_eq!(s.peak(), 100.0);
    }

    #[test]
    fn empty_series_has_no_values() {
        let s = Series::new("e");
        assert_eq!(s.at(3), None);
    }

    #[test]
    fn pow2_sweep_includes_endpoints() {
        assert_eq!(pow2_sizes(1, 8), vec![1, 2, 4, 8]);
        assert_eq!(pow2_sizes(4, 10), vec![4, 8, 10]);
        assert_eq!(pow2_sizes(3, 16), vec![3, 4, 8, 16]);
    }

    #[test]
    #[should_panic(expected = "invalid sweep bounds")]
    fn pow2_sweep_rejects_bad_bounds() {
        let _ = pow2_sizes(8, 4);
    }
}

//! A tiny deterministic PRNG (SplitMix64) for internal use.
//!
//! The engine itself is deterministic and never consumes randomness; this
//! generator exists so that substrate crates can build reproducible synthetic
//! workloads (file contents, access patterns) without pulling `rand` into the
//! lowest layer of the dependency graph.

/// SplitMix64: tiny, fast, passes BigCrush for its intended uses.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded rejection-free mapping; bias is negligible
        // for simulation workloads.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` inclusive.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Fill a byte slice with pseudo-random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_range(10, 20);
            assert!((10..=20).contains(&v));
            assert!(r.next_below(3) < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle changed order");
    }
}

//! # knet-simcore — deterministic discrete-event engine
//!
//! The foundation of the `knet` cluster model: a nanosecond-resolution virtual
//! clock, a shard-aware event scheduler generic over the composed *world*
//! type, a conservative-lookahead parallel epoch engine, timed
//! serially-reusable resources (links, DMA engines, CPUs), and small
//! statistics helpers shared by the benchmark harness.
//!
//! Design notes:
//!
//! * **Generic world.** `Scheduler<W>` stores typed events (`W::Ev`, a
//!   concrete enum in the composed world — zero allocations per event in
//!   steady state; [`BoxEvent`] is the boxed fallback for generic layer
//!   test worlds). Layer crates (`knet-simos`, `knet-simnic`, `knet-gm`, …)
//!   write their logic as functions generic over capability traits rooted
//!   at [`SimWorld`]; the top-level crate composes one concrete world and
//!   implements every trait. No layer ever depends on its users.
//! * **Determinism.** Events are ordered by `(time, origin, origin_seq)` —
//!   each scheduling *stream* (a node's event cascade, or the control code
//!   between events) carries its own monotone counter. The order is total,
//!   reproducible, and — because every event is executed by exactly one
//!   shard and cross-shard messages carry their keys — identical whether
//!   the cluster runs on one thread or many ([`engine`]). Tests rely on
//!   this.
//! * **Typed engine errors.** Invariant violations (clock regression,
//!   lookahead/causality breaches) are recorded as [`EngineError`] values
//!   surfaced through engine stats, so release-mode shard bugs fail loudly
//!   instead of silently reordering.
//! * **No wall-clock anywhere.** All figures produced by the benchmark
//!   harness are virtual-time measurements of the modeled 2005 hardware, not
//!   host-machine timings.

pub mod engine;
pub mod lru;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use engine::{run_shards_to_quiescence, EpochReport};
pub use lru::LruSlab;
pub use resource::{Busy, LaneBank};
pub use rng::SplitMix64;
pub use sched::{
    call_after, call_at, call_now, emit_after, emit_at, now, run_to_quiescence, run_until,
    run_until_budgeted, step, BoxEvent, EngineError, EngineStats, OutMsg, RunOutcome, Scheduler,
    ShardPhase, SimEvent, SimWorld, CONTROL_ORIGIN, DEFAULT_EVENT_BUDGET,
};
pub use stats::{pow2_sizes, Series, SeriesPoint, Summary};
pub use time::{Bandwidth, SimTime};

//! # knet-simcore — deterministic discrete-event engine
//!
//! The foundation of the `knet` cluster model: a nanosecond-resolution virtual
//! clock, an event scheduler generic over the composed *world* type, timed
//! serially-reusable resources (links, DMA engines, CPUs), and small
//! statistics helpers shared by the benchmark harness.
//!
//! Design notes:
//!
//! * **Generic world.** `Scheduler<W>` stores `FnOnce(&mut W)` events. Layer
//!   crates (`knet-simos`, `knet-simnic`, `knet-gm`, …) write their logic as
//!   functions generic over capability traits rooted at [`SimWorld`]; the
//!   top-level crate composes one concrete world and implements every trait.
//!   No layer ever depends on its users.
//! * **Determinism.** Events at equal timestamps run in scheduling order
//!   (FIFO via a sequence number). Given the same inputs, every run produces
//!   the same event trace and the same virtual timings — tests rely on this.
//! * **No wall-clock anywhere.** All figures produced by the benchmark
//!   harness are virtual-time measurements of the modeled 2005 hardware, not
//!   host-machine timings.

pub mod lru;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use lru::LruSlab;
pub use resource::{Busy, LaneBank};
pub use rng::SplitMix64;
pub use sched::{
    after, at, now, run_to_quiescence, run_until, run_until_budgeted, step, RunOutcome, Scheduler,
    SimWorld, DEFAULT_EVENT_BUDGET,
};
pub use stats::{pow2_sizes, Series, SeriesPoint, Summary};
pub use time::{Bandwidth, SimTime};

//! Serially-reusable timed resources.
//!
//! Links, DMA engines, firmware processors and host CPUs are all modeled as
//! resources that can serve one transfer at a time; a request issued while the
//! resource is busy starts when the resource frees up. This is what produces
//! pipelining in the model: a 1 MB message cut into 4 kB chunks occupies the
//! DMA engine and the wire as two overlapping chains of [`Busy::acquire`]
//! reservations.

use crate::time::SimTime;

/// A resource that serves requests one at a time, in arrival order.
#[derive(Clone, Debug, Default)]
pub struct Busy {
    free_at: SimTime,
    busy_total: SimTime,
    acquisitions: u64,
}

impl Busy {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource for `dur`, starting no earlier than `now`.
    /// Returns the `(start, end)` of the reservation.
    pub fn acquire(&mut self, now: SimTime, dur: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at.max(now);
        let end = start + dur;
        self.free_at = end;
        self.busy_total += dur;
        self.acquisitions += 1;
        (start, end)
    }

    /// Earliest instant a new reservation could start.
    #[inline]
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Whether the resource is idle at `now`.
    #[inline]
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total time spent busy over the simulation so far.
    #[inline]
    pub fn busy_total(&self) -> SimTime {
        self.busy_total
    }

    /// Number of reservations served.
    #[inline]
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Fraction of `[ZERO, now]` spent busy (clamped to 1.0 — reservations
    /// may extend past `now`).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.is_zero() {
            return 0.0;
        }
        (self.busy_total.nanos() as f64 / now.nanos() as f64).min(1.0)
    }
}

/// A bank of identical parallel resources (e.g. the two links of a PCI-XE
/// Myrinet card). Each reservation picks the lane that frees up first.
#[derive(Clone, Debug)]
pub struct LaneBank {
    lanes: Vec<Busy>,
}

impl LaneBank {
    /// A bank of `n` lanes (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a lane bank needs at least one lane");
        LaneBank {
            lanes: vec![Busy::new(); n],
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Reserve `dur` on the first-free lane; returns `(lane, start, end)`.
    pub fn acquire(&mut self, now: SimTime, dur: SimTime) -> (usize, SimTime, SimTime) {
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(i, b)| (b.free_at(), *i))
            .map(|(i, _)| i)
            .expect("lane bank is never empty");
        let (start, end) = self.lanes[lane].acquire(now, dur);
        (lane, start, end)
    }

    /// Earliest instant any lane is free.
    pub fn free_at(&self) -> SimTime {
        self.lanes
            .iter()
            .map(Busy::free_at)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time across all lanes.
    pub fn busy_total(&self) -> SimTime {
        self.lanes.iter().map(Busy::busy_total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: fn(u64) -> SimTime = SimTime::from_micros;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut b = Busy::new();
        let (s, e) = b.acquire(US(10), US(5));
        assert_eq!(s, US(10));
        assert_eq!(e, US(15));
    }

    #[test]
    fn busy_resource_queues() {
        let mut b = Busy::new();
        b.acquire(US(0), US(10));
        let (s, e) = b.acquire(US(2), US(3));
        assert_eq!(s, US(10));
        assert_eq!(e, US(13));
        assert_eq!(b.acquisitions(), 2);
        assert_eq!(b.busy_total(), US(13));
    }

    #[test]
    fn resource_goes_idle_after_gap() {
        let mut b = Busy::new();
        b.acquire(US(0), US(5));
        assert!(!b.idle_at(US(4)));
        assert!(b.idle_at(US(5)));
        let (s, _) = b.acquire(US(20), US(1));
        assert_eq!(s, US(20));
    }

    #[test]
    fn utilization_is_bounded() {
        let mut b = Busy::new();
        b.acquire(US(0), US(5));
        assert!((b.utilization(US(10)) - 0.5).abs() < 1e-9);
        // Reservation extending past `now` clamps.
        b.acquire(US(10), US(1000));
        assert_eq!(b.utilization(US(11)), 1.0);
        assert_eq!(Busy::new().utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn lane_bank_spreads_load() {
        let mut bank = LaneBank::new(2);
        let (l0, s0, _) = bank.acquire(US(0), US(10));
        let (l1, s1, _) = bank.acquire(US(0), US(10));
        assert_ne!(l0, l1, "second transfer must use the other lane");
        assert_eq!(s0, US(0));
        assert_eq!(s1, US(0));
        // Third transfer waits for whichever lane frees first.
        let (_, s2, _) = bank.acquire(US(0), US(10));
        assert_eq!(s2, US(10));
        assert_eq!(bank.busy_total(), US(30));
    }

    #[test]
    fn lane_bank_width_one_serializes() {
        let mut bank = LaneBank::new(1);
        bank.acquire(US(0), US(4));
        let (_, s, _) = bank.acquire(US(0), US(4));
        assert_eq!(s, US(4));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn lane_bank_rejects_zero_width() {
        let _ = LaneBank::new(0);
    }
}

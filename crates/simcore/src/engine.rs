//! The conservative-lookahead parallel engine.
//!
//! A cluster split into `k` shards is `k` worlds, each owning the nodes
//! `n % k == shard_id` and holding only events targeting them (see
//! [`crate::sched`]). This module steps those worlds on real threads in
//! *epochs*, the classic Chandy–Misra conservative discipline:
//!
//! 1. every shard publishes the timestamp of its next pending event;
//! 2. the global minimum `T` defines the epoch horizon `T + L`, where `L`
//!    is the **lookahead** — the minimum latency of any cross-shard link.
//!    Any event executing at `u ≥ T` can only schedule cross-shard arrivals
//!    at `u + L ≥ T + L`, so every event strictly before the horizon is
//!    safe to execute without hearing from other shards;
//! 3. shards run their local heaps up to (excluding) the horizon, collecting
//!    cross-shard sends in their outboxes;
//! 4. outboxes are exchanged into the owning shards' ingress mailboxes at
//!    the barrier, and the next epoch begins.
//!
//! The run terminates when every heap and every mailbox is empty. Because
//! each event's ordering key `(time, origin, origin_seq)` travels with it,
//! each shard executes its slice in exactly the order the sequential engine
//! would have — results are bit-identical per seed, which
//! `tests/sched_equivalence.rs` asserts across shard counts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::sched::{step, OutMsg, RunOutcome, SimWorld};
use crate::time::SimTime;

/// Result of a parallel run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochReport {
    pub outcome: RunOutcome,
    /// Events executed across all shards.
    pub executed: u64,
    /// Epochs stepped (barrier rounds).
    pub epochs: u64,
}

struct Shared<E> {
    barrier: Barrier,
    /// Next-event time per shard (`u64::MAX` = empty heap), re-published
    /// each epoch.
    next: Vec<AtomicU64>,
    /// Final clock per shard, for the quiescence alignment.
    nows: Vec<AtomicU64>,
    /// Ingress mailbox per shard.
    mail: Vec<Mutex<Vec<OutMsg<E>>>>,
    /// Epoch horizon (exclusive), written by shard 0.
    horizon: AtomicU64,
    done: AtomicBool,
    over_budget: AtomicBool,
    executed: AtomicU64,
    epochs: AtomicU64,
}

/// Drain every shard to quiescence on one thread per shard.
///
/// `lookahead` must be a lower bound on the latency of every cross-shard
/// event (for this simulator: the minimum NIC wire latency). A too-large
/// lookahead does not corrupt the run silently — the destination shard
/// records a typed `CausalityViolation` through its engine stats.
///
/// With a single shard this is exactly `run_to_quiescence`, no threads.
pub fn run_shards_to_quiescence<W>(worlds: &mut [W], lookahead: SimTime, budget: u64) -> EpochReport
where
    W: SimWorld + Send,
{
    assert!(!worlds.is_empty());
    assert!(lookahead > SimTime::ZERO, "lookahead must be positive");
    if worlds.len() == 1 {
        let w = &mut worlds[0];
        let mut executed = 0;
        let mut outcome = RunOutcome::Quiescent;
        while step(w) {
            executed += 1;
            if executed >= budget {
                outcome = RunOutcome::BudgetExhausted;
                break;
            }
        }
        return EpochReport {
            outcome,
            executed,
            epochs: 0,
        };
    }

    let k = worlds.len();
    let shared: Shared<W::Ev> = Shared {
        barrier: Barrier::new(k),
        next: (0..k).map(|_| AtomicU64::new(u64::MAX)).collect(),
        nows: (0..k).map(|_| AtomicU64::new(0)).collect(),
        mail: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
        horizon: AtomicU64::new(0),
        done: AtomicBool::new(false),
        over_budget: AtomicBool::new(false),
        executed: AtomicU64::new(0),
        epochs: AtomicU64::new(0),
    };
    let per_shard_budget = budget / k as u64 + 1;

    std::thread::scope(|s| {
        for (i, w) in worlds.iter_mut().enumerate() {
            let shared = &shared;
            s.spawn(move || worker(i, w, shared, lookahead, per_shard_budget));
        }
    });

    EpochReport {
        outcome: if shared.over_budget.load(Ordering::Relaxed) {
            RunOutcome::BudgetExhausted
        } else {
            RunOutcome::Quiescent
        },
        executed: shared.executed.load(Ordering::Relaxed),
        epochs: shared.epochs.load(Ordering::Relaxed),
    }
}

fn worker<W: SimWorld>(
    i: usize,
    w: &mut W,
    shared: &Shared<W::Ev>,
    lookahead: SimTime,
    budget: u64,
) {
    let k = shared.next.len();
    let mut outbox: Vec<OutMsg<W::Ev>> = Vec::new();
    let mut inbox: Vec<OutMsg<W::Ev>> = Vec::new();
    let mut executed_here = 0u64;

    loop {
        // (1) Publish this shard's next event time; mailboxes are empty
        // here (drained at the end of the previous epoch), so the heap top
        // is the full truth.
        let next = w.sched().next_at().map_or(u64::MAX, |t| t.nanos());
        shared.next[i].store(next, Ordering::Relaxed);
        shared.barrier.wait();

        // (2) Shard 0 computes the epoch horizon from the global minimum.
        if i == 0 {
            let t = shared
                .next
                .iter()
                .map(|n| n.load(Ordering::Relaxed))
                .min()
                .unwrap_or(u64::MAX);
            if t == u64::MAX || shared.over_budget.load(Ordering::Relaxed) {
                shared.done.store(true, Ordering::Relaxed);
            } else {
                let horizon = t.saturating_add(lookahead.nanos());
                shared.horizon.store(horizon, Ordering::Relaxed);
                shared.epochs.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.barrier.wait();
        if shared.done.load(Ordering::Relaxed) {
            break;
        }

        // (3) Execute everything strictly before the horizon. Events at
        // exactly `u` schedule cross-shard arrivals at `u + L ≥ horizon`,
        // so nothing a peer does this epoch can land inside it.
        let horizon = SimTime::from_nanos(shared.horizon.load(Ordering::Relaxed));
        while w.sched().next_at().is_some_and(|t| t < horizon) {
            step(w);
            executed_here += 1;
            if executed_here >= budget {
                shared.over_budget.store(true, Ordering::Relaxed);
                break;
            }
        }
        w.sched_mut().note_epoch();

        // Route cross-shard sends into the owning shards' mailboxes.
        w.sched_mut().drain_outbox(&mut outbox);
        if !outbox.is_empty() {
            // One lock acquisition per destination shard, not per message.
            for dest in 0..k {
                if dest == i || !outbox.iter().any(|m| m.node as usize % k == dest) {
                    continue;
                }
                let mut mailbox = shared.mail[dest].lock().unwrap();
                let mut j = 0;
                while j < outbox.len() {
                    if outbox[j].node as usize % k == dest {
                        mailbox.push(outbox.swap_remove(j));
                    } else {
                        j += 1;
                    }
                }
            }
            debug_assert!(outbox.is_empty(), "outbox message for our own shard");
            outbox.clear();
        }
        shared.barrier.wait();

        // (4) Drain this shard's mailbox before the next epoch's horizon
        // computation. Equal keys are impossible (per-origin counters), so
        // heap insertion order — and therefore mutex acquisition order —
        // cannot affect the execution order.
        {
            let mut mailbox = shared.mail[i].lock().unwrap();
            std::mem::swap(&mut *mailbox, &mut inbox);
        }
        w.sched_mut().inject(&mut inbox);
        shared.barrier.wait();
    }

    shared.executed.fetch_add(executed_here, Ordering::Relaxed);
    // Align every shard's clock to the global maximum, so post-run control
    // ops observe the same "now" a sequential run would have ended at.
    shared.nows[i].store(w.sched().now().nanos(), Ordering::Relaxed);
    shared.barrier.wait();
    let max_now = shared
        .nows
        .iter()
        .map(|n| n.load(Ordering::Relaxed))
        .max()
        .unwrap_or(0);
    w.sched_mut().align_now(SimTime::from_nanos(max_now));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{call_after, call_at, BoxEvent, Scheduler};

    struct ShardWorld {
        sched: Scheduler<ShardWorld>,
        log: Vec<(u64, u32)>,
    }

    impl SimWorld for ShardWorld {
        type Ev = BoxEvent<Self>;
        fn sched(&self) -> &Scheduler<Self> {
            &self.sched
        }
        fn sched_mut(&mut self) -> &mut Scheduler<Self> {
            &mut self.sched
        }
    }

    const LOOKAHEAD: SimTime = SimTime::from_micros(1);

    /// A ping-pong chain between `a` and `b` spaced by the lookahead.
    fn ping(w: &mut ShardWorld, from: u32, to: u32, hops: u32) {
        let t = crate::sched::now(w) + LOOKAHEAD;
        call_at(w, to, t, move |w: &mut ShardWorld| {
            w.log.push((crate::sched::now(w).nanos(), to));
            if hops > 0 {
                ping(w, to, from, hops - 1);
            }
        });
    }

    fn run(k: usize) -> Vec<Vec<(u64, u32)>> {
        let mut worlds: Vec<ShardWorld> = (0..k)
            .map(|i| {
                let mut w = ShardWorld {
                    sched: Scheduler::new(),
                    log: Vec::new(),
                };
                w.sched.configure_shard(i as u32, k as u32);
                w
            })
            .collect();
        // Mirrored setup: every shard runs the same code; each keeps its own.
        for w in &mut worlds {
            w.sched.set_phase(crate::sched::ShardPhase::Mirror);
            // Node 0 starts a ping-pong with node 1; node 2 self-ticks.
            ping(w, 1, 0, 10);
            for i in 0..5u64 {
                call_after(
                    w,
                    2,
                    SimTime::from_micros(2 + i),
                    move |w: &mut ShardWorld| {
                        w.log.push((crate::sched::now(w).nanos(), 2));
                    },
                );
            }
            w.sched.set_phase(crate::sched::ShardPhase::Routed);
        }
        let report = run_shards_to_quiescence(&mut worlds, LOOKAHEAD, 1_000_000);
        assert_eq!(report.outcome, RunOutcome::Quiescent);
        worlds.into_iter().map(|w| w.log).collect()
    }

    #[test]
    fn sharded_matches_sequential_order() {
        let seq = run(1);
        let all_seq: Vec<_> = seq.into_iter().flatten().collect();
        for k in [2usize, 3, 4] {
            let logs = run(k);
            // Each shard's log is the sequential log filtered to its nodes.
            for (i, log) in logs.iter().enumerate() {
                let expect: Vec<_> = all_seq
                    .iter()
                    .copied()
                    .filter(|(_, node)| *node as usize % k == i)
                    .collect();
                assert_eq!(log, &expect, "shard {i} of {k} diverged");
            }
            let total: usize = logs.iter().map(|l| l.len()).sum();
            assert_eq!(total, all_seq.len(), "event count fingerprint at k={k}");
        }
    }
}

//! A hash-indexed slab threaded by an intrusive doubly-linked LRU list,
//! with an ordered secondary index for range operations.
//!
//! This is the one O(1) recency structure behind both hot-path caches of
//! the stack — the GMKRC registration cache (`knet-core`) and the NIC
//! translation table (`knet-simnic`). Shapes it serves:
//!
//! * **hit / touch**: hash lookup + two pointer swings — O(1);
//! * **LRU victim**: read off the list tail — O(1);
//! * **insert / remove**: slab slots recycle through a free list, so the
//!   steady state performs no heap allocation once the slab and the free
//!   list reach their high-water marks (the free list is fully reserved
//!   up front, the hash map to `reserve`);
//! * **range pops** (VMA invalidation, per-ASID purge): served by a
//!   `BTreeMap` ordered index maintained only on insert/remove — the hit
//!   path never touches it.
//!
//! Capacity *policy* (reject when full, evict in batches, …) stays with
//! the caller; the slab itself is unbounded.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::ops::RangeInclusive;

/// Sentinel slot index (list terminator / no slot).
const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    /// Toward the MRU end.
    prev: u32,
    /// Toward the LRU end.
    next: u32,
}

/// An LRU-ordered map from `K` to `V` (see the module docs).
pub struct LruSlab<K, V> {
    slots: Vec<Slot<K, V>>,
    free: Vec<u32>,
    /// MRU end of the intrusive list.
    head: u32,
    /// LRU end — the next eviction victim.
    tail: u32,
    index: HashMap<K, u32>,
    ordered: BTreeMap<K, u32>,
}

impl<K: Copy + Eq + Ord + Hash, V: Copy> LruSlab<K, V> {
    /// An empty slab whose hash index and free list are pre-reserved for
    /// `reserve` entries, so filling to that occupancy — and all churn
    /// below it — never rehashes or reallocates.
    pub fn with_reserve(reserve: usize) -> Self {
        LruSlab {
            slots: Vec::new(),
            free: Vec::with_capacity(reserve),
            head: NIL,
            tail: NIL,
            index: HashMap::with_capacity(reserve),
            ordered: BTreeMap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    // ---------------------------------------------------------- list ops

    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn link_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn promote(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.link_front(slot);
    }

    fn remove_slot(&mut self, slot: u32) -> (K, V) {
        self.unlink(slot);
        let Slot { key, value, .. } = self.slots[slot as usize];
        self.index.remove(&key);
        self.ordered.remove(&key);
        self.free.push(slot);
        (key, value)
    }

    // --------------------------------------------------------- map ops

    /// The value for `key`, promoting it to most-recently-used. O(1).
    pub fn touch_get(&mut self, key: &K) -> Option<V> {
        let slot = *self.index.get(key)?;
        self.promote(slot);
        Some(self.slots[slot as usize].value)
    }

    /// The value for `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<V> {
        let slot = *self.index.get(key)?;
        Some(self.slots[slot as usize].value)
    }

    /// Insert or update `key` (either way it becomes most-recently-used).
    pub fn insert(&mut self, key: K, value: V) {
        match self.index.get(&key).copied() {
            Some(slot) => {
                self.slots[slot as usize].value = value;
                self.promote(slot);
            }
            None => {
                let slot = match self.free.pop() {
                    Some(i) => {
                        self.slots[i as usize] = Slot {
                            key,
                            value,
                            prev: NIL,
                            next: NIL,
                        };
                        i
                    }
                    None => {
                        let i = self.slots.len() as u32;
                        assert!(i < NIL, "LRU slab overflow");
                        self.slots.push(Slot {
                            key,
                            value,
                            prev: NIL,
                            next: NIL,
                        });
                        i
                    }
                };
                self.link_front(slot);
                self.index.insert(key, slot);
                self.ordered.insert(key, slot);
            }
        }
    }

    /// Remove `key`. O(1) on the hash/list, O(log n) on the ordered index.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = *self.index.get(key)?;
        Some(self.remove_slot(slot).1)
    }

    /// Pop the least-recently-used entry. O(1) victim selection.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        match self.tail {
            NIL => None,
            slot => Some(self.remove_slot(slot)),
        }
    }

    /// The least-recently-used key, without removing it. O(1).
    pub fn lru_key(&self) -> Option<K> {
        match self.tail {
            NIL => None,
            t => Some(self.slots[t as usize].key),
        }
    }

    /// Remove and return the first entry (in key order) inside `range` —
    /// repeated calls drain a range in ascending key order, O(log n + 1)
    /// each. Returns `None` when the range is empty.
    pub fn pop_in_range(&mut self, range: RangeInclusive<K>) -> Option<(K, V)> {
        let slot = {
            let mut r = self.ordered.range(range);
            *r.next()?.1
        };
        Some(self.remove_slot(slot))
    }

    /// Iterate every entry in ascending key order.
    pub fn iter_ordered(&self) -> impl Iterator<Item = (K, V)> + '_ {
        self.ordered
            .iter()
            .map(|(k, slot)| (*k, self.slots[*slot as usize].value))
    }

    /// Drop everything; heap capacity of the slab and free list survives,
    /// the ordered index's does not (BTreeMap nodes free on clear).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.index.clear();
        self.ordered.clear();
    }

    /// Slab high-water mark (for recycling assertions in tests).
    pub fn slab_size(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recency_order_and_pop() {
        let mut l: LruSlab<u64, u32> = LruSlab::with_reserve(8);
        for k in 0..4u64 {
            l.insert(k, k as u32);
        }
        // Touch 0: eviction order becomes 1, 2, 3, 0.
        assert_eq!(l.touch_get(&0), Some(0));
        assert_eq!(l.lru_key(), Some(1));
        for expect in [1u64, 2, 3, 0] {
            assert_eq!(l.pop_lru().unwrap().0, expect);
        }
        assert!(l.pop_lru().is_none());
    }

    #[test]
    fn upsert_promotes_and_updates() {
        let mut l: LruSlab<u64, u32> = LruSlab::with_reserve(4);
        l.insert(1, 10);
        l.insert(2, 20);
        l.insert(1, 11); // update + promote
        assert_eq!(l.peek(&1), Some(11));
        assert_eq!(l.lru_key(), Some(2));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn range_pops_ascend_and_respect_bounds() {
        let mut l: LruSlab<u64, u32> = LruSlab::with_reserve(8);
        for k in [5u64, 1, 9, 3] {
            l.insert(k, k as u32);
        }
        assert_eq!(l.pop_in_range(2..=8), Some((3, 3)));
        assert_eq!(l.pop_in_range(2..=8), Some((5, 5)));
        assert_eq!(l.pop_in_range(2..=8), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn slots_recycle_at_high_water() {
        let mut l: LruSlab<u64, u32> = LruSlab::with_reserve(4);
        for round in 0..100u64 {
            for k in 0..4u64 {
                l.insert(round * 4 + k, 0);
            }
            while l.pop_lru().is_some() {}
        }
        assert!(l.slab_size() <= 4, "slab stays at high-water mark");
    }
}

//! ORFS world state: clients, servers, and their capability trait.

use knet_core::DispatchWorld;

use crate::client::OrfsClient;
use crate::server::OrfsServer;

/// Identifier of an ORFS server instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrfsServerId(pub u32);

/// Identifier of an ORFA/ORFS client instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrfsClientId(pub u32);

/// All ORFS state in the world.
#[derive(Default)]
pub struct OrfsLayer {
    pub servers: Vec<OrfsServer>,
    pub clients: Vec<OrfsClient>,
}

impl OrfsLayer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn server(&self, id: OrfsServerId) -> &OrfsServer {
        &self.servers[id.0 as usize]
    }

    pub fn server_mut(&mut self, id: OrfsServerId) -> &mut OrfsServer {
        &mut self.servers[id.0 as usize]
    }

    pub fn client(&self, id: OrfsClientId) -> &OrfsClient {
        &self.clients[id.0 as usize]
    }

    pub fn client_mut(&mut self, id: OrfsClientId) -> &mut OrfsClient {
        &mut self.clients[id.0 as usize]
    }
}

/// Capability trait: a world hosting ORFS clients and servers on top of the
/// unified transport + dispatch registry.
pub trait OrfsWorld: DispatchWorld {
    fn orfs(&self) -> &OrfsLayer;
    fn orfs_mut(&mut self) -> &mut OrfsLayer;
}
